use cashmere_apps::{Barnes, Benchmark, Scale};
use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, Topology};

fn run_collect(app: &Barnes, cfg: ClusterConfig) -> Vec<u64> {
    let mut cfg = cfg;
    app.configure(&mut cfg);
    let mut cluster = Cluster::new(cfg);
    let _ = app.execute(&mut cluster);
    // pos then vel then acc then mass: first 3n + 3n + 3n + n words
    (0..(10 * app.bodies))
        .map(|i| cluster.read_u64(i))
        .collect()
}

fn main() {
    let app = Barnes::new(Scale::Test);
    let n = app.bodies;
    let seq = run_collect(
        &app,
        ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel),
    );
    for it in 0..250 {
        for protocol in [ProtocolKind::TwoLevel, ProtocolKind::TwoLevelShootdown] {
            let par = run_collect(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            let mut bad = Vec::new();
            for i in 0..par.len() {
                if par[i] != seq[i] {
                    bad.push(i);
                }
            }
            if !bad.is_empty() {
                let region = |i: usize| {
                    if i < 3 * n {
                        format!("pos[{}].{}", i / 3, i % 3)
                    } else if i < 6 * n {
                        format!("vel[{}].{}", (i - 3 * n) / 3, i % 3)
                    } else if i < 9 * n {
                        format!("acc[{}].{}", (i - 6 * n) / 3, i % 3)
                    } else {
                        format!("mass[{}]", i - 9 * n)
                    }
                };
                eprintln!(
                    "== iter {it} {} : {} bad words ==",
                    protocol.label(),
                    bad.len()
                );
                for &i in bad.iter().take(24) {
                    eprintln!(
                        "  word {i} ({}) par={} seq={}",
                        region(i),
                        f64::from_bits(par[i]),
                        f64::from_bits(seq[i])
                    );
                }
                for l in cashmere_core::engine::dump_trace() {
                    eprintln!("{l}");
                }
                std::process::exit(1);
            }
            let _ = cashmere_core::engine::dump_trace();
        }
    }
    println!("all ok");
}
