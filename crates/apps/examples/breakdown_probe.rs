use cashmere_apps::{run_app, suite, Scale};
use cashmere_core::{ClusterConfig, ProtocolKind, TimeCategory, Topology};

fn main() {
    let apps = suite(Scale::Bench);
    for (t, k) in [(1, 1), (8, 1), (32, 4)] {
        for app in &apps {
            if app.name() != "SOR" && app.name() != "Em3d" {
                continue;
            }
            let out = run_app(
                app.as_ref(),
                ClusterConfig::new(Topology::new(t / k, k), ProtocolKind::TwoLevel),
            );
            let r = &out.report;
            let pp = |c: TimeCategory| r.breakdown.get(c) as f64 / r.procs as f64 / 1e9;
            println!("{} {}:{} exec={:.3}s user={:.3} proto={:.3} poll={:.3} comm={:.3} | rf={} wf={} xfer={} wn={} dir={} twin={} excl={} reloc={}",
                app.name(), t, k, r.exec_secs(), pp(TimeCategory::User), pp(TimeCategory::Protocol),
                pp(TimeCategory::Polling), pp(TimeCategory::CommWait),
                r.counters.read_faults, r.counters.write_faults, r.counters.page_transfers,
                r.counters.write_notices, r.counters.directory_updates, r.counters.twin_creations,
                r.counters.exclusive_transitions, r.counters.home_relocations);
        }
    }
}
