use cashmere_apps::{run_app, Scale, Sor};
use cashmere_core::{ClusterConfig, ProtocolKind, Topology};

fn main() {
    let mut app = Sor::new(Scale::Bench);
    app.iters = 1;
    let out = run_app(
        &app,
        ClusterConfig::new(Topology::new(8, 1), ProtocolKind::TwoLevel),
    );
    println!("exec {:.3}", out.report.exec_secs());
    for l in cashmere_core::engine::dump_trace() {
        if l.starts_with("FAULT") {
            eprintln!("{l}");
        }
    }
}
