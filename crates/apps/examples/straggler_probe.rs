use cashmere_apps::{run_app, Scale, Sor};
use cashmere_core::{ClusterConfig, ProtocolKind, Topology};

fn main() {
    let app = Sor::new(Scale::Bench);
    let out = run_app(
        &app,
        ClusterConfig::new(Topology::new(8, 1), ProtocolKind::TwoLevel),
    );
    let r = &out.report;
    println!("exec={:.3}", r.exec_secs());
    for (i, ns) in r.per_proc_ns.iter().enumerate() {
        println!("proc {i}: {:.3}s", *ns as f64 / 1e9);
    }
    println!(
        "faults r/w {}/{} transfers {} twins {} flushupd {}",
        r.counters.read_faults,
        r.counters.write_faults,
        r.counters.page_transfers,
        r.counters.twin_creations,
        r.counters.flush_updates
    );
}
