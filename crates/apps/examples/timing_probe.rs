use cashmere_apps::{run_app, suite, Scale};
use cashmere_core::{ClusterConfig, ProtocolKind, Topology};
use std::time::Instant;

fn main() {
    for app in suite(Scale::Bench) {
        let t = Instant::now();
        let out = run_app(
            app.as_ref(),
            ClusterConfig::new(Topology::new(8, 4), ProtocolKind::TwoLevel),
        );
        println!(
            "{:8} wall={:6.2}s sim={:9.4}s transfers={:7} notices={:7}",
            app.name(),
            t.elapsed().as_secs_f64(),
            out.report.exec_secs(),
            out.report.counters.page_transfers,
            out.report.counters.write_notices,
        );
    }
}
