//! BankOltp: OLTP-style transactional transfers over DSM (DESIGN.md §13).
//!
//! Grows the `bank_teller` example's two-lock transfer into a benchmarked
//! app: a shared ledger of `accounts` balances, a trace of Zipf-skewed
//! transfer requests (source = `key`, destination = `key2`, both drawn
//! from the same popularity distribution so hot accounts contend), and
//! per-account locks taken in ascending index order so cross-transfer
//! deadlock is impossible.
//!
//! A transfer is *conditional*: it moves `amount` only when the source
//! balance covers it. That makes individual balances schedule-dependent —
//! but the ledger total is conserved by construction, and that invariant
//! is **audited at every barrier**: the trace is split into rounds, each
//! round ends with a quiescent window (barrier, full-ledger sweep by every
//! processor asserting conservation, barrier) before the next round's
//! writes begin. The app checksum is the final total, so the cross-run
//! baseline comparison in the bench harnesses re-checks conservation under
//! every protocol, topology, and fault schedule.

use cashmere_core::{Cluster, ClusterConfig};
use cashmere_workload::{KeyMap, Trace, WorkloadSpec};

use crate::util::{chunk_range, ArrU64};
use crate::{AppOutcome, Benchmark, Scale};

/// The OLTP bank benchmark instance.
#[derive(Debug, Clone)]
pub struct BankOltp {
    /// Trace generator parameters; `keys` is the account count and every
    /// op is a transfer (`key` → `key2`), so the get/put mix is unused.
    pub spec: WorkloadSpec,
    /// Starting balance of every account.
    pub initial_balance: u64,
    /// Rounds the trace is split into; conservation is audited in a
    /// quiescent barrier window after each round.
    pub rounds: usize,
    /// Transaction compute charged per transfer (ns).
    pub service_ns: u64,
}

impl BankOltp {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                spec: WorkloadSpec {
                    keys: 256,
                    theta: 0.9,
                    ops: 4_000,
                    get_frac: 0.0,
                    put_frac: 1.0,
                    mean_interarrival_ns: 3_000,
                    key_map: KeyMap::Direct,
                    seed: 0x0BA2_0172,
                },
                initial_balance: 1_000,
                rounds: 4,
                service_ns: 2_000,
            },
            Scale::Bench => Self {
                spec: WorkloadSpec {
                    keys: 1_024,
                    theta: 0.9,
                    ops: 16_000,
                    get_frac: 0.0,
                    put_frac: 1.0,
                    mean_interarrival_ns: 2_000,
                    key_map: KeyMap::Direct,
                    seed: 0x0BA2_0172,
                },
                initial_balance: 1_000,
                rounds: 8,
                service_ns: 2_500,
            },
        }
    }

    /// The generated transfer trace (deterministic in the spec).
    pub fn trace(&self) -> Trace {
        Trace::generate(&self.spec)
    }

    /// The conserved ledger total — the app checksum under any schedule.
    pub fn expected_total(&self) -> u64 {
        self.spec.keys as u64 * self.initial_balance
    }
}

/// Transfer amount carried by an op's payload digest (nonzero so every
/// applied transfer moves money).
fn amount_of(val: u64) -> u64 {
    1 + val % 64
}

impl Benchmark for BankOltp {
    fn name(&self) -> &'static str {
        "Bank"
    }

    fn size_description(&self) -> String {
        format!(
            "{} accounts, {} transfers, {} rounds, theta {}",
            self.spec.keys, self.spec.ops, self.rounds, self.spec.theta
        )
    }

    fn timing_reps(&self) -> usize {
        3 // lock interleavings make the timing nondeterministic
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        cfg.heap_pages = self.spec.keys.div_ceil(cashmere_core::PAGE_WORDS) + 2;
        cfg.locks = self.spec.keys; // one per account
        cfg.barriers = 2 * self.rounds + 1;
        cfg.flags = 0;
        cfg.bus_bytes_per_access = 4;
        cfg.poll_fraction = 0.05;
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        let accounts = self.spec.keys;
        let rounds = self.rounds;
        let service_ns = self.service_ns;
        let initial = self.initial_balance;
        let total = self.expected_total();
        let trace = self.trace();
        let ledger = ArrU64::alloc(cluster, accounts);
        for a in 0..accounts {
            ledger.seed(cluster, a, initial);
        }

        let report = cluster.run(|p| {
            let np = p.nprocs();
            let id = p.id();
            p.barrier(0);
            let t0 = p.now();
            for r in 0..rounds {
                let (lo, hi) = chunk_range(trace.ops.len(), rounds, r);
                for (i, op) in trace.ops[lo..hi].iter().enumerate() {
                    if (lo + i) % np != id {
                        continue;
                    }
                    // Open-loop arrival charging (see kv_service).
                    let target = t0 + op.at;
                    let now = p.now();
                    if target > now {
                        p.compute(target - now);
                    }
                    p.compute(service_ns);

                    let (src, dst) = (op.key as usize, op.key2 as usize);
                    // Ascending lock order rules out deadlock.
                    let (first, second) = (src.min(dst), src.max(dst));
                    p.lock(first);
                    p.lock(second);
                    let amount = amount_of(op.val);
                    let bal = ledger.get(p, src);
                    if bal >= amount {
                        ledger.set(p, src, bal - amount);
                        let d = ledger.get(p, dst);
                        ledger.set(p, dst, d + amount);
                    }
                    p.unlock(second);
                    p.unlock(first);
                    // Per-transaction sojourn vs the open-loop arrival
                    // stamp (no-op when obs is off).
                    p.record_sojourn(p.now() - target);
                }
                // Quiescent audit window: no writes happen between these
                // two barriers, so an unlocked full-ledger sweep is exact.
                p.barrier(2 * r + 1);
                let mut sum = 0u64;
                let mut buf = [0u64; 256];
                let mut a = 0;
                while a < accounts {
                    let n = (accounts - a).min(buf.len());
                    ledger.get_run(p, a, &mut buf[..n]);
                    for &b in &buf[..n] {
                        sum += b;
                    }
                    a += n;
                }
                assert_eq!(
                    sum, total,
                    "ledger total diverged at round {r} barrier (proc {id})"
                );
                p.barrier(2 * r + 2);
            }
        });

        let mut final_total = 0u64;
        for a in 0..accounts {
            final_total += ledger.read_back(cluster, a);
        }
        AppOutcome {
            report,
            checksum: final_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn ledger_is_conserved_under_every_protocol() {
        let app = BankOltp::new(Scale::Test);
        for protocol in ProtocolKind::PAPER_FOUR {
            let out = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(out.checksum, app.expected_total(), "{}", protocol.label());
        }
    }

    #[test]
    fn sequential_run_conserves_and_moves_money() {
        let app = BankOltp::new(Scale::Test);
        let out = run_app(
            &app,
            ClusterConfig::new(Topology::new(1, 1), ProtocolKind::OneLevelDiff),
        );
        assert_eq!(out.checksum, app.expected_total());
    }

    #[test]
    fn transfers_actually_move_balances() {
        // Sanity on the host side: replay the trace sequentially and check
        // some account ends away from its initial balance.
        let app = BankOltp::new(Scale::Test);
        let trace = app.trace();
        let mut ledger = vec![app.initial_balance; app.spec.keys];
        for op in &trace.ops {
            let (s, d) = (op.key as usize, op.key2 as usize);
            let amount = amount_of(op.val);
            if ledger[s] >= amount {
                ledger[s] -= amount;
                ledger[d] += amount;
            }
        }
        assert!(ledger.iter().any(|&b| b != app.initial_balance));
        assert_eq!(ledger.iter().sum::<u64>(), app.expected_total());
    }
}
