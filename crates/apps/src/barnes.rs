//! Barnes: hierarchical Barnes-Hut N-body simulation from SPLASH (§3.2).
//!
//! "The major shared data structures are two arrays, one representing the
//! bodies and the other representing the cells, a collection of bodies in
//! close physical proximity. The Barnes-Hut tree construction is performed
//! sequentially, while all other phases are parallelized and dynamically
//! load balanced. Synchronization consists of barriers between phases."
//! Paper size: 128 K bodies (26 MB); sequential 469.4 s; low computation-
//! to-communication ratio — the app with the paper's largest two-level win
//! (46%), driven by coalesced fetches of the tree and body arrays.
//!
//! The octree lives in shared memory as two parallel arrays (per-cell
//! floating data and per-cell child links); processor 0 builds it between
//! barriers, then all processors walk it to compute forces, grabbing bodies
//! in batches from a lock-protected shared work counter (the dynamic load
//! balancing).

use cashmere_core::{Cluster, ClusterConfig, Proc};

use crate::util::{chunk_range, ArrF64, ArrU64, XorShift};
use crate::{AppOutcome, Benchmark, Scale};

/// The Barnes benchmark instance.
#[derive(Debug, Clone)]
pub struct Barnes {
    /// Body count.
    pub bodies: usize,
    /// Timesteps.
    pub steps: usize,
    /// Opening criterion (θ): larger accepts cells earlier.
    pub theta: f64,
    /// Extra compute charged per body-cell interaction (ns).
    pub interact_ns: u64,
}

/// Words of floating data per cell: center-of-mass x/y/z, mass, cell center
/// x/y/z, half-size.
const CELL_F: usize = 8;
/// Child-link words per cell.
const CELL_C: usize = 8;
/// Child-link encoding: 0 = empty, 1+i = cell i, `BODY_TAG`+b = body b.
const BODY_TAG: u64 = 1 << 32;

impl Barnes {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                bodies: 32,
                steps: 2,
                theta: 0.6,
                interact_ns: 150,
            },
            Scale::Bench => Self {
                bodies: 512,
                steps: 2,
                theta: 0.6,
                interact_ns: 20_000,
            },
        }
    }

    fn max_cells(&self) -> usize {
        8 * self.bodies + 64
    }
}

/// Shared-memory layout for a Barnes run.
#[derive(Clone, Copy)]
struct Layout {
    pos: ArrF64,
    vel: ArrF64,
    acc: ArrF64,
    mass: ArrF64,
    cell_f: ArrF64,
    cell_c: ArrU64,
    /// [0] = cell count, [1] = dynamic work cursor.
    ctl: ArrU64,
}

const LOCK_WORK: usize = 0;
const WORK_BATCH: usize = 4;

impl Layout {
    fn body_pos(&self, p: &mut Proc, b: usize) -> [f64; 3] {
        [
            self.pos.get(p, 3 * b),
            self.pos.get(p, 3 * b + 1),
            self.pos.get(p, 3 * b + 2),
        ]
    }

    /// Allocates a fresh cell centered at `center` with `half` half-size.
    fn new_cell(&self, p: &mut Proc, center: [f64; 3], half: f64) -> usize {
        let idx = self.ctl.get(p, 0) as usize;
        assert!(
            idx < self.cell_f.len() / CELL_F,
            "Barnes cell pool exhausted"
        );
        self.ctl.set(p, 0, idx as u64 + 1);
        for d in 0..3 {
            self.cell_f.set(p, idx * CELL_F + 4 + d, center[d]);
        }
        self.cell_f.set(p, idx * CELL_F + 7, half);
        for k in 0..CELL_C {
            self.cell_c.set(p, idx * CELL_C + k, 0);
        }
        for k in 0..4 {
            self.cell_f.set(p, idx * CELL_F + k, 0.0);
        }
        idx
    }

    fn octant(center: [f64; 3], q: [f64; 3]) -> usize {
        (usize::from(q[0] >= center[0]) << 2)
            | (usize::from(q[1] >= center[1]) << 1)
            | usize::from(q[2] >= center[2])
    }

    fn child_center(&self, p: &mut Proc, cell: usize, oct: usize) -> ([f64; 3], f64) {
        let half = self.cell_f.get(p, cell * CELL_F + 7) / 2.0;
        let mut c = [0.0; 3];
        for d in 0..3 {
            let base = self.cell_f.get(p, cell * CELL_F + 4 + d);
            let sign = if oct >> (2 - d) & 1 == 1 { 1.0 } else { -1.0 };
            c[d] = base + sign * half;
        }
        (c, half)
    }

    /// Inserts body `b` into the tree rooted at `root` (processor 0 only).
    fn insert(&self, p: &mut Proc, root: usize, b: usize) {
        let q = self.body_pos(p, b);
        let mut cell = root;
        loop {
            let center = [
                self.cell_f.get(p, cell * CELL_F + 4),
                self.cell_f.get(p, cell * CELL_F + 5),
                self.cell_f.get(p, cell * CELL_F + 6),
            ];
            let oct = Self::octant(center, q);
            let link = self.cell_c.get(p, cell * CELL_C + oct);
            if link == 0 {
                self.cell_c.set(p, cell * CELL_C + oct, BODY_TAG + b as u64);
                return;
            }
            if link >= BODY_TAG {
                // Occupied by a body: split into a subcell and reinsert both.
                let other = (link - BODY_TAG) as usize;
                let (cc, ch) = self.child_center(p, cell, oct);
                let sub = self.new_cell(p, cc, ch);
                self.cell_c.set(p, cell * CELL_C + oct, 1 + sub as u64);
                // Re-insert the displaced body into the subcell, then loop
                // to place `b`.
                let oq = self.body_pos(p, other);
                let o_oct = Self::octant(cc, oq);
                self.cell_c
                    .set(p, sub * CELL_C + o_oct, BODY_TAG + other as u64);
                cell = sub;
            } else {
                cell = (link - 1) as usize;
            }
        }
    }

    /// Computes centers of mass bottom-up (recursive; processor 0 only).
    fn summarize(&self, p: &mut Proc, cell: usize) -> (f64, [f64; 3]) {
        let mut m = 0.0;
        let mut com = [0.0; 3];
        for k in 0..CELL_C {
            let link = self.cell_c.get(p, cell * CELL_C + k);
            if link == 0 {
                continue;
            }
            let (cm, cc) = if link >= BODY_TAG {
                let b = (link - BODY_TAG) as usize;
                (self.mass.get(p, b), self.body_pos(p, b))
            } else {
                self.summarize(p, (link - 1) as usize)
            };
            m += cm;
            for d in 0..3 {
                com[d] += cm * cc[d];
            }
        }
        if m > 0.0 {
            for d in 0..3 {
                com[d] /= m;
            }
        }
        self.cell_f.set(p, cell * CELL_F + 3, m);
        for d in 0..3 {
            self.cell_f.set(p, cell * CELL_F + d, com[d]);
        }
        (m, com)
    }

    /// Accumulates the force on body `b` by walking the tree (any
    /// processor; reads only).
    fn force_on(
        &self,
        p: &mut Proc,
        root: usize,
        b: usize,
        theta: f64,
        interact_ns: u64,
    ) -> [f64; 3] {
        let q = self.body_pos(p, b);
        let mut f = [0.0; 3];
        let mut stack = vec![1 + root as u64];
        while let Some(link) = stack.pop() {
            if link == 0 {
                continue;
            }
            let (m, c) = if link >= BODY_TAG {
                let other = (link - BODY_TAG) as usize;
                if other == b {
                    continue;
                }
                (self.mass.get(p, other), self.body_pos(p, other))
            } else {
                let cell = (link - 1) as usize;
                let m = self.cell_f.get(p, cell * CELL_F + 3);
                let c = [
                    self.cell_f.get(p, cell * CELL_F),
                    self.cell_f.get(p, cell * CELL_F + 1),
                    self.cell_f.get(p, cell * CELL_F + 2),
                ];
                let size = self.cell_f.get(p, cell * CELL_F + 7) * 2.0;
                let dx = [c[0] - q[0], c[1] - q[1], c[2] - q[2]];
                let dist = (dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2]).sqrt();
                if size / (dist + 1e-12) >= theta {
                    // Too close: open the cell.
                    for k in 0..CELL_C {
                        stack.push(self.cell_c.get(p, cell * CELL_C + k));
                    }
                    continue;
                }
                (m, c)
            };
            let dx = [c[0] - q[0], c[1] - q[1], c[2] - q[2]];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + 1e-4;
            let inv_r3 = 1.0 / (r2 * r2.sqrt());
            for d in 0..3 {
                f[d] += m * dx[d] * inv_r3;
            }
            p.compute(interact_ns);
        }
        f
    }
}

impl Benchmark for Barnes {
    fn name(&self) -> &'static str {
        "Barnes"
    }

    fn timing_reps(&self) -> usize {
        3
    }

    fn size_description(&self) -> String {
        format!(
            "{} bodies, {} steps, θ={}",
            self.bodies, self.steps, self.theta
        )
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        let n = self.bodies;
        let words = 3 * n * 3 + n + self.max_cells() * (CELL_F + CELL_C) + 16;
        cfg.heap_pages = words.div_ceil(cashmere_core::PAGE_WORDS) + 8;
        cfg.locks = 1;
        cfg.barriers = 4;
        cfg.flags = 0;
        cfg.bus_bytes_per_access = 3;
        cfg.poll_fraction = 0.15;
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        let n = self.bodies;
        let lay = Layout {
            pos: ArrF64::alloc(cluster, 3 * n),
            vel: ArrF64::alloc(cluster, 3 * n),
            acc: ArrF64::alloc(cluster, 3 * n),
            mass: ArrF64::alloc(cluster, n),
            cell_f: ArrF64::alloc(cluster, self.max_cells() * CELL_F),
            cell_c: ArrU64::alloc(cluster, self.max_cells() * CELL_C),
            ctl: ArrU64::alloc(cluster, 16),
        };
        let mut rng = XorShift::new(0xBA13E5);
        for b in 0..n {
            for d in 0..3 {
                lay.pos.seed(cluster, 3 * b + d, rng.unit_f64() * 2.0 - 1.0);
                lay.vel.seed(cluster, 3 * b + d, 0.0);
            }
            lay.mass.seed(cluster, b, 0.5 + rng.unit_f64());
        }

        let steps = self.steps;
        let theta = self.theta;
        let interact_ns = self.interact_ns;
        let report = cluster.run(|p| {
            let np = p.nprocs();
            let me = p.id();
            for _step in 0..steps {
                // Phase 1 (sequential, processor 0): build the tree.
                if me == 0 {
                    lay.ctl.set(p, 0, 0); // reset cell pool
                    lay.ctl.set(p, 1, 0); // reset work cursor
                    let root = lay.new_cell(p, [0.0; 3], 2.0);
                    for b in 0..n {
                        lay.insert(p, root, b);
                    }
                    lay.summarize(p, root);
                }
                p.barrier(0);

                // Phase 2: forces, dynamically load balanced via the shared
                // work cursor.
                loop {
                    p.lock(LOCK_WORK);
                    let start = lay.ctl.get(p, 1) as usize;
                    let end = (start + WORK_BATCH).min(n);
                    lay.ctl.set(p, 1, end as u64);
                    p.unlock(LOCK_WORK);
                    if start >= n {
                        break;
                    }
                    for b in start..end {
                        let f = lay.force_on(p, 0, b, theta, interact_ns);
                        for d in 0..3 {
                            lay.acc.set(p, 3 * b + d, f[d]);
                        }
                    }
                }
                p.barrier(1);

                // Phase 3: integrate (static chunks).
                let (lo, hi) = chunk_range(n, np, me);
                let dt = 1e-2;
                for b in lo..hi {
                    for d in 0..3 {
                        let v = lay.vel.get(p, 3 * b + d) + dt * lay.acc.get(p, 3 * b + d);
                        lay.vel.set(p, 3 * b + d, v);
                        let x = lay.pos.get(p, 3 * b + d) + dt * v;
                        lay.pos.set(p, 3 * b + d, x);
                    }
                }
                p.barrier(2);
            }
        });

        // Per-body force computation is order-deterministic, so positions
        // are bitwise reproducible across protocols and topologies.
        AppOutcome {
            report,
            checksum: lay.pos.checksum(cluster),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn barnes_matches_sequential_under_every_protocol() {
        let app = Barnes::new(Scale::Test);
        let seq = run_app(
            &app,
            ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel),
        );
        for protocol in ProtocolKind::PAPER_FOUR {
            let par = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(par.checksum, seq.checksum, "{}", protocol.label());
        }
    }

    #[test]
    fn barnes_bodies_actually_move() {
        let app = Barnes::new(Scale::Test);
        let mut cfg = ClusterConfig::new(Topology::new(2, 1), ProtocolKind::TwoLevel);
        app.configure(&mut cfg);
        let mut cluster = Cluster::new(cfg);
        // Re-derive the initial positions to compare against.
        let mut rng = XorShift::new(0xBA13E5);
        let mut init = Vec::new();
        for _b in 0..app.bodies {
            for _d in 0..3 {
                init.push(rng.unit_f64() * 2.0 - 1.0);
            }
            let _ = rng.unit_f64(); // mass draw
        }
        let out = app.execute(&mut cluster);
        assert_ne!(out.checksum, 0);
        // Gravity is attractive: positions must have changed.
        // (execute's allocations start at the heap base: pos is first.)
        let mut moved = 0;
        for (i, v) in init.iter().enumerate() {
            if (cluster.read_f64(i) - v).abs() > 1e-12 {
                moved += 1;
            }
        }
        assert!(moved > app.bodies, "most coordinates moved, got {moved}");
    }

    #[test]
    fn octant_partitioning_is_consistent() {
        let c = [0.0, 0.0, 0.0];
        assert_eq!(Layout::octant(c, [1.0, 1.0, 1.0]), 0b111);
        assert_eq!(Layout::octant(c, [-1.0, -1.0, -1.0]), 0b000);
        assert_eq!(Layout::octant(c, [1.0, -1.0, 1.0]), 0b101);
    }
}
