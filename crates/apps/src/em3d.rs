//! Em3d: electromagnetic wave propagation through 3D objects (§3.2).
//!
//! "The major data structure is an array that contains the set of magnetic
//! and electric nodes. These are equally distributed among the processors
//! in the system. … the standard input assumes that nodes that belong to a
//! processor have dependencies only on nodes that belong to that processor
//! or neighboring processors. Barriers are used for synchronization."
//! Paper size: 60106 nodes (49 MB); sequential 161.4 s; low computation-to-
//! communication ratio — the app where the two-level protocols' intra-node
//! locality pays off (22% at 32 processors) and where the home-node
//! optimization recovers most of the one-level gap.

use cashmere_core::{Cluster, ClusterConfig};

use crate::util::{chunk_range, ArrF64, XorShift};
use crate::{AppOutcome, Benchmark, Scale};

/// The Em3d benchmark instance.
#[derive(Debug, Clone)]
pub struct Em3d {
    /// Electric nodes (the magnetic set has the same size).
    pub nodes: usize,
    /// Dependencies per node.
    pub degree: usize,
    /// Fraction (in percent) of dependencies that cross into a neighboring
    /// processor's partition.
    pub remote_pct: usize,
    /// Iterations.
    pub iters: usize,
    /// Extra compute charged per dependency evaluation (ns).
    pub dep_ns: u64,
}

impl Em3d {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                nodes: 128,
                degree: 3,
                remote_pct: 20,
                iters: 3,
                dep_ns: 40,
            },
            Scale::Bench => Self {
                nodes: 8192,
                degree: 3,
                remote_pct: 20,
                iters: 4,
                dep_ns: 2_500,
            },
        }
    }

    /// Builds the dependency table: for consumer `i` (in a partition of
    /// `parts`), `degree` producer indices in the other field, mostly local,
    /// `remote_pct`% in a neighboring partition.
    fn deps(&self, parts: usize, salt: u64) -> Vec<u32> {
        let n = self.nodes;
        let mut rng = XorShift::new(0xE3D + salt);
        let mut out = Vec::with_capacity(n * self.degree);
        for i in 0..n {
            // Which partition does node i belong to?
            let part = (0..parts)
                .find(|&k| {
                    let (s, e) = chunk_range(n, parts, k);
                    i >= s && i < e
                })
                .unwrap();
            for _ in 0..self.degree {
                let target_part = if rng.below(100) < self.remote_pct && parts > 1 {
                    // A neighboring partition.
                    if rng.below(2) == 0 {
                        (part + 1) % parts
                    } else {
                        (part + parts - 1) % parts
                    }
                } else {
                    part
                };
                let (s, e) = chunk_range(n, parts, target_part);
                out.push((s + rng.below((e - s).max(1))) as u32);
            }
        }
        out
    }
}

impl Benchmark for Em3d {
    fn name(&self) -> &'static str {
        "Em3d"
    }

    fn size_description(&self) -> String {
        format!(
            "{} E + {} H nodes, degree {}, {}% remote",
            self.nodes, self.nodes, self.degree, self.remote_pct
        )
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        let words = 2 * self.nodes * (1 + self.degree + self.degree);
        cfg.heap_pages = words.div_ceil(cashmere_core::PAGE_WORDS) + 6;
        cfg.locks = 1;
        cfg.barriers = 2;
        cfg.flags = 0;
        cfg.bus_bytes_per_access = 4;
        cfg.poll_fraction = 0.12;
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        let n = self.nodes;
        let deg = self.degree;
        let e_vals = ArrF64::alloc(cluster, n);
        let h_vals = ArrF64::alloc(cluster, n);
        let e_weights = ArrF64::alloc(cluster, n * deg);
        let h_weights = ArrF64::alloc(cluster, n * deg);

        // The dependency graph is partitioned by the *processor count* of
        // this run, as in the Split-C original where the graph is built to
        // match the machine.
        let parts = cluster.config().topology.total_procs();
        let e_deps_tbl = self.deps(parts, 1); // E consumers read H producers
        let h_deps_tbl = self.deps(parts, 2); // H consumers read E producers

        let mut rng = XorShift::new(0x3D3D);
        for i in 0..n {
            e_vals.seed(cluster, i, rng.unit_f64());
            h_vals.seed(cluster, i, rng.unit_f64());
        }
        for i in 0..n * deg {
            e_weights.seed(cluster, i, rng.unit_f64() * 0.1);
            h_weights.seed(cluster, i, rng.unit_f64() * 0.1);
        }

        let iters = self.iters;
        let dep_ns = self.dep_ns;
        let e_deps = &e_deps_tbl;
        let h_deps = &h_deps_tbl;
        let report = cluster.run(|p| {
            let (lo, hi) = chunk_range(n, p.nprocs(), p.id());
            for _ in 0..iters {
                // Update my E nodes from H producers.
                for i in lo..hi {
                    let mut v = e_vals.get(p, i);
                    for d in 0..deg {
                        let src = e_deps[i * deg + d] as usize;
                        v -= e_weights.get(p, i * deg + d) * h_vals.get(p, src);
                    }
                    e_vals.set(p, i, v);
                    p.compute(dep_ns * deg as u64);
                }
                p.barrier(0);
                // Update my H nodes from E producers.
                for i in lo..hi {
                    let mut v = h_vals.get(p, i);
                    for d in 0..deg {
                        let src = h_deps[i * deg + d] as usize;
                        v -= h_weights.get(p, i * deg + d) * e_vals.get(p, src);
                    }
                    h_vals.set(p, i, v);
                    p.compute(dep_ns * deg as u64);
                }
                p.barrier(1);
            }
        });

        let checksum = e_vals
            .checksum(cluster)
            .wrapping_mul(31)
            .wrapping_add(h_vals.checksum(cluster));
        AppOutcome { report, checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn em3d_matches_across_protocols_at_fixed_processor_count() {
        // The graph depends on the processor count (as in Split-C), so
        // compare protocols at the same topology width against each other.
        let app = Em3d::new(Scale::Test);
        let base = run_app(
            &app,
            ClusterConfig::new(Topology::new(4, 1), ProtocolKind::TwoLevel),
        );
        for protocol in [
            ProtocolKind::TwoLevelShootdown,
            ProtocolKind::OneLevelDiff,
            ProtocolKind::OneLevelWrite,
            ProtocolKind::OneLevelDiffHome,
        ] {
            let par = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(par.checksum, base.checksum, "{}", protocol.label());
        }
    }

    #[test]
    fn dependency_table_respects_partition_neighborhoods() {
        let app = Em3d {
            nodes: 64,
            degree: 4,
            remote_pct: 30,
            iters: 1,
            dep_ns: 0,
        };
        let parts = 4;
        let deps = app.deps(parts, 1);
        assert_eq!(deps.len(), 64 * 4);
        let mut any_remote = false;
        for i in 0..64usize {
            let my_part = i * parts / 64; // chunks are equal here
            for d in 0..4 {
                let src = deps[i * 4 + d] as usize;
                assert!(src < 64);
                let src_part = src * parts / 64;
                let dist = (my_part as i64 - src_part as i64).rem_euclid(parts as i64);
                assert!(
                    dist == 0 || dist == 1 || dist == parts as i64 - 1,
                    "dependency crosses beyond a neighbor: {my_part} -> {src_part}"
                );
                if dist != 0 {
                    any_remote = true;
                }
            }
        }
        assert!(any_remote, "some dependencies must be remote");
    }
}
