//! Gauss: Gaussian elimination with back-substitution (§3.2).
//!
//! "For load balance, the rows are distributed among processors cyclically,
//! with each row computed on by a single processor. A synchronization flag
//! for each row indicates when it is available to other rows for use as a
//! pivot." Paper size: 2046×2046 (33 MB); sequential 953.7 s.
//!
//! The access pattern is single-producer/multiple-consumer: every processor
//! reads each pivot row. The two-level protocols coalesce those fetches
//! within a node — the paper's four-fold data reduction and 45% improvement
//! for Gauss. Like SOR, the data set exceeds the caches, so bus traffic is
//! high and clustering is negative.

use cashmere_core::{Cluster, ClusterConfig};

use crate::util::{ArrF64, XorShift};
use crate::{AppOutcome, Benchmark, Scale};

/// The Gauss benchmark instance.
#[derive(Debug, Clone)]
pub struct Gauss {
    /// System dimension.
    pub n: usize,
    /// Extra compute charged per eliminated element (ns).
    pub flop_ns: u64,
}

impl Gauss {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self { n: 24, flop_ns: 60 },
            Scale::Bench => Self {
                n: 192,
                flop_ns: 10_000,
            },
        }
    }
}

impl Benchmark for Gauss {
    fn name(&self) -> &'static str {
        "Gauss"
    }

    fn size_description(&self) -> String {
        format!("{0}x{0} system", self.n)
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        let words = self.n * (self.n + 1) + self.n; // A|b augmented + x
        cfg.heap_pages = words.div_ceil(cashmere_core::PAGE_WORDS) + 4;
        cfg.locks = 1;
        cfg.barriers = 2;
        cfg.flags = self.n; // one readiness flag per pivot row
        cfg.bus_bytes_per_access = 16;
        cfg.poll_fraction = 0.05;
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        let n = self.n;
        let w = n + 1; // augmented row width (A | b)
        let a = ArrF64::alloc(cluster, n * w);
        let x = ArrF64::alloc(cluster, n);
        let mut rng = XorShift::new(0x6A55);
        for i in 0..n {
            for j in 0..n {
                let v = rng.unit_f64() + if i == j { n as f64 } else { 0.0 };
                a.seed(cluster, i * w + j, v);
            }
            a.seed(cluster, i * w + n, rng.unit_f64() * n as f64);
        }

        let flop = self.flop_ns;
        // Row segments are contiguous, so the inner loops below go through
        // the run accessors: identical access counts, pages, and
        // per-element arithmetic as the word-at-a-time loops, grouped into
        // whole-row reads and writes.
        let report = cluster.run(|p| {
            let np = p.nprocs();
            let me = p.id();
            let mut row = vec![0.0f64; w];
            let mut piv = vec![0.0f64; w];
            // Forward elimination, rows distributed cyclically.
            for k in 0..n {
                let len = w - k;
                if k % np == me {
                    // Normalize the pivot row and publish it.
                    let pivot = a.get(p, k * w + k);
                    a.get_run(p, k * w + k, &mut row[..len]);
                    for v in &mut row[..len] {
                        *v /= pivot;
                    }
                    a.set_run(p, k * w + k, &row[..len]);
                    p.compute(flop * (w - k) as u64);
                    p.flag_set(k);
                } else {
                    p.flag_wait(k);
                }
                // Eliminate my rows below the pivot.
                let mut i = me;
                while i < n {
                    if i > k {
                        let m = a.get(p, i * w + k);
                        if m != 0.0 {
                            a.get_run(p, i * w + k, &mut row[..len]);
                            a.get_run(p, k * w + k, &mut piv[..len]);
                            for j in 0..len {
                                row[j] -= m * piv[j];
                            }
                            a.set_run(p, i * w + k, &row[..len]);
                            p.compute(flop * (w - k) as u64);
                        }
                    }
                    i += np;
                }
            }
            p.barrier(0);
            // Back-substitution (serial, on processor 0, as in the paper's
            // inherently serial tail).
            if me == 0 {
                for k in (0..n).rev() {
                    let mut v = a.get(p, k * w + n);
                    let tail = n - k - 1;
                    a.get_run(p, k * w + k + 1, &mut row[..tail]);
                    x.get_run(p, k + 1, &mut piv[..tail]);
                    for j in 0..tail {
                        v -= row[j] * piv[j];
                    }
                    // The pivot row was normalized, so A[k][k] == 1.
                    x.set(p, k, v);
                    p.compute(flop * (n - k) as u64);
                }
            }
            p.barrier(1);
        });
        AppOutcome {
            report,
            checksum: x.checksum(cluster),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn gauss_matches_sequential_under_every_protocol() {
        let app = Gauss::new(Scale::Test);
        let seq = run_app(
            &app,
            ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel),
        );
        for protocol in ProtocolKind::PAPER_FOUR {
            let par = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(par.checksum, seq.checksum, "{}", protocol.label());
        }
    }

    #[test]
    fn gauss_solves_the_system() {
        // Verify A·x ≈ b on a small instance by recomputing the seeded
        // system and substituting the solution.
        let app = Gauss { n: 12, flop_ns: 0 };
        let n = app.n;
        let w = n + 1;
        let mut rng = XorShift::new(0x6A55);
        let mut orig_a = vec![0.0f64; n * n];
        let mut orig_b = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                orig_a[i * n + j] = rng.unit_f64() + if i == j { n as f64 } else { 0.0 };
            }
            orig_b[i] = rng.unit_f64() * n as f64;
        }
        let mut cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
        app.configure(&mut cfg);
        let mut cluster = Cluster::new(cfg);
        let out = app.execute(&mut cluster);
        assert_ne!(out.checksum, 0);
        // Recover x from the cluster: it is the second allocation; re-run
        // execute's layout by allocating identically is fragile, so instead
        // check the residual via the checksummed x values read back through
        // a fresh sequential solve.
        let seq_cfg = ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel);
        let seq = run_app(&app, seq_cfg);
        assert_eq!(
            out.checksum, seq.checksum,
            "parallel solution equals sequential"
        );
        // And the sequential solution satisfies the system: solve by hand.
        let mut aug = vec![0.0f64; n * w];
        for i in 0..n {
            for j in 0..n {
                aug[i * w + j] = orig_a[i * n + j];
            }
            aug[i * w + n] = orig_b[i];
        }
        for k in 0..n {
            let pivot = aug[k * w + k];
            for j in k..w {
                aug[k * w + j] /= pivot;
            }
            for i in (k + 1)..n {
                let m = aug[i * w + k];
                if m != 0.0 {
                    for j in k..w {
                        aug[i * w + j] -= m * aug[k * w + j];
                    }
                }
            }
        }
        let mut x = vec![0.0f64; n];
        for k in (0..n).rev() {
            let mut v = aug[k * w + n];
            for j in (k + 1)..n {
                v -= aug[k * w + j] * x[j];
            }
            x[k] = v;
        }
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += orig_a[i * n + j] * x[j];
            }
            assert!(
                (acc - orig_b[i]).abs() < 1e-8,
                "residual row {i}: {acc} vs {}",
                orig_b[i]
            );
        }
    }
}
