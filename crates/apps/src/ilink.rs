//! Ilink: genetic linkage analysis — synthetic stand-in (§3.2, DESIGN.md).
//!
//! The real Ilink is the FASTLINK 2.3P genetic-linkage program running on a
//! proprietary pedigree input (CLP, 15 MB; sequential 899 s). The input
//! data is unavailable, so this is a synthetic workload with Ilink's
//! documented *sharing shape*:
//!
//! * "The main shared data is a pool of sparse arrays of genotype
//!   probabilities" — a bank of sparse probability arrays (index/value
//!   pairs) in shared memory;
//! * "For load balance, non-zero elements are assigned to processors in a
//!   round-robin fashion" — element `e` is processed by processor
//!   `e % nprocs`;
//! * "The computation is master-slave, with one-to-all and all-to-one data
//!   communication. Barriers are used for synchronization." — each
//!   iteration the master broadcasts updated parameters, slaves compute
//!   partial sums into per-processor slots, the master combines them;
//! * "Scalability is limited by an inherent serial component and inherent
//!   load imbalance" — the master performs serial work each iteration, and
//!   element costs vary pseudo-randomly.
//!
//! The one-to-all / all-to-one pattern is what gives Ilink its 40%
//! two-level win in the paper (fetch coalescing within a node).

use cashmere_core::{Cluster, ClusterConfig};

use crate::util::{ArrF64, ArrU64, XorShift};
use crate::{AppOutcome, Benchmark, Scale};

/// The Ilink benchmark instance.
#[derive(Debug, Clone)]
pub struct Ilink {
    /// Non-zero elements in the sparse probability pool.
    pub nonzeros: usize,
    /// Parameter-vector length broadcast by the master each iteration.
    pub params: usize,
    /// Outer iterations (likelihood evaluations).
    pub iters: usize,
    /// Base compute per element (ns); actual cost varies ±100% for load
    /// imbalance.
    pub elem_ns: u64,
    /// Serial master work per iteration (ns).
    pub serial_ns: u64,
}

impl Ilink {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                nonzeros: 256,
                params: 64,
                iters: 2,
                elem_ns: 300,
                serial_ns: 200_000,
            },
            Scale::Bench => Self {
                nonzeros: 8192,
                params: 512,
                iters: 5,
                elem_ns: 50_000,
                serial_ns: 12_000_000,
            },
        }
    }
}

impl Benchmark for Ilink {
    fn name(&self) -> &'static str {
        "Ilink"
    }

    fn size_description(&self) -> String {
        format!(
            "{} sparse nonzeros, {} parameters, {} iterations",
            self.nonzeros, self.params, self.iters
        )
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        let words = self.nonzeros * 2 + self.params + 64 * cashmere_core::PAGE_WORDS + 64;
        cfg.heap_pages = words.div_ceil(cashmere_core::PAGE_WORDS) + 6;
        cfg.locks = 1;
        cfg.barriers = 2;
        cfg.flags = 0;
        cfg.bus_bytes_per_access = 3;
        cfg.poll_fraction = 0.10;
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        let nnz = self.nonzeros;
        // Sparse pool: per element an index into the parameter vector and a
        // probability value.
        let idx = ArrU64::alloc(cluster, nnz);
        let val = ArrF64::alloc(cluster, nnz);
        // Master-broadcast parameter vector.
        let params = ArrF64::alloc(cluster, self.params);
        // Per-processor partial-sum slots, page-spaced to avoid false
        // sharing between slaves (all-to-one combining still fetches every
        // slot to the master).
        let max_procs = 64;
        let partial = ArrF64::alloc(cluster, max_procs * cashmere_core::PAGE_WORDS);
        // The final likelihood.
        let result = ArrF64::alloc(cluster, 1);

        let mut rng = XorShift::new(0x111CC);
        for e in 0..nnz {
            idx.seed(cluster, e, rng.below(self.params) as u64);
            val.seed(cluster, e, rng.unit_f64());
        }
        for k in 0..self.params {
            params.seed(cluster, k, 1.0 + k as f64 * 1e-3);
        }

        let iters = self.iters;
        let elem_ns = self.elem_ns;
        let serial_ns = self.serial_ns;
        let report = cluster.run(|p| {
            let np = p.nprocs();
            let me = p.id();
            let mut imb = XorShift::new(0x1417 + me as u64);
            for it in 0..iters {
                // Master: serial pedigree traversal + parameter update
                // (one-to-all: every slave will read these).
                if me == 0 {
                    p.compute(serial_ns);
                    for k in 0..self.params {
                        let v = params.get(p, k);
                        params.set(p, k, v * 0.999 + 1e-4 * (it + 1) as f64);
                    }
                }
                p.barrier(0);

                // Slaves: round-robin element assignment, imbalanced costs.
                let mut sum = 0.0;
                let mut e = me;
                while e < nnz {
                    let k = idx.get(p, e) as usize;
                    let v = val.get(p, e);
                    sum += v * params.get(p, k);
                    p.compute(elem_ns + imb.below(elem_ns as usize + 1) as u64);
                    e += np;
                }
                partial.set(p, me * cashmere_core::PAGE_WORDS, sum);
                p.barrier(1);

                // Master combines (all-to-one) and applies serial work.
                if me == 0 {
                    let mut total = 0.0;
                    for q in 0..np {
                        total += partial.get(p, q * cashmere_core::PAGE_WORDS);
                    }
                    let r = result.get(p, 0);
                    result.set(p, 0, r + total);
                    p.compute(serial_ns / 2);
                }
            }
            p.barrier(0);
        });

        // The combining order over processor slots is fixed (0..np), so the
        // likelihood is deterministic for a given processor count; across
        // processor counts the partial-sum grouping changes, so the digest
        // is tolerance-quantized.
        let r = result.read_back(cluster, 0);
        AppOutcome {
            report,
            checksum: (r * 1e9).round() as i64 as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn ilink_matches_across_protocols_at_fixed_width() {
        let app = Ilink::new(Scale::Test);
        let base = run_app(
            &app,
            ClusterConfig::new(Topology::new(4, 1), ProtocolKind::TwoLevel),
        );
        for protocol in ProtocolKind::PAPER_FOUR {
            let par = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(par.checksum, base.checksum, "{}", protocol.label());
        }
    }

    #[test]
    fn ilink_sequential_agrees_with_parallel_up_to_fp_grouping() {
        let app = Ilink::new(Scale::Test);
        let seq = run_app(
            &app,
            ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel),
        );
        let par = run_app(
            &app,
            ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel),
        );
        // Same quantized likelihood (the sum regroups across widths; the
        // 1e-9 quantization absorbs that).
        assert_eq!(seq.checksum, par.checksum);
    }
}
