//! KvService: a sharded KV/cache service driven by a generated request
//! trace (DESIGN.md §13).
//!
//! The table is `keys × value_words` shared words plus one version word
//! per key. Requests come from a [`Trace`] generated up front on the host
//! (Zipfian key popularity, get/put/delete mix, open-loop arrivals); the
//! trace is dealt round-robin across processors (op `i` → proc `i mod
//! nprocs`), and each processor charges its arrival stamps in virtual
//! time — idling until an op's stamp when it is ahead, draining the
//! backlog at service rate when it is behind.
//!
//! **Why the final state is deterministic.** Shard locks serialize
//! same-shard requests, but cross-shard interleaving (and hence the order
//! of mutations to a key) still depends on the schedule. Every mutation is
//! therefore *commutative*: a put XOR-folds a per-op digest into all value
//! words, a delete XOR-folds a tombstone digest into word 0, and both bump
//! the key's version word (addition). XOR and addition commute, so the
//! final table is a pure function of the trace *set*, not the execution
//! order — a sequential host-side replay ([`KvService::expected_checksum`])
//! must match the shared-memory checksum under any protocol, topology, or
//! fault schedule, and `execute` asserts exactly that.
//!
//! With [`KeyMap::Direct`] (the default) popularity rank equals table
//! slot, so the Zipfian head lands on the table's first pages and per-page
//! fault heat exposes the configured skew; slots are much smaller than a
//! page, so unrelated keys share pages and the skewed write traffic
//! exercises false sharing.

use cashmere_core::{Cluster, ClusterConfig};
use cashmere_workload::{KeyMap, OpKind, Trace, WorkloadSpec};

use crate::util::{checksum_slice, ArrU64};
use crate::{AppOutcome, Benchmark, Scale};

/// The KV service benchmark instance.
#[derive(Debug, Clone)]
pub struct KvService {
    /// Trace generator parameters (keyspace, skew, mix, arrivals, seed).
    pub spec: WorkloadSpec,
    /// Words per value (a whole value is read by a get and folded by a
    /// put).
    pub value_words: usize,
    /// Shard-lock count; key `k` is guarded by lock `k mod shards`.
    pub shards: usize,
    /// Service compute charged per request (ns), on top of memory traffic.
    pub service_ns: u64,
}

impl KvService {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                spec: WorkloadSpec {
                    keys: 512,
                    theta: 0.99,
                    ops: 6_000,
                    get_frac: 0.70,
                    put_frac: 0.25,
                    mean_interarrival_ns: 3_000,
                    key_map: KeyMap::Direct,
                    seed: 0x05EA_F00D,
                },
                value_words: 4,
                shards: 16,
                service_ns: 1_500,
            },
            Scale::Bench => Self {
                spec: WorkloadSpec {
                    keys: 4_096,
                    theta: 0.99,
                    ops: 24_000,
                    get_frac: 0.70,
                    put_frac: 0.25,
                    mean_interarrival_ns: 2_000,
                    key_map: KeyMap::Direct,
                    seed: 0x05EA_F00D,
                },
                value_words: 4,
                shards: 32,
                service_ns: 2_000,
            },
        }
    }

    /// The generated request trace (deterministic in the spec).
    pub fn trace(&self) -> Trace {
        Trace::generate(&self.spec)
    }

    /// Checksum a sequential host-side replay of the trace produces — the
    /// value every DSM run must reproduce exactly.
    pub fn expected_checksum(&self) -> u64 {
        let trace = self.trace();
        let vw = self.value_words;
        let mut table = vec![0u64; self.spec.keys * vw];
        let mut vers = vec![0u64; self.spec.keys];
        for op in &trace.ops {
            let k = op.key as usize;
            match op.kind {
                OpKind::Get => {}
                OpKind::Put => {
                    for j in 0..vw {
                        table[k * vw + j] ^= digest_word(op.val, j as u64);
                    }
                    vers[k] += 1;
                }
                OpKind::Delete => {
                    table[k * vw] ^= digest_word(op.val, vw as u64);
                    vers[k] += 1;
                }
            }
        }
        combine(checksum_slice(&table), checksum_slice(&vers))
    }
}

/// Per-op value digest for lane `j` (puts fold lanes `0..value_words`;
/// deletes fold the tombstone lane `value_words` into word 0). A 64-bit
/// finalizer keeps lanes of the same op decorrelated.
fn digest_word(val: u64, j: u64) -> u64 {
    let mut x = val ^ j.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    x
}

/// Combines the value-table and version-array checksums into the app
/// checksum (same on the host-replay and shared-memory sides).
fn combine(table_cs: u64, vers_cs: u64) -> u64 {
    table_cs ^ vers_cs.rotate_left(17)
}

impl Benchmark for KvService {
    fn name(&self) -> &'static str {
        "KV"
    }

    fn size_description(&self) -> String {
        format!(
            "{} keys x {} words, {} ops, theta {}",
            self.spec.keys, self.value_words, self.spec.ops, self.spec.theta
        )
    }

    fn timing_reps(&self) -> usize {
        3 // shard-lock interleavings make the timing nondeterministic
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        let words = self.spec.keys * self.value_words + self.spec.keys;
        cfg.heap_pages = words.div_ceil(cashmere_core::PAGE_WORDS) + 2;
        cfg.locks = self.shards;
        cfg.barriers = 2;
        cfg.flags = 0;
        cfg.bus_bytes_per_access = 4;
        cfg.poll_fraction = 0.05;
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        let vw = self.value_words;
        let shards = self.shards;
        let service_ns = self.service_ns;
        let trace = self.trace();
        let table = ArrU64::alloc(cluster, self.spec.keys * vw);
        let vers = ArrU64::alloc(cluster, self.spec.keys);

        let report = cluster.run(|p| {
            let np = p.nprocs();
            let id = p.id();
            let mut buf = vec![0u64; vw];
            p.barrier(0);
            // Arrival stamps are relative to run start: anchor them at the
            // post-barrier clock so every processor shares the same origin.
            let t0 = p.now();
            for op in trace.ops.iter().skip(id).step_by(np) {
                // Open-loop arrival: idle until the stamp if we are ahead;
                // if we are behind, the backlog drains at service rate.
                let target = t0 + op.at;
                let now = p.now();
                if target > now {
                    p.compute(target - now);
                }
                p.compute(service_ns);

                let k = op.key as usize;
                p.lock(k % shards);
                match op.kind {
                    OpKind::Get => {
                        // Read the whole value (and version); the words
                        // themselves are schedule-dependent, so gets only
                        // generate traffic — they contribute no state.
                        table.get_run(p, k * vw, &mut buf);
                        let _ = vers.get(p, k);
                    }
                    OpKind::Put => {
                        table.get_run(p, k * vw, &mut buf);
                        for (j, w) in buf.iter_mut().enumerate() {
                            *w ^= digest_word(op.val, j as u64);
                        }
                        table.set_run(p, k * vw, &buf);
                        let v = vers.get(p, k);
                        vers.set(p, k, v + 1);
                    }
                    OpKind::Delete => {
                        let w = table.get(p, k * vw);
                        table.set(p, k * vw, w ^ digest_word(op.val, vw as u64));
                        let v = vers.get(p, k);
                        vers.set(p, k, v + 1);
                    }
                }
                p.unlock(k % shards);
                // Sojourn = completion minus the open-loop arrival stamp
                // (service + queueing; zero-width when obs is off).
                p.record_sojourn(p.now() - target);
            }
            p.barrier(1);
        });

        let checksum = combine(table.checksum(cluster), vers.checksum(cluster));
        assert_eq!(
            checksum,
            self.expected_checksum(),
            "KV final state diverged from the sequential host replay"
        );
        AppOutcome { report, checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn kv_matches_sequential_replay_under_every_protocol() {
        let app = KvService::new(Scale::Test);
        let want = app.expected_checksum();
        for protocol in ProtocolKind::PAPER_FOUR {
            let out = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(out.checksum, want, "{}", protocol.label());
        }
    }

    #[test]
    fn kv_sequential_run_matches_replay() {
        let app = KvService::new(Scale::Test);
        let out = run_app(
            &app,
            ClusterConfig::new(Topology::new(1, 1), ProtocolKind::OneLevelDiff),
        );
        assert_eq!(out.checksum, app.expected_checksum());
    }

    #[test]
    fn replay_checksum_is_mix_sensitive() {
        let base = KvService::new(Scale::Test);
        let mut writes = base.clone();
        writes.spec.get_frac = 0.1;
        writes.spec.put_frac = 0.8;
        assert_ne!(base.expected_checksum(), writes.expected_checksum());
    }

    #[test]
    fn scatter_map_reproduces_too() {
        let mut app = KvService::new(Scale::Test);
        app.spec.key_map = KeyMap::Scatter;
        app.spec.ops = 2_000;
        let out = run_app(
            &app,
            ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel),
        );
        assert_eq!(out.checksum, app.expected_checksum());
    }
}
