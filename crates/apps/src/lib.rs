//! The eight-application benchmark suite of the Cashmere-2L evaluation
//! (§3.2 of the paper):
//!
//! | App    | Pattern (paper)                                             |
//! |--------|-------------------------------------------------------------|
//! | SOR    | red-black successive over-relaxation; row bands; barriers   |
//! | LU     | SPLASH-2 blocked dense LU; block ownership; barriers        |
//! | Water  | SPLASH molecular dynamics; per-molecule locks; migratory    |
//! | TSP    | branch-and-bound; central priority queue; locks; nondeterministic |
//! | Gauss  | Gaussian elimination; cyclic rows; per-row flags            |
//! | Ilink  | genetic linkage (synthetic stand-in, see DESIGN.md §2.5): master–slave sparse arrays; barriers |
//! | Em3d   | electromagnetic wave propagation; bipartite graph; barriers |
//! | Barnes | Barnes-Hut N-body; sequential tree build; dynamic balance   |
//!
//! Every application implements [`Benchmark`]: it sizes the shared heap and
//! synchronization pools, seeds its data, runs on the cluster, and returns a
//! checksum so results can be validated against a sequential (1×1) run of
//! the same program under any protocol.
//!
//! Data-set sizes are scaled down from the paper (Table 2) so that the full
//! evaluation sweep completes in minutes; the compute-per-element constants
//! keep each application's computation-to-communication ratio in the
//! paper's regime (see EXPERIMENTS.md).

// The physics kernels walk fixed 3-element dimension arrays with `for d in
// 0..3`; iterator-with-enumerate rewrites of those loops read worse, not
// better.
#![allow(clippy::needless_range_loop)]

pub mod bank_oltp;
pub mod barnes;
pub mod em3d;
pub mod gauss;
pub mod ilink;
pub mod kv_service;
pub mod lu;
pub mod sor;
pub mod tsp;
pub mod util;
pub mod water;

pub use bank_oltp::BankOltp;
pub use barnes::Barnes;
pub use em3d::Em3d;
pub use gauss::Gauss;
pub use ilink::Ilink;
pub use kv_service::KvService;
pub use lu::Lu;
pub use sor::Sor;
pub use tsp::Tsp;
pub use water::Water;

use cashmere_core::{Cluster, ClusterConfig, Report};

/// Outcome of one application run: the protocol [`Report`] plus a checksum
/// of the application's final shared state.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Protocol/run statistics.
    pub report: Report,
    /// Digest of the result data (bitwise for exact algorithms; see each
    /// app for what it covers).
    pub checksum: u64,
}

/// A runnable member of the benchmark suite.
pub trait Benchmark: Sync {
    /// The paper's name for the application.
    fn name(&self) -> &'static str;

    /// Human-readable description of this instance's (scaled) data set,
    /// for the Table 2 reproduction.
    fn size_description(&self) -> String;

    /// Whether the application is deterministic (TSP's branch-and-bound
    /// pruning makes its *work* nondeterministic, though its answer — the
    /// optimal tour length — is still checked).
    fn deterministic(&self) -> bool {
        true
    }

    /// How many repetitions a timing measurement should take the best of
    /// (the paper uses best-of-three). Applications whose *timing* is
    /// nondeterministic — dynamic load balancing, lock interleavings,
    /// bound-dependent pruning — override this.
    fn timing_reps(&self) -> usize {
        1
    }

    /// Adjusts `cfg` for this application: heap pages, lock/barrier/flag
    /// pools, polling-overhead fraction, and memory-bus intensity.
    fn configure(&self, cfg: &mut ClusterConfig);

    /// Seeds shared data, runs the parallel program on `cluster`, and
    /// returns the report plus result checksum.
    fn execute(&self, cluster: &mut Cluster) -> AppOutcome;
}

/// All eight applications at the given scale, in the paper's Table 2 order.
pub fn suite(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Sor::new(scale)),
        Box::new(Lu::new(scale)),
        Box::new(Water::new(scale)),
        Box::new(Tsp::new(scale)),
        Box::new(Gauss::new(scale)),
        Box::new(Ilink::new(scale)),
        Box::new(Em3d::new(scale)),
        Box::new(Barnes::new(scale)),
    ]
}

/// The two service-style applications (trace-driven, DESIGN.md §13) at the
/// given scale. Kept separate from [`suite`] on purpose: the golden
/// artifacts (`results/vt_golden.jsonl`, Table 2) iterate the paper suite
/// and must stay byte-identical; the service apps are gated by the
/// `service` bench bin instead.
pub fn service_suite(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(KvService::new(scale)),
        Box::new(BankOltp::new(scale)),
    ]
}

/// Problem-size scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for correctness tests (sub-second at any topology).
    Test,
    /// The evaluation scale used by the table/figure harnesses.
    Bench,
}

/// Runs `bench` under `cfg` (after per-app configuration) and returns the
/// outcome.
pub fn run_app(bench: &dyn Benchmark, mut cfg: ClusterConfig) -> AppOutcome {
    bench.configure(&mut cfg);
    let mut cluster = Cluster::new(cfg);
    bench.execute(&mut cluster)
}
