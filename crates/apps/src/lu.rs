//! LU: blocked dense LU factorization from SPLASH-2 (§3.2).
//!
//! "The matrix A is divided into square blocks for temporal and spatial
//! locality. Each block is 'owned' by a processor, which performs all
//! computation on it." Paper size: 2048×2048 (33 MB); sequential 254.8 s.
//!
//! The interesting protocol behavior (§3.3.3): pivot blocks are written
//! privately by their owner (exclusive mode), then suddenly read by many
//! processors — a burst of exclusive-mode break requests aimed at one node,
//! which collapses the one-level protocols under clustering and which the
//! two-level protocols absorb through hardware coherence.
//!
//! Blocks are stored contiguously (block-major), the SPLASH-2 layout that
//! avoids false sharing between blocks.

use cashmere_core::{Cluster, ClusterConfig, Proc};

use crate::util::{ArrF64, XorShift};
use crate::{AppOutcome, Benchmark, Scale};

/// The LU benchmark instance.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Matrix dimension (must be a multiple of `block`).
    pub n: usize,
    /// Block edge size.
    pub block: usize,
    /// Extra compute charged per fused multiply-add (ns).
    pub flop_ns: u64,
}

impl Lu {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                n: 24,
                block: 8,
                flop_ns: 40,
            },
            Scale::Bench => Self {
                n: 192,
                block: 16,
                flop_ns: 9_000,
            },
        }
    }

    fn nb(&self) -> usize {
        self.n / self.block
    }

    /// Word offset of element (r, c) inside block (bi, bj), block-major.
    fn idx(&self, bi: usize, bj: usize, r: usize, c: usize) -> usize {
        let b = self.block;
        ((bi * self.nb() + bj) * b + r) * b + c
    }

    fn owner(&self, bi: usize, bj: usize, nprocs: usize) -> usize {
        (bi * self.nb() + bj) % nprocs
    }

    /// Factors the diagonal block `k` in place (unblocked LU, no pivoting).
    ///
    /// The row updates below go through the run accessors: the same
    /// accesses as the word-at-a-time loop (reads of rows `i` and `r`,
    /// writes of row `i` — same counts, same pages, same faults, same
    /// per-element arithmetic), grouped into three contiguous runs.
    fn factor_diag(&self, p: &mut Proc, a: ArrF64, k: usize) {
        let b = self.block;
        let mut row_i = vec![0.0f64; b];
        let mut row_r = vec![0.0f64; b];
        for r in 0..b {
            let pivot = a.get(p, self.idx(k, k, r, r));
            let len = b - r - 1;
            for i in (r + 1)..b {
                let l = a.get(p, self.idx(k, k, i, r)) / pivot;
                a.set(p, self.idx(k, k, i, r), l);
                a.get_run(p, self.idx(k, k, i, r + 1), &mut row_i[..len]);
                a.get_run(p, self.idx(k, k, r, r + 1), &mut row_r[..len]);
                for j in 0..len {
                    row_i[j] -= l * row_r[j];
                }
                a.set_run(p, self.idx(k, k, i, r + 1), &row_i[..len]);
                p.compute(self.flop_ns * (b - r) as u64);
            }
        }
    }

    /// Updates a row-perimeter block (k, bj): solve L(k,k) · X = A(k, bj).
    fn update_row_block(&self, p: &mut Proc, a: ArrF64, k: usize, bj: usize) {
        let b = self.block;
        let mut row_i = vec![0.0f64; b];
        let mut row_r = vec![0.0f64; b];
        for r in 0..b {
            for i in (r + 1)..b {
                let l = a.get(p, self.idx(k, k, i, r));
                a.get_run(p, self.idx(k, bj, i, 0), &mut row_i);
                a.get_run(p, self.idx(k, bj, r, 0), &mut row_r);
                for j in 0..b {
                    row_i[j] -= l * row_r[j];
                }
                a.set_run(p, self.idx(k, bj, i, 0), &row_i);
                p.compute(self.flop_ns * b as u64);
            }
        }
    }

    /// Updates a column-perimeter block (bi, k): X · U(k,k) = A(bi, k).
    fn update_col_block(&self, p: &mut Proc, a: ArrF64, k: usize, bi: usize) {
        let b = self.block;
        let mut row_i = vec![0.0f64; b];
        let mut row_r = vec![0.0f64; b];
        for r in 0..b {
            let pivot = a.get(p, self.idx(k, k, r, r));
            let len = b - r - 1;
            for i in 0..b {
                let l = a.get(p, self.idx(bi, k, i, r)) / pivot;
                a.set(p, self.idx(bi, k, i, r), l);
                a.get_run(p, self.idx(bi, k, i, r + 1), &mut row_i[..len]);
                a.get_run(p, self.idx(k, k, r, r + 1), &mut row_r[..len]);
                for j in 0..len {
                    row_i[j] -= l * row_r[j];
                }
                a.set_run(p, self.idx(bi, k, i, r + 1), &row_i[..len]);
                p.compute(self.flop_ns * b as u64);
            }
        }
    }

    /// Interior update: A(bi, bj) -= A(bi, k) · A(k, bj).
    fn update_interior(&self, p: &mut Proc, a: ArrF64, k: usize, bi: usize, bj: usize) {
        let b = self.block;
        let mut row_i = vec![0.0f64; b];
        let mut row_r = vec![0.0f64; b];
        for i in 0..b {
            for r in 0..b {
                let l = a.get(p, self.idx(bi, k, i, r));
                if l != 0.0 {
                    a.get_run(p, self.idx(bi, bj, i, 0), &mut row_i);
                    a.get_run(p, self.idx(k, bj, r, 0), &mut row_r);
                    for j in 0..b {
                        row_i[j] -= l * row_r[j];
                    }
                    a.set_run(p, self.idx(bi, bj, i, 0), &row_i);
                }
                p.compute(self.flop_ns * b as u64);
            }
        }
    }
}

impl Benchmark for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn size_description(&self) -> String {
        format!(
            "{}x{} matrix, {}x{} blocks",
            self.n, self.n, self.block, self.block
        )
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        let words = self.n * self.n;
        cfg.heap_pages = words.div_ceil(cashmere_core::PAGE_WORDS) + 4;
        cfg.locks = 1;
        cfg.barriers = 3;
        cfg.flags = 0;
        cfg.bus_bytes_per_access = 8;
        cfg.poll_fraction = 0.03;
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        assert_eq!(
            self.n % self.block,
            0,
            "n must be a multiple of the block size"
        );
        let a = ArrF64::alloc(cluster, self.n * self.n);
        // A diagonally dominant matrix keeps unpivoted LU stable.
        let mut rng = XorShift::new(0xB10C);
        let nb = self.nb();
        for bi in 0..nb {
            for bj in 0..nb {
                for r in 0..self.block {
                    for c in 0..self.block {
                        let diag = bi == bj && r == c;
                        let v = rng.unit_f64() + if diag { self.n as f64 } else { 0.0 };
                        a.seed(cluster, self.idx(bi, bj, r, c), v);
                    }
                }
            }
        }

        let report = cluster.run(|p| {
            let np = p.nprocs();
            let me = p.id();
            for k in 0..nb {
                if self.owner(k, k, np) == me {
                    self.factor_diag(p, a, k);
                }
                p.barrier(0);
                for bj in (k + 1)..nb {
                    if self.owner(k, bj, np) == me {
                        self.update_row_block(p, a, k, bj);
                    }
                    if self.owner(bj, k, np) == me {
                        self.update_col_block(p, a, k, bj);
                    }
                }
                p.barrier(1);
                for bi in (k + 1)..nb {
                    for bj in (k + 1)..nb {
                        if self.owner(bi, bj, np) == me {
                            self.update_interior(p, a, k, bi, bj);
                        }
                    }
                }
                p.barrier(2);
            }
        });
        AppOutcome {
            report,
            checksum: a.checksum(cluster),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn lu_matches_sequential_under_every_protocol() {
        let app = Lu::new(Scale::Test);
        let seq = run_app(
            &app,
            ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel),
        );
        for protocol in ProtocolKind::PAPER_FOUR {
            let par = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(par.checksum, seq.checksum, "{}", protocol.label());
        }
    }

    #[test]
    fn lu_factorization_reconstructs_the_matrix() {
        // Factor a small matrix sequentially and verify L·U ≈ A.
        let app = Lu {
            n: 16,
            block: 8,
            flop_ns: 0,
        };
        let mut cfg = ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel);
        app.configure(&mut cfg);
        let mut cluster = Cluster::new(cfg);

        // Build the original matrix exactly as execute() seeds it.
        let mut rng = XorShift::new(0xB10C);
        let n = app.n;
        let nb = app.nb();
        let mut orig = vec![0.0f64; n * n];
        let to_rc =
            |bi: usize, bj: usize, r: usize, c: usize| (bi * app.block + r, bj * app.block + c);
        let a = ArrF64::alloc(&mut cluster, n * n);
        for bi in 0..nb {
            for bj in 0..nb {
                for r in 0..app.block {
                    for c in 0..app.block {
                        let diag = bi == bj && r == c;
                        let v = rng.unit_f64() + if diag { n as f64 } else { 0.0 };
                        a.seed(&cluster, app.idx(bi, bj, r, c), v);
                        let (rr, cc) = to_rc(bi, bj, r, c);
                        orig[rr * n + cc] = v;
                    }
                }
            }
        }
        cluster.run(|p| {
            for k in 0..nb {
                if p.id() == 0 {
                    app.factor_diag(p, a, k);
                    for bj in (k + 1)..nb {
                        app.update_row_block(p, a, k, bj);
                        app.update_col_block(p, a, k, bj);
                    }
                    for bi in (k + 1)..nb {
                        for bj in (k + 1)..nb {
                            app.update_interior(p, a, k, bi, bj);
                        }
                    }
                }
            }
        });
        // Read back L and U and multiply.
        let mut lu = vec![0.0f64; n * n];
        for bi in 0..nb {
            for bj in 0..nb {
                for r in 0..app.block {
                    for c in 0..app.block {
                        let (rr, cc) = to_rc(bi, bj, r, c);
                        lu[rr * n + cc] = a.read_back(&cluster, app.idx(bi, bj, r, c));
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                // L has implicit unit diagonal; U is the upper triangle.
                let mut acc = 0.0;
                for k in 0..n {
                    let l = if k < i {
                        lu[i * n + k]
                    } else if k == i {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if k <= j { lu[k * n + j] } else { 0.0 };
                    acc += l * u;
                }
                assert!(
                    (acc - orig[i * n + j]).abs() < 1e-6 * n as f64,
                    "L·U mismatch at ({i},{j}): {acc} vs {}",
                    orig[i * n + j]
                );
            }
        }
    }
}
