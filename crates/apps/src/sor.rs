//! SOR: red-black successive over-relaxation (§3.2).
//!
//! "The red and black arrays are divided into roughly equal size bands of
//! rows, with each band assigned to a different processor. Communication
//! occurs across the boundaries between bands. Processors synchronize with
//! barriers." Paper size: 3072×4096 (50 MB); sequential time 195 s. The
//! computation-to-communication ratio is high, so the paper sees only
//! slight two-level gains — but also *negative clustering* from
//! capacity-miss traffic on the shared node bus, which the elevated
//! bus-bytes setting models.

use cashmere_core::{Cluster, ClusterConfig, Proc};

use crate::util::{chunk_range, ArrF64};
use crate::{AppOutcome, Benchmark, Scale};

/// The SOR benchmark instance.
#[derive(Debug, Clone)]
pub struct Sor {
    /// Interior rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Full red+black iterations.
    pub iters: usize,
    /// Extra compute charged per element update (ns), tuning the
    /// computation-to-communication ratio toward the paper's regime.
    pub flop_ns: u64,
}

impl Sor {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                rows: 24,
                cols: 32,
                iters: 3,
                flop_ns: 150,
            },
            Scale::Bench => Self {
                rows: 192,
                cols: 128,
                iters: 10,
                flop_ns: 20_000,
            },
        }
    }

    fn grid_words(&self) -> usize {
        (self.rows + 2) * self.cols
    }

    fn update_band(&self, p: &mut Proc, grid: ArrF64, lo: usize, hi: usize, phase: usize) {
        let cols = self.cols;
        for i in (lo + 1)..(hi + 1) {
            for j in 1..cols - 1 {
                if (i + j) % 2 == phase {
                    let up = grid.get(p, (i - 1) * cols + j);
                    let down = grid.get(p, (i + 1) * cols + j);
                    let left = grid.get(p, i * cols + j - 1);
                    let right = grid.get(p, i * cols + j + 1);
                    grid.set(p, i * cols + j, 0.25 * (up + down + left + right));
                }
            }
            p.compute(self.flop_ns * (cols as u64) / 2);
        }
    }
}

impl Benchmark for Sor {
    fn name(&self) -> &'static str {
        "SOR"
    }

    fn size_description(&self) -> String {
        format!(
            "{}x{} grid, {} iterations",
            self.rows, self.cols, self.iters
        )
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        let pages = self.grid_words().div_ceil(cashmere_core::PAGE_WORDS) + 4;
        cfg.heap_pages = pages;
        cfg.locks = 1;
        cfg.barriers = 2;
        cfg.flags = 0;
        // Matrix sweep with a data set exceeding the second-level cache:
        // every access is capacity-miss traffic on the node bus (the
        // paper's negative-clustering driver for SOR).
        cfg.bus_bytes_per_access = 16;
        cfg.poll_fraction = 0.04;
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        let grid = ArrF64::alloc(cluster, self.grid_words());
        // Fixed boundary of 1.0 on the top and bottom rows; interior zero.
        for j in 0..self.cols {
            grid.seed(cluster, j, 1.0);
            grid.seed(cluster, (self.rows + 1) * self.cols + j, 1.0);
        }
        let rows = self.rows;
        let iters = self.iters;
        let report = cluster.run(|p| {
            let (lo, hi) = chunk_range(rows, p.nprocs(), p.id());
            for _ in 0..iters {
                for phase in 0..2 {
                    if lo < hi {
                        self.update_band(p, grid, lo, hi, phase);
                    }
                    p.barrier(phase);
                }
            }
        });
        AppOutcome {
            report,
            checksum: grid.checksum(cluster),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn sor_matches_sequential_under_every_protocol() {
        let app = Sor::new(Scale::Test);
        let seq = run_app(
            &app,
            ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel),
        );
        for protocol in ProtocolKind::PAPER_FOUR {
            let par = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(par.checksum, seq.checksum, "{}", protocol.label());
        }
    }

    #[test]
    fn sor_converges_toward_boundary_value() {
        // After enough sweeps every interior cell moves off zero toward the
        // boundary value 1.0.
        let app = Sor {
            rows: 8,
            cols: 16,
            iters: 40,
            flop_ns: 0,
        };
        let mut cfg = ClusterConfig::new(Topology::new(2, 1), ProtocolKind::TwoLevel);
        app.configure(&mut cfg);
        let mut cluster = Cluster::new(cfg);
        let grid = ArrF64::alloc(&mut cluster, app.grid_words());
        for j in 0..app.cols {
            grid.seed(&cluster, j, 1.0);
            grid.seed(&cluster, (app.rows + 1) * app.cols + j, 1.0);
        }
        let rows = app.rows;
        cluster.run(|p| {
            let (lo, hi) = chunk_range(rows, p.nprocs(), p.id());
            for _ in 0..app.iters {
                for phase in 0..2 {
                    app.update_band(p, grid, lo, hi, phase);
                    p.barrier(phase);
                }
            }
        });
        let mid = grid.read_back(&cluster, (app.rows / 2) * app.cols + app.cols / 2);
        assert!(
            mid > 0.05 && mid < 1.0,
            "interior cell relaxed toward boundary: {mid}"
        );
    }
}
