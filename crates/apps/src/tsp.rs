//! TSP: branch-and-bound traveling salesman (§3.2).
//!
//! "Locks are used to insert and delete unsolved tours in a priority queue.
//! Updates to the shortest path are protected by a separate lock. The
//! algorithm is non-deterministic in the sense that the earlier some
//! processor stumbles upon the shortest path, the more quickly other parts
//! of the search space can be pruned." Paper size: 17 cities (1 MB);
//! sequential 4029 s.
//!
//! The shared state is a stack of partial tours (records in shared memory
//! under the queue lock), the best-tour bound (under its own lock), and the
//! distance matrix (read-only after seeding). The amount of *work* is
//! nondeterministic, but the answer — the optimal tour length — is checked
//! against exhaustive search in the tests.

use cashmere_core::{Cluster, ClusterConfig, Proc};

use crate::util::{ArrU64, XorShift};
use crate::{AppOutcome, Benchmark, Scale};

/// The TSP benchmark instance.
#[derive(Debug, Clone)]
pub struct Tsp {
    /// City count (≤ 16; tours are packed 4 bits per city).
    pub cities: usize,
    /// Extra compute charged per node expansion (ns).
    pub expand_ns: u64,
}

/// Shared queue capacity in records.
const QUEUE_CAP: usize = 4096;
/// Sub-tours with at most this many unvisited cities are solved locally by
/// the popping processor instead of going back through the shared queue.
const TAIL_CITIES: u32 = 8;
/// Words per tour record: cost, visited mask, current city, packed path.
const REC_WORDS: usize = 4;

impl Tsp {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                cities: 10,
                expand_ns: 2_000,
            },
            Scale::Bench => Self {
                cities: 12,
                expand_ns: 20_000,
            },
        }
    }

    fn distances(&self) -> Vec<u64> {
        let n = self.cities;
        let mut rng = XorShift::new(0x75B0 + n as u64);
        let mut d = vec![0u64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = 10 + rng.below(90) as u64;
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        d
    }

    /// Exhaustive optimum (tests and verification).
    pub fn brute_force(&self) -> u64 {
        let n = self.cities;
        let d = self.distances();
        fn rec(d: &[u64], n: usize, cur: usize, visited: u64, cost: u64, best: &mut u64) {
            if visited == (1 << n) - 1 {
                *best = (*best).min(cost + d[cur * n]);
                return;
            }
            for next in 1..n {
                if visited >> next & 1 == 0 {
                    let c = cost + d[cur * n + next];
                    if c < *best {
                        rec(d, n, next, visited | 1 << next, c, best);
                    }
                }
            }
        }
        let mut best = u64::MAX;
        rec(&d, n, 0, 1, 0, &mut best);
        best
    }
}

/// Depth-first search of a small sub-tour tail; returns the best complete
/// tour found below the node, if it beats `bound`.
fn solve_tail(
    p: &mut Proc,
    dist: &[u64],
    n: usize,
    cur: usize,
    visited: u64,
    cost: u64,
    bound: u64,
) -> Option<u64> {
    if visited == (1u64 << n) - 1 {
        let total = cost + dist[cur * n];
        return (total < bound).then_some(total);
    }
    let mut best = bound;
    let mut found = None;
    for next in 1..n {
        if visited >> next & 1 == 0 {
            let c = cost + dist[cur * n + next];
            if c < best {
                p.compute(50_000);
                if let Some(t) = solve_tail(p, dist, n, next, visited | 1 << next, c, best) {
                    best = t;
                    found = Some(t);
                }
            }
        }
    }
    found
}

/// Shared-memory layout for a TSP run.
struct Layout {
    dist: ArrU64,
    /// [0] = stack top, [1] = in-flight worker count, [2] = best cost.
    ctl: ArrU64,
    queue: ArrU64,
}

const LOCK_QUEUE: usize = 0;
const LOCK_BEST: usize = 1;

impl Layout {
    fn push(&self, p: &mut Proc, cost: u64, visited: u64, cur: u64, path: u64) {
        let top = self.ctl.get(p, 0) as usize;
        assert!(top < QUEUE_CAP, "TSP shared queue overflow");
        let base = top * REC_WORDS;
        self.queue.set(p, base, cost);
        self.queue.set(p, base + 1, visited);
        self.queue.set(p, base + 2, cur);
        self.queue.set(p, base + 3, path);
        self.ctl.set(p, 0, top as u64 + 1);
    }

    fn pop(&self, p: &mut Proc) -> Option<(u64, u64, u64, u64)> {
        let top = self.ctl.get(p, 0) as usize;
        if top == 0 {
            return None;
        }
        let base = (top - 1) * REC_WORDS;
        let rec = (
            self.queue.get(p, base),
            self.queue.get(p, base + 1),
            self.queue.get(p, base + 2),
            self.queue.get(p, base + 3),
        );
        self.ctl.set(p, 0, top as u64 - 1);
        Some(rec)
    }
}

impl Benchmark for Tsp {
    fn name(&self) -> &'static str {
        "TSP"
    }

    fn timing_reps(&self) -> usize {
        3
    }

    fn size_description(&self) -> String {
        format!("{} cities", self.cities)
    }

    fn deterministic(&self) -> bool {
        false
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        let words = self.cities * self.cities + 16 + QUEUE_CAP * REC_WORDS;
        cfg.heap_pages = words.div_ceil(cashmere_core::PAGE_WORDS) + 4;
        cfg.locks = 2;
        cfg.barriers = 2;
        cfg.flags = 0;
        cfg.bus_bytes_per_access = 2;
        cfg.poll_fraction = 0.02; // TSP is the paper's lowest-polling app
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        let n = self.cities;
        let lay = Layout {
            dist: ArrU64::alloc(cluster, n * n),
            ctl: ArrU64::alloc(cluster, 16),
            queue: ArrU64::alloc(cluster, QUEUE_CAP * REC_WORDS),
        };
        let d = self.distances();
        for (i, v) in d.iter().enumerate() {
            lay.dist.seed(cluster, i, *v);
        }
        lay.ctl.seed(cluster, 2, u64::MAX); // best = ∞

        let expand_ns = self.expand_ns;
        let report = cluster.run(|p| {
            // The distance matrix is read-only after seeding; each worker
            // reads it through the DSM once and keeps a private copy (the
            // hardware caches it the same way).
            let mut dist = vec![0u64; n * n];
            for (i, d) in dist.iter_mut().enumerate() {
                *d = lay.dist.get(p, i);
            }
            if p.id() == 0 {
                // Seed the root tour (at city 0) under the queue lock.
                p.lock(LOCK_QUEUE);
                lay.push(p, 0, 1, 0, 0);
                p.unlock(LOCK_QUEUE);
            }
            p.barrier(0);

            loop {
                // Grab work.
                p.lock(LOCK_QUEUE);
                let rec = lay.pop(p);
                if rec.is_some() {
                    let inflight = lay.ctl.get(p, 1);
                    lay.ctl.set(p, 1, inflight + 1);
                }
                let inflight = lay.ctl.get(p, 1);
                p.unlock(LOCK_QUEUE);

                let Some((cost, visited, cur, path)) = rec else {
                    if inflight == 0 {
                        break; // queue empty and nobody working: done
                    }
                    p.compute(5_000); // idle back-off before re-checking
                    continue;
                };

                p.compute(expand_ns);
                // The bound is read without the lock (a stale — larger —
                // bound only weakens pruning; updates are lock-protected).
                let best_now = lay.ctl.get(p, 2);

                if cost < best_now {
                    let remaining = n as u32 - visited.count_ones();
                    if remaining <= TAIL_CITIES {
                        // Small subtree: solve it locally (depth-first, no
                        // queue traffic), as the real TSP expands whole
                        // sub-tours per queue grab.
                        let found = solve_tail(p, &dist, n, cur as usize, visited, cost, best_now);
                        if let Some(total) = found {
                            p.lock(LOCK_BEST);
                            if total < lay.ctl.get(p, 2) {
                                lay.ctl.set(p, 2, total);
                            }
                            p.unlock(LOCK_BEST);
                        }
                    } else {
                        // Expand children (pushed deepest-first for
                        // DFS-flavored bounding).
                        for next in (1..n).rev() {
                            if visited >> next & 1 == 0 {
                                let c = cost + dist[cur as usize * n + next];
                                if c < best_now {
                                    let depth = visited.count_ones() as u64;
                                    let new_path = path | (next as u64) << (4 * depth);
                                    p.lock(LOCK_QUEUE);
                                    lay.push(p, c, visited | 1 << next, next as u64, new_path);
                                    p.unlock(LOCK_QUEUE);
                                }
                            }
                        }
                    }
                }

                // Retire the work item.
                p.lock(LOCK_QUEUE);
                let inflight = lay.ctl.get(p, 1);
                lay.ctl.set(p, 1, inflight - 1);
                p.unlock(LOCK_QUEUE);
            }
            p.barrier(1);
        });

        AppOutcome {
            report,
            checksum: lay.ctl.read_back(cluster, 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn tsp_finds_the_optimal_tour_under_every_protocol() {
        let app = Tsp::new(Scale::Test);
        let optimal = app.brute_force();
        assert_ne!(optimal, u64::MAX);
        for protocol in ProtocolKind::PAPER_FOUR {
            let out = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(out.checksum, optimal, "{}", protocol.label());
        }
    }

    #[test]
    fn tsp_sequential_matches_brute_force() {
        let app = Tsp::new(Scale::Test);
        let out = run_app(
            &app,
            ClusterConfig::new(Topology::new(1, 1), ProtocolKind::OneLevelDiff),
        );
        assert_eq!(out.checksum, app.brute_force());
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let app = Tsp::new(Scale::Bench);
        let d = app.distances();
        let n = app.cities;
        for i in 0..n {
            assert_eq!(d[i * n + i], 0);
            for j in 0..n {
                assert_eq!(d[i * n + j], d[j * n + i]);
            }
        }
    }
}
