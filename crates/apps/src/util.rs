//! Shared-array helpers and checksum utilities for the application suite.

use cashmere_core::{Addr, Cluster, Proc};

/// A typed view of a shared `f64` array.
#[derive(Debug, Clone, Copy)]
pub struct ArrF64 {
    base: Addr,
    len: usize,
}

impl ArrF64 {
    /// Allocates a page-aligned shared array of `len` doubles.
    pub fn alloc(c: &mut Cluster, len: usize) -> Self {
        Self {
            base: c.alloc_page_aligned(len),
            len,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Word address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        debug_assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base + i
    }

    /// Reads element `i` through processor `p`.
    #[inline]
    pub fn get(&self, p: &mut Proc, i: usize) -> f64 {
        p.read_f64(self.addr(i))
    }

    /// Writes element `i` through processor `p`.
    #[inline]
    pub fn set(&self, p: &mut Proc, i: usize, v: f64) {
        p.write_f64(self.addr(i), v);
    }

    /// Reads elements `i..i + out.len()` as one run (contiguous elements
    /// share pages, so this costs one fault check per page, not per word;
    /// virtual time is identical to an element-at-a-time loop).
    #[inline]
    pub fn get_run(&self, p: &mut Proc, i: usize, out: &mut [f64]) {
        debug_assert!(i + out.len() <= self.len);
        p.read_run_f64(self.base + i, out);
    }

    /// Writes `vals` to elements `i..i + vals.len()` as one run.
    #[inline]
    pub fn set_run(&self, p: &mut Proc, i: usize, vals: &[f64]) {
        debug_assert!(i + vals.len() <= self.len);
        p.write_run_f64(self.base + i, vals);
    }

    /// Seeds element `i` before the run.
    pub fn seed(&self, c: &Cluster, i: usize, v: f64) {
        c.seed_f64(self.addr(i), v);
    }

    /// Reads element `i` back after the run.
    pub fn read_back(&self, c: &Cluster, i: usize) -> f64 {
        c.read_f64(self.addr(i))
    }

    /// Bitwise checksum over the final contents (block read-back; the fold
    /// over raw bit patterns matches the old per-element version exactly).
    pub fn checksum(&self, c: &Cluster) -> u64 {
        checksum_words(c, self.base, self.len)
    }
}

/// Page-blocked bitwise checksum shared by [`ArrF64`] and [`ArrU64`]:
/// the [`checksum_slice`] fold over `len` words starting at `base`.
fn checksum_words(c: &Cluster, base: Addr, len: usize) -> u64 {
    let mut buf = [0u64; 1024];
    let mut acc = 0u64;
    let mut i = 0;
    while i < len {
        let n = (len - i).min(buf.len());
        c.read_back_run(base + i, &mut buf[..n]);
        acc = checksum_fold(acc, &buf[..n]);
        i += n;
    }
    acc
}

/// Continues the `acc = acc * 31 + word` fold over `words`.
fn checksum_fold(mut acc: u64, words: &[u64]) -> u64 {
    for &w in words {
        acc = acc.wrapping_mul(31).wrapping_add(w);
    }
    acc
}

/// The same bitwise checksum over a host-side slice — used by the service
/// apps to compare shared memory against a sequential host replay of the
/// generated trace (the fold matches [`ArrU64::checksum`] exactly).
pub fn checksum_slice(words: &[u64]) -> u64 {
    checksum_fold(0, words)
}

/// A typed view of a shared `u64` array.
#[derive(Debug, Clone, Copy)]
pub struct ArrU64 {
    base: Addr,
    len: usize,
}

impl ArrU64 {
    /// Allocates a page-aligned shared array of `len` words.
    pub fn alloc(c: &mut Cluster, len: usize) -> Self {
        Self {
            base: c.alloc_page_aligned(len),
            len,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Word address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        debug_assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base + i
    }

    /// Reads element `i` through processor `p`.
    #[inline]
    pub fn get(&self, p: &mut Proc, i: usize) -> u64 {
        p.read_u64(self.addr(i))
    }

    /// Writes element `i` through processor `p`.
    #[inline]
    pub fn set(&self, p: &mut Proc, i: usize, v: u64) {
        p.write_u64(self.addr(i), v);
    }

    /// Reads elements `i..i + out.len()` as one run (see
    /// [`ArrF64::get_run`]).
    #[inline]
    pub fn get_run(&self, p: &mut Proc, i: usize, out: &mut [u64]) {
        debug_assert!(i + out.len() <= self.len);
        p.read_run_u64(self.base + i, out);
    }

    /// Writes `vals` to elements `i..i + vals.len()` as one run.
    #[inline]
    pub fn set_run(&self, p: &mut Proc, i: usize, vals: &[u64]) {
        debug_assert!(i + vals.len() <= self.len);
        p.write_run_u64(self.base + i, vals);
    }

    /// Seeds element `i` before the run.
    pub fn seed(&self, c: &Cluster, i: usize, v: u64) {
        c.seed_u64(self.addr(i), v);
    }

    /// Reads element `i` back after the run.
    pub fn read_back(&self, c: &Cluster, i: usize) -> u64 {
        c.read_u64(self.addr(i))
    }

    /// Bitwise checksum over the final contents (block read-back).
    pub fn checksum(&self, c: &Cluster) -> u64 {
        checksum_words(c, self.base, self.len)
    }
}

/// Splits `n` items into `parts` contiguous chunks; returns the `[start,
/// end)` range of chunk `k` (remainder spread over the first chunks).
pub fn chunk_range(n: usize, parts: usize, k: usize) -> (usize, usize) {
    let base = n / parts;
    let rem = n % parts;
    let start = k * base + k.min(rem);
    let end = start + base + usize::from(k < rem);
    (start, end.min(n))
}

/// The workspace's seeded PRNG, re-exported from `cashmere-workload` (the
/// definition used to live here; every copy now resolves to the one in the
/// workload crate, so app seeding and trace generation share a stream
/// implementation).
pub use cashmere_workload::XorShift;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 32] {
                let mut total = 0;
                let mut prev_end = 0;
                for k in 0..parts {
                    let (s, e) = chunk_range(n, parts, k);
                    assert_eq!(s, prev_end, "chunks contiguous (n={n}, parts={parts})");
                    assert!(e >= s);
                    prev_end = e;
                    total += e - s;
                }
                assert_eq!(total, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..8)
            .map(|k| {
                let (s, e) = chunk_range(30, 8, k);
                e - s
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn xorshift_is_deterministic_and_in_range() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.below(13);
            assert!(v < 13);
            let f = a.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
