//! Water: molecular dynamics from the SPLASH suite (§3.2).
//!
//! "The shared array of molecule structures is divided into equal
//! contiguous chunks, with each chunk assigned to a different processor.
//! The bulk of the interprocessor communication occurs during a phase that
//! updates intermolecular forces using locks, resulting in a migratory
//! sharing pattern." Paper size: 4096 molecules (4 MB); sequential
//! 1847.6 s.
//!
//! As in SPLASH Water, each processor computes pair interactions between
//! its molecules and the following n/2 molecules (so each pair is computed
//! exactly once), accumulates force contributions privately, and then adds
//! them into the shared force array under per-molecule locks — the lock-
//! based migratory pattern the paper calls out. Because the shared force
//! accumulation order is nondeterministic, the checksum covers the
//! *positions* after integration with a tolerance-quantized digest.

use cashmere_core::{Cluster, ClusterConfig};

use crate::util::{chunk_range, ArrF64, XorShift};
use crate::{AppOutcome, Benchmark, Scale};

/// The Water benchmark instance.
#[derive(Debug, Clone)]
pub struct Water {
    /// Molecule count.
    pub molecules: usize,
    /// Timesteps.
    pub steps: usize,
    /// Extra compute charged per pair interaction (ns).
    pub pair_ns: u64,
}

impl Water {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                molecules: 24,
                steps: 2,
                pair_ns: 400,
            },
            Scale::Bench => Self {
                molecules: 256,
                steps: 2,
                pair_ns: 240_000,
            },
        }
    }
}

impl Benchmark for Water {
    fn name(&self) -> &'static str {
        "Water"
    }

    fn timing_reps(&self) -> usize {
        3
    }

    fn size_description(&self) -> String {
        format!("{} molecules, {} steps", self.molecules, self.steps)
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        let words = self.molecules * 9 + 16;
        cfg.heap_pages = words.div_ceil(cashmere_core::PAGE_WORDS) + 6;
        cfg.locks = 64; // one per molecule-chunk owner (see below)
        cfg.barriers = 4;
        cfg.flags = 0;
        cfg.bus_bytes_per_access = 4;
        cfg.poll_fraction = 0.08;
    }

    fn execute(&self, cluster: &mut Cluster) -> AppOutcome {
        let n = self.molecules;
        // Layout: positions [3n], velocities [3n], forces [3n].
        let pos = ArrF64::alloc(cluster, 3 * n);
        let vel = ArrF64::alloc(cluster, 3 * n);
        let force = ArrF64::alloc(cluster, 3 * n);
        let mut rng = XorShift::new(0x3A7E5);
        for i in 0..3 * n {
            pos.seed(cluster, i, rng.unit_f64() * 10.0);
            vel.seed(cluster, i, 0.0);
            force.seed(cluster, i, 0.0);
        }

        let steps = self.steps;
        let pair_ns = self.pair_ns;
        let report = cluster.run(|p| {
            let np = p.nprocs();
            let me = p.id();
            let (lo, hi) = chunk_range(n, np, me);
            for _step in 0..steps {
                // Phase 1: zero my molecules' forces.
                for i in lo..hi {
                    for d in 0..3 {
                        force.set(p, 3 * i + d, 0.0);
                    }
                }
                p.barrier(0);

                // Phase 2: pair interactions. Molecule i interacts with the
                // next n/2 molecules (each unordered pair once). Private
                // accumulation, then shared addition under per-molecule
                // locks — the migratory pattern.
                let mut acc: Vec<(usize, [f64; 3])> = Vec::new();
                let add = |idx: usize, f: [f64; 3], acc: &mut Vec<(usize, [f64; 3])>| {
                    if let Some(e) = acc.iter_mut().find(|e| e.0 == idx) {
                        for d in 0..3 {
                            e.1[d] += f[d];
                        }
                    } else {
                        acc.push((idx, f));
                    }
                };
                for i in lo..hi {
                    let pi = [
                        pos.get(p, 3 * i),
                        pos.get(p, 3 * i + 1),
                        pos.get(p, 3 * i + 2),
                    ];
                    for k in 1..=(n / 2) {
                        let j = (i + k) % n;
                        let pj = [
                            pos.get(p, 3 * j),
                            pos.get(p, 3 * j + 1),
                            pos.get(p, 3 * j + 2),
                        ];
                        let dx = [pi[0] - pj[0], pi[1] - pj[1], pi[2] - pj[2]];
                        let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + 1e-6;
                        // A Lennard-Jones-flavored pair force magnitude.
                        let inv = 1.0 / r2;
                        let mag = inv * inv - 0.01 * inv;
                        let f = [mag * dx[0], mag * dx[1], mag * dx[2]];
                        add(i, f, &mut acc);
                        add(j, [-f[0], -f[1], -f[2]], &mut acc);
                        p.compute(pair_ns);
                    }
                }
                // Shared accumulation under molecule-chunk locks: one lock
                // per owning processor's chunk, acquired once per foreign
                // chunk per step (SPLASH Water batches its per-molecule
                // lock traffic the same way; the paper's 32-processor run
                // shows only ~3.7K lock acquires in total).
                let owner_of = |m: usize| {
                    (0..np)
                        .find(|&q| {
                            let (s, e) = chunk_range(n, np, q);
                            m >= s && m < e
                        })
                        .unwrap()
                };
                acc.sort_unstable_by_key(|e| owner_of(e.0));
                let mut i = 0;
                while i < acc.len() {
                    let owner = owner_of(acc[i].0);
                    p.lock(owner);
                    while i < acc.len() && owner_of(acc[i].0) == owner {
                        let (idx, f) = acc[i];
                        for d in 0..3 {
                            let cur = force.get(p, 3 * idx + d);
                            force.set(p, 3 * idx + d, cur + f[d]);
                        }
                        i += 1;
                    }
                    p.unlock(owner);
                }
                p.barrier(1);

                // Phase 3: integrate my molecules.
                let dt = 1e-3;
                for i in lo..hi {
                    for d in 0..3 {
                        let v = vel.get(p, 3 * i + d) + dt * force.get(p, 3 * i + d);
                        vel.set(p, 3 * i + d, v);
                        let x = pos.get(p, 3 * i + d) + dt * v;
                        pos.set(p, 3 * i + d, x);
                    }
                }
                p.barrier(2);
            }
        });

        // Force accumulation order varies with the topology, so positions
        // differ in the last few ulps; digest with a tolerance quantization.
        let mut checksum = 0u64;
        for i in 0..3 * n {
            let v = pos.read_back(cluster, i);
            let q = (v * 1e6).round() as i64;
            checksum = checksum.wrapping_mul(31).wrapping_add(q as u64);
        }
        AppOutcome { report, checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;
    use cashmere_core::{ProtocolKind, Topology};

    #[test]
    fn water_matches_sequential_under_every_protocol() {
        let app = Water::new(Scale::Test);
        let seq = run_app(
            &app,
            ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel),
        );
        for protocol in ProtocolKind::PAPER_FOUR {
            let par = run_app(&app, ClusterConfig::new(Topology::new(2, 2), protocol));
            assert_eq!(par.checksum, seq.checksum, "{}", protocol.label());
        }
    }

    #[test]
    fn water_uses_per_molecule_locks() {
        let app = Water::new(Scale::Test);
        let out = run_app(
            &app,
            ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel),
        );
        // Every processor touches roughly every molecule's lock each step.
        assert!(
            out.report.counters.lock_acquires as usize >= app.molecules,
            "migratory phase must go through the locks: {}",
            out.report.counters.lock_acquires
        );
    }
}
