//! The deterministic parallel engine (DESIGN.md §15) on a real service
//! workload: a seeded KvService trace must produce byte-identical reports
//! and checksums no matter how many host workers execute the simulated
//! processors.

use cashmere_apps::{run_app, KvService, Scale};
use cashmere_core::{ClusterConfig, ProtocolKind, Topology};

#[test]
fn kv_service_report_bytes_identical_across_worker_counts() {
    let app = KvService::new(Scale::Test);
    let cfg = |workers| {
        ClusterConfig::new(Topology::new(2, 2), ProtocolKind::OneLevelDiff)
            .with_det_parallel(workers)
    };
    let base = run_app(&app, cfg(1));
    assert_eq!(base.checksum, app.expected_checksum());
    let par = run_app(&app, cfg(4));
    assert_eq!(
        par.report.to_json(),
        base.report.to_json(),
        "KV report bytes diverge between 1 and 4 workers"
    );
    assert_eq!(par.checksum, base.checksum);
}
