//! Criterion micro-benchmarks of the protocol's hot code paths — the
//! reproduction's counterpart to the paper's §3.1 basic-operation costs.
//! (Virtual-time costs are model constants; these benches measure the real
//! execution cost of the simulator's own mechanisms.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, Topology, PAGE_WORDS};
use cashmere_vmpage::{
    apply_incoming_diff, diff_against_twin, flush_update_twin, make_twin, Frame,
};

fn bench_diffs(c: &mut Criterion) {
    let frame = Frame::new();
    let mut twin = make_twin(&frame);
    // Dirty 10% of the page, scattered.
    for i in (0..PAGE_WORDS).step_by(10) {
        frame.store(i, i as u64 + 1);
    }
    c.bench_function("outgoing_diff_10pct", |b| {
        b.iter(|| black_box(diff_against_twin(&frame, &twin)))
    });
    let diff = diff_against_twin(&frame, &twin);
    c.bench_function("flush_update_twin_10pct", |b| {
        b.iter(|| flush_update_twin(&mut twin, black_box(&diff)))
    });
    let mut incoming = [0u64; PAGE_WORDS];
    frame.snapshot(&mut incoming);
    for i in (0..PAGE_WORDS).step_by(17) {
        incoming[i] ^= 0xDEAD;
    }
    c.bench_function("incoming_diff_two_way", |b| {
        b.iter(|| {
            let mut t = make_twin(&frame);
            black_box(apply_incoming_diff(&frame, &mut t, &incoming))
        })
    });
    c.bench_function("twin_create", |b| b.iter(|| black_box(make_twin(&frame))));
}

fn bench_shared_access(c: &mut Criterion) {
    let cfg = ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel).with_heap_pages(8);
    let mut cluster = Cluster::new(cfg);
    let a = cluster.alloc_page_aligned(PAGE_WORDS);
    // Steady-state access cost through the software check + frame path
    // (includes the per-run thread spawn, amortized over 256 accesses).
    c.bench_function("proc_read_write_word_x256", |b| {
        b.iter(|| {
            cluster.run(|p| {
                let mut x = 0u64;
                for i in 0..256 {
                    x = x.wrapping_add(p.read_u64(a + (i % 64)));
                    p.write_u64(a + (i % 64), x);
                }
                black_box(x);
            });
        })
    });
}

fn bench_protocol_round_trip(c: &mut Criterion) {
    c.bench_function("lock_release_acquire_cycle_4procs", |b| {
        b.iter(|| {
            let cfg =
                ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel).with_heap_pages(4);
            let mut cluster = Cluster::new(cfg);
            let w = cluster.alloc(1);
            cluster.run(|p| {
                for _ in 0..5 {
                    p.lock(0);
                    let v = p.read_u64(w);
                    p.write_u64(w, v + 1);
                    p.unlock(0);
                }
            });
            black_box(cluster.read_u64(w));
        })
    });
}

criterion_group! {
    name = benches;
    // Small sample counts: several benches spawn a simulated cluster
    // (OS threads) per iteration.
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_diffs, bench_shared_access, bench_protocol_round_trip
}
criterion_main!(benches);
