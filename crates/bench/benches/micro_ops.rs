//! Micro-benchmarks of the protocol's hot code paths — the reproduction's
//! counterpart to the paper's §3.1 basic-operation costs. (Virtual-time
//! costs are model constants; these benches measure the real execution cost
//! of the simulator's own mechanisms.)
//!
//! Plain `std::time` harness (`harness = false`): the container has no
//! registry access, so criterion is unavailable. Run with
//! `cargo bench -p cashmere-bench`.

use std::hint::black_box;
use std::time::Instant;

use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, Topology, PAGE_WORDS};
use cashmere_vmpage::{
    apply_incoming_diff, diff_against_twin, flush_update_twin, make_twin, Frame,
};

/// Times `f` over `iters` iterations after a short warmup and prints the
/// mean per-iteration cost.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per = total.as_nanos() / u128::from(iters.max(1));
    println!("{name:<32} {per:>12} ns/iter   ({iters} iters)");
}

fn bench_diffs() {
    let frame = Frame::new();
    let mut twin = make_twin(&frame);
    // Dirty 10% of the page, scattered.
    for i in (0..PAGE_WORDS).step_by(10) {
        frame.store(i, i as u64 + 1);
    }
    bench("outgoing_diff_10pct", 10_000, || {
        black_box(diff_against_twin(&frame, &twin));
    });
    let diff = diff_against_twin(&frame, &twin);
    bench("flush_update_twin_10pct", 10_000, || {
        flush_update_twin(&mut twin, black_box(&diff));
    });
    let mut incoming = [0u64; PAGE_WORDS];
    frame.snapshot(&mut incoming);
    for i in (0..PAGE_WORDS).step_by(17) {
        incoming[i] ^= 0xDEAD;
    }
    bench("incoming_diff_two_way", 10_000, || {
        let mut t = make_twin(&frame);
        black_box(apply_incoming_diff(&frame, &mut t, &incoming));
    });
    bench("twin_create", 10_000, || {
        black_box(make_twin(&frame));
    });
}

fn bench_shared_access() {
    let cfg = ClusterConfig::new(Topology::new(1, 1), ProtocolKind::TwoLevel).with_heap_pages(8);
    let mut cluster = Cluster::new(cfg);
    let a = cluster.alloc_page_aligned(PAGE_WORDS);
    // Steady-state access cost through the software check + frame path
    // (includes the per-run thread spawn, amortized over 256 accesses).
    bench("proc_read_write_word_x256", 50, || {
        cluster.run(|p| {
            let mut x = 0u64;
            for i in 0..256 {
                x = x.wrapping_add(p.read_u64(a + (i % 64)));
                p.write_u64(a + (i % 64), x);
            }
            black_box(x);
        });
    });
}

fn bench_protocol_round_trip() {
    bench("lock_release_acquire_cycle_4procs", 20, || {
        let cfg =
            ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel).with_heap_pages(4);
        let mut cluster = Cluster::new(cfg);
        let w = cluster.alloc(1);
        cluster.run(|p| {
            for _ in 0..5 {
                p.lock(0);
                let v = p.read_u64(w);
                p.write_u64(w, v + 1);
                p.unlock(0);
            }
        });
        black_box(cluster.read_u64(w));
    });
}

fn main() {
    bench_diffs();
    bench_shared_access();
    bench_protocol_round_trip();
}
