//! Deterministic-parallelism gate (`scripts/detpar.sh`), DESIGN.md §15.
//!
//! Proves the conservative virtual-time engine is what it claims to be —
//! parallelism inside a run with zero observable effect — in four phases
//! (nonzero exit on any failure):
//!
//! 1. **Golden preflight** (skippable with `--skip-golden`; implied by a
//!    non-`mc` backend): the default *sequential* engine regenerates the
//!    committed `results/vt_golden.jsonl` and the sequential rows of
//!    `results/table2.jsonl` byte-identically — the lookahead-barrier
//!    refactor must not move a byte of the paper artifacts.
//! 2. **Worker-identity matrix.** One paper app (SOR) across all four
//!    protocols at host worker counts {1, 2, 8}, plus a repeat at the
//!    widest count: every cell must produce a byte-identical `Report` and
//!    an equal checksum.
//! 3. **Env opt-in.** `CASHMERE_PROC_WORKERS=2` with no `RunSpec` override
//!    must land on the same bytes as the explicit `with_det_parallel(2)`
//!    run — the two opt-in paths may not diverge.
//! 4. **Wallclock ratio.** The workers=1 vs widest-count wall times of the
//!    matrix runs, recorded (not gated — host wall time is noisy; the
//!    byte-identity above is the hard property).
//!
//! Flags: `--seed N` (echoed into the output for provenance; the SOR data
//! set is deterministic), `--skip-golden`, `--backend {mc,rdma,cxl}`.
//! `CASHMERE_JOBS` is echoed alongside for symmetry with the other gates.
//!
//! Output: `BENCH_detpar.json` — seed, jobs, backend, per-protocol
//! identity verdicts and wall times, and the failure count.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use cashmere_apps::{suite, AppOutcome, Benchmark, Scale, Sor};
use cashmere_bench::golden::{build_goldens, check_table2};
use cashmere_bench::{json_f64, json_str, parse_backend, run_with, RunOpts};
use cashmere_core::{Backend, ProtocolKind};

/// The matrix topology: 8 processors, 4 per node (2 nodes — every worker
/// count below the proc count forces real multiplexing).
const DETPAR_CONFIG: (usize, usize) = (8, 4);

/// Host worker counts exercised; the last entry is the widest and is the
/// one repeated and used for the wallclock ratio.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

struct Args {
    seed: u64,
    skip_golden: bool,
    backend: Backend,
}

fn parse_args() -> Args {
    let mut a = Args {
        seed: 0x5EED,
        skip_golden: false,
        backend: Backend::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                a.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            "--skip-golden" => a.skip_golden = true,
            "--backend" => a.backend = parse_backend(args.next()),
            other => panic!(
                "unknown flag {other:?} (supported: --seed N, --skip-golden, \
                 --backend {{mc,rdma,cxl}})"
            ),
        }
    }
    a
}

/// One timed run of `app` at the given worker count (`None` = the
/// sequential engine).
fn timed_run(
    app: &dyn Benchmark,
    protocol: ProtocolKind,
    backend: Backend,
    det_workers: Option<usize>,
) -> (AppOutcome, f64) {
    let t = Instant::now();
    let (out, _) = run_with(
        app,
        protocol,
        DETPAR_CONFIG.0,
        DETPAR_CONFIG.1,
        RunOpts {
            backend,
            det_workers,
            ..RunOpts::default()
        },
        None,
        false,
    );
    (out, t.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args = parse_args();
    let jobs = std::env::var("CASHMERE_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let mut failures = 0usize;

    let golden = if args.skip_golden {
        eprintln!("[--skip-golden: paper-golden preflight skipped]");
        "skipped"
    } else if args.backend != Backend::MemoryChannel {
        eprintln!(
            "[--backend {} — committed goldens pin the Memory Channel; preflight skipped]",
            args.backend.label()
        );
        "skipped"
    } else if golden_preflight() == 0 {
        "ok"
    } else {
        failures += 1;
        "drift"
    };

    let app = Sor::new(Scale::Test);
    let widest = *WORKER_COUNTS.last().expect("worker counts nonempty");
    let mut cells = Vec::new();
    for protocol in ProtocolKind::PAPER_FOUR {
        let (base, base_wall) = timed_run(&app, protocol, args.backend, Some(WORKER_COUNTS[0]));
        let base_json = base.report.to_json();
        let mut walls = vec![(WORKER_COUNTS[0], base_wall)];
        let mut identical = true;
        for &workers in &WORKER_COUNTS[1..] {
            let (out, wall) = timed_run(&app, protocol, args.backend, Some(workers));
            walls.push((workers, wall));
            if out.report.to_json() != base_json || out.checksum != base.checksum {
                identical = false;
                eprintln!(
                    "detpar {:4}: report diverges at {workers} workers",
                    protocol.label()
                );
            }
        }
        let (again, _) = timed_run(&app, protocol, args.backend, Some(widest));
        let repeat_identical = again.report.to_json() == base_json;
        if !repeat_identical {
            eprintln!(
                "detpar {:4}: repeat run at {widest} workers not byte-identical",
                protocol.label()
            );
        }
        if !identical || !repeat_identical {
            failures += 1;
        }
        let wall1 = walls[0].1;
        let wallw = walls.last().expect("at least one count").1;
        let ratio = if wallw > 0.0 { wall1 / wallw } else { 0.0 };
        println!(
            "detpar {:4} identical={} repeat={} wall w1={wall1:7.1}ms w{widest}={wallw:7.1}ms \
             ratio={ratio:.2}",
            protocol.label(),
            if identical { "ok" } else { "BAD" },
            if repeat_identical { "ok" } else { "BAD" },
        );

        let mut s = String::with_capacity(192);
        s.push('{');
        json_str(&mut s, "protocol", protocol.label());
        let _ = write!(
            s,
            ",\"identical\":{identical},\"repeat_identical\":{repeat_identical},\"wall_ms\":{{"
        );
        for (i, (w, ms)) in walls.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"w{w}\":");
            s.push_str(&cashmere_bench::fmt_json_f64(*ms));
        }
        s.push_str("},");
        json_f64(&mut s, "par_ratio", ratio);
        s.push('}');
        cells.push(s);
    }

    // Phase 3: the env opt-in path must land on the same bytes as the
    // builder path. Set/removed around a single run; the rest of the gate
    // runs with the variable absent.
    let protocol = ProtocolKind::TwoLevel;
    let (explicit, _) = timed_run(&app, protocol, args.backend, Some(2));
    std::env::set_var("CASHMERE_PROC_WORKERS", "2");
    let (via_env, _) = timed_run(&app, protocol, args.backend, None);
    std::env::remove_var("CASHMERE_PROC_WORKERS");
    let env_ok = via_env.report.to_json() == explicit.report.to_json()
        && via_env.checksum == explicit.checksum;
    if !env_ok {
        failures += 1;
        eprintln!("detpar: CASHMERE_PROC_WORKERS=2 diverges from with_det_parallel(2)");
    }
    println!(
        "detpar env opt-in (CASHMERE_PROC_WORKERS=2): {}",
        if env_ok { "ok" } else { "BAD" }
    );

    let mut out = String::from("{\"experiment\":\"detpar\",");
    let _ = write!(
        out,
        "\"seed\":{},\"jobs\":{jobs},\"backend\":\"{}\",\"app\":\"{}\",\"config\":\"{}:{}\",\
         \"workers\":[",
        args.seed,
        args.backend.label(),
        app.name(),
        DETPAR_CONFIG.0,
        DETPAR_CONFIG.1
    );
    for (i, w) in WORKER_COUNTS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{w}");
    }
    let _ = write!(
        out,
        "],\"golden\":\"{golden}\",\"env_optin_ok\":{env_ok},\"cells\":["
    );
    out.push_str(&cells.join(","));
    let _ = write!(out, "],\"failures\":{failures}}}");
    out.push('\n');
    std::fs::write("BENCH_detpar.json", out).expect("write BENCH_detpar.json");
    eprintln!("[wrote BENCH_detpar.json]");

    if failures > 0 {
        eprintln!("FAIL: {failures} detpar check(s) failed");
        std::process::exit(1);
    }
    println!("detpar: all checks passed");
}

/// Phase 1: the sequential engine must still regenerate the committed
/// goldens byte-for-byte (the det refactor touched its charge paths).
fn golden_preflight() -> usize {
    let mut failures = 0usize;
    let apps = suite(Scale::Bench);
    let g = build_goldens(&apps, None, false, false, false);
    let golden_path = Path::new("results/vt_golden.jsonl");
    match std::fs::read_to_string(golden_path) {
        Ok(committed) if committed == g.jsonl => {
            println!(
                "detpar golden: paper goldens byte-identical ({} lines)",
                g.jsonl.lines().count()
            );
        }
        Ok(committed) => {
            failures += 1;
            eprintln!("detpar golden: DRIFT in {}", golden_path.display());
            for (i, (a, b)) in committed.lines().zip(g.jsonl.lines()).enumerate() {
                if a != b {
                    eprintln!(
                        "  line {}:\n    committed: {a}\n    regenerated: {b}",
                        i + 1
                    );
                }
            }
        }
        Err(e) => {
            failures += 1;
            eprintln!(
                "detpar golden: cannot read {} ({e}) — capture goldens first",
                golden_path.display()
            );
        }
    }
    failures + check_table2(&g.seq_secs)
}
