//! Figure 6 reproduction: breakdown of percent normalized execution time at
//! 32 processors for the 2L, 2LS, 1LD, and 1L protocols.
//!
//! As in the paper, each application's bars are normalized to the total
//! execution time of Cashmere-2L (so 2L's bar sums to 100% and slower
//! protocols exceed it), and time divides into User, Protocol, Polling,
//! Comm & Wait, and (1L only) Write Doubling.

use cashmere_apps::{suite, Scale};
use cashmere_bench::{run_best, save_records, Record, RunOpts};
use cashmere_core::{ProtocolKind, TimeCategory};

fn main() {
    let apps = suite(Scale::Bench);
    let mut records = Vec::new();

    println!("Figure 6: Normalized execution-time breakdown at 32 processors (32:4)");
    println!("(percent of the 2L total; columns sum to the protocol's relative time)");
    for app in &apps {
        let outs: Vec<_> = ProtocolKind::PAPER_FOUR
            .iter()
            .map(|&p| {
                (
                    p,
                    run_best(
                        app.as_ref(),
                        p,
                        32,
                        4,
                        RunOpts::default(),
                        app.timing_reps(),
                    ),
                )
            })
            .collect();
        let base = outs[0].1.report.exec_ns.max(1); // 2L execution time
        println!();
        println!("--- {} ---", app.name());
        print!("{:<16}", "Component");
        for (p, _) in &outs {
            print!("{:>9}", p.label());
        }
        println!();
        for cat in TimeCategory::ALL {
            print!("{:<16}", cat.label());
            for (_, out) in &outs {
                // Average per-processor time in this category, relative to
                // the 2L wall time.
                let per_proc = out.report.breakdown.get(cat) / out.report.procs as u64;
                print!("{:>8.1}%", per_proc as f64 / base as f64 * 100.0);
            }
            println!();
        }
        print!("{:<16}", "Total (rel 2L)");
        for (_, out) in &outs {
            print!("{:>8.1}%", out.report.exec_ns as f64 / base as f64 * 100.0);
        }
        println!();
        for (p, out) in &outs {
            records.push(Record::new("fig6", app.name(), *p, 32, 4, out, 0));
        }
    }
    save_records("fig6", &records);
}
