//! Figure 7 reproduction: speedups for the Two-Level (2L), Two-Level-
//! Shootdown (2LS), One-Level-Diffing (1LD), and One-Level-Write-Doubling
//! (1L) protocols across the paper's nine cluster configurations, plus the
//! home-node-optimization extensions of the one-level protocols (the
//! unshaded bar extensions in the paper).
//!
//! Speedups are relative to the uninstrumented sequential time (Table 2).

use cashmere_apps::{suite, Scale};
use cashmere_bench::{run_best, save_records, sequential, Record, RunOpts, PAPER_CONFIGS};
use cashmere_core::ProtocolKind;

fn main() {
    let apps = suite(Scale::Bench);
    let mut records = Vec::new();

    println!("Figure 7: Speedups across cluster configurations");
    for app in &apps {
        let seq = sequential(app.as_ref());
        let seq_ns = seq.report.exec_ns;
        println!();
        println!(
            "--- {} (sequential: {:.4} sim s) ---",
            app.name(),
            seq.report.exec_secs()
        );
        print!("{:<8}", "config");
        for p in [
            ProtocolKind::TwoLevel,
            ProtocolKind::TwoLevelShootdown,
            ProtocolKind::OneLevelDiff,
            ProtocolKind::OneLevelDiffHome,
            ProtocolKind::OneLevelWrite,
            ProtocolKind::OneLevelWriteHome,
        ] {
            print!("{:>8}", p.label());
        }
        println!();
        for (total, per_node) in PAPER_CONFIGS {
            print!("{:<8}", format!("{total}:{per_node}"));
            for protocol in [
                ProtocolKind::TwoLevel,
                ProtocolKind::TwoLevelShootdown,
                ProtocolKind::OneLevelDiff,
                ProtocolKind::OneLevelDiffHome,
                ProtocolKind::OneLevelWrite,
                ProtocolKind::OneLevelWriteHome,
            ] {
                let out = run_best(
                    app.as_ref(),
                    protocol,
                    total,
                    per_node,
                    RunOpts::default(),
                    app.timing_reps(),
                );
                print!("{:>8.2}", out.report.speedup(seq_ns));
                records.push(Record::new(
                    "fig7",
                    app.name(),
                    protocol,
                    total,
                    per_node,
                    &out,
                    seq_ns,
                ));
            }
            println!();
        }
    }
    save_records("fig7", &records);
}
