//! Host-side hot-path microbenchmarks (`cargo run --release -p
//! cashmere-bench --bin hotpath`).
//!
//! Times the three paths the PR-5 allocation/contention pass optimized, in
//! isolation, so future changes can see them without a full sweep:
//!
//! * **twin acquire/release** — pooled ([`PagePool`]) versus a fresh
//!   `Box::new` allocation per twin, including the snapshot copy;
//! * **write-notice post/drain** — striped [`ProcNoticeList`] inserts and
//!   drains, plus first-level [`NoticeBoard`] post/drain round trips;
//! * **directory reads** — [`Directory::read_word`] through the cached
//!   replica handles, and the `sharers` scan built on it.
//!
//! Numbers are host nanoseconds per operation (median of
//! `HOTPATH_ROUNDS` rounds, default 5). Virtual time is not involved:
//! everything here is charge-free host machinery (DESIGN.md §10).

use std::hint::black_box;
use std::time::Instant;

use cashmere_core::config::DirectoryMode;
use cashmere_core::directory::{DirWord, Directory, PermBits};
use cashmere_core::write_notice::{NoticeBoard, ProcNoticeList};
use cashmere_memchan::TransportConfig;
use cashmere_transport::{build_transport, Transport};
use cashmere_vmpage::{make_twin, Frame, PagePool};
use std::sync::Arc;

/// Median ns/op over `rounds` timing rounds of `iters` calls each.
fn bench(rounds: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut per_op: Vec<f64> = (0..rounds)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_op.sort_by(f64::total_cmp);
    per_op[rounds / 2]
}

fn report(name: &str, ns: f64) {
    println!("{name:42} {ns:10.1} ns/op");
}

fn main() {
    let rounds = std::env::var("HOTPATH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(5);
    println!("hotpath microbenchmarks ({rounds} rounds, median reported)");

    // --- twin acquire/release -------------------------------------------
    let frame = Frame::new();
    frame.store(17, 0xDEAD_BEEF);
    let fresh = bench(rounds, 2_000, || {
        black_box(make_twin(black_box(&frame)));
    });
    report("twin: fresh Box::new + snapshot", fresh);

    let pool = PagePool::new();
    let warm = pool.twin_of(&frame);
    pool.release(warm);
    let pooled = bench(rounds, 2_000, || {
        let t = pool.twin_of(black_box(&frame));
        pool.release(black_box(t));
    });
    report("twin: pooled acquire + snapshot + release", pooled);
    println!(
        "  pool reuses so far: {} (idle buffers: {})",
        pool.reuses(),
        pool.idle()
    );

    // --- write-notice posting -------------------------------------------
    const PAGES: usize = 4096;
    let list = ProcNoticeList::new(PAGES, 4);
    let mut page = 0u32;
    let insert = bench(rounds, 10_000, || {
        list.insert(black_box(page % PAGES as u32), (page % 4) as usize);
        page = page.wrapping_add(1);
    });
    report("ProcNoticeList::insert (striped)", insert);
    let drain = bench(rounds, 200, || {
        for p in 0..64u32 {
            list.insert(p, (p % 4) as usize);
        }
        black_box(list.drain());
    });
    report("ProcNoticeList: 64 inserts + drain", drain);

    let board = NoticeBoard::new(4, DirectoryMode::LockFree, 0);
    let mut n = 0u32;
    let post = bench(rounds, 10_000, || {
        board.post(
            (n % 4) as usize,
            ((n / 4) % 4) as usize,
            black_box(n % PAGES as u32),
            0,
        );
        n = n.wrapping_add(1);
    });
    report("NoticeBoard::post", post);
    let board_drain = bench(rounds, 200, || {
        for p in 0..64u32 {
            board.post(1, (p % 4) as usize, p, 0);
        }
        black_box(board.drain(1));
    });
    report("NoticeBoard: 64 posts + drain", board_drain);

    // --- directory reads ------------------------------------------------
    let pnodes = 8;
    let mc = build_transport(TransportConfig::new(
        (0..pnodes).map(|e| e % 2).collect(),
        2,
    ));
    let dir = Directory::new(mc, pnodes, 256, DirectoryMode::LockFree);
    for p in 0..256 {
        dir.write_my_word(
            p,
            p % pnodes,
            DirWord {
                perm: PermBits::Read,
                exclusive: false,
                excl_proc: 0,
            },
            0,
        );
    }
    let mut i = 0usize;
    let read = bench(rounds, 50_000, || {
        black_box(dir.read_word(black_box(i % 256), i % pnodes, (i / 7) % pnodes));
        i = i.wrapping_add(1);
    });
    report("Directory::read_word (replica cache)", read);
    let mut j = 0usize;
    let sharers = bench(rounds, 10_000, || {
        black_box(dir.sharers(black_box(j % 256), j % pnodes, usize::MAX));
        j = j.wrapping_add(1);
    });
    report("Directory::sharers (8-node scan)", sharers);

    // --- region-table lookups -------------------------------------------
    // Every transmit and local read resolves a RegionId first. The lock-free
    // bucket table replaced an RwLock<Vec<Arc<Region>>>; the baseline row
    // recreates that layout (same Arc indirection, same read-side work plus
    // the lock) so the delta isolates the lock acquisition itself.
    const REGIONS: usize = 512;
    let mc2 = Arc::new(TransportConfig::new(vec![0, 0], 1).build_channel());
    let ids: Vec<_> = (0..REGIONS)
        .map(|_| {
            let r = mc2.create_region(4, true);
            mc2.attach_rx(r, 0);
            mc2.write_local(r, 0, 0, 7);
            r
        })
        .collect();
    let mut k = 0usize;
    let lockfree = bench(rounds, 50_000, || {
        black_box(mc2.read_local(black_box(ids[k % REGIONS]), 0, 0));
        k = k.wrapping_add(1);
    });
    report("region lookup: lock-free bucket table", lockfree);

    let locked: parking_lot::RwLock<Vec<Arc<[u64; 4]>>> =
        parking_lot::RwLock::new((0..REGIONS).map(|_| Arc::new([7u64; 4])).collect());
    let mut l = 0usize;
    let rwlock = bench(rounds, 50_000, || {
        let regions = locked.read();
        black_box(regions[black_box(l % REGIONS)][0]);
        l = l.wrapping_add(1);
    });
    report("region lookup: RwLock<Vec<Arc<..>>> baseline", rwlock);

    // --- transport dispatch ---------------------------------------------
    // The engine now reaches the interconnect through `Arc<dyn Transport>`
    // (DESIGN.md §14). These rows price the vtable hop on the remote-write
    // hot path against the pre-trait direct call, on the same channel.
    let direct_chan = Arc::new(TransportConfig::new(vec![0, 1], 2).build_channel());
    let reg = direct_chan.create_region(8, false);
    direct_chan.attach_rx(reg, 1);
    let mut now = 0;
    let mut w = 0u64;
    let direct_call = bench(rounds, 50_000, || {
        now = direct_chan.write(black_box(reg), 0, (w % 8) as usize, w, now);
        w = w.wrapping_add(1);
    });
    report("remote write: direct MemoryChannel call", direct_call);

    let dyn_chan: Arc<dyn Transport> = build_transport(TransportConfig::new(vec![0, 1], 2));
    let dreg = dyn_chan.create_region(8, false);
    dyn_chan.attach_rx(dreg, 1);
    let mut dnow = 0;
    let mut dw = 0u64;
    let dyn_call = bench(rounds, 50_000, || {
        dnow = dyn_chan.write(black_box(dreg), 0, (dw % 8) as usize, dw, dnow);
        dw = dw.wrapping_add(1);
    });
    report("remote write: Arc<dyn Transport> dispatch", dyn_call);

    // --- deterministic parallel engine ----------------------------------
    // The det scheduler's per-operation costs (DESIGN.md §15): the horizon
    // check every read/write/compute entry pays, the coordinator's grant
    // scan over pending gates, and the lookahead clock's advance + wakeup
    // round trip. The checkpoint row is the one on the engine hot path —
    // it must stay a single atomic load when the horizon is open.
    use cashmere_core::det::DetScheduler;
    use cashmere_sim::HorizonClock;
    let sched = Arc::new(DetScheduler::new(32, 8, 50_000));
    let mut hvt = 0u64;
    let horizon = bench(rounds, 50_000, || {
        // The check is one atomic load whatever it answers; nothing parks
        // here because the bench helper only reads.
        black_box(sched.bench_horizon_check(black_box(hvt % 1_000)));
        hvt = hvt.wrapping_add(7);
    });
    report("det: checkpoint horizon check", horizon);

    for p in 0..32 {
        sched.bench_seed_gate(p, (p as u64 + 1) * 1_000, p as u64);
    }
    let scan = bench(rounds, 50_000, || {
        black_box(sched.bench_grant_scan());
    });
    report("det: coordinator grant scan (32 procs)", scan);

    let hc = HorizonClock::new(50_000);
    let mut wvt = 0u64;
    let wakeup = bench(rounds, 50_000, || {
        // One advance plus the sleeper's wait protocol (epoch capture +
        // horizon re-check); the closure never fires because the advance
        // just opened the window.
        let end = hc.advance_past(black_box(wvt));
        hc.wait_past(end - 1, |_| unreachable!("window just opened"));
        wvt = end;
    });
    report("det: horizon advance + wakeup round trip", wakeup);

    // --- workload sampling ----------------------------------------------
    // The service-trace generator's per-op path (DESIGN.md §13): one
    // Zipfian CDF inversion plus the rank→slot map. Allocation-free after
    // setup (proven by crates/workload/tests/alloc_free.rs); these rows
    // keep its cost visible as the keyspace grows.
    use cashmere_workload::{KeyMap, Sampler, XorShift, Zipf};
    let zipf = Zipf::new(4096, 0.99);
    let mut zrng = XorShift::new(0x5EED);
    let invert = bench(rounds, 50_000, || {
        black_box(zipf.invert(black_box(zrng.unit_f64())));
    });
    report("Zipf::invert (4096 keys, theta 0.99)", invert);

    let mut direct = Sampler::new(4096, 0.99, KeyMap::Direct, 0x5EED);
    let sample_direct = bench(rounds, 50_000, || {
        black_box(direct.sample_key());
    });
    report("Sampler::sample_key (direct map)", sample_direct);

    let mut scatter = Sampler::new(4096, 0.99, KeyMap::Scatter, 0x5EED);
    let sample_scatter = bench(rounds, 50_000, || {
        black_box(scatter.sample_key());
    });
    report("Sampler::sample_key (scatter map)", sample_scatter);
}
