//! §3.3.5 reproduction: impact of the lock-free protocol structures.
//!
//! The ablation re-introduces global locks on the directory entries and the
//! remote write-notice lists (compressing each into a single locked word /
//! list). The paper reports 5% (Barnes), 5% (Em3d), and 7% (Ilink)
//! improvements from the lock-free design, tracking each application's
//! volume of directory accesses and write notices.

use cashmere_apps::{suite, Scale};
use cashmere_bench::{fmt_k, run_best, save_records, Record, RunOpts};
use cashmere_core::{DirectoryMode, ProtocolKind};

fn main() {
    let apps = suite(Scale::Bench);
    let mut records = Vec::new();

    println!("Section 3.3.5: Lock-free vs global-lock protocol structures (2L, 32:4)");
    println!();
    println!(
        "{:<9}{:>16}{:>16}{:>12}{:>12}{:>12}",
        "App", "lock-free (s)", "global-lock (s)", "gain", "dir.updates", "notices"
    );
    println!("{:-<77}", "");
    for app in &apps {
        let free = run_best(
            app.as_ref(),
            ProtocolKind::TwoLevel,
            32,
            4,
            RunOpts::default(),
            3,
        );
        let locked = run_best(
            app.as_ref(),
            ProtocolKind::TwoLevel,
            32,
            4,
            RunOpts {
                directory: Some(DirectoryMode::GlobalLock),
                ..Default::default()
            },
            3,
        );
        println!(
            "{:<9}{:>16.3}{:>16.3}{:>11.1}%{:>12}{:>12}",
            app.name(),
            free.report.exec_secs(),
            locked.report.exec_secs(),
            (locked.report.exec_secs() / free.report.exec_secs() - 1.0) * 100.0,
            fmt_k(free.report.counters.directory_updates),
            fmt_k(free.report.counters.write_notices),
        );
        records.push(Record::new(
            "lockfree",
            app.name(),
            ProtocolKind::TwoLevel,
            32,
            4,
            &free,
            0,
        ));
        records.push(Record::new(
            "lockfree_gl",
            app.name(),
            ProtocolKind::TwoLevel,
            32,
            4,
            &locked,
            0,
        ));
    }
    save_records("lockfree", &records);
    println!();
    println!("Paper finding to compare: the gain tracks directory/notice volume —");
    println!("Barnes ~5%, Em3d ~5%, Ilink ~7%, Water ~0%, others insignificant.");
}
