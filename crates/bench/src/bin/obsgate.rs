//! Observability gate (`CHECK_OBS=1` in `scripts/check.sh`).
//!
//! Three phases, nonzero exit on any failure:
//!
//! 1. **Charge-free identity.** Regenerates the deterministic virtual-time
//!    goldens twice — observability off and on — and requires the two
//!    outputs to be byte-identical to each other *and* to the committed
//!    `results/vt_golden.jsonl` (when present). The observability hooks
//!    only read processor clocks, so turning them on must not move a byte.
//!
//! 2. **Figure-7 identity sweep.** Runs the full application suite (test
//!    scale) × the four paper protocols at 8:4 with observability on and
//!    asserts, per cell, that the five Figure-7 categories sum to *exactly*
//!    the run's total charged virtual time, and that the span stream passes
//!    `cashmere_check::audit_spans` (proper nesting, nothing left open).
//!    Writes `results/fig7.jsonl` and `results/fig7.txt`.
//!
//! 3. **Chrome-trace schema lint.** Exports one cell's spans (SOR under 2L)
//!    as `results/trace_SOR_2L.json` and lints it against the
//!    `trace_event` schema subset Perfetto and `chrome://tracing` rely on.
//!
//! Flags: `--backend {mc,rdma,cxl}` (DESIGN.md §14) — on a non-`mc`
//! backend phase 1 compares obs-off vs obs-on only (the committed goldens
//! pin the Memory Channel); the Figure-7 identity and span audits run
//! unchanged on every fabric.

use std::path::Path;

use cashmere_apps::{suite, Scale};
use cashmere_bench::golden::build_goldens;
use cashmere_bench::sweep::{run_sweep, SweepSpec};
use cashmere_bench::{obsout, parse_backend, RunOpts};
use cashmere_check::audit_spans;
use cashmere_core::{Backend, ProtocolKind};

/// The Figure-7 sweep configuration: 8 processors, 4 per node — two
/// protocol nodes, so every category (including message and wait time on
/// remote fetches) is exercised.
const GATE_CONFIG: (usize, usize) = (8, 4);

fn parse_args() -> Backend {
    let mut backend = Backend::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => backend = parse_backend(args.next()),
            other => panic!("unknown flag {other:?} (supported: --backend {{mc,rdma,cxl}})"),
        }
    }
    backend
}

fn main() {
    let backend = parse_args();
    let mut failures = 0usize;
    failures += charge_free_identity(backend);
    failures += fig7_sweep(backend);
    if failures > 0 {
        eprintln!("FAIL: {failures} observability check(s) failed");
        std::process::exit(1);
    }
    println!("obsgate: all checks passed");
}

/// Phase 1: goldens with observability on must be byte-identical to
/// goldens with it off, and to the committed file when one exists.
fn charge_free_identity(backend: Backend) -> usize {
    if backend != Backend::MemoryChannel {
        eprintln!(
            "[--backend {} — committed goldens pin the Memory Channel; phase 1 skipped]",
            backend.label()
        );
        return 0;
    }
    let mut failures = 0usize;
    let apps = suite(Scale::Bench);
    let off = build_goldens(&apps, None, false, false, false);
    let on = build_goldens(&apps, None, false, false, true);
    if off.jsonl == on.jsonl {
        println!(
            "obsgate identity: obs-on goldens byte-identical to obs-off ({} lines)",
            off.jsonl.lines().count()
        );
    } else {
        failures += 1;
        eprintln!("obsgate identity: DRIFT — enabling observability moved virtual time");
        for (i, (a, b)) in off.jsonl.lines().zip(on.jsonl.lines()).enumerate() {
            if a != b {
                eprintln!("  line {}:\n    obs off: {a}\n    obs on:  {b}", i + 1);
            }
        }
    }
    let golden_path = Path::new("results/vt_golden.jsonl");
    match std::fs::read_to_string(golden_path) {
        Ok(committed) if committed == on.jsonl => {
            println!(
                "obsgate identity: obs-on goldens match {}",
                golden_path.display()
            );
        }
        Ok(_) => {
            failures += 1;
            eprintln!(
                "obsgate identity: DRIFT — obs-on goldens differ from {}",
                golden_path.display()
            );
        }
        Err(_) => {
            eprintln!(
                "[no {} — committed-golden comparison skipped]",
                golden_path.display()
            );
        }
    }
    failures
}

/// Phases 2 and 3: the Figure-7 identity sweep, the span audit, and the
/// Chrome-trace lint.
fn fig7_sweep(backend: Backend) -> usize {
    let mut failures = 0usize;
    let apps = suite(Scale::Test);
    let spec = SweepSpec {
        total: GATE_CONFIG.0,
        per_node: GATE_CONFIG.1,
        opts: RunOpts {
            obs: true,
            backend,
            ..RunOpts::default()
        },
        ..SweepSpec::new(&apps, &ProtocolKind::PAPER_FOUR)
    };
    let cells = run_sweep(&spec, |cell| {
        let report = &cell.outcome.report;
        let obs = report.obs.as_ref().expect("sweep ran with obs on");
        let fig7 = obs.fig7.total();
        let vt = report.breakdown.total();
        let identity_ok = fig7 == vt;
        if !identity_ok {
            failures += 1;
            eprintln!(
                "obsgate {:8} {:4}: FIG7 {fig7} != total VT {vt} (off by {})",
                cell.app,
                cell.protocol.label(),
                vt.abs_diff(fig7)
            );
        }
        let span_report = audit_spans(obs);
        let spans_ok = span_report.is_clean();
        if !spans_ok {
            failures += 1;
            eprintln!(
                "obsgate {:8} {:4}: SPAN AUDIT DIRTY\n{}",
                cell.app,
                cell.protocol.label(),
                span_report.summary()
            );
        }
        println!(
            "obsgate {:8} {:4} total_vt={:14} fig7={} spans={:6} ({})",
            cell.app,
            cell.protocol.label(),
            vt,
            if identity_ok { "exact" } else { "DRIFT" },
            span_report.events,
            if spans_ok { "nested" } else { "DIRTY" },
        );
    });

    let config = format!("{}:{}", GATE_CONFIG.0, GATE_CONFIG.1);
    match obsout::write_fig7(&cells, &config) {
        Ok((jsonl, txt, rows)) => {
            if rows == cells.len() {
                eprintln!(
                    "[wrote {} and {} ({rows} rows)]",
                    jsonl.display(),
                    txt.display()
                );
            } else {
                failures += 1;
                eprintln!(
                    "obsgate: only {rows} of {} cells produced Figure-7 rows",
                    cells.len()
                );
            }
        }
        Err(e) => {
            failures += 1;
            eprintln!("obsgate: writing fig7 outputs failed: {e}");
        }
    }

    let trace_cell = cells
        .iter()
        .find(|c| c.app == "SOR" && c.protocol == ProtocolKind::TwoLevel)
        .unwrap_or(&cells[0]);
    match obsout::export_trace(trace_cell) {
        Ok((path, events)) => {
            println!(
                "obsgate trace: {} lints clean ({events} duration events)",
                path.display()
            );
        }
        Err(e) => {
            failures += 1;
            eprintln!("obsgate trace: {e}");
        }
    }
    failures
}
