//! Calibration probe: full breakdown + counters for one app at 32:4.
use cashmere_apps::{suite, Scale};
use cashmere_bench::{run, sequential, RunOpts};
use cashmere_core::{ProtocolKind, TimeCategory};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Barnes".into());
    for app in suite(Scale::Bench) {
        if app.name() != name {
            continue;
        }
        let seq = sequential(app.as_ref());
        let out = run(
            app.as_ref(),
            ProtocolKind::TwoLevel,
            32,
            4,
            RunOpts::default(),
        );
        let r = &out.report;
        let pp = |c: TimeCategory| r.breakdown.get(c) as f64 / r.procs as f64 / 1e9;
        println!(
            "{} seq={:.3} exec={:.3} speedup={:.2}",
            name,
            seq.report.exec_secs(),
            r.exec_secs(),
            r.speedup(seq.report.exec_ns)
        );
        println!(
            "per-proc: user={:.3} proto={:.3} poll={:.3} comm={:.3}",
            pp(TimeCategory::User),
            pp(TimeCategory::Protocol),
            pp(TimeCategory::Polling),
            pp(TimeCategory::CommWait)
        );
        let c = r.counters;
        println!(
            "locks={} barriers={} rf={} wf={} xfer={} wn={} dir={} excl={} twin={} data={}MB",
            c.lock_acquires,
            c.barriers,
            c.read_faults,
            c.write_faults,
            c.page_transfers,
            c.write_notices,
            c.directory_updates,
            c.exclusive_transitions,
            c.twin_creations,
            c.data_bytes / 1_000_000
        );
    }
}
