//! Quick 32:4 snapshot: per-app speedups for 2L vs 1LD (calibration aid).
use cashmere_apps::{suite, Scale};
use cashmere_bench::{run, sequential, RunOpts};
use cashmere_core::ProtocolKind;

fn main() {
    for app in suite(Scale::Bench) {
        let seq = sequential(app.as_ref());
        let two = run(
            app.as_ref(),
            ProtocolKind::TwoLevel,
            32,
            4,
            RunOpts::default(),
        );
        let one = run(
            app.as_ref(),
            ProtocolKind::OneLevelDiff,
            32,
            4,
            RunOpts::default(),
        );
        println!(
            "{:8} seq={:8.3}s  2L={:6.2}  1LD={:6.2}  (2L/1LD {:+.0}%)",
            app.name(),
            seq.report.exec_secs(),
            two.report.speedup(seq.report.exec_ns),
            one.report.speedup(seq.report.exec_ns),
            (one.report.exec_secs() / two.report.exec_secs() - 1.0) * 100.0
        );
    }
}
