//! Scaling-curve experiment past the paper's 8×4 (DESIGN.md §12).
//!
//! The paper's prototype tops out at eight 4-processor nodes. This harness
//! sweeps the same protocols across progressively larger clusters —
//! 8×4 → 16×8 → 32×8 → 64×16 by default — under both directory layouts:
//!
//! * `replicated` — the paper's per-node full replica (the default
//!   [`DirectoryMode::LockFree`]), whose update broadcast and memory grow
//!   linearly in protocol-node count;
//! * `sparse` — the home-sharded directory, O(pages) total memory and O(1)
//!   update messages.
//!
//! Every cell runs with the protocol auditor on and its checksum compared
//! against the app's sequential baseline; the harness **fails** if any
//! audit is dirty, any checksum drifts, the largest shape completes fewer
//! than two applications under 2L, or the sparse/replicated protocol-byte
//! ratio fails to shrink strictly as the cluster grows (the sub-linearity
//! claim this experiment exists to demonstrate).
//!
//! Before any cell runs, the deterministic virtual-time goldens are
//! regenerated and byte-compared against `results/vt_golden.jsonl` (plus
//! the `table2.jsonl` sequential rows): scaling work must not move the
//! default 8×4 replicated path by a single byte.
//!
//! Usage:
//!   scaling [--ci] [--seed N] [--backend {mc,rdma,cxl}] [SHAPE ...]
//!
//! `--ci` restricts the sweep to the CI-sized subset (8x4, 16x8). Shapes
//! parse through `Topology`'s grammar: `16x8` (nodes × procs/node) or the
//! paper's `128:8` (total procs : per node). `--backend` swaps the
//! interconnect cost model (DESIGN.md §14); on a non-`mc` backend the
//! vt_golden preflight is skipped (the committed goldens pin the Memory
//! Channel). `CASHMERE_JOBS` bounds how many cells run concurrently
//! (default: available parallelism). Output: `BENCH_scaling.json`,
//! seed/jobs/shapes/backend echoed for provenance.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use cashmere_apps::{Benchmark, Gauss, Scale, Sor};
use cashmere_bench::golden::{build_goldens, check_table2};
use cashmere_bench::sweep::jobs_from_env;
use cashmere_bench::{fmt_json_f64, json_key, json_str, parse_backend, sequential};
use cashmere_check::audit;
use cashmere_core::directory::DirUsage;
use cashmere_core::{Backend, DirectoryMode, ProtocolKind, RunSpec, Topology};

/// The default scaling ladder; `--ci` keeps the first two rungs.
const FULL_SHAPES: [&str; 4] = ["8x4", "16x8", "32x8", "64x16"];
const CI_SHAPES: [&str; 2] = ["8x4", "16x8"];

/// The two applications scaled: one nearest-neighbor (SOR), one broadcast-
/// heavy (Gauss). `Scale::Test` instances stay sub-second per cell even at
/// 64×16, where idle bands just ride the barriers.
fn apps() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Sor::new(Scale::Test)),
        Box::new(Gauss::new(Scale::Test)),
    ]
}

fn mode_label(mode: DirectoryMode) -> &'static str {
    match mode {
        DirectoryMode::Sparse => "sparse",
        _ => "replicated",
    }
}

/// One completed cell of the shape × protocol × directory-mode × app
/// matrix.
struct Cell {
    app: &'static str,
    protocol: ProtocolKind,
    mode: DirectoryMode,
    topo: Topology,
    pnodes: usize,
    exec_ns: u64,
    speedup: f64,
    checksum_ok: bool,
    audit_clean: bool,
    usage: DirUsage,
}

impl Cell {
    fn to_json(&self, seed: u64) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        json_str(&mut s, "experiment", "scaling");
        let _ = write!(s, ",\"seed\":{seed},");
        json_str(&mut s, "app", self.app);
        s.push(',');
        json_str(&mut s, "protocol", self.protocol.label());
        s.push(',');
        json_str(&mut s, "directory", mode_label(self.mode));
        s.push(',');
        json_str(&mut s, "shape", &self.topo.to_string());
        s.push(',');
        json_str(
            &mut s,
            "config",
            &format!("{}:{}", self.topo.total_procs(), self.topo.procs_per_node()),
        );
        let _ = write!(
            s,
            ",\"pnodes\":{},\"exec_secs\":{},\"speedup\":{},\
             \"checksum_ok\":{},\"audit_clean\":{}",
            self.pnodes,
            fmt_json_f64(self.exec_ns as f64 / 1e9),
            fmt_json_f64(self.speedup),
            self.checksum_ok,
            self.audit_clean
        );
        let u = &self.usage;
        let _ = write!(
            s,
            ",\"protocol_bytes\":{},\"dir_updates\":{},\"dir_update_bytes\":{},\
             \"dir_probes\":{},\"dir_probe_bytes\":{},\"dir_misses\":{},\
             \"dir_miss_bytes\":{},\"dir_mc_bytes\":{},\"dir_cache_bytes\":{}}}",
            u.protocol_bytes(),
            u.updates,
            u.update_bytes,
            u.probes,
            u.probe_bytes,
            u.misses,
            u.miss_bytes,
            u.mc_bytes,
            u.cache_bytes
        );
        s
    }
}

/// Runs one cell: build the cluster, execute the app, audit the trace, and
/// read the directory's traffic/memory accounting back off the engine.
fn run_cell(
    app: &dyn Benchmark,
    name: &'static str,
    protocol: ProtocolKind,
    mode: DirectoryMode,
    topo: Topology,
    backend: Backend,
    seq: &BTreeMap<&'static str, (u64, u64)>,
) -> Cell {
    let spec = RunSpec::new(topo, protocol)
        .with_directory(mode)
        .with_transport(backend)
        .with_audit(true);
    let mut cluster = spec.build_cluster(|cfg| app.configure(cfg));
    let out = app.execute(&mut cluster);
    let trace = cluster.take_trace();
    let usage = cluster.engine().directory().usage();
    let (seq_ns, seq_checksum) = seq[name];
    Cell {
        app: name,
        protocol,
        mode,
        topo,
        pnodes: protocol.node_map().protocol_nodes(&topo),
        exec_ns: out.report.exec_ns,
        speedup: if out.report.exec_ns > 0 {
            seq_ns as f64 / out.report.exec_ns as f64
        } else {
            0.0
        },
        checksum_ok: out.checksum == seq_checksum,
        audit_clean: audit(&trace).is_clean(),
        usage,
    }
}

fn main() {
    let mut shapes: Vec<String> = Vec::new();
    let mut seed: u64 = 0x5CA1E;
    let mut ci = false;
    let mut backend = Backend::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ci" => ci = true,
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N");
            }
            "--backend" => backend = parse_backend(args.next()),
            s => shapes.push(s.to_string()),
        }
    }
    if shapes.is_empty() {
        let defaults = if ci { &CI_SHAPES[..] } else { &FULL_SHAPES[..] };
        shapes = defaults.iter().map(|s| s.to_string()).collect();
    }
    let topos: Vec<Topology> = shapes
        .iter()
        .map(|s| s.parse().unwrap_or_else(|e| panic!("{e}")))
        .collect();
    let jobs = jobs_from_env();

    // --- Preflight: scaling work must not move the default path ----------
    if backend == Backend::MemoryChannel {
        let bench_apps = cashmere_apps::suite(Scale::Bench);
        let g = build_goldens(&bench_apps, None, false, false, false);
        let golden_path = std::path::Path::new("results/vt_golden.jsonl");
        let mut failures = 0usize;
        match std::fs::read_to_string(golden_path) {
            Ok(committed) if committed == g.jsonl => {
                println!(
                    "preflight: vt_golden OK ({} lines, byte-identical)",
                    g.jsonl.lines().count()
                );
            }
            Ok(_) => {
                failures += 1;
                eprintln!(
                    "preflight: DRIFT — regenerated goldens differ from {}",
                    golden_path.display()
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("preflight: cannot read {}: {e}", golden_path.display());
            }
        }
        failures += check_table2(&g.seq_secs);
        if failures > 0 {
            eprintln!("FAIL: scaling preflight ({failures} failures) — default 8×4 path moved");
            std::process::exit(1);
        }
    } else {
        eprintln!(
            "[--backend {} — committed goldens pin the Memory Channel; preflight skipped]",
            backend.label()
        );
    }

    // --- Sequential baselines (speedup denominator + checksum oracle) ----
    let apps = apps();
    let seq: BTreeMap<&'static str, (u64, u64)> = apps
        .iter()
        .map(|a| {
            let out = sequential(a.as_ref());
            (a.name(), (out.report.exec_ns, out.checksum))
        })
        .collect();

    // --- The matrix: shape × protocol × directory mode × app -------------
    let modes = [DirectoryMode::LockFree, DirectoryMode::Sparse];
    let mut combos: Vec<(Topology, ProtocolKind, DirectoryMode, &dyn Benchmark)> = Vec::new();
    for &t in &topos {
        for p in ProtocolKind::PAPER_FOUR {
            for &m in &modes {
                for a in &apps {
                    combos.push((t, p, m, a.as_ref()));
                }
            }
        }
    }
    println!(
        "scaling: {} cells ({} shapes × 4 protocols × 2 directory modes × {} apps), {jobs} jobs",
        combos.len(),
        topos.len(),
        apps.len()
    );
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Cell)>();
    let mut slots: Vec<Option<Cell>> = (0..combos.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(combos.len()) {
            let tx = tx.clone();
            let next = &next;
            let combos = &combos;
            let seq = &seq;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(&(topo, protocol, mode, app)) = combos.get(i) else {
                    break;
                };
                let cell = run_cell(app, app.name(), protocol, mode, topo, backend, seq);
                if tx.send((i, cell)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, cell) in rx {
            println!(
                "{:7} {:4} {:10} {:6} pnodes={:4} exec={:9.4}s speedup={:6.2} \
                 proto_bytes={:10} dir_mem={:8}B audit={} checksum={}",
                cell.topo.to_string(),
                cell.protocol.label(),
                mode_label(cell.mode),
                cell.app,
                cell.pnodes,
                cell.exec_ns as f64 / 1e9,
                cell.speedup,
                cell.usage.protocol_bytes(),
                cell.usage.mc_bytes + cell.usage.cache_bytes,
                if cell.audit_clean { "clean" } else { "DIRTY" },
                if cell.checksum_ok { "ok" } else { "DRIFT" },
            );
            slots[i] = Some(cell);
        }
    });
    let cells: Vec<Cell> = slots
        .into_iter()
        .map(|c| c.expect("every scaling cell must complete"))
        .collect();

    // --- Gates ------------------------------------------------------------
    let mut fail = 0usize;
    for c in &cells {
        if !c.audit_clean {
            eprintln!(
                "FAIL: dirty audit — {} {} {} {}",
                c.topo,
                c.protocol.label(),
                mode_label(c.mode),
                c.app
            );
            fail += 1;
        }
        if !c.checksum_ok {
            eprintln!(
                "FAIL: checksum drift — {} {} {} {}",
                c.topo,
                c.protocol.label(),
                mode_label(c.mode),
                c.app
            );
            fail += 1;
        }
    }
    // The largest shape must complete at least two applications under 2L.
    let largest = *topos
        .iter()
        .max_by_key(|t| t.total_procs())
        .expect("at least one shape");
    let at_largest = cells
        .iter()
        .filter(|c| c.topo == largest && c.protocol == ProtocolKind::TwoLevel && c.audit_clean)
        .map(|c| c.app)
        .collect::<std::collections::BTreeSet<_>>();
    if at_largest.len() < 2 {
        eprintln!(
            "FAIL: only {} app(s) completed cleanly under 2L at {largest}",
            at_largest.len()
        );
        fail += 1;
    }
    // Sub-linearity: per (app, protocol), two checks prove the sparse
    // directory's traffic grows sub-linearly in node count vs replication.
    //
    // 1. Per-update fan-out bytes (deterministic by construction, immune
    //    to the host-scheduling jitter in *how many* updates an app
    //    issues): replicated delivery costs 8·(pnodes−1) bytes per update
    //    and must grow with the cluster; a sparse update is a single
    //    bounded home-shard message and must stay flat.
    // 2. End-to-end, the sparse/replicated *total* protocol-byte ratio
    //    must shrink from the smallest to the largest cluster. Totals are
    //    workload-noisy between adjacent shapes (Gauss's lock hand-offs
    //    reshuffle retries run to run), so this is an endpoint check, not
    //    a per-step one.
    let mut ratios: Vec<String> = Vec::new();
    if topos.len() >= 2 {
        struct Point {
            pnodes: usize,
            sparse_bytes: u64,
            ratio: f64,
            sparse_per_update: f64,
            repl_per_update: f64,
        }
        for p in ProtocolKind::PAPER_FOUR {
            for a in apps.iter().map(|a| a.name()) {
                let curve: Vec<Point> = topos
                    .iter()
                    .map(|&t| {
                        let by_mode = |m: DirectoryMode| {
                            cells
                                .iter()
                                .find(|c| {
                                    c.topo == t && c.protocol == p && c.mode == m && c.app == a
                                })
                                .map(|c| c.usage)
                                .expect("full matrix")
                        };
                        let sparse = by_mode(DirectoryMode::Sparse);
                        let repl = by_mode(DirectoryMode::LockFree);
                        Point {
                            pnodes: p.node_map().protocol_nodes(&t),
                            sparse_bytes: sparse.protocol_bytes(),
                            ratio: sparse.protocol_bytes() as f64
                                / repl.protocol_bytes().max(1) as f64,
                            sparse_per_update: sparse.update_bytes as f64
                                / sparse.updates.max(1) as f64,
                            repl_per_update: repl.update_bytes as f64 / repl.updates.max(1) as f64,
                        }
                    })
                    .collect();
                // A sparse update never exceeds one 12-byte shard message;
                // replicated fan-out must grow with the cluster.
                let flat = curve.iter().all(|pt| pt.sparse_per_update <= 12.0);
                let growing = curve
                    .windows(2)
                    .all(|w| w[1].repl_per_update > w[0].repl_per_update);
                // The endpoint totals need a wide node span to rise above
                // workload noise; the CI subset (≤4× growth) relies on the
                // deterministic per-update checks alone.
                let (first, last) = (curve.first().unwrap(), curve.last().unwrap());
                let ratio_checked = last.pnodes >= first.pnodes * 8;
                let shrinking = !ratio_checked || last.ratio < first.ratio;
                let ok = flat && growing && shrinking;
                let mut row = String::new();
                let _ = write!(row, "sublinear {:4} {:6}", p.label(), a);
                for pt in &curve {
                    let _ = write!(
                        row,
                        "  n={}:{:.1}B/upd vs {:.1} (ratio {:.4})",
                        pt.pnodes, pt.sparse_per_update, pt.repl_per_update, pt.ratio
                    );
                }
                println!("{row}  {}", if ok { "OK" } else { "FAIL" });
                ratios.push(format!(
                    "{{\"protocol\":\"{}\",\"app\":\"{a}\",\"curve\":[{}],\
                     \"sparse_per_update_flat\":{flat},\
                     \"replicated_per_update_growing\":{growing},\
                     \"ratio_checked\":{ratio_checked},\
                     \"ratio_shrinking\":{shrinking}}}",
                    p.label(),
                    curve
                        .iter()
                        .map(|pt| format!(
                            "{{\"pnodes\":{},\"sparse_bytes\":{},\
                             \"sparse_over_replicated\":{},\
                             \"sparse_bytes_per_update\":{},\
                             \"replicated_bytes_per_update\":{}}}",
                            pt.pnodes,
                            pt.sparse_bytes,
                            fmt_json_f64(pt.ratio),
                            fmt_json_f64(pt.sparse_per_update),
                            fmt_json_f64(pt.repl_per_update)
                        ))
                        .collect::<Vec<_>>()
                        .join(",")
                ));
                if !flat {
                    eprintln!(
                        "FAIL: sparse per-update bytes exceed one shard message for {} {a}",
                        p.label()
                    );
                    fail += 1;
                }
                if !growing {
                    eprintln!(
                        "FAIL: replicated per-update fan-out not growing with node count for {} {a}",
                        p.label()
                    );
                    fail += 1;
                }
                if !shrinking {
                    eprintln!(
                        "FAIL: sparse/replicated byte ratio did not shrink from {} to {} nodes for {} {a}",
                        first.pnodes,
                        last.pnodes,
                        p.label()
                    );
                    fail += 1;
                }
            }
        }
    }

    // --- BENCH_scaling.json -----------------------------------------------
    let mut out = String::with_capacity(cells.len() * 512);
    out.push('{');
    json_str(&mut out, "experiment", "scaling");
    out.push(',');
    json_str(&mut out, "backend", backend.label());
    let _ = write!(out, ",\"seed\":{seed},\"jobs\":{jobs},");
    json_key(&mut out, "shapes");
    let _ = write!(
        out,
        "[{}],\"node_counts\":[{}],",
        topos
            .iter()
            .map(|t| format!("\"{t}\""))
            .collect::<Vec<_>>()
            .join(","),
        topos
            .iter()
            .map(|t| t.nodes().to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    json_key(&mut out, "apps");
    let _ = write!(
        out,
        "[{}],",
        apps.iter()
            .map(|a| format!("\"{}\"", a.name()))
            .collect::<Vec<_>>()
            .join(",")
    );
    json_key(&mut out, "sublinearity");
    let _ = write!(out, "[{}],", ratios.join(","));
    json_key(&mut out, "cells");
    out.push('[');
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&c.to_json(seed));
    }
    out.push_str("]}");
    std::fs::write("BENCH_scaling.json", &out).expect("write BENCH_scaling.json");
    println!("[wrote BENCH_scaling.json: {} cells]", cells.len());

    if fail > 0 {
        eprintln!("FAIL: scaling gate ({fail} failures)");
        std::process::exit(1);
    }
    println!("scaling: all gates passed");
}
