//! Service-workload gate (`scripts/service.sh`), DESIGN.md §13.
//!
//! Gates the two trace-driven service applications — `KvService` and
//! `BankOltp` — the same way the paper apps are gated, with four phases
//! (nonzero exit on any failure):
//!
//! 1. **Golden preflight** (skippable with `--skip-golden`): regenerates
//!    the deterministic paper-suite goldens and requires byte-identity with
//!    the committed `results/vt_golden.jsonl` plus the sequential rows of
//!    `results/table2.jsonl` — the service subsystem must not move a byte
//!    of the paper artifacts.
//! 2. **Determinism.** The same seed must reproduce a byte-identical trace
//!    ([`Trace::to_bytes`]) and, sequentially (1:1, uninstrumented), an
//!    identical virtual time and checksum; checksums must equal the
//!    host-side expectations (KV: sequential trace replay; Bank: the
//!    conserved ledger total).
//! 3. **Audit + heat sweep.** Both apps × all four paper protocols at 4:2
//!    with the auditor and observability on: every cell must audit clean
//!    and reproduce its expected checksum, and the per-page fault heat of
//!    a Zipf-skewed KV run must be visibly more concentrated than a
//!    uniform (θ = 0) control — the configured skew has to show up in the
//!    pages the protocols actually fight over.
//! 4. **Fault soak.** Both apps × all four protocols × two nonzero fault
//!    plans (lost requests; a lossy/delaying link with outages), audit on:
//!    checksums must match the fault-free expectation, audits must stay
//!    clean, and the campaign must show nonzero injected faults per plan.
//!
//! Flags: `--seed N` re-seeds the workload traces and fault plans (default
//! 0x5EED; echoed into the output), `--skip-golden` skips phase 1,
//! `--backend {mc,rdma,cxl}` swaps the interconnect cost model
//! (DESIGN.md §14; non-`mc` implies the phase-1 skip since the committed
//! goldens pin the Memory Channel — determinism, audit, heat, and soak all
//! still run).
//!
//! Output: `BENCH_service.json` — seed, backend, per-app trace digests and
//! determinism results, per-cell sweep/soak records, and the fault-heat
//! top-k with the skew-vs-uniform shares.

use std::fmt::Write as _;
use std::path::Path;

use cashmere_apps::{suite, BankOltp, Benchmark, KvService, Scale};
use cashmere_bench::golden::{build_goldens, check_table2};
use cashmere_bench::sweep::{run_sweep, SweepPlan, SweepSpec};
use cashmere_bench::{json_f64, json_str, parse_backend, run_with, sequential_with, RunOpts};
use cashmere_check::audit;
use cashmere_core::{Backend, FaultKind, FaultPlan, FaultRule, ProtocolKind};

/// The sweep/soak topology: 4 processors on 2 nodes (same as the soak
/// harness — every cell crosses node boundaries).
const SERVICE_CONFIG: (usize, usize) = (4, 2);

/// Hot pages reported per cell and used by the skew gate.
const HEAT_TOP_K: usize = 4;

/// The skewed KV heat concentration must beat the uniform control's by at
/// least this factor (empirically ~2× at θ = 0.99; see DESIGN.md §13).
const HEAT_SKEW_FACTOR: f64 = 1.2;

struct Args {
    seed: u64,
    skip_golden: bool,
    backend: Backend,
}

fn parse_args() -> Args {
    let mut a = Args {
        seed: 0x5EED,
        skip_golden: false,
        backend: Backend::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                a.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            "--skip-golden" => a.skip_golden = true,
            "--backend" => a.backend = parse_backend(args.next()),
            other => panic!(
                "unknown flag {other:?} (supported: --seed N, --skip-golden, \
                 --backend {{mc,rdma,cxl}})"
            ),
        }
    }
    a
}

/// The two service apps at `scale`, traces re-seeded from `seed` (distinct
/// streams per app).
fn service_apps(scale: Scale, seed: u64) -> (KvService, BankOltp) {
    let mut kv = KvService::new(scale);
    kv.spec.seed = seed;
    let mut bank = BankOltp::new(scale);
    bank.spec.seed = seed ^ 0x0BA2_0172;
    (kv, bank)
}

fn main() {
    let args = parse_args();
    let mut failures = 0usize;

    if args.skip_golden {
        eprintln!("[--skip-golden: paper-golden preflight skipped]");
    } else if args.backend != Backend::MemoryChannel {
        eprintln!(
            "[--backend {} — committed goldens pin the Memory Channel; preflight skipped]",
            args.backend.label()
        );
    } else {
        failures += golden_preflight();
    }

    let (det_json, det_failures) = determinism_gate(args.seed);
    failures += det_failures;

    let (cell_records, heat_json, sweep_failures) = audit_heat_sweep(args.seed, args.backend);
    failures += sweep_failures;

    let (soak_records, soak_failures) = fault_soak(args.seed, args.backend);
    failures += soak_failures;

    let mut out = String::from("{\"experiment\":\"service\",");
    let _ = write!(
        out,
        "\"seed\":{},\"backend\":\"{}\",\"config\":\"{}:{}\",",
        args.seed,
        args.backend.label(),
        SERVICE_CONFIG.0,
        SERVICE_CONFIG.1
    );
    out.push_str("\"determinism\":[");
    out.push_str(&det_json.join(","));
    out.push_str("],\"cells\":[");
    let mut all = cell_records;
    all.extend(soak_records);
    out.push_str(&all.join(","));
    out.push_str("],\"heat\":");
    out.push_str(&heat_json);
    let _ = write!(out, ",\"failures\":{failures}}}");
    out.push('\n');
    std::fs::write("BENCH_service.json", out).expect("write BENCH_service.json");
    eprintln!("[wrote BENCH_service.json]");

    if failures > 0 {
        eprintln!("FAIL: {failures} service check(s) failed");
        std::process::exit(1);
    }
    println!("service: all checks passed");
}

/// Phase 1: the service subsystem must leave the committed paper goldens
/// byte-identical.
fn golden_preflight() -> usize {
    let mut failures = 0usize;
    let apps = suite(Scale::Bench);
    let g = build_goldens(&apps, None, false, false, false);
    let golden_path = Path::new("results/vt_golden.jsonl");
    match std::fs::read_to_string(golden_path) {
        Ok(committed) if committed == g.jsonl => {
            println!(
                "service golden: paper goldens byte-identical ({} lines)",
                g.jsonl.lines().count()
            );
        }
        Ok(committed) => {
            failures += 1;
            eprintln!("service golden: DRIFT in {}", golden_path.display());
            for (i, (a, b)) in committed.lines().zip(g.jsonl.lines()).enumerate() {
                if a != b {
                    eprintln!(
                        "  line {}:\n    committed: {a}\n    regenerated: {b}",
                        i + 1
                    );
                }
            }
        }
        Err(e) => {
            failures += 1;
            eprintln!(
                "service golden: cannot read {} ({e}) — capture goldens first",
                golden_path.display()
            );
        }
    }
    failures + check_table2(&g.seq_secs)
}

/// Phase 2: byte-identical traces and identical sequential virtual time
/// under the same seed; checksums equal to the host-side expectations.
fn determinism_gate(seed: u64) -> (Vec<String>, usize) {
    let mut failures = 0usize;
    let mut records = Vec::new();
    let (kv, bank) = service_apps(Scale::Test, seed);
    let expected: [(&dyn Benchmark, u64); 2] = [
        (&kv, kv.expected_checksum()),
        (&bank, bank.expected_total()),
    ];
    let traces = [kv.trace(), bank.trace()];

    for ((app, want_checksum), trace) in expected.iter().zip(&traces) {
        // Trace byte-identity: regenerate from the same spec.
        let again = match app.name() {
            "KV" => service_apps(Scale::Test, seed).0.trace(),
            _ => service_apps(Scale::Test, seed).1.trace(),
        };
        let trace_ok = trace.to_bytes() == again.to_bytes();
        if !trace_ok {
            failures += 1;
            eprintln!(
                "service determinism {}: TRACE not byte-identical",
                app.name()
            );
        }

        // Sequential VT identity: two 1:1 uninstrumented runs.
        let (a, _) = sequential_with(*app, None, false);
        let (b, _) = sequential_with(*app, None, false);
        let vt_ok = a.report.exec_ns == b.report.exec_ns && a.checksum == b.checksum;
        if !vt_ok {
            failures += 1;
            eprintln!(
                "service determinism {}: sequential VT {} vs {} (checksums {} vs {})",
                app.name(),
                a.report.exec_ns,
                b.report.exec_ns,
                a.checksum,
                b.checksum
            );
        }
        let checksum_ok = a.checksum == *want_checksum;
        if !checksum_ok {
            failures += 1;
            eprintln!(
                "service determinism {}: checksum {} != host expectation {want_checksum}",
                app.name(),
                a.checksum
            );
        }
        println!(
            "service determinism {:4} trace={} vt={} ({} ns) checksum={}",
            app.name(),
            if trace_ok { "ok" } else { "BAD" },
            if vt_ok { "ok" } else { "BAD" },
            a.report.exec_ns,
            if checksum_ok { "ok" } else { "BAD" },
        );

        let mut s = String::with_capacity(192);
        s.push('{');
        json_str(&mut s, "app", app.name());
        let _ = write!(
            s,
            ",\"trace_digest\":\"{:016x}\",\"trace_ops\":{},\"seq_exec_ns\":{},\
             \"trace_identical\":{trace_ok},\"vt_identical\":{vt_ok},\
             \"checksum_ok\":{checksum_ok}}}",
            trace.digest(),
            trace.ops.len(),
            a.report.exec_ns
        );
        records.push(s);
    }
    (records, failures)
}

/// Phase 3: audit + checksum sweep across all four protocols with
/// observability on, plus the fault-heat skew gate.
fn audit_heat_sweep(seed: u64, backend: Backend) -> (Vec<String>, String, usize) {
    let mut failures = 0usize;
    let (kv, bank) = service_apps(Scale::Test, seed);
    let expectations = [
        (kv.name(), kv.expected_checksum()),
        (bank.name(), bank.expected_total()),
    ];
    let apps: Vec<Box<dyn Benchmark>> = vec![Box::new(kv), Box::new(bank)];
    let spec = SweepSpec {
        total: SERVICE_CONFIG.0,
        per_node: SERVICE_CONFIG.1,
        opts: RunOpts {
            obs: true,
            backend,
            ..RunOpts::default()
        },
        audit: true,
        ..SweepSpec::new(&apps, &ProtocolKind::PAPER_FOUR)
    };

    let mut records = Vec::new();
    run_sweep(&spec, |cell| {
        let want = expectations
            .iter()
            .find(|(n, _)| *n == cell.app)
            .map(|&(_, c)| c)
            .expect("expectation for every service app");
        let checksum_ok = cell.outcome.checksum == want;
        let report = audit(&cell.trace);
        let audit_clean = report.is_clean();
        if !checksum_ok {
            failures += 1;
            eprintln!(
                "service sweep {:4} {:4}: CHECKSUM {} != expected {want}",
                cell.app,
                cell.protocol.label(),
                cell.outcome.checksum
            );
        }
        if !audit_clean {
            failures += 1;
            eprintln!(
                "service sweep {:4} {:4}: AUDIT DIRTY\n{}",
                cell.app,
                cell.protocol.label(),
                report.summary()
            );
        }
        let obs = cell.outcome.report.obs.as_ref().expect("obs requested");
        let hot = obs.hot_pages(HEAT_TOP_K);
        // Per-request sojourn percentiles (DESIGN.md §13): every service
        // request records its arrival-to-completion latency, so an empty
        // histogram means the recording hook fell off the request loop.
        let sj = &obs.metrics.sojourn_ns;
        let (p50, p95, p99) = (sj.quantile(0.50), sj.quantile(0.95), sj.quantile(0.99));
        if sj.count == 0 {
            failures += 1;
            eprintln!(
                "service sweep {:4} {:4}: EMPTY sojourn histogram",
                cell.app,
                cell.protocol.label()
            );
        }
        println!(
            "service sweep {:4} {:4} exec={:9.3}ms checksum={} audit={} \
             sojourn p50={p50} p95={p95} p99={p99} ns ({} reqs) hot={:?}",
            cell.app,
            cell.protocol.label(),
            cell.outcome.report.exec_secs() * 1e3,
            if checksum_ok { "ok" } else { "BAD" },
            if audit_clean { "clean" } else { "DIRTY" },
            sj.count,
            hot
        );

        let mut s = String::with_capacity(256);
        s.push('{');
        json_str(&mut s, "phase", "sweep");
        s.push(',');
        json_str(&mut s, "app", &cell.app);
        s.push(',');
        json_str(&mut s, "protocol", cell.protocol.label());
        s.push(',');
        json_f64(&mut s, "exec_secs", cell.outcome.report.exec_secs());
        let _ = write!(
            s,
            ",\"sojourn_count\":{},\"sojourn_p50_ns\":{p50},\"sojourn_p95_ns\":{p95},\
             \"sojourn_p99_ns\":{p99}",
            sj.count
        );
        let _ = write!(
            s,
            ",\"checksum_ok\":{checksum_ok},\"audit_clean\":{audit_clean},\"hot_pages\":["
        );
        for (i, (page, heat)) in hot.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{page},{heat}]");
        }
        s.push_str("]}");
        records.push(s);
    });

    let (heat_json, heat_failures) = heat_skew_gate(seed, backend);
    failures += heat_failures;
    (records, heat_json, failures)
}

/// Top-`HEAT_TOP_K` share of total page heat for one KV run at 2L.
fn kv_heat_share(kv: &KvService, backend: Backend) -> (f64, Vec<(usize, u64)>) {
    let (out, _) = run_with(
        kv,
        ProtocolKind::TwoLevel,
        SERVICE_CONFIG.0,
        SERVICE_CONFIG.1,
        RunOpts {
            obs: true,
            backend,
            ..RunOpts::default()
        },
        None,
        false,
    );
    let obs = out.report.obs.expect("obs requested");
    let total: u64 = obs.page_heat.iter().sum();
    let hot = obs.hot_pages(HEAT_TOP_K);
    let top: u64 = hot.iter().map(|&(_, h)| h).sum();
    assert!(total > 0, "KV heat probe saw zero faults");
    (top as f64 / total as f64, hot)
}

/// The skew gate: at Bench scale (enough table pages to resolve), the
/// Zipf-skewed KV heat must concentrate visibly harder than a uniform
/// (θ = 0) control — and the hottest page must sit in the table's head,
/// where [`cashmere_workload::KeyMap::Direct`] puts the popular ranks.
fn heat_skew_gate(seed: u64, backend: Backend) -> (String, usize) {
    let mut failures = 0usize;
    let (skewed, _) = service_apps(Scale::Bench, seed);
    let mut uniform = skewed.clone();
    uniform.spec.theta = 0.0;

    let (skew_share, skew_hot) = kv_heat_share(&skewed, backend);
    let (uniform_share, _) = kv_heat_share(&uniform, backend);
    println!(
        "service heat: skewed top-{HEAT_TOP_K} share {skew_share:.3} vs uniform {uniform_share:.3} \
         (hot pages {skew_hot:?})"
    );
    if skew_share < uniform_share * HEAT_SKEW_FACTOR {
        failures += 1;
        eprintln!(
            "service heat: skewed share {skew_share:.3} not >= {HEAT_SKEW_FACTOR}x uniform \
             {uniform_share:.3} — the configured skew is invisible in fault heat"
        );
    }
    // Under KeyMap::Direct the popular ranks sit at the start of *both*
    // shared structures: the value table (pages 0..table_pages) and the
    // version array right after it. The hottest page must be the head of
    // one of them (the version head packs PAGE_WORDS keys per page, so it
    // often out-heats table page 0, which holds PAGE_WORDS/value_words).
    let table_pages = (skewed.spec.keys * skewed.value_words) / cashmere_core::PAGE_WORDS;
    let head_pages = 2;
    let in_head =
        |page: usize| page < head_pages || (page >= table_pages && page < table_pages + 1);
    if skew_hot.first().is_none_or(|&(page, _)| !in_head(page)) {
        failures += 1;
        eprintln!(
            "service heat: hottest page {:?} is outside the hot head (table pages 0..{head_pages} \
             or version page {table_pages})",
            skew_hot.first()
        );
    }

    let mut s = String::with_capacity(192);
    let _ = write!(
        s,
        "{{\"theta\":{},\"skew_top{HEAT_TOP_K}_share\":",
        skewed.spec.theta
    );
    let _ = write!(
        s,
        "{skew_share:.4},\"uniform_top{HEAT_TOP_K}_share\":{uniform_share:.4}"
    );
    s.push_str(",\"skew_hot_pages\":[");
    for (i, (page, heat)) in skew_hot.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{page},{heat}]");
    }
    s.push_str("]}");
    (s, failures)
}

/// Phase 4: nonzero fault plans across all four protocols; checksums and
/// audits must hold, and every plan must actually inject faults.
fn fault_soak(seed: u64, backend: Backend) -> (Vec<String>, usize) {
    let mut failures = 0usize;
    let (kv, bank) = service_apps(Scale::Test, seed);
    let expectations = [
        (kv.name(), kv.expected_checksum()),
        (bank.name(), bank.expected_total()),
    ];
    let apps: Vec<Box<dyn Benchmark>> = vec![Box::new(kv), Box::new(bank)];
    let plans = [
        SweepPlan {
            name: "lost-requests",
            build: Some(|seed| {
                FaultPlan::new(seed)
                    .with_rule(FaultRule::new(FaultKind::LoseFetch, 0.25))
                    .with_rule(FaultRule::new(FaultKind::LoseBreak, 0.25))
            }),
        },
        SweepPlan {
            name: "lossy-link",
            build: Some(|seed| {
                FaultPlan::new(seed)
                    .with_rule(FaultRule::new(FaultKind::DropWrite, 0.10))
                    .with_rule(FaultRule::new(FaultKind::DelayWrite, 0.10).with_param_ns(5_000))
                    .with_rule(FaultRule::new(FaultKind::LinkOutage, 0.002).with_param_ns(50_000))
            }),
        },
    ];
    let spec = SweepSpec {
        total: SERVICE_CONFIG.0,
        per_node: SERVICE_CONFIG.1,
        opts: RunOpts {
            backend,
            ..RunOpts::default()
        },
        audit: true,
        seed,
        plans: &plans,
        ..SweepSpec::new(&apps, &ProtocolKind::PAPER_FOUR)
    };

    let mut records = Vec::new();
    let mut faults_by_plan = [0u64; 2];
    run_sweep(&spec, |cell| {
        let want = expectations
            .iter()
            .find(|(n, _)| *n == cell.app)
            .map(|&(_, c)| c)
            .expect("expectation for every service app");
        let checksum_ok = cell.outcome.checksum == want;
        let report = audit(&cell.trace);
        let audit_clean = report.is_clean();
        let recovery = &cell.outcome.report.recovery;
        if !checksum_ok {
            failures += 1;
            eprintln!(
                "service soak {:4} {:4} {}: CHECKSUM {} != expected {want}",
                cell.app,
                cell.protocol.label(),
                cell.plan,
                cell.outcome.checksum
            );
        }
        if !audit_clean {
            failures += 1;
            eprintln!(
                "service soak {:4} {:4} {}: AUDIT DIRTY\n{}",
                cell.app,
                cell.protocol.label(),
                cell.plan,
                report.summary()
            );
        }
        let pi = usize::from(cell.plan != "lost-requests");
        faults_by_plan[pi] += recovery.faults_total();
        println!(
            "service soak {:4} {:4} {:14} faults={:5} checksum={} audit={}",
            cell.app,
            cell.protocol.label(),
            cell.plan,
            recovery.faults_total(),
            if checksum_ok { "ok" } else { "BAD" },
            if audit_clean { "clean" } else { "DIRTY" },
        );

        let mut s = String::with_capacity(192);
        s.push('{');
        json_str(&mut s, "phase", "soak");
        s.push(',');
        json_str(&mut s, "app", &cell.app);
        s.push(',');
        json_str(&mut s, "protocol", cell.protocol.label());
        s.push(',');
        json_str(&mut s, "plan", cell.plan);
        s.push(',');
        json_f64(&mut s, "exec_secs", cell.outcome.report.exec_secs());
        let _ = write!(
            s,
            ",\"faults\":{},\"checksum_ok\":{checksum_ok},\"audit_clean\":{audit_clean}}}",
            recovery.faults_total()
        );
        records.push(s);
    });

    for (pi, plan) in plans.iter().enumerate() {
        if faults_by_plan[pi] == 0 {
            failures += 1;
            eprintln!(
                "service soak plan {}: campaign injected zero faults",
                plan.name
            );
        }
    }
    (records, failures)
}
