//! §3.3.4 reproduction: TLB shootdown versus two-way diffing, and the cost
//! of an interrupt-based shootdown mechanism.
//!
//! The paper finds 2LS ≈ 2L with polling-based shootdown, and a ~6%
//! execution-time increase for Water (the lock-based application with false
//! sharing) when shootdown uses intra-node interrupts (142 µs per processor
//! instead of 72 µs).

use cashmere_apps::{suite, Scale};
use cashmere_bench::{run_best, save_records, Record, RunOpts};
use cashmere_core::{Messaging, ProtocolKind};

fn main() {
    let apps = suite(Scale::Bench);
    let mut records = Vec::new();

    println!("Section 3.3.4: TLB shootdown vs two-way diffing at 32 processors (32:4)");
    println!();
    println!(
        "{:<9}{:>12}{:>14}{:>16}{:>12}{:>14}",
        "App", "2L (s)", "2LS-poll (s)", "2LS-intr (s)", "shootdowns", "intr. slowdown"
    );
    println!("{:-<77}", "");
    for app in &apps {
        let two = run_best(
            app.as_ref(),
            ProtocolKind::TwoLevel,
            32,
            4,
            RunOpts::default(),
            3,
        );
        let shoot_poll = run_best(
            app.as_ref(),
            ProtocolKind::TwoLevelShootdown,
            32,
            4,
            RunOpts::default(),
            3,
        );
        let shoot_intr = run_best(
            app.as_ref(),
            ProtocolKind::TwoLevelShootdown,
            32,
            4,
            RunOpts {
                messaging: Messaging::Interrupt,
                ..Default::default()
            },
            3,
        );
        println!(
            "{:<9}{:>12.3}{:>14.3}{:>16.3}{:>12}{:>13.1}%",
            app.name(),
            two.report.exec_secs(),
            shoot_poll.report.exec_secs(),
            shoot_intr.report.exec_secs(),
            shoot_poll.report.counters.shootdowns,
            (shoot_intr.report.exec_secs() / shoot_poll.report.exec_secs() - 1.0) * 100.0,
        );
        records.push(Record::new(
            "shootdown",
            app.name(),
            ProtocolKind::TwoLevel,
            32,
            4,
            &two,
            0,
        ));
        records.push(Record::new(
            "shootdown",
            app.name(),
            ProtocolKind::TwoLevelShootdown,
            32,
            4,
            &shoot_poll,
            0,
        ));
    }
    save_records("shootdown", &records);
    println!();
    println!("Paper finding to compare: 2LS matches 2L under polling; interrupt-based");
    println!("shootdown costs ~6% on Water (false sharing under locks); shootdown is");
    println!("rare because multi-writer pages are never \"stolen\".");
}
