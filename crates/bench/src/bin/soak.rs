//! Fault-injection soak harness (`scripts/soak.sh`).
//!
//! Two phases, both gated (nonzero exit on any failure):
//!
//! 1. **Zero-fault identity.** Installs an *empty* [`FaultPlan`] (seeded but
//!    with no rules) into every deterministic golden probe — the full
//!    sequential suite plus the scripted four-protocol replay — with the
//!    audit recorder on, and requires the regenerated goldens to be
//!    **byte-identical** to the committed `results/vt_golden.jsonl` and the
//!    sequential rows of `results/table2.jsonl`, with every trace auditing
//!    clean and zero faults counted. This proves the interposition points
//!    and recovery bookkeeping are charge-free when no rule fires.
//!
//! 2. **Fault matrix.** A fixed-seed campaign over the application suite ×
//!    two protocols × three fault plans (lost requests, duplicated
//!    transfers, a lossy/delaying link with outages) at nonzero rates,
//!    driven by `cashmere_bench::sweep::run_sweep`. Every cell must finish
//!    with the same checksum as a fault-free run of the same configuration
//!    and a clean audit — including the recovery invariants (timeouts
//!    satisfied or retried to success, duplicates suppressed without state
//!    change, write-notice conservation under loss and duplication). The
//!    campaign as a whole must show nonzero injected faults for every plan
//!    and nonzero [`RecoveryCounts`] for the plans that exercise the
//!    recovery paths.
//!
//! Flags:
//! * `--seed N` — seeds every fault plan (default 0x5EED). Echoed into
//!   `BENCH_soak.json`; the same seed always yields the same fault schedule
//!   in virtual time.
//! * `--skip-golden` — skip phase 1 (used while iterating on the matrix).
//! * `--obs` — run the matrix with observability on and write the Figure-7
//!   breakdown (per app × protocol × plan) to `results/fig7.{jsonl,txt}`.
//! * `--backend {mc,rdma,cxl}` — interconnect backend (DESIGN.md §14);
//!   non-`mc` backends skip phase 1 (the goldens pin the Memory Channel)
//!   but run the full fault matrix — fault interposition must hold on
//!   every fabric.
//!
//! Output: `BENCH_soak.json` with one record per cell (faults injected,
//! recovery counters, checksum/audit verdicts) plus campaign totals.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use cashmere_apps::{suite, Scale};
use cashmere_bench::golden::{build_goldens, check_table2};
use cashmere_bench::sweep::{run_sweep, SweepPlan, SweepSpec};
use cashmere_bench::{json_f64, json_str, obsout, parse_backend, RunOpts};
use cashmere_check::audit;
use cashmere_core::{
    Backend, FaultKind, FaultPlan, FaultRule, ProtocolKind, RecoveryCounts, RecoverySummary,
};

/// The matrix topology: 4 processors on 2 nodes — small enough to soak the
/// whole suite quickly, large enough that every cell does remote fetches,
/// twins/diffs, and (superpage-split apps) exclusive breaks.
const SOAK_CONFIG: (usize, usize) = (4, 2);

/// The two protocols soaked: the paper's primary (2L) and the one-level
/// diff baseline, which share the recovery machinery but split protocol
/// traffic across node boundaries very differently.
const SOAK_PROTOCOLS: [ProtocolKind; 2] = [ProtocolKind::TwoLevel, ProtocolKind::OneLevelDiff];

/// One fault plan flavor in the matrix.
struct PlanSpec {
    name: &'static str,
    /// Whether the plan exercises the protocol-level recovery paths
    /// (timeouts/retries/duplicate suppression) — if so the campaign must
    /// show nonzero [`RecoveryCounts`] under it.
    expects_recovery: bool,
    build: fn(u64) -> FaultPlan,
}

/// The three plan flavors: ≥3 fault kinds at nonzero rates between them.
const PLANS: [PlanSpec; 3] = [
    PlanSpec {
        name: "lost-requests",
        expects_recovery: true,
        build: |seed| {
            FaultPlan::new(seed)
                .with_rule(FaultRule::new(FaultKind::LoseFetch, 0.25))
                .with_rule(FaultRule::new(FaultKind::LoseBreak, 0.25))
        },
    },
    PlanSpec {
        name: "duplicated-transfers",
        expects_recovery: true,
        build: |seed| {
            FaultPlan::new(seed).with_rule(FaultRule::new(FaultKind::DuplicateWrite, 0.25))
        },
    },
    PlanSpec {
        name: "lossy-link",
        // Drops/delays/outages are repaired at the (simulated) link level,
        // below the protocol — recovery counters legitimately stay zero.
        expects_recovery: false,
        build: |seed| {
            FaultPlan::new(seed)
                .with_rule(FaultRule::new(FaultKind::DropWrite, 0.10))
                .with_rule(FaultRule::new(FaultKind::DelayWrite, 0.10).with_param_ns(5_000))
                .with_rule(FaultRule::new(FaultKind::LinkOutage, 0.002).with_param_ns(50_000))
        },
    },
];

struct Args {
    seed: u64,
    skip_golden: bool,
    obs: bool,
    backend: Backend,
}

fn parse_args() -> Args {
    let mut a = Args {
        seed: 0x5EED,
        skip_golden: false,
        obs: false,
        backend: Backend::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                a.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            "--skip-golden" => a.skip_golden = true,
            "--obs" => a.obs = true,
            "--backend" => a.backend = parse_backend(args.next()),
            other => {
                panic!(
                    "unknown flag {other:?} (supported: --seed N, --skip-golden, --obs, \
                     --backend {{mc,rdma,cxl}})"
                )
            }
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let mut failures = 0usize;

    if args.skip_golden {
        eprintln!("[--skip-golden: zero-fault identity phase skipped]");
    } else if args.backend != Backend::MemoryChannel {
        eprintln!(
            "[backend {} — zero-fault golden identity skipped (goldens pin the Memory Channel)]",
            args.backend.label()
        );
    } else {
        failures += zero_fault_identity(args.seed);
    }

    let (records, matrix_failures) = fault_matrix(args.seed, args.obs, args.backend);
    failures += matrix_failures;

    let mut out = String::from("{\"experiment\":\"soak\",");
    let _ = write!(
        out,
        "\"backend\":\"{}\",\"seed\":{},\"config\":\"{}:{}\",\"cells\":[",
        args.backend.label(),
        args.seed,
        SOAK_CONFIG.0,
        SOAK_CONFIG.1
    );
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(r);
    }
    let _ = write!(out, "],\"failures\":{failures}}}");
    out.push('\n');
    std::fs::write("BENCH_soak.json", out).expect("write BENCH_soak.json");
    eprintln!("[wrote BENCH_soak.json]");

    if failures > 0 {
        eprintln!("FAIL: {failures} soak check(s) failed");
        std::process::exit(1);
    }
    println!("soak: all checks passed");
}

/// Phase 1: an installed-but-empty plan must not perturb a single byte of
/// the committed deterministic goldens, and every probe must audit clean.
fn zero_fault_identity(seed: u64) -> usize {
    let plan = Arc::new(FaultPlan::new(seed));
    assert!(plan.is_empty(), "a rule-less plan must be empty");
    let mut failures = 0usize;

    let apps = suite(Scale::Bench);
    let g = build_goldens(&apps, Some(&plan), true, false, false);

    let golden_path = Path::new("results/vt_golden.jsonl");
    match std::fs::read_to_string(golden_path) {
        Ok(committed) if committed == g.jsonl => {
            println!(
                "soak zero-fault: goldens byte-identical ({} lines)",
                g.jsonl.lines().count()
            );
        }
        Ok(committed) => {
            failures += 1;
            eprintln!(
                "soak zero-fault: DRIFT — empty fault plan perturbed the goldens in {}",
                golden_path.display()
            );
            for (i, (a, b)) in committed.lines().zip(g.jsonl.lines()).enumerate() {
                if a != b {
                    eprintln!("  line {}:\n    committed: {a}\n    with plan: {b}", i + 1);
                }
            }
        }
        Err(e) => {
            failures += 1;
            eprintln!(
                "soak zero-fault: cannot read {} ({e}) — run scripts/bench.sh with \
                 WALLCLOCK_BASELINE=1 to capture goldens first",
                golden_path.display()
            );
        }
    }
    failures += check_table2(&g.seq_secs);

    for (label, trace) in &g.traces {
        let report = audit(trace);
        if !report.is_clean() {
            failures += 1;
            eprintln!(
                "soak zero-fault: {label} audit dirty:\n{}",
                report.summary()
            );
        }
    }
    if plan.stats().total() != 0 {
        failures += 1;
        eprintln!(
            "soak zero-fault: empty plan injected {} fault(s)",
            plan.stats().total()
        );
    }
    failures
}

/// Phase 2: the fixed-seed fault campaign, one `run_sweep` over apps ×
/// protocols × plans. Returns per-cell JSON records and the failure count.
fn fault_matrix(seed: u64, obs: bool, backend: Backend) -> (Vec<String>, usize) {
    let apps = suite(Scale::Test);

    // Reference checksums: a fault-free run at the *same* soak
    // configuration per app — every app's checksum is topology-independent
    // except Em3d's, whose graph depends on the processor count (as in
    // Split-C) — the app suite's own tests pin parallel == sequential
    // where that holds, so the soak gate only needs "faults change
    // nothing" at fixed width.
    let baseline_spec = SweepSpec {
        total: SOAK_CONFIG.0,
        per_node: SOAK_CONFIG.1,
        opts: RunOpts {
            backend,
            ..RunOpts::default()
        },
        ..SweepSpec::new(&apps, &[ProtocolKind::TwoLevel])
    };
    let baselines = run_sweep(&baseline_spec, |_| {});

    let plans = PLANS.map(|p| SweepPlan {
        name: p.name,
        build: Some(p.build),
    });
    let spec = SweepSpec {
        total: SOAK_CONFIG.0,
        per_node: SOAK_CONFIG.1,
        opts: RunOpts {
            obs,
            backend,
            ..RunOpts::default()
        },
        audit: true,
        seed,
        plans: &plans,
        ..SweepSpec::new(&apps, &SOAK_PROTOCOLS)
    };

    let mut failures = 0usize;
    let mut records = Vec::new();
    // Campaign-wide accumulators, per plan flavor.
    let mut faults_by_plan = [0u64; PLANS.len()];
    let mut recovery_by_plan = [RecoveryCounts::default(); PLANS.len()];

    let cells = run_sweep(&spec, |cell| {
        let baseline = baselines
            .iter()
            .find(|b| b.app == cell.app)
            .expect("baseline sweep covered every app");
        let recovery = &cell.outcome.report.recovery;
        let checksum_ok = cell.outcome.checksum == baseline.outcome.checksum;
        let report = audit(&cell.trace);
        let audit_clean = report.is_clean();

        if !checksum_ok {
            failures += 1;
            eprintln!(
                "soak {:8} {:4} {}: CHECKSUM {} != fault-free {}",
                cell.app,
                cell.protocol.label(),
                cell.plan,
                cell.outcome.checksum,
                baseline.outcome.checksum
            );
        }
        if !audit_clean {
            failures += 1;
            eprintln!(
                "soak {:8} {:4} {}: AUDIT DIRTY\n{}",
                cell.app,
                cell.protocol.label(),
                cell.plan,
                report.summary()
            );
        }

        let pi = PLANS
            .iter()
            .position(|p| p.name == cell.plan)
            .expect("cell plan is one of PLANS");
        faults_by_plan[pi] += recovery.faults_total();
        recovery_by_plan[pi].merge(&recovery.total());
        println!(
            "soak {:8} {:4} {:20} faults={:6} recovered={:6} checksum={} audit={}",
            cell.app,
            cell.protocol.label(),
            cell.plan,
            recovery.faults_total(),
            recovery.total().total(),
            if checksum_ok { "ok" } else { "BAD" },
            if audit_clean { "clean" } else { "DIRTY" },
        );
        records.push(cell_json(
            seed,
            &cell.app,
            cell.protocol,
            cell.plan,
            cell.outcome.report.exec_secs(),
            checksum_ok,
            audit_clean,
            recovery,
        ));
    });

    if obs {
        let config = format!("{}:{}", SOAK_CONFIG.0, SOAK_CONFIG.1);
        let (jsonl, txt, rows) = obsout::write_fig7(&cells, &config).expect("write fig7");
        eprintln!(
            "[wrote {} and {} ({rows} rows)]",
            jsonl.display(),
            txt.display()
        );
    }

    for (pi, spec) in PLANS.iter().enumerate() {
        if faults_by_plan[pi] == 0 {
            failures += 1;
            eprintln!(
                "soak plan {}: campaign injected zero faults — rates too low or \
                 interposition points dead",
                spec.name
            );
        }
        if spec.expects_recovery && recovery_by_plan[pi].is_zero() {
            failures += 1;
            eprintln!(
                "soak plan {}: campaign shows zero recovery activity — \
                 timeouts/retries/duplicate suppression never engaged",
                spec.name
            );
        }
    }
    (records, failures)
}

/// Serializes one matrix cell.
#[allow(clippy::too_many_arguments)]
fn cell_json(
    seed: u64,
    app: &str,
    protocol: ProtocolKind,
    plan: &str,
    exec_secs: f64,
    checksum_ok: bool,
    audit_clean: bool,
    recovery: &RecoverySummary,
) -> String {
    let mut s = String::with_capacity(256);
    s.push('{');
    json_str(&mut s, "experiment", "soak");
    s.push(',');
    let _ = write!(s, "\"seed\":{seed},");
    json_str(&mut s, "app", app);
    s.push(',');
    json_str(&mut s, "protocol", protocol.label());
    s.push(',');
    json_str(&mut s, "plan", plan);
    s.push(',');
    json_f64(&mut s, "exec_secs", exec_secs);
    let _ = write!(
        s,
        ",\"checksum_ok\":{checksum_ok},\"audit_clean\":{audit_clean}"
    );
    let t = recovery.total();
    let _ = write!(
        s,
        ",\"recovery\":{{\"fetch_timeouts\":{},\"fetch_retries\":{},\"break_timeouts\":{},\
         \"break_retries\":{},\"duplicates_dropped\":{}}}",
        t.fetch_timeouts, t.fetch_retries, t.break_timeouts, t.break_retries, t.duplicates_dropped
    );
    s.push_str(",\"faults\":{");
    for (i, (k, v)) in recovery.faults_injected.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{k}\":{v}");
    }
    s.push_str("}}");
    s
}
