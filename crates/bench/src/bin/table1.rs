//! Table 1 reproduction: costs of basic operations for the two-level
//! (2L/2LS) and one-level (1LD/1L) protocols.
//!
//! The paper reports (µs): lock acquire 19 / 11; barrier 58 (321 at 32
//! processors) / 41 (364); page transfer 824 / 777 remote, 467 local
//! (one-level only). Each cost is *measured* here by running the real
//! protocol code on a micro-program and differencing virtual time, exactly
//! as the paper measures two-processor interactions.

use cashmere_core::{Cluster, ClusterConfig, Nanos, ProtocolKind, Topology, PAGE_WORDS};

/// Measures an uncontended lock acquire+release pair on processor 0.
fn lock_cost(protocol: ProtocolKind) -> Nanos {
    let cfg = ClusterConfig::new(Topology::new(2, 1), protocol).with_heap_pages(4);
    let mut cluster = Cluster::new(cfg);
    let out = cluster.alloc(2);
    cluster.run(|p| {
        if p.id() == 0 {
            let t0 = p.now();
            p.lock(0);
            p.unlock(0);
            p.write_u64(out, p.now() - t0);
        }
        p.barrier(0);
    });
    cluster.read_u64(out)
}

/// Measures a barrier crossing with all `total` processors arriving
/// simultaneously (every processor's crossing time is identical by
/// construction; we report processor 0's).
fn barrier_cost(protocol: ProtocolKind, total: usize, per_node: usize) -> Nanos {
    let topo = Topology::from_paper_config(total, per_node).unwrap();
    let cfg = ClusterConfig::new(topo, protocol).with_heap_pages(4);
    let mut cluster = Cluster::new(cfg);
    let out = cluster.alloc(2);
    cluster.run(|p| {
        p.barrier(0); // align clocks
        let t0 = p.now();
        p.barrier(1);
        if p.id() == 0 {
            p.write_u64(out, p.now() - t0);
        }
    });
    cluster.read_u64(out)
}

/// Measures a page fetch: processor 0 (node 0) homes a page; a processor on
/// `reader_node` then read-faults it. `local` selects a reader on the same
/// physical node as the home (meaningful for the one-level protocols).
fn page_transfer_cost(protocol: ProtocolKind, local: bool) -> Nanos {
    // Two physical nodes, two procs each. Homes land on proc 0's protocol
    // node via first touch.
    let cfg = ClusterConfig::new(Topology::new(2, 2), protocol).with_heap_pages(8);
    let mut cluster = Cluster::new(cfg);
    let page = cluster.alloc_page_aligned(PAGE_WORDS);
    let out = cluster.alloc(2);
    let reader = if local { 1 } else { 2 };
    cluster.run(|p| {
        if p.id() == 0 {
            p.write_u64(page, 7);
        }
        p.barrier(0);
        if p.id() == reader {
            let t0 = p.now();
            let _ = p.read_u64(page);
            p.write_u64(out, p.now() - t0);
        }
        p.barrier(1);
    });
    cluster.read_u64(out)
}

fn us(ns: Nanos) -> f64 {
    ns as f64 / 1000.0
}

fn main() {
    let two = ProtocolKind::TwoLevel;
    let one = ProtocolKind::OneLevelDiff;

    let lock2 = lock_cost(two);
    let lock1 = lock_cost(one);
    let bar2 = barrier_cost(two, 2, 1);
    let bar1 = barrier_cost(one, 2, 1);
    let bar2_32 = barrier_cost(two, 32, 4);
    let bar1_32 = barrier_cost(one, 32, 4);
    let xfer2_remote = page_transfer_cost(two, false);
    let xfer1_remote = page_transfer_cost(one, false);
    let xfer1_local = page_transfer_cost(one, true);

    println!("Table 1: Costs of basic operations (microseconds)");
    println!("(paper values in parentheses)");
    println!();
    println!("{:<28}{:>18}{:>18}", "Operation", "2L/2LS", "1LD/1L");
    println!("{:-<64}", "");
    println!(
        "{:<28}{:>11.0} (19){:>11.0} (11)",
        "Lock Acquire",
        us(lock2),
        us(lock1)
    );
    println!(
        "{:<28}{:>11.0} (58){:>11.0} (41)",
        "Barrier (2 procs)",
        us(bar2),
        us(bar1)
    );
    println!(
        "{:<28}{:>10.0} (321){:>10.0} (364)",
        "Barrier (32 procs)",
        us(bar2_32),
        us(bar1_32)
    );
    println!(
        "{:<28}{:>12} (—){:>10.0} (467)",
        "Page Transfer (Local)",
        "—",
        us(xfer1_local)
    );
    println!(
        "{:<28}{:>10.0} (824){:>10.0} (777)",
        "Page Transfer (Remote)",
        us(xfer2_remote),
        us(xfer1_remote)
    );
}
