//! Table 2 reproduction: data-set sizes and sequential execution times.
//!
//! The paper's Table 2 reports uninstrumented sequential execution times for
//! its (much larger) inputs — e.g. SOR at 3072×4096 takes 195 s, Water with
//! 4096 molecules 1847.6 s. The reproduction runs scaled-down inputs on the
//! simulated uniprocessor and reports simulated seconds; the *relative
//! ordering* of the applications' compute demands is what carries over.

use cashmere_apps::{suite, Scale};
use cashmere_bench::{save_records, sequential, Record};
use cashmere_core::ProtocolKind;

fn main() {
    println!("Table 2: Data set sizes and sequential execution times (simulated)");
    println!();
    println!(
        "{:<9}{:<46}{:>14}",
        "Program", "Problem size (scaled)", "Time (sim s)"
    );
    println!("{:-<69}", "");
    let mut records = Vec::new();
    for app in suite(Scale::Bench) {
        let out = sequential(app.as_ref());
        println!(
            "{:<9}{:<46}{:>14.4}",
            app.name(),
            app.size_description(),
            out.report.exec_secs()
        );
        records.push(Record::new(
            "table2",
            app.name(),
            ProtocolKind::TwoLevel,
            1,
            1,
            &out,
            0,
        ));
    }
    save_records("table2", &records);
}
