//! Table 3 reproduction: detailed statistics for the four protocols at 32
//! processors (32:4), all eight applications.
//!
//! Rows follow the paper: execution time, lock/flag acquires, barriers,
//! read/write faults, page transfers, directory updates, write notices,
//! exclusive-mode transitions, data moved, and the twin-maintenance rows
//! (twin creations; incoming diffs + flush-updates for 2L; shootdowns for
//! 2LS). All counters aggregate over the 32 processors.

use cashmere_apps::{suite, Scale};
use cashmere_bench::{fmt_k, fmt_mb, run_best, save_records, Record, RunOpts};
use cashmere_core::ProtocolKind;

fn main() {
    let apps = suite(Scale::Bench);
    let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
    let mut records = Vec::new();

    println!("Table 3: Detailed statistics at 32 processors (32:4)");
    for protocol in ProtocolKind::PAPER_FOUR {
        println!();
        println!("=== {} ===", protocol.label());
        let outs: Vec<_> = apps
            .iter()
            .map(|a| {
                run_best(
                    a.as_ref(),
                    protocol,
                    32,
                    4,
                    RunOpts::default(),
                    a.timing_reps(),
                )
            })
            .collect();
        for (app, out) in apps.iter().zip(outs.iter()) {
            records.push(Record::new("table3", app.name(), protocol, 32, 4, out, 0));
        }

        print!("{:<26}", "Application");
        for n in &names {
            print!("{n:>10}");
        }
        println!();
        println!("{:-<106}", "");

        let row = |label: &str, vals: Vec<String>| {
            print!("{label:<26}");
            for v in vals {
                print!("{v:>10}");
            }
            println!();
        };

        row(
            "Exec. time (sim s)",
            outs.iter()
                .map(|o| format!("{:.3}", o.report.exec_secs()))
                .collect(),
        );
        row(
            "Lock/Flag Acquires",
            outs.iter()
                .map(|o| fmt_k(o.report.counters.lock_acquires))
                .collect(),
        );
        row(
            "Barriers",
            outs.iter()
                .map(|o| o.report.counters.barriers.to_string())
                .collect(),
        );
        row(
            "Read Faults",
            outs.iter()
                .map(|o| fmt_k(o.report.counters.read_faults))
                .collect(),
        );
        row(
            "Write Faults",
            outs.iter()
                .map(|o| fmt_k(o.report.counters.write_faults))
                .collect(),
        );
        row(
            "Page Transfers",
            outs.iter()
                .map(|o| fmt_k(o.report.counters.page_transfers))
                .collect(),
        );
        row(
            "Directory Updates",
            outs.iter()
                .map(|o| fmt_k(o.report.counters.directory_updates))
                .collect(),
        );
        row(
            "Write Notices",
            outs.iter()
                .map(|o| fmt_k(o.report.counters.write_notices))
                .collect(),
        );
        row(
            "Excl. Mode Transitions",
            outs.iter()
                .map(|o| fmt_k(o.report.counters.exclusive_transitions))
                .collect(),
        );
        row(
            "Data (Mbytes)",
            outs.iter()
                .map(|o| fmt_mb(o.report.counters.data_bytes))
                .collect(),
        );
        row(
            "Twin Creations",
            outs.iter()
                .map(|o| fmt_k(o.report.counters.twin_creations))
                .collect(),
        );
        if protocol == ProtocolKind::TwoLevel {
            row(
                "Incoming Diffs",
                outs.iter()
                    .map(|o| o.report.counters.incoming_diffs.to_string())
                    .collect(),
            );
            row(
                "Flush-Updates",
                outs.iter()
                    .map(|o| fmt_k(o.report.counters.flush_updates))
                    .collect(),
            );
        }
        if protocol == ProtocolKind::TwoLevelShootdown {
            row(
                "Shootdowns",
                outs.iter()
                    .map(|o| o.report.counters.shootdowns.to_string())
                    .collect(),
            );
        }
    }
    save_records("table3", &records);
}
