//! Automated validation of the reproduction's qualitative claims — the
//! "shape" assertions from EXPERIMENTS.md checked in one run.
//!
//! Exits nonzero if any shape regresses. Slower checks use best-of-three
//! (as the paper does) for the nondeterministic applications.

use cashmere_apps::{suite, Scale};
use cashmere_bench::{run_best, sequential, RunOpts};
use cashmere_core::ProtocolKind;

struct Check {
    name: &'static str,
    ok: bool,
    detail: String,
}

fn main() {
    let mut checks: Vec<Check> = Vec::new();
    let apps = suite(Scale::Bench);

    // Gather 32:4 outcomes for 2L / 2LS / 1LD / 1L per app.
    let mut at32 = Vec::new();
    for app in &apps {
        let seq = sequential(app.as_ref());
        let outs: Vec<_> = ProtocolKind::PAPER_FOUR
            .iter()
            .map(|&p| {
                run_best(
                    app.as_ref(),
                    p,
                    32,
                    4,
                    RunOpts::default(),
                    app.timing_reps(),
                )
            })
            .collect();
        at32.push((app.name(), seq, outs));
    }

    // 1. 2L beats (or matches) 1LD on every deterministic-timing app; TSP
    //    and Barnes are allowed to tie within noise (the paper reports TSP
    //    as equal).
    for (name, _seq, outs) in &at32 {
        let two = outs[0].report.exec_ns as f64;
        let one = outs[2].report.exec_ns as f64;
        // TSP's branch-and-bound workload is nondeterministic: run-to-run
        // work variance routinely exceeds the protocol effect (the paper
        // itself reports the two protocols as equal on TSP), so it gets the
        // widest band.
        let tolerance = match *name {
            "TSP" => 1.75,
            "Barnes" | "Water" => 1.35,
            _ => 1.02,
        };
        checks.push(Check {
            name: "2L <= 1LD execution time",
            ok: two <= one * tolerance,
            detail: format!("{name}: 2L {:.3}s vs 1LD {:.3}s", two / 1e9, one / 1e9),
        });
    }

    // 2. 2L ≈ 2LS (§3.3.4): within 15% both ways on deterministic apps.
    for (name, _seq, outs) in &at32 {
        if *name == "TSP" || *name == "Barnes" || *name == "Water" {
            continue;
        }
        let two = outs[0].report.exec_ns as f64;
        let shoot = outs[1].report.exec_ns as f64;
        checks.push(Check {
            name: "2L ~ 2LS",
            ok: (two / shoot - 1.0).abs() < 0.15,
            detail: format!("{name}: 2L {:.3}s vs 2LS {:.3}s", two / 1e9, shoot / 1e9),
        });
    }

    // 3. The strongly two-level-favoring apps (Gauss, Ilink, Em3d) show a
    //    substantial (>15%) 2L win over 1LD — the paper's 22–46% family.
    for (name, _seq, outs) in &at32 {
        if !matches!(*name, "Gauss" | "Ilink" | "Em3d") {
            continue;
        }
        let gain = outs[2].report.exec_ns as f64 / outs[0].report.exec_ns as f64;
        checks.push(Check {
            name: "big two-level win (Gauss/Ilink/Em3d)",
            ok: gain > 1.15,
            detail: format!("{name}: 1LD/2L = {gain:.2}x"),
        });
    }

    // 4. 2L coalesces: fewer page transfers and less data than 1LD
    //    everywhere (TSP excluded: its transfer count tracks its
    //    nondeterministic search volume, not the protocol).
    for (name, _seq, outs) in &at32 {
        if *name == "TSP" {
            continue;
        }
        let t2 = outs[0].report.counters.page_transfers;
        let t1 = outs[2].report.counters.page_transfers;
        checks.push(Check {
            name: "2L transfers <= 1LD transfers",
            ok: t2 <= t1,
            detail: format!("{name}: {t2} vs {t1}"),
        });
    }

    // 5. LU's 1L clustering collapse (§3.3.3): 1L at 32:4 clearly slower
    //    than 2L.
    {
        let (_, _, outs) = at32.iter().find(|(n, _, _)| *n == "LU").unwrap();
        let ratio = outs[3].report.exec_ns as f64 / outs[0].report.exec_ns as f64;
        checks.push(Check {
            name: "LU write-doubling collapse",
            ok: ratio > 1.5,
            detail: format!("1L/2L = {ratio:.2}x"),
        });
    }

    // 6. Speedups are sane: every app gains from 4 → 32 processors under 2L.
    for (name, seq, outs) in &at32 {
        let s32 = outs[0].report.speedup(seq.report.exec_ns);
        checks.push(Check {
            name: "2L speedup at 32:4 > 2",
            ok: s32 > 2.0,
            detail: format!("{name}: {s32:.2}x"),
        });
    }

    // Report.
    let mut failed = 0;
    for c in &checks {
        let mark = if c.ok { "PASS" } else { "FAIL" };
        if !c.ok {
            failed += 1;
        }
        println!("[{mark}] {:<38} {}", c.name, c.detail);
    }
    println!();
    println!("{} checks, {} failed", checks.len(), failed);
    if failed > 0 {
        std::process::exit(1);
    }
}
