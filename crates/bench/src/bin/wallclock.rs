//! Wall-clock benchmark harness (`scripts/bench.sh`).
//!
//! Two jobs:
//!
//! 1. **Deterministic virtual-time goldens.** Parallel runs are *virtual-time
//!    nondeterministic* (OS thread scheduling perturbs `Resource` gap
//!    placement and lock grant order; see DESIGN.md), so this harness pins
//!    virtual time with two fully deterministic probes instead:
//!    * each application's sequential (1:1, uninstrumented) execution time
//!      and checksum — cross-checked against the committed
//!      `results/table2.jsonl` as well;
//!    * a scripted single-threaded multi-node protocol **replay** across all
//!      four paper protocols, driving the [`Engine`] directly through
//!      fetches, twins, outgoing/incoming diffs, shootdowns, and exclusive
//!      mode, and recording every processor clock and protocol counter.
//!
//!    The goldens live in `results/vt_golden.jsonl`; any regeneration must
//!    reproduce that file byte-for-byte or the harness exits nonzero.
//!
//! 2. **Wall-clock timing.** Times the quick32 suite (eight apps × the four
//!    paper protocols at 32:4) in real time, best-of-`WALLCLOCK_REPS`
//!    (default 3), and writes `BENCH_wallclock.json` with per-cell wall
//!    seconds, pages diffed, diff bytes moved, and — when
//!    `results/wallclock_baseline.jsonl` exists — per-cell and geomean
//!    speedup versus that pre-change baseline.
//!
//! Environment:
//! * `WALLCLOCK_BASELINE=1` — capture mode: (re)write the wall-clock
//!   baseline and the virtual-time goldens instead of checking them.
//! * `WALLCLOCK_REPS=N` — timing repetitions per cell (min is reported).

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use cashmere_apps::{suite, Benchmark, Scale};
use cashmere_bench::{fmt_json_f64, json_f64, json_str, run, sequential, RunOpts};
use cashmere_core::engine::ProcCtx;
use cashmere_core::{ClusterConfig, Engine, ProcId, ProtocolKind, Topology, PAGE_WORDS};

/// One timed app × protocol cell.
struct Cell {
    app: String,
    protocol: &'static str,
    wall_secs: f64,
    exec_secs: f64,
    pages_diffed: u64,
    diff_bytes: u64,
}

fn main() {
    let baseline_mode = std::env::var("WALLCLOCK_BASELINE").is_ok_and(|v| v == "1");
    let reps = std::env::var("WALLCLOCK_REPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3);

    let apps = suite(Scale::Bench);

    // --- Deterministic virtual-time goldens -----------------------------
    let (golden, seq_secs) = build_goldens(&apps);
    let golden_path = Path::new("results/vt_golden.jsonl");
    let mut failures = 0usize;
    if baseline_mode || !golden_path.exists() {
        std::fs::write(golden_path, &golden).expect("write vt_golden.jsonl");
        eprintln!("[wrote {}]", golden_path.display());
    } else {
        let committed = std::fs::read_to_string(golden_path).expect("read vt_golden.jsonl");
        if committed == golden {
            println!(
                "vt_golden: OK ({} lines, byte-identical)",
                golden.lines().count()
            );
        } else {
            failures += 1;
            eprintln!(
                "vt_golden: DRIFT — regenerated goldens differ from {}",
                golden_path.display()
            );
            for (i, (a, b)) in committed.lines().zip(golden.lines()).enumerate() {
                if a != b {
                    eprintln!(
                        "  line {}:\n    committed:   {a}\n    regenerated: {b}",
                        i + 1
                    );
                }
            }
        }
    }
    failures += check_table2(&seq_secs);

    // --- Wall-clock timing ----------------------------------------------
    let mut cells = Vec::new();
    for app in &apps {
        for p in ProtocolKind::PAPER_FOUR {
            let mut best: Option<Cell> = None;
            for _ in 0..reps {
                let t = Instant::now();
                let out = run(app.as_ref(), p, 32, 4, RunOpts::default());
                let wall = t.elapsed().as_secs_f64();
                let c = out.report.counters;
                if best.as_ref().is_none_or(|b| wall < b.wall_secs) {
                    best = Some(Cell {
                        app: app.name().to_string(),
                        protocol: p.label(),
                        wall_secs: wall,
                        exec_secs: out.report.exec_secs(),
                        pages_diffed: c.flush_updates + c.incoming_diffs + c.shootdowns,
                        diff_bytes: c.data_bytes,
                    });
                }
            }
            let b = best.expect("reps >= 1");
            println!(
                "{:8} {:4} wall={:7.3}s  exec={:8.3}s  pages_diffed={:6}  diff_bytes={}",
                b.app, b.protocol, b.wall_secs, b.exec_secs, b.pages_diffed, b.diff_bytes
            );
            cells.push(b);
        }
    }

    let baseline_path = Path::new("results/wallclock_baseline.jsonl");
    if baseline_mode {
        let mut s = String::new();
        for c in &cells {
            s.push_str(&cell_json("wallclock_baseline", c, None));
            s.push('\n');
        }
        std::fs::write(baseline_path, s).expect("write wallclock_baseline.jsonl");
        eprintln!("[wrote {}]", baseline_path.display());
        std::process::exit(i32::from(failures > 0));
    }

    let baseline = baseline_path
        .exists()
        .then(|| std::fs::read_to_string(baseline_path).expect("read wallclock_baseline.jsonl"));
    let mut out = String::from("{\"experiment\":\"wallclock\",\"config\":\"32:4\",");
    let _ = write!(out, "\"reps\":{reps},\"cells\":[");
    let mut speedups = Vec::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let base = baseline
            .as_deref()
            .and_then(|b| baseline_wall(b, &c.app, c.protocol));
        if let Some(bw) = base {
            speedups.push(bw / c.wall_secs);
        }
        out.push_str(&cell_json("wallclock", c, base));
    }
    out.push(']');
    if speedups.is_empty() {
        eprintln!(
            "[no wall-clock baseline at {} — speedups omitted]",
            baseline_path.display()
        );
    } else {
        let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
        let _ = write!(out, ",\"geomean_speedup\":{}", fmt_json_f64(geomean));
        println!(
            "geomean wall-clock speedup vs baseline: {geomean:.3}x ({} cells)",
            speedups.len()
        );
    }
    out.push_str("}\n");
    std::fs::write("BENCH_wallclock.json", out).expect("write BENCH_wallclock.json");
    eprintln!("[wrote BENCH_wallclock.json]");

    if failures > 0 {
        eprintln!("FAIL: {failures} virtual-time check(s) drifted");
        std::process::exit(1);
    }
    println!("virtual-time checks passed");
}

/// Serializes one cell, optionally with its baseline wall time and speedup.
fn cell_json(experiment: &str, c: &Cell, baseline_wall: Option<f64>) -> String {
    let mut s = String::with_capacity(256);
    s.push('{');
    json_str(&mut s, "experiment", experiment);
    s.push(',');
    json_str(&mut s, "app", &c.app);
    s.push(',');
    json_str(&mut s, "protocol", c.protocol);
    s.push(',');
    json_f64(&mut s, "wall_secs", c.wall_secs);
    s.push(',');
    json_f64(&mut s, "exec_secs", c.exec_secs);
    let _ = write!(
        s,
        ",\"pages_diffed\":{},\"diff_bytes\":{}",
        c.pages_diffed, c.diff_bytes
    );
    if let Some(bw) = baseline_wall {
        s.push(',');
        json_f64(&mut s, "baseline_wall_secs", bw);
        s.push(',');
        json_f64(&mut s, "speedup", bw / c.wall_secs);
    }
    s.push('}');
    s
}

/// Builds the deterministic golden file contents — one line per
/// application's sequential run, then one line per protocol's scripted
/// replay — plus the per-app sequential seconds for the table2 cross-check.
fn build_goldens(apps: &[Box<dyn Benchmark>]) -> (String, Vec<(&'static str, f64)>) {
    let mut s = String::new();
    let mut seq_secs = Vec::new();
    for app in apps {
        let out = sequential(app.as_ref());
        seq_secs.push((app.name(), out.report.exec_secs()));
        let mut line = String::new();
        line.push('{');
        json_str(&mut line, "experiment", "vt_golden");
        line.push(',');
        json_str(&mut line, "kind", "sequential");
        line.push(',');
        json_str(&mut line, "app", app.name());
        let _ = write!(
            line,
            ",\"exec_ns\":{},\"checksum\":{}}}",
            out.report.exec_ns, out.checksum
        );
        println!(
            "vt_golden seq    {:8} exec_ns={}",
            app.name(),
            out.report.exec_ns
        );
        s.push_str(&line);
        s.push('\n');
    }
    for p in ProtocolKind::PAPER_FOUR {
        let (clocks, counters) = replay(p);
        let total: u64 = clocks.iter().sum();
        let mut line = String::new();
        line.push('{');
        json_str(&mut line, "experiment", "vt_golden");
        line.push(',');
        json_str(&mut line, "kind", "replay");
        line.push(',');
        json_str(&mut line, "protocol", p.label());
        let _ = write!(line, ",\"total_ns\":{total},\"clock_ns\":[");
        for (i, c) in clocks.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{c}");
        }
        line.push_str("],\"counters\":{");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{k}\":{v}");
        }
        line.push_str("}}");
        println!("vt_golden replay {:4} total_ns={total}", p.label());
        s.push_str(&line);
        s.push('\n');
    }
    (s, seq_secs)
}

/// Cross-checks the deterministic sequential runs against the committed
/// `results/table2.jsonl` (its 1:1 rows were produced by the same
/// `sequential()` entry point). Returns the number of mismatches.
fn check_table2(seq_secs: &[(&'static str, f64)]) -> usize {
    let path = Path::new("results/table2.jsonl");
    let Ok(committed) = std::fs::read_to_string(path) else {
        eprintln!("[no {} — sequential cross-check skipped]", path.display());
        return 0;
    };
    let mut failures = 0;
    for &(name, got) in seq_secs {
        let Some(line) = committed.lines().find(|l| {
            l.contains(&format!("\"app\":\"{name}\"")) && l.contains("\"config\":\"1:1\"")
        }) else {
            continue;
        };
        let Some(want) = field_f64(line, "exec_secs") else {
            continue;
        };
        if got.to_bits() == want.to_bits() {
            println!("table2 seq       {name:8} OK ({got:?}s)");
        } else {
            failures += 1;
            eprintln!("table2 seq       {name:8} DRIFT: committed {want:?}s, regenerated {got:?}s");
        }
    }
    failures
}

/// Extracts a numeric field from one JSONL line (hand-rolled: no external
/// deps in this container).
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// Finds the baseline wall seconds for one cell in the baseline JSONL.
fn baseline_wall(baseline: &str, app: &str, protocol: &str) -> Option<f64> {
    baseline
        .lines()
        .find(|l| {
            l.contains(&format!("\"app\":\"{app}\""))
                && l.contains(&format!("\"protocol\":\"{protocol}\""))
        })
        .and_then(|l| field_f64(l, "wall_secs"))
}

/// Scripted single-threaded protocol replay: 2 nodes × 2 processors, driven
/// through every diff-carrying path the suite exercises. Single-threaded
/// engine driving is fully deterministic (no OS scheduling, no resource
/// contention races), so the resulting virtual clocks and counters are exact
/// fingerprints of the protocol's cost charging.
///
/// The word sets touched by the two nodes are disjoint within each page
/// (producer writes in `[0, 448)` + words 1000/1001, consumer writes in
/// `[512, 960)`), keeping the script data-race-free at word granularity —
/// the protocols' programming model — while still exercising two-way
/// diffing, shootdown, and run-shaped diffs.
fn replay(protocol: ProtocolKind) -> (Vec<u64>, Vec<(&'static str, u64)>) {
    let mut cfg = ClusterConfig::new(Topology::new(2, 2), protocol)
        .with_heap_pages(16)
        .with_sync(2, 2, 0);
    // Superpage granularity 2 so non-home private pages exist (exclusive
    // mode is reachable), exactly as in the engine-semantics tests.
    cfg.pages_per_superpage = 2;
    let e = Engine::new(cfg);
    let mut ctxs: Vec<ProcCtx> = (0..4).map(|i| e.make_ctx(ProcId(i))).collect();

    // Phase 1: per-page sharing with varied diff shapes. p0 (node 0) is the
    // producer; p2/p3 (node 1) consume, write back, and race with p0.
    for page in 0..6usize {
        let base = page * PAGE_WORDS;
        let pattern = write_pattern(page);
        // First touch by p0 homes the superpage at node 0.
        for &w in &pattern {
            e.write_word(&mut ctxs[0], base + w, ((page as u64) << 32) | w as u64);
        }
        e.release_actions(&mut ctxs[0]);

        // Remote read: page fetch to node 1.
        e.acquire_actions(&mut ctxs[2]);
        for &w in &pattern {
            assert_eq!(
                e.read_word(&mut ctxs[2], base + w),
                ((page as u64) << 32) | w as u64
            );
        }
        // Remote writes: twin + dirty list, shifted into [512, 960).
        for &w in &pattern {
            e.write_word(&mut ctxs[2], base + 512 + w, w as u64 + 1);
        }

        // Concurrent home-side writes + release: posts notices while node 1
        // still has a local writer (words 1000/1001 are untouched by node 1,
        // so the script stays data-race-free).
        e.write_word(&mut ctxs[0], base + 1000, 7);
        e.write_word(&mut ctxs[0], base + 1001, 8);
        e.release_actions(&mut ctxs[0]);

        // Sibling read after acquire: under 2LS this shoots down p2's write
        // mapping; under 2L the refetch applies an incoming diff on top of
        // p2's unflushed words.
        e.acquire_actions(&mut ctxs[3]);
        assert_eq!(e.read_word(&mut ctxs[3], base + 1000), 7);
        e.acquire_actions(&mut ctxs[2]);
        assert_eq!(e.read_word(&mut ctxs[2], base + 1001), 8);

        // Outgoing diff flush of node 1's surviving writes.
        e.release_actions(&mut ctxs[2]);
        e.release_actions(&mut ctxs[3]);
        e.acquire_actions(&mut ctxs[0]);
        assert_eq!(
            e.read_word(&mut ctxs[0], base + 512 + pattern[0]),
            pattern[0] as u64 + 1
        );
    }

    // Phase 2: exclusive mode. p0 first-touches page 12 (homes superpage
    // {12,13} at node 0); p2 writes page 13 privately → exclusive; a sibling
    // writer joins; p1's read breaks exclusivity (whole-frame flush); the
    // sibling's next release flushes via the NLE path.
    let base = 12 * PAGE_WORDS;
    e.write_word(&mut ctxs[0], base, 1);
    for w in 0..64usize {
        e.write_word(&mut ctxs[2], base + PAGE_WORDS + w, 100 + w as u64);
    }
    e.write_word(&mut ctxs[3], base + PAGE_WORDS + 300, 5);
    e.release_actions(&mut ctxs[2]);
    assert_eq!(e.read_word(&mut ctxs[1], base + PAGE_WORDS), 100);
    e.write_word(&mut ctxs[3], base + PAGE_WORDS + 301, 6);
    e.release_actions(&mut ctxs[3]);
    // p1 must acquire to see the flush: under the one-level protocols it is
    // its own protocol node and its read mapping is legitimately stale
    // until then (lazy release consistency).
    e.acquire_actions(&mut ctxs[1]);
    assert_eq!(e.read_word(&mut ctxs[1], base + PAGE_WORDS + 301), 6);

    let clocks = ctxs.iter().map(|c| c.clock.now()).collect();
    (clocks, e.stats.snapshot())
}

/// Per-page word-write pattern (all within `[0, 448)`), chosen to produce
/// dense runs, alternating words, sparse singles, and long runs — the diff
/// shapes a run-length representation must handle.
fn write_pattern(page: usize) -> Vec<usize> {
    match page % 6 {
        // Dense run at the front.
        0 => (0..96).collect(),
        // Alternating words (worst case for run-length coding).
        1 => (0..192).step_by(2).collect(),
        // Sparse singles.
        2 => (0..448).step_by(37).collect(),
        // Two separated dense runs.
        3 => (32..64).chain(400..440).collect(),
        // One long dense run.
        4 => (0..440).collect(),
        // Single word.
        _ => vec![5],
    }
}
