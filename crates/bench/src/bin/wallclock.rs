//! Wall-clock benchmark harness (`scripts/bench.sh`).
//!
//! Two jobs:
//!
//! 1. **Deterministic virtual-time goldens.** Parallel runs are *virtual-time
//!    nondeterministic* (OS thread scheduling perturbs `Resource` gap
//!    placement and lock grant order; see DESIGN.md), so this harness pins
//!    virtual time with two fully deterministic probes instead:
//!    * each application's sequential (1:1, uninstrumented) execution time
//!      and checksum — cross-checked against the committed
//!      `results/table2.jsonl` as well;
//!    * a scripted single-threaded multi-node protocol **replay** across all
//!      four paper protocols, driving the `Engine` directly through
//!      fetches, twins, outgoing/incoming diffs, shootdowns, and exclusive
//!      mode, and recording every processor clock and protocol counter.
//!
//!    Both probes live in `cashmere_bench::golden` (shared with the `soak`
//!    fault-injection harness and the `obsgate` observability gate). The
//!    goldens live in `results/vt_golden.jsonl`; any regeneration must
//!    reproduce that file byte-for-byte or the harness exits nonzero.
//!
//! 2. **Wall-clock timing.** Times the quick32 suite (eight apps × the four
//!    paper protocols at 32:4) through `cashmere_bench::sweep`, pinned to a
//!    single job so timing reps never share the host with a sibling cell
//!    (`CASHMERE_JOBS` is echoed into the JSON for provenance only),
//!    best-of-`WALLCLOCK_REPS` (default 3), and writes
//!    `BENCH_wallclock.json` with per-cell wall seconds, pages diffed, diff
//!    bytes moved, and — when `results/wallclock_baseline.jsonl` exists —
//!    per-cell and geomean speedup versus that pre-change baseline.
//!
//! Flags:
//! * `--seed N` — provenance tag echoed into `BENCH_wallclock.json`
//!   (default 0). The goldens themselves are seed-independent by design;
//!   the tag lets downstream tooling correlate a wall-clock capture with
//!   the soak campaign that ran alongside it.
//! * `--obs` — run the timing sweep with observability on and write the
//!   Figure-7 breakdown to `results/fig7.{jsonl,txt}`.
//! * `--backend {mc,rdma,cxl}` — interconnect backend (DESIGN.md §14);
//!   non-`mc` backends skip the golden identity gates (which pin the
//!   paper's network) and the baseline speedup comparison.
//! * `--trace APP:PROTO` — with `--obs`, export that cell's spans as a
//!   Chrome trace to `results/trace_<APP>_<PROTO>.json`.
//!
//! Environment:
//! * `WALLCLOCK_BASELINE=1` — capture mode: (re)write the wall-clock
//!   baseline and the virtual-time goldens instead of checking them.
//! * `WALLCLOCK_REPS=N` — timing repetitions per cell (min is reported).

use std::fmt::Write as _;
use std::path::Path;

use cashmere_apps::{suite, Scale};
use cashmere_bench::golden::{build_goldens, check_table2, field_f64};
use cashmere_bench::sweep::{jobs_from_env, run_sweep_with_jobs, Cell, SweepSpec};
use cashmere_bench::{fmt_json_f64, json_f64, json_str, obsout, parse_backend, RunOpts};
use cashmere_core::{Backend, ProtocolKind};

struct Args {
    seed: u64,
    obs: bool,
    backend: Backend,
    trace: Option<(String, String)>,
}

/// Parses `--seed N`, `--obs`, `--backend {mc,rdma,cxl}`, and
/// `--trace APP:PROTO`; any other flag is an error.
fn parse_args() -> Args {
    let mut a = Args {
        seed: 0,
        obs: false,
        backend: Backend::default(),
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                a.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            "--obs" => a.obs = true,
            "--backend" => a.backend = parse_backend(args.next()),
            "--trace" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| panic!("--trace requires APP:PROTO"));
                let (app, proto) = spec
                    .split_once(':')
                    .unwrap_or_else(|| panic!("--trace takes APP:PROTO, got {spec:?}"));
                a.trace = Some((app.to_string(), proto.to_string()));
            }
            other => {
                panic!(
                    "unknown flag {other:?} (supported: --seed N, --obs, \
                     --backend {{mc,rdma,cxl}}, --trace APP:PROTO)"
                )
            }
        }
    }
    if a.trace.is_some() && !a.obs {
        panic!("--trace requires --obs");
    }
    a
}

fn main() {
    let args = parse_args();
    let baseline_mode = std::env::var("WALLCLOCK_BASELINE").is_ok_and(|v| v == "1");
    let reps = std::env::var("WALLCLOCK_REPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3);

    let apps = suite(Scale::Bench);

    // --- Deterministic virtual-time goldens -----------------------------
    // The goldens pin the *paper's* network: on a modern backend the
    // virtual times legitimately differ, so the identity gate only runs on
    // the Memory Channel.
    let mut failures = 0usize;
    if args.backend != Backend::MemoryChannel {
        eprintln!(
            "[backend {} — vt_golden/table2 identity gates skipped (Memory Channel only)]",
            args.backend.label()
        );
    } else {
        failures += golden_gates(&apps, baseline_mode);
    }

    // --- Wall-clock timing ----------------------------------------------
    let spec = SweepSpec {
        total: 32,
        per_node: 4,
        opts: RunOpts {
            obs: args.obs,
            backend: args.backend,
            ..RunOpts::default()
        },
        reps,
        seed: args.seed,
        ..SweepSpec::new(&apps, &ProtocolKind::PAPER_FOUR)
    };
    run_timing(&args, &spec, baseline_mode, reps, failures);
}

/// Regenerates the deterministic goldens and gates them against the
/// committed files (capture mode rewrites instead). Returns the failure
/// count.
fn golden_gates(apps: &[Box<dyn cashmere_apps::Benchmark>], baseline_mode: bool) -> usize {
    let g = build_goldens(apps, None, false, true, false);
    let golden = g.jsonl;
    let golden_path = Path::new("results/vt_golden.jsonl");
    let mut failures = 0usize;
    if baseline_mode || !golden_path.exists() {
        std::fs::write(golden_path, &golden).expect("write vt_golden.jsonl");
        eprintln!("[wrote {}]", golden_path.display());
    } else {
        let committed = std::fs::read_to_string(golden_path).expect("read vt_golden.jsonl");
        if committed == golden {
            println!(
                "vt_golden: OK ({} lines, byte-identical)",
                golden.lines().count()
            );
        } else {
            failures += 1;
            eprintln!(
                "vt_golden: DRIFT — regenerated goldens differ from {}",
                golden_path.display()
            );
            for (i, (a, b)) in committed.lines().zip(golden.lines()).enumerate() {
                if a != b {
                    eprintln!(
                        "  line {}:\n    committed:   {a}\n    regenerated: {b}",
                        i + 1
                    );
                }
            }
        }
    }
    failures += check_table2(&g.seq_secs);
    failures
}

/// The timed sweep plus BENCH_wallclock.json emission; exits the process.
fn run_timing(args: &Args, spec: &SweepSpec, baseline_mode: bool, reps: usize, failures: usize) {
    // The timed sweep is pinned to one job: a timing rep sharing the host
    // with a sibling cell would inflate its wall seconds. `CASHMERE_JOBS`
    // still parallelizes the soak/obsgate sweeps; it is echoed into the
    // bench JSON below purely for provenance.
    let cells = run_sweep_with_jobs(spec, 1, |c| {
        let (pages_diffed, diff_bytes) = diff_traffic(c);
        println!(
            "{:8} {:4} wall={:7.3}s  exec={:8.3}s  pages_diffed={:6}  diff_bytes={}",
            c.app,
            c.protocol.label(),
            c.wall_secs,
            c.outcome.report.exec_secs(),
            pages_diffed,
            diff_bytes
        );
    });

    if args.obs {
        let (jsonl, txt, rows) = obsout::write_fig7(&cells, "32:4").expect("write fig7");
        eprintln!(
            "[wrote {} and {} ({rows} rows)]",
            jsonl.display(),
            txt.display()
        );
        if let Some((app, proto)) = &args.trace {
            let cell = cells
                .iter()
                .find(|c| c.app == *app && c.protocol.label() == proto)
                .unwrap_or_else(|| panic!("no cell {app}:{proto} in the sweep"));
            let (path, events) = obsout::export_trace(cell).expect("export trace");
            eprintln!("[wrote {} ({events} events)]", path.display());
        }
    }

    let baseline_path = Path::new("results/wallclock_baseline.jsonl");
    if baseline_mode {
        let mut s = String::new();
        for c in &cells {
            s.push_str(&cell_json("wallclock_baseline", c, None));
            s.push('\n');
        }
        std::fs::write(baseline_path, s).expect("write wallclock_baseline.jsonl");
        eprintln!("[wrote {}]", baseline_path.display());
        std::process::exit(i32::from(failures > 0));
    }

    // The wall-clock baseline was captured on the Memory Channel; a modern
    // backend's virtual work differs, so cross-backend speedups would
    // mislead.
    let baseline = (args.backend == Backend::MemoryChannel && baseline_path.exists())
        .then(|| std::fs::read_to_string(baseline_path).expect("read wallclock_baseline.jsonl"));
    let mut out = String::from("{\"experiment\":\"wallclock\",\"config\":\"32:4\",");
    let _ = write!(
        out,
        "\"backend\":\"{}\",\"seed\":{},\"reps\":{reps},\"jobs\":{},\"cells\":[",
        args.backend.label(),
        args.seed,
        jobs_from_env()
    );
    let mut speedups = Vec::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let base = baseline
            .as_deref()
            .and_then(|b| baseline_wall(b, &c.app, c.protocol.label()));
        if let Some(bw) = base {
            speedups.push(bw / c.wall_secs);
        }
        out.push_str(&cell_json("wallclock", c, base));
    }
    out.push(']');
    if speedups.is_empty() {
        eprintln!(
            "[no wall-clock baseline at {} — speedups omitted]",
            baseline_path.display()
        );
    } else {
        let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
        let _ = write!(out, ",\"geomean_speedup\":{}", fmt_json_f64(geomean));
        println!(
            "geomean wall-clock speedup vs baseline: {geomean:.3}x ({} cells)",
            speedups.len()
        );
    }
    out.push_str("}\n");
    std::fs::write("BENCH_wallclock.json", out).expect("write BENCH_wallclock.json");
    eprintln!("[wrote BENCH_wallclock.json]");

    if failures > 0 {
        eprintln!("FAIL: {failures} virtual-time check(s) drifted");
        std::process::exit(1);
    }
    println!("virtual-time checks passed");
}

/// Diff traffic summarized the way the baseline file records it.
fn diff_traffic(c: &Cell) -> (u64, u64) {
    let counters = c.outcome.report.counters;
    (
        counters.flush_updates + counters.incoming_diffs + counters.shootdowns,
        counters.data_bytes,
    )
}

/// Serializes one cell, optionally with its baseline wall time and speedup.
fn cell_json(experiment: &str, c: &Cell, baseline_wall: Option<f64>) -> String {
    let (pages_diffed, diff_bytes) = diff_traffic(c);
    let mut s = String::with_capacity(256);
    s.push('{');
    json_str(&mut s, "experiment", experiment);
    s.push(',');
    json_str(&mut s, "app", &c.app);
    s.push(',');
    json_str(&mut s, "protocol", c.protocol.label());
    s.push(',');
    json_f64(&mut s, "wall_secs", c.wall_secs);
    s.push(',');
    json_f64(&mut s, "exec_secs", c.outcome.report.exec_secs());
    let _ = write!(
        s,
        ",\"pages_diffed\":{pages_diffed},\"diff_bytes\":{diff_bytes}"
    );
    if let Some(bw) = baseline_wall {
        s.push(',');
        json_f64(&mut s, "baseline_wall_secs", bw);
        s.push(',');
        json_f64(&mut s, "speedup", bw / c.wall_secs);
    }
    s.push('}');
    s
}

/// Finds the baseline wall seconds for one cell in the baseline JSONL.
fn baseline_wall(baseline: &str, app: &str, protocol: &str) -> Option<f64> {
    baseline
        .lines()
        .find(|l| {
            l.contains(&format!("\"app\":\"{app}\""))
                && l.contains(&format!("\"protocol\":\"{protocol}\""))
        })
        .and_then(|l| field_f64(l, "wall_secs"))
}
