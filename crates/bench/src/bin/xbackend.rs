//! Cross-backend experiment (`scripts/xbackend.sh`, `CHECK_XBACKEND=1` in
//! `scripts/check.sh`): does 2L still win when the paper's Memory Channel
//! is swapped for a 2026-class fabric? See DESIGN.md §14.
//!
//! Three phases, nonzero exit on any failure:
//!
//! 1. **Golden preflight.** The pluggable transport must not move the
//!    paper's artifacts: regenerates the deterministic goldens on the
//!    default Memory Channel backend and requires byte-identity with the
//!    committed `results/vt_golden.jsonl` plus the sequential rows of
//!    `results/table2.jsonl`.
//! 2. **Replay fingerprints.** The scripted single-threaded protocol
//!    replay ([`cashmere_bench::golden::replay_on`]) across all four paper
//!    protocols × all three backends, twice each: both passes must agree
//!    exactly (per-backend determinism), and the direct-read backends
//!    (`rdma`, `cxl`) must report strictly fewer `remote_requests` than
//!    `mc` per protocol — a page fetch on a remote-read fabric is a pull,
//!    not a request/reply round trip.
//! 3. **Cross-backend sweep.** The full paper suite (test scale) plus the
//!    two service apps (`KV`, `BankOltp`) × the four paper protocols × all
//!    three backends at 4:2, auditor and observability on. Every cell must
//!    audit clean and reproduce the fault-free `mc` checksum for its app
//!    (virtual time moves across fabrics; answers must not), and per
//!    protocol the aggregate `remote_requests` on `rdma`/`cxl` must stay
//!    strictly below `mc`'s.
//!
//! Flags: `--seed N` re-seeds the service-app traces (default 0x5EED).
//!
//! Output: `BENCH_xbackend.json` — per-cell records, per-backend ×
//! protocol virtual-time totals with Figure-7-style breakdowns, the replay
//! fingerprints, and each backend's winning protocol.

use std::fmt::Write as _;
use std::path::Path;

use cashmere_apps::{suite, BankOltp, Benchmark, KvService, Scale};
use cashmere_bench::golden::{build_goldens, check_table2, replay_on};
use cashmere_bench::sweep::{run_sweep, SweepSpec};
use cashmere_bench::{json_f64, json_str, RunOpts};
use cashmere_check::audit;
use cashmere_core::{Backend, ProtocolKind};
use cashmere_obs::{Fig7Breakdown, Fig7Cat};

/// The sweep topology: 4 processors on 2 nodes, so every cell crosses a
/// node boundary (same as the soak and service harnesses).
const XB_CONFIG: (usize, usize) = (4, 2);

fn parse_args() -> u64 {
    let mut seed = 0x5EED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
            }
            other => panic!("unknown flag {other:?} (supported: --seed N)"),
        }
    }
    seed
}

fn main() {
    let seed = parse_args();
    let mut failures = 0usize;

    failures += golden_preflight();

    let (replay_json, replay_failures) = replay_fingerprints();
    failures += replay_failures;

    let (cell_json, total_json, sweep_failures) = cross_backend_sweep(seed);
    failures += sweep_failures;

    let mut out = String::from("{\"experiment\":\"xbackend\",");
    let _ = write!(
        out,
        "\"seed\":{seed},\"config\":\"{}:{}\",\"backends\":[",
        XB_CONFIG.0, XB_CONFIG.1
    );
    for (i, b) in Backend::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", b.label());
    }
    out.push_str("],\"replay\":[");
    out.push_str(&replay_json.join(","));
    out.push_str("],\"cells\":[");
    out.push_str(&cell_json.join(","));
    out.push_str("],\"totals\":[");
    out.push_str(&total_json.join(","));
    let _ = write!(out, "],\"failures\":{failures}}}");
    out.push('\n');
    std::fs::write("BENCH_xbackend.json", out).expect("write BENCH_xbackend.json");
    eprintln!("[wrote BENCH_xbackend.json]");

    if failures > 0 {
        eprintln!("FAIL: {failures} cross-backend check(s) failed");
        std::process::exit(1);
    }
    println!("xbackend: all checks passed");
}

/// Phase 1: routing the Memory Channel through the [`cashmere_core::
/// Transport`] trait must leave the committed paper goldens byte-identical.
fn golden_preflight() -> usize {
    let mut failures = 0usize;
    let apps = suite(Scale::Bench);
    let g = build_goldens(&apps, None, false, false, false);
    let golden_path = Path::new("results/vt_golden.jsonl");
    match std::fs::read_to_string(golden_path) {
        Ok(committed) if committed == g.jsonl => {
            println!(
                "xbackend golden: paper goldens byte-identical ({} lines)",
                g.jsonl.lines().count()
            );
        }
        Ok(committed) => {
            failures += 1;
            eprintln!("xbackend golden: DRIFT in {}", golden_path.display());
            for (i, (a, b)) in committed.lines().zip(g.jsonl.lines()).enumerate() {
                if a != b {
                    eprintln!(
                        "  line {}:\n    committed: {a}\n    regenerated: {b}",
                        i + 1
                    );
                }
            }
        }
        Err(e) => {
            failures += 1;
            eprintln!(
                "xbackend golden: cannot read {} ({e}) — capture goldens first",
                golden_path.display()
            );
        }
    }
    failures + check_table2(&g.seq_secs)
}

/// Phase 2: deterministic replay fingerprints per backend × protocol, plus
/// the round-trip gate on the `remote_requests` counter.
fn replay_fingerprints() -> (Vec<String>, usize) {
    let mut failures = 0usize;
    let mut records = Vec::new();
    // remote_requests per protocol, indexed like Backend::ALL.
    let mut requests = vec![[0u64; 3]; ProtocolKind::PAPER_FOUR.len()];

    for (bi, backend) in Backend::ALL.into_iter().enumerate() {
        for (pi, protocol) in ProtocolKind::PAPER_FOUR.into_iter().enumerate() {
            let (clocks, counters, _) = replay_on(backend, protocol, None, false, false);
            let (again, counters2, _) = replay_on(backend, protocol, None, false, false);
            let deterministic = clocks == again && counters == counters2;
            if !deterministic {
                failures += 1;
                eprintln!(
                    "xbackend replay {:4} {:4}: NONDETERMINISTIC — two passes disagree",
                    backend.label(),
                    protocol.label()
                );
            }
            let total: u64 = clocks.iter().sum();
            let rr = counters
                .iter()
                .find(|(k, _)| *k == "remote_requests")
                .map_or(0, |&(_, v)| v);
            requests[pi][bi] = rr;
            println!(
                "xbackend replay {:4} {:4} total_ns={:12} remote_requests={:5} ({})",
                backend.label(),
                protocol.label(),
                total,
                rr,
                if deterministic { "det" } else { "NONDET" },
            );
            let mut s = String::with_capacity(160);
            s.push('{');
            json_str(&mut s, "backend", backend.label());
            s.push(',');
            json_str(&mut s, "protocol", protocol.label());
            let _ = write!(
                s,
                ",\"total_ns\":{total},\"remote_requests\":{rr},\
                 \"deterministic\":{deterministic}}}"
            );
            records.push(s);
        }
    }

    // Direct-read backends must issue strictly fewer request/reply round
    // trips: a page fetch is a remote read, not a request + reply-write.
    for (pi, protocol) in ProtocolKind::PAPER_FOUR.into_iter().enumerate() {
        let [mc, rdma, cxl] = requests[pi];
        for (label, direct) in [("rdma", rdma), ("cxl", cxl)] {
            if direct >= mc {
                failures += 1;
                eprintln!(
                    "xbackend replay {:4}: {label} remote_requests {direct} not < mc {mc}",
                    protocol.label()
                );
            }
        }
    }
    (records, failures)
}

/// The sweep's application set: the paper suite at test scale plus the two
/// trace-driven service apps, re-seeded from `seed`.
fn sweep_apps(seed: u64) -> Vec<Box<dyn Benchmark>> {
    let mut apps = suite(Scale::Test);
    let mut kv = KvService::new(Scale::Test);
    kv.spec.seed = seed;
    let mut bank = BankOltp::new(Scale::Test);
    bank.spec.seed = seed ^ 0x0BA2_0172;
    apps.push(Box::new(kv));
    apps.push(Box::new(bank));
    apps
}

/// Phase 3: the full apps × protocols × backends sweep with audits,
/// checksum gates against the `mc` baseline, aggregate round-trip gates,
/// and per-backend virtual-time totals.
fn cross_backend_sweep(seed: u64) -> (Vec<String>, Vec<String>, usize) {
    let mut failures = 0usize;
    let apps = sweep_apps(seed);
    let mut cell_json = Vec::new();
    let mut total_json = Vec::new();
    // Fault-free mc checksums per app, the oracle for every other cell
    // (answers are fabric-independent even though virtual time is not).
    let mut mc_checksums: Vec<(String, u64)> = Vec::new();
    // Aggregate remote_requests per protocol, indexed like Backend::ALL.
    let mut requests = vec![[0u64; 3]; ProtocolKind::PAPER_FOUR.len()];

    for (bi, backend) in Backend::ALL.into_iter().enumerate() {
        let spec = SweepSpec {
            total: XB_CONFIG.0,
            per_node: XB_CONFIG.1,
            opts: RunOpts {
                obs: true,
                backend,
                ..RunOpts::default()
            },
            audit: true,
            ..SweepSpec::new(&apps, &ProtocolKind::PAPER_FOUR)
        };
        // Per-protocol totals for this backend.
        let mut vt = [0u64; ProtocolKind::PAPER_FOUR.len()];
        let mut fig7 = [Fig7Breakdown::default(); ProtocolKind::PAPER_FOUR.len()];
        let cells = run_sweep(&spec, |_| {});
        for cell in &cells {
            let report = &cell.outcome.report;
            let pi = ProtocolKind::PAPER_FOUR
                .iter()
                .position(|&p| p == cell.protocol)
                .expect("sweep protocol");
            if backend == Backend::MemoryChannel
                && !mc_checksums.iter().any(|(a, _)| *a == cell.app)
            {
                mc_checksums.push((cell.app.clone(), cell.outcome.checksum));
            }
            let want = mc_checksums
                .iter()
                .find(|(a, _)| *a == cell.app)
                .map(|&(_, c)| c)
                .expect("mc backend sweeps first");
            let checksum_ok = cell.outcome.checksum == want;
            let audit_report = audit(&cell.trace);
            let audit_clean = audit_report.is_clean();
            if !checksum_ok {
                failures += 1;
                eprintln!(
                    "xbackend sweep {:4} {:8} {:4}: CHECKSUM {} != mc baseline {want}",
                    backend.label(),
                    cell.app,
                    cell.protocol.label(),
                    cell.outcome.checksum
                );
            }
            if !audit_clean {
                failures += 1;
                eprintln!(
                    "xbackend sweep {:4} {:8} {:4}: AUDIT DIRTY\n{}",
                    backend.label(),
                    cell.app,
                    cell.protocol.label(),
                    audit_report.summary()
                );
            }
            let obs = report.obs.as_ref().expect("obs requested");
            vt[pi] += report.exec_ns;
            fig7[pi].merge(&obs.fig7);
            requests[pi][bi] += report.counters.remote_requests;
            println!(
                "xbackend sweep {:4} {:8} {:4} exec={:10.4}ms remote_requests={:6} \
                 checksum={} audit={}",
                backend.label(),
                cell.app,
                cell.protocol.label(),
                report.exec_secs() * 1e3,
                report.counters.remote_requests,
                if checksum_ok { "ok" } else { "BAD" },
                if audit_clean { "clean" } else { "DIRTY" },
            );

            let mut s = String::with_capacity(256);
            s.push('{');
            json_str(&mut s, "backend", backend.label());
            s.push(',');
            json_str(&mut s, "app", &cell.app);
            s.push(',');
            json_str(&mut s, "protocol", cell.protocol.label());
            s.push(',');
            json_f64(&mut s, "exec_secs", report.exec_secs());
            let c = report.counters;
            let _ = write!(
                s,
                ",\"remote_requests\":{},\"page_transfers\":{},\"data_bytes\":{},\
                 \"checksum_ok\":{checksum_ok},\"audit_clean\":{audit_clean}}}",
                c.remote_requests, c.page_transfers, c.data_bytes
            );
            cell_json.push(s);
        }

        // Per-backend ranking: which protocol finishes the whole suite
        // fastest on this fabric?
        let best = ProtocolKind::PAPER_FOUR
            .into_iter()
            .zip(vt)
            .min_by_key(|&(_, ns)| ns)
            .expect("four protocols");
        println!(
            "xbackend {:4}: fastest protocol {} (suite total {:.4}ms; 2L total {:.4}ms)",
            backend.label(),
            best.0.label(),
            best.1 as f64 / 1e6,
            vt[0] as f64 / 1e6,
        );
        for (pi, protocol) in ProtocolKind::PAPER_FOUR.into_iter().enumerate() {
            let mut s = String::with_capacity(256);
            s.push('{');
            json_str(&mut s, "backend", backend.label());
            s.push(',');
            json_str(&mut s, "protocol", protocol.label());
            let _ = write!(
                s,
                ",\"suite_total_ns\":{},\"remote_requests\":{},\"fastest\":{},\"fig7\":{{",
                vt[pi],
                requests[pi][bi],
                protocol == best.0
            );
            for (i, cat) in Fig7Cat::ALL.into_iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{}", cat.label(), fig7[pi].get(cat));
            }
            s.push_str("}}");
            total_json.push(s);
        }
    }

    // Aggregate round-trip gate on the real workloads, mirroring the
    // deterministic replay gate.
    for (pi, protocol) in ProtocolKind::PAPER_FOUR.into_iter().enumerate() {
        let [mc, rdma, cxl] = requests[pi];
        for (label, direct) in [("rdma", rdma), ("cxl", cxl)] {
            if direct >= mc {
                failures += 1;
                eprintln!(
                    "xbackend sweep {:4}: {label} aggregate remote_requests {direct} not < mc {mc}",
                    protocol.label()
                );
            }
        }
    }
    (cell_json, total_json, failures)
}
