//! Deterministic virtual-time golden generation, shared by the `wallclock`
//! drift gate and the `soak` fault-injection harness.
//!
//! Parallel runs are *virtual-time nondeterministic* (OS thread scheduling
//! perturbs `Resource` gap placement and lock grant order; see DESIGN.md),
//! so the goldens pin virtual time with two fully deterministic probes:
//!
//! * each application's sequential (1:1, uninstrumented) execution time and
//!   checksum — cross-checked against the committed `results/table2.jsonl`;
//! * a scripted single-threaded multi-node protocol **replay** across all
//!   four paper protocols, driving the [`Engine`] directly through fetches,
//!   twins, outgoing/incoming diffs, shootdowns, and exclusive mode, and
//!   recording every processor clock and protocol counter.
//!
//! Both probes accept an optional [`FaultPlan`], an audit switch, and an
//! observability switch: the soak harness regenerates the goldens with an
//! installed-but-empty plan (and the trace recorder on) to prove the
//! fault-injection interposition points are charge-free when no rule
//! fires, and the `obsgate` harness regenerates them with observability on
//! to prove the span/metrics hooks are too — the output must stay
//! byte-identical to `results/vt_golden.jsonl` either way.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use cashmere_apps::Benchmark;
use cashmere_core::engine::ProcCtx;
use cashmere_core::{
    Backend, ClusterConfig, Engine, FaultPlan, ProcId, ProtocolKind, SyncSpec, Topology,
    TraceEvent, PAGE_WORDS,
};

use crate::{json_str, run_with, RunOpts};

/// One golden regeneration pass: the JSONL contents plus the per-probe
/// traces (empty unless auditing was requested).
pub struct GoldenRun {
    /// Regenerated `vt_golden.jsonl` contents, one line per probe.
    pub jsonl: String,
    /// Per-app sequential seconds, for [`check_table2`].
    pub seq_secs: Vec<(&'static str, f64)>,
    /// `(probe label, protocol event stream)` per golden line; streams are
    /// empty when `audit` was off.
    pub traces: Vec<(String, Vec<TraceEvent>)>,
}

/// Builds the deterministic golden file contents — one line per
/// application's sequential run, then one line per protocol's scripted
/// replay. `plan` is installed into every probe (pass `None` for the plain
/// drift gate); `audit` additionally records each probe's protocol events;
/// `obs` turns the observability hooks on (which, being charge-free, must
/// not move a byte of the output).
pub fn build_goldens(
    apps: &[Box<dyn Benchmark>],
    plan: Option<&Arc<FaultPlan>>,
    audit: bool,
    verbose: bool,
    obs: bool,
) -> GoldenRun {
    let mut s = String::new();
    let mut seq_secs = Vec::new();
    let mut traces = Vec::new();
    for app in apps {
        let opts = RunOpts {
            uninstrumented: true,
            obs,
            ..RunOpts::default()
        };
        let (out, trace) = run_with(
            app.as_ref(),
            ProtocolKind::TwoLevel,
            1,
            1,
            opts,
            plan.cloned(),
            audit,
        );
        seq_secs.push((app.name(), out.report.exec_secs()));
        traces.push((format!("sequential {}", app.name()), trace));
        let mut line = String::new();
        line.push('{');
        json_str(&mut line, "experiment", "vt_golden");
        line.push(',');
        json_str(&mut line, "kind", "sequential");
        line.push(',');
        json_str(&mut line, "app", app.name());
        let _ = write!(
            line,
            ",\"exec_ns\":{},\"checksum\":{}}}",
            out.report.exec_ns, out.checksum
        );
        if verbose {
            println!(
                "vt_golden seq    {:8} exec_ns={}",
                app.name(),
                out.report.exec_ns
            );
        }
        s.push_str(&line);
        s.push('\n');
    }
    for p in ProtocolKind::PAPER_FOUR {
        let (clocks, counters, trace) = replay(p, plan.cloned(), audit, obs);
        traces.push((format!("replay {}", p.label()), trace));
        let total: u64 = clocks.iter().sum();
        let mut line = String::new();
        line.push('{');
        json_str(&mut line, "experiment", "vt_golden");
        line.push(',');
        json_str(&mut line, "kind", "replay");
        line.push(',');
        json_str(&mut line, "protocol", p.label());
        let _ = write!(line, ",\"total_ns\":{total},\"clock_ns\":[");
        for (i, c) in clocks.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{c}");
        }
        line.push_str("],\"counters\":{");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{k}\":{v}");
        }
        line.push_str("}}");
        if verbose {
            println!("vt_golden replay {:4} total_ns={total}", p.label());
        }
        s.push_str(&line);
        s.push('\n');
    }
    GoldenRun {
        jsonl: s,
        seq_secs,
        traces,
    }
}

/// Cross-checks the deterministic sequential runs against the committed
/// `results/table2.jsonl` (its 1:1 rows were produced by the same
/// `sequential()` entry point). Returns the number of mismatches.
pub fn check_table2(seq_secs: &[(&'static str, f64)]) -> usize {
    let path = Path::new("results/table2.jsonl");
    let Ok(committed) = std::fs::read_to_string(path) else {
        eprintln!("[no {} — sequential cross-check skipped]", path.display());
        return 0;
    };
    let mut failures = 0;
    for &(name, got) in seq_secs {
        let Some(line) = committed.lines().find(|l| {
            l.contains(&format!("\"app\":\"{name}\"")) && l.contains("\"config\":\"1:1\"")
        }) else {
            continue;
        };
        let Some(want) = field_f64(line, "exec_secs") else {
            continue;
        };
        if got.to_bits() == want.to_bits() {
            println!("table2 seq       {name:8} OK ({got:?}s)");
        } else {
            failures += 1;
            eprintln!("table2 seq       {name:8} DRIFT: committed {want:?}s, regenerated {got:?}s");
        }
    }
    failures
}

/// Extracts a numeric field from one JSONL line (hand-rolled: no external
/// deps in this container).
pub fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// Scripted single-threaded protocol replay: 2 nodes × 2 processors, driven
/// through every diff-carrying path the suite exercises. Single-threaded
/// engine driving is fully deterministic (no OS scheduling, no resource
/// contention races), so the resulting virtual clocks and counters are exact
/// fingerprints of the protocol's cost charging.
///
/// The word sets touched by the two nodes are disjoint within each page
/// (producer writes in `[0, 448)` + words 1000/1001, consumer writes in
/// `[512, 960)`), keeping the script data-race-free at word granularity —
/// the protocols' programming model — while still exercising two-way
/// diffing, shootdown, and run-shaped diffs.
#[allow(clippy::type_complexity)]
pub fn replay(
    protocol: ProtocolKind,
    plan: Option<Arc<FaultPlan>>,
    audit: bool,
    obs: bool,
) -> (Vec<u64>, Vec<(&'static str, u64)>, Vec<TraceEvent>) {
    replay_on(Backend::MemoryChannel, protocol, plan, audit, obs)
}

/// [`replay`] on an explicit interconnect backend (DESIGN.md §14). The
/// script is fully deterministic on every backend, so the clocks and
/// counters it returns are exact per-backend cost fingerprints — the
/// `xbackend` harness uses them to prove direct-read backends issue fewer
/// request/reply round trips than the Memory Channel. `MemoryChannel`
/// leaves the config untouched (same bytes as the committed goldens).
#[allow(clippy::type_complexity)]
pub fn replay_on(
    backend: Backend,
    protocol: ProtocolKind,
    plan: Option<Arc<FaultPlan>>,
    audit: bool,
    obs: bool,
) -> (Vec<u64>, Vec<(&'static str, u64)>, Vec<TraceEvent>) {
    let mut cfg = ClusterConfig::new(Topology::new(2, 2), protocol)
        .with_heap_pages(16)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        })
        .with_obs(obs);
    if backend != Backend::MemoryChannel {
        cfg = cfg.with_transport(backend);
    }
    // Superpage granularity 2 so non-home private pages exist (exclusive
    // mode is reachable), exactly as in the engine-semantics tests.
    cfg.pages_per_superpage = 2;
    if audit {
        cfg = cfg.with_audit(true);
    }
    if let Some(p) = plan {
        cfg = cfg.with_faults(p);
    }
    let e = Engine::new(cfg);
    let mut ctxs: Vec<ProcCtx> = (0..4).map(|i| e.make_ctx(ProcId(i))).collect();

    // Phase 1: per-page sharing with varied diff shapes. p0 (node 0) is the
    // producer; p2/p3 (node 1) consume, write back, and race with p0.
    for page in 0..6usize {
        let base = page * PAGE_WORDS;
        let pattern = write_pattern(page);
        // First touch by p0 homes the superpage at node 0.
        for &w in &pattern {
            e.write_word(&mut ctxs[0], base + w, ((page as u64) << 32) | w as u64);
        }
        e.release_actions(&mut ctxs[0]);

        // Remote read: page fetch to node 1.
        e.acquire_actions(&mut ctxs[2]);
        for &w in &pattern {
            assert_eq!(
                e.read_word(&mut ctxs[2], base + w),
                ((page as u64) << 32) | w as u64
            );
        }
        // Remote writes: twin + dirty list, shifted into [512, 960).
        for &w in &pattern {
            e.write_word(&mut ctxs[2], base + 512 + w, w as u64 + 1);
        }

        // Concurrent home-side writes + release: posts notices while node 1
        // still has a local writer (words 1000/1001 are untouched by node 1,
        // so the script stays data-race-free).
        e.write_word(&mut ctxs[0], base + 1000, 7);
        e.write_word(&mut ctxs[0], base + 1001, 8);
        e.release_actions(&mut ctxs[0]);

        // Sibling read after acquire: under 2LS this shoots down p2's write
        // mapping; under 2L the refetch applies an incoming diff on top of
        // p2's unflushed words.
        e.acquire_actions(&mut ctxs[3]);
        assert_eq!(e.read_word(&mut ctxs[3], base + 1000), 7);
        e.acquire_actions(&mut ctxs[2]);
        assert_eq!(e.read_word(&mut ctxs[2], base + 1001), 8);

        // Outgoing diff flush of node 1's surviving writes.
        e.release_actions(&mut ctxs[2]);
        e.release_actions(&mut ctxs[3]);
        e.acquire_actions(&mut ctxs[0]);
        assert_eq!(
            e.read_word(&mut ctxs[0], base + 512 + pattern[0]),
            pattern[0] as u64 + 1
        );
    }

    // Phase 2: exclusive mode. p0 first-touches page 12 (homes superpage
    // {12,13} at node 0); p2 writes page 13 privately → exclusive; a sibling
    // writer joins; p1's read breaks exclusivity (whole-frame flush); the
    // sibling's next release flushes via the NLE path.
    let base = 12 * PAGE_WORDS;
    e.write_word(&mut ctxs[0], base, 1);
    for w in 0..64usize {
        e.write_word(&mut ctxs[2], base + PAGE_WORDS + w, 100 + w as u64);
    }
    e.write_word(&mut ctxs[3], base + PAGE_WORDS + 300, 5);
    e.release_actions(&mut ctxs[2]);
    assert_eq!(e.read_word(&mut ctxs[1], base + PAGE_WORDS), 100);
    e.write_word(&mut ctxs[3], base + PAGE_WORDS + 301, 6);
    e.release_actions(&mut ctxs[3]);
    // p1 must acquire to see the flush: under the one-level protocols it is
    // its own protocol node and its read mapping is legitimately stale
    // until then (lazy release consistency).
    e.acquire_actions(&mut ctxs[1]);
    assert_eq!(e.read_word(&mut ctxs[1], base + PAGE_WORDS + 301), 6);

    let clocks = ctxs.iter().map(|c| c.clock.now()).collect();
    let trace = e.recorder().map(|r| r.take()).unwrap_or_default();
    (clocks, e.stats.snapshot(), trace)
}

/// Per-page word-write pattern (all within `[0, 448)`), chosen to produce
/// dense runs, alternating words, sparse singles, and long runs — the diff
/// shapes a run-length representation must handle.
fn write_pattern(page: usize) -> Vec<usize> {
    match page % 6 {
        // Dense run at the front.
        0 => (0..96).collect(),
        // Alternating words (worst case for run-length coding).
        1 => (0..192).step_by(2).collect(),
        // Sparse singles.
        2 => (0..448).step_by(37).collect(),
        // Two separated dense runs.
        3 => (32..64).chain(400..440).collect(),
        // One long dense run.
        4 => (0..440).collect(),
        // Single word.
        _ => vec![5],
    }
}
