//! Benchmark harness for regenerating every table and figure of the
//! Cashmere-2L evaluation (§3 of the paper).
//!
//! Binaries (one per artifact):
//!
//! | binary      | paper artifact |
//! |-------------|----------------|
//! | `table1`    | Table 1 — basic operation costs |
//! | `table2`    | Table 2 — data-set sizes and sequential times |
//! | `table3`    | Table 3 — detailed 32-processor statistics |
//! | `fig6`      | Figure 6 — normalized execution-time breakdown |
//! | `fig7`      | Figure 7 — speedups across cluster configurations |
//! | `shootdown` | §3.3.4 — shootdown vs two-way diffing, polling vs interrupts |
//! | `lockfree`  | §3.3.5 — lock-free vs global-lock protocol structures |
//!
//! Each binary prints a human-readable table and appends a machine-readable
//! JSON record to `results/` (used to assemble EXPERIMENTS.md).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use cashmere_apps::{AppOutcome, Benchmark};
use cashmere_core::{
    Backend, DirectoryMode, FaultPlan, Messaging, Nanos, ProtocolKind, RunSpec, Topology,
    TraceEvent,
};

pub mod golden;
pub mod obsout;
pub mod sweep;

/// The paper's Figure 7 cluster configurations, as `(processors,
/// processes-per-node)` pairs: 4:1, 4:4, 8:1, 8:2, 8:4, 16:2, 16:4, 24:3,
/// 32:4.
pub const PAPER_CONFIGS: [(usize, usize); 9] = [
    (4, 1),
    (4, 4),
    (8, 1),
    (8, 2),
    (8, 4),
    (16, 2),
    (16, 4),
    (24, 3),
    (32, 4),
];

/// Options perturbing a run beyond protocol/topology.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOpts {
    /// Directory/write-notice locking ablation (§3.3.5). `None` keeps the
    /// topology default ([`DirectoryMode::default_for`]: the paper's
    /// replicated lock-free directory up to 8 physical nodes, home-sharded
    /// `Sparse` beyond).
    pub directory: Option<DirectoryMode>,
    /// Interconnect backend (DESIGN.md §14). [`Backend::MemoryChannel`]
    /// (the default) is the paper's network and what every golden assumes;
    /// `rdma`/`cxl` swap the cost model and the page-fetch shape.
    pub backend: Backend,
    /// Request-delivery mechanism (§3.3.4).
    pub messaging: Messaging,
    /// Force the polling-overhead fraction to zero (the paper's
    /// "uninstrumented" sequential runs).
    pub uninstrumented: bool,
    /// Record observability data (`Report::obs`): spans, the Figure-7
    /// breakdown, counters/histograms, page heat, and link traffic.
    pub obs: bool,
    /// Run the simulated processors on this many host workers under the
    /// deterministic parallel engine (DESIGN.md §15). `None` keeps the
    /// sequential engine — the mode every committed golden was captured
    /// under (the det engine reproduces them byte-for-byte; the `detpar`
    /// gate asserts it).
    pub det_workers: Option<usize>,
}

/// Parses the value of a `--backend` flag shared by every driver binary
/// (`mc`, `rdma`, or `cxl` — [`Backend::label`]); panics with the accepted
/// set otherwise.
pub fn parse_backend(value: Option<String>) -> Backend {
    let v = value.unwrap_or_else(|| panic!("--backend requires one of mc, rdma, cxl"));
    Backend::from_label(&v)
        .unwrap_or_else(|| panic!("unknown backend {v:?} (supported: mc, rdma, cxl)"))
}

/// Runs `app` under `protocol` on a `total`:`per_node` configuration.
pub fn run(
    app: &dyn Benchmark,
    protocol: ProtocolKind,
    total: usize,
    per_node: usize,
    opts: RunOpts,
) -> AppOutcome {
    run_with(app, protocol, total, per_node, opts, None, false).0
}

/// [`run`] with the fault-injection and auditing knobs exposed: installs
/// `plan` (when given) before the cluster is built and, when `audit` is
/// set, records the protocol event stream and returns it alongside the
/// outcome for `cashmere_check::audit`. The trace is empty when `audit`
/// is off.
pub fn run_with(
    app: &dyn Benchmark,
    protocol: ProtocolKind,
    total: usize,
    per_node: usize,
    opts: RunOpts,
    plan: Option<Arc<FaultPlan>>,
    audit: bool,
) -> (AppOutcome, Vec<TraceEvent>) {
    let topo = Topology::from_paper_config(total, per_node)
        .unwrap_or_else(|| panic!("bad paper config {total}:{per_node}"));
    let mut spec = RunSpec::new(topo, protocol)
        .with_directory(
            opts.directory
                .unwrap_or_else(|| DirectoryMode::default_for(&topo)),
        )
        .with_transport(opts.backend)
        .with_messaging(opts.messaging)
        .uninstrumented(opts.uninstrumented)
        .with_audit(audit)
        .with_obs(opts.obs);
    if let Some(w) = opts.det_workers {
        spec = spec.with_det_parallel(w);
    }
    if let Some(p) = plan {
        spec = spec.with_faults(p);
    }
    let mut cluster = spec.build_cluster(|cfg| app.configure(cfg));
    let out = app.execute(&mut cluster);
    let trace = cluster.take_trace();
    (out, trace)
}

/// The paper's sequential baseline: one processor, uninstrumented.
pub fn sequential(app: &dyn Benchmark) -> AppOutcome {
    sequential_with(app, None, false).0
}

/// [`sequential`] with an optional fault plan installed and, when `audit`
/// is set, the recorded protocol event stream (used by the soak harness to
/// prove a zero-fault plan leaves the deterministic baselines untouched).
pub fn sequential_with(
    app: &dyn Benchmark,
    plan: Option<Arc<FaultPlan>>,
    audit: bool,
) -> (AppOutcome, Vec<TraceEvent>) {
    run_with(
        app,
        ProtocolKind::TwoLevel,
        1,
        1,
        RunOpts {
            uninstrumented: true,
            ..Default::default()
        },
        plan,
        audit,
    )
}

/// Best-of-`n` run (the paper's "execution times were calculated based on
/// the best of three runs") — returns the outcome with the smallest
/// simulated execution time. Useful for the nondeterministic applications
/// (TSP's pruning, Water/Barnes's dynamic scheduling).
pub fn run_best(
    app: &dyn Benchmark,
    protocol: ProtocolKind,
    total: usize,
    per_node: usize,
    opts: RunOpts,
    n: usize,
) -> AppOutcome {
    (0..n.max(1))
        .map(|_| run(app, protocol, total, per_node, opts))
        .min_by_key(|o| o.report.exec_ns)
        .expect("n >= 1")
}

/// A machine-readable record of one experiment, written under `results/`.
#[derive(Debug)]
pub struct Record {
    /// Artifact id (`table3`, `fig7`, …).
    pub experiment: &'static str,
    /// Application name.
    pub app: String,
    /// Protocol label.
    pub protocol: String,
    /// `P:k` configuration.
    pub config: String,
    /// Simulated execution seconds.
    pub exec_secs: f64,
    /// Speedup vs the sequential baseline (0 when not applicable).
    pub speedup: f64,
    /// Table 3 counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Figure 6 breakdown fractions.
    pub breakdown: BTreeMap<&'static str, f64>,
}

impl Record {
    /// Builds a record from an outcome.
    pub fn new(
        experiment: &'static str,
        app: &str,
        protocol: ProtocolKind,
        total: usize,
        per_node: usize,
        out: &AppOutcome,
        sequential_ns: Nanos,
    ) -> Self {
        use cashmere_core::TimeCategory;
        let c = out.report.counters;
        let counters: BTreeMap<&'static str, u64> = [
            ("lock_acquires", c.lock_acquires),
            ("barriers", c.barriers),
            ("read_faults", c.read_faults),
            ("write_faults", c.write_faults),
            ("page_transfers", c.page_transfers),
            ("directory_updates", c.directory_updates),
            ("write_notices", c.write_notices),
            ("exclusive_transitions", c.exclusive_transitions),
            ("data_bytes", c.data_bytes),
            ("twin_creations", c.twin_creations),
            ("incoming_diffs", c.incoming_diffs),
            ("flush_updates", c.flush_updates),
            ("shootdowns", c.shootdowns),
        ]
        .into();
        let breakdown: BTreeMap<&'static str, f64> = TimeCategory::ALL
            .iter()
            .map(|&cat| (cat.label(), out.report.fraction(cat)))
            .collect();
        Self {
            experiment,
            app: app.to_string(),
            protocol: protocol.label().to_string(),
            config: format!("{total}:{per_node}"),
            exec_secs: out.report.exec_secs(),
            speedup: if sequential_ns > 0 {
                out.report.speedup(sequential_ns)
            } else {
                0.0
            },
            counters,
            breakdown,
        }
    }

    /// Serializes the record as one JSON object (no external deps — the
    /// container has no registry access, so the encoder is hand-rolled).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        json_str(&mut s, "experiment", self.experiment);
        s.push(',');
        json_str(&mut s, "app", &self.app);
        s.push(',');
        json_str(&mut s, "protocol", &self.protocol);
        s.push(',');
        json_str(&mut s, "config", &self.config);
        s.push(',');
        json_f64(&mut s, "exec_secs", self.exec_secs);
        s.push(',');
        json_f64(&mut s, "speedup", self.speedup);
        s.push(',');
        json_key(&mut s, "counters");
        s.push('{');
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json_key(&mut s, k);
            s.push_str(&v.to_string());
        }
        s.push_str("},");
        json_key(&mut s, "breakdown");
        s.push('{');
        for (i, (k, v)) in self.breakdown.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json_key(&mut s, k);
            s.push_str(&fmt_json_f64(*v));
        }
        s.push_str("}}");
        s
    }
}

/// Appends `"key":` with the key JSON-escaped.
pub fn json_key(out: &mut String, key: &str) {
    out.push('"');
    json_escape_into(out, key);
    out.push_str("\":");
}

/// Appends `"key":"value"` with both sides JSON-escaped.
pub fn json_str(out: &mut String, key: &str, value: &str) {
    json_key(out, key);
    out.push('"');
    json_escape_into(out, value);
    out.push('"');
}

/// Appends `"key":<number>`.
pub fn json_f64(out: &mut String, key: &str, value: f64) {
    json_key(out, key);
    out.push_str(&fmt_json_f64(value));
}

/// Formats an f64 as a JSON number (JSON has no NaN/Infinity; map to 0).
pub fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a `.` or `e`.
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

/// Escapes a string per RFC 8259 minimal rules.
fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends records as JSON lines to `results/<experiment>.jsonl`.
pub fn save_records(experiment: &str, records: &[Record]) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{experiment}.jsonl"));
    let mut f = std::fs::File::create(&path).expect("create results file");
    for r in records {
        writeln!(f, "{}", r.to_json()).expect("write record");
    }
    eprintln!("[saved {} records to {}]", records.len(), path.display());
}

/// Pretty-prints a value with K/M suffixes like the paper's Table 3.
pub fn fmt_k(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.2}M", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.2}K", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// Formats megabytes like the paper's "Data (Mbytes)" row.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_apps::{Scale, Sor};

    #[test]
    fn paper_configs_are_all_valid() {
        for (total, per_node) in PAPER_CONFIGS {
            assert!(
                Topology::from_paper_config(total, per_node).is_some(),
                "{total}:{per_node}"
            );
        }
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_k(42), "42");
        assert_eq!(fmt_k(4_250), "4.25K");
        assert_eq!(fmt_k(4_250_000), "4.25M");
        assert_eq!(fmt_mb(4_250_000), "4.25");
    }

    #[test]
    fn sequential_baseline_and_speedup_record() {
        let app = Sor::new(Scale::Test);
        let seq = sequential(&app);
        assert!(seq.report.exec_ns > 0);
        let par = run(&app, ProtocolKind::TwoLevel, 4, 2, RunOpts::default());
        assert_eq!(par.checksum, seq.checksum);
        let rec = Record::new(
            "test",
            "SOR",
            ProtocolKind::TwoLevel,
            4,
            2,
            &par,
            seq.report.exec_ns,
        );
        assert_eq!(rec.config, "4:2");
        assert!(rec.speedup > 0.0);
        assert!(rec.counters.contains_key("page_transfers"));
        let json = rec.to_json();
        assert!(json.starts_with("{\"experiment\":\"test\""));
        assert!(json.contains("\"counters\":{"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn json_escaping_and_nonfinite_floats() {
        let mut s = String::new();
        json_str(&mut s, "k", "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"k\":\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(fmt_json_f64(f64::NAN), "0.0");
        assert_eq!(fmt_json_f64(1.5), "1.5");
        assert_eq!(fmt_json_f64(2.0), "2.0");
    }
}
