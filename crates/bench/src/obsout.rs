//! Observability exporters: the Figure-7 breakdown table
//! (`results/fig7.{jsonl,txt}`), the per-page hot-page report (appended to
//! the table), and the Chrome `trace_event` export
//! (`results/trace_<app>_<proto>.json`).
//!
//! All three consume sweep [`Cell`]s whose runs had [`crate::RunOpts::obs`]
//! set; cells without an [`ObsReport`] are skipped. The JSONL rows carry
//! raw virtual nanoseconds (the gate asserts their sum equals the run's
//! total virtual time); the text table renders the same rows as
//! percentages, the way the paper's Figure 7 stacks them.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use cashmere_obs::{chrome, Fig7Cat, ObsReport};

use crate::sweep::Cell;
use crate::{json_key, json_str};

/// Serializes one cell's Figure-7 row (`None` when the cell ran without
/// observability).
#[must_use]
pub fn fig7_json(cell: &Cell, config: &str) -> Option<String> {
    let obs = cell.outcome.report.obs.as_ref()?;
    let mut s = String::with_capacity(256);
    s.push('{');
    json_str(&mut s, "experiment", "fig7");
    s.push(',');
    json_str(&mut s, "app", &cell.app);
    s.push(',');
    json_str(&mut s, "protocol", cell.protocol.label());
    s.push(',');
    json_str(&mut s, "config", config);
    if !cell.plan.is_empty() {
        s.push(',');
        json_str(&mut s, "plan", cell.plan);
    }
    let _ = write!(s, ",\"procs\":{}", obs.procs);
    for c in Fig7Cat::ALL {
        s.push(',');
        json_key(&mut s, c.label());
        let _ = write!(s, "{}", obs.fig7.get(c));
    }
    let _ = write!(
        s,
        ",\"total_ns\":{},\"breakdown_total_ns\":{}}}",
        obs.fig7.total(),
        cell.outcome.report.breakdown.total()
    );
    Some(s)
}

/// Renders the Figure-7 text table: one row per cell with the five
/// categories as percentages of total virtual time, followed by the
/// hot-page report (the per-cell fault-heat leaders).
#[must_use]
pub fn fig7_table(cells: &[Cell], config: &str) -> String {
    let mut s = format!("Figure 7 — execution-time breakdown at {config} (% of total VT)\n\n");
    let _ = writeln!(
        s,
        "{:10} {:5} {:>10}  {:>6} {:>6} {:>6} {:>6} {:>6}",
        "app", "proto", "total(ms)", "task", "sync", "prot", "wait", "msg"
    );
    for cell in cells {
        let Some(obs) = cell.outcome.report.obs.as_ref() else {
            continue;
        };
        let total = obs.fig7.total().max(1) as f64;
        let _ = write!(
            s,
            "{:10} {:5} {:>10.3}",
            cell.app,
            cell.protocol.label(),
            obs.fig7.total() as f64 / 1e6
        );
        for c in Fig7Cat::ALL {
            let _ = write!(s, "  {:>5.1}%", 100.0 * obs.fig7.get(c) as f64 / total);
        }
        s.push('\n');
    }
    s.push_str("\nHot pages (page:faults, hottest first)\n\n");
    for cell in cells {
        let Some(obs) = cell.outcome.report.obs.as_ref() else {
            continue;
        };
        let _ = write!(s, "{:10} {:5}", cell.app, cell.protocol.label());
        for (page, heat) in obs.hot_pages(4) {
            let _ = write!(s, "  {page}:{heat}");
        }
        s.push('\n');
    }
    s
}

/// Writes `results/fig7.jsonl` and `results/fig7.txt` from the sweep's
/// observability-enabled cells; returns the two paths and the row count.
pub fn write_fig7(cells: &[Cell], config: &str) -> io::Result<(PathBuf, PathBuf, usize)> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let mut jsonl = String::new();
    let mut rows = 0usize;
    for cell in cells {
        if let Some(line) = fig7_json(cell, config) {
            jsonl.push_str(&line);
            jsonl.push('\n');
            rows += 1;
        }
    }
    let jsonl_path = dir.join("fig7.jsonl");
    std::fs::write(&jsonl_path, jsonl)?;
    let txt_path = dir.join("fig7.txt");
    std::fs::write(&txt_path, fig7_table(cells, config))?;
    Ok((jsonl_path, txt_path, rows))
}

/// Exports one cell's spans as a Chrome trace to
/// `results/trace_<app>_<proto>.json`, lints the document, and returns the
/// path and duration-event count. Errors if the cell has no observability
/// data or the export fails its own schema lint.
pub fn export_trace(cell: &Cell) -> Result<(PathBuf, usize), String> {
    let obs = cell
        .outcome
        .report
        .obs
        .as_ref()
        .ok_or("cell ran without observability")?;
    let doc = chrome_doc(obs);
    let events = chrome::lint(&doc).map_err(|e| format!("trace failed its lint: {e}"))?;
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = dir.join(format!(
        "trace_{}_{}.json",
        sanitize(&cell.app),
        sanitize(cell.protocol.label())
    ));
    std::fs::write(&path, doc).map_err(|e| e.to_string())?;
    Ok((path, events))
}

/// Renders an [`ObsReport`]'s spans as a Chrome trace document, labelling
/// one track per protocol node.
#[must_use]
pub fn chrome_doc(obs: &ObsReport) -> String {
    let nodes = obs
        .spans
        .iter()
        .map(|s| s.node as usize + 1)
        .max()
        .unwrap_or(0);
    let labels: Vec<String> = (0..nodes).map(|n| format!("node {n}")).collect();
    chrome::export(&obs.spans, &labels)
}

/// Keeps file names portable: anything outside `[A-Za-z0-9._-]` becomes `-`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_apps::{suite, Scale};
    use cashmere_core::ProtocolKind;

    use crate::sweep::{run_sweep, SweepSpec};
    use crate::RunOpts;

    fn obs_cells() -> Vec<Cell> {
        let apps = suite(Scale::Test);
        let apps = &apps[..1];
        let protocols = [ProtocolKind::TwoLevel];
        let mut spec = SweepSpec::new(apps, &protocols);
        spec.opts = RunOpts {
            obs: true,
            ..RunOpts::default()
        };
        run_sweep(&spec, |_| {})
    }

    #[test]
    fn fig7_json_carries_the_identity_and_table_renders() {
        let cells = obs_cells();
        let line = fig7_json(&cells[0], "4:2").expect("obs on");
        assert!(line.contains("\"experiment\":\"fig7\""));
        let total = crate::golden::field_f64(&line, "total_ns").expect("total_ns");
        let breakdown = crate::golden::field_f64(&line, "breakdown_total_ns").expect("breakdown");
        assert_eq!(total, breakdown, "Figure-7 identity in the exported row");
        let table = fig7_table(&cells, "4:2");
        assert!(table.contains("task"), "{table}");
        assert!(table.contains("Hot pages"), "{table}");
    }

    #[test]
    fn chrome_doc_passes_the_lint_and_obs_off_cells_are_skipped() {
        let cells = obs_cells();
        let obs = cells[0].outcome.report.obs.as_ref().unwrap();
        let doc = chrome_doc(obs);
        assert!(chrome::lint(&doc).expect("lints clean") > 0);

        let apps = suite(Scale::Test);
        let apps = &apps[..1];
        let protocols = [ProtocolKind::TwoLevel];
        let plain = run_sweep(&SweepSpec::new(apps, &protocols), |_| {});
        assert!(fig7_json(&plain[0], "4:2").is_none());
        assert!(export_trace(&plain[0]).is_err());
    }

    #[test]
    fn sanitize_keeps_portable_names() {
        assert_eq!(sanitize("Water-Sp"), "Water-Sp");
        assert_eq!(sanitize("a b/c"), "a-b-c");
    }
}
