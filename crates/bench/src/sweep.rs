//! The shared app × protocol × fault-plan sweep driver.
//!
//! `wallclock` and `soak` used to hand-roll the same triple-nested loop
//! (applications, protocols, plans, with best-of-`reps` timing); both are
//! now thin drivers over [`run_sweep`]. A sweep is described by a
//! [`SweepSpec`]; every completed cell is delivered to the caller's
//! callback as it finishes (for progress printing) and returned in
//! deterministic iteration order — apps outermost, then protocols, then
//! plans.
//!
//! Fault plans are *rebuilt from the seed for every repetition*
//! ([`SweepPlan::build`] is a constructor, not a shared plan): a
//! [`FaultPlan`] accumulates injection statistics, so sharing one across
//! cells would conflate their fault counts and perturb the per-cell
//! schedules.
//!
//! Cells fan out across a bounded worker pool sized by `CASHMERE_JOBS`
//! (default: available parallelism; `1` restores the serial loop). Each
//! cell's virtual-time result is deterministic regardless of host
//! interleaving — the golden gates prove it byte-for-byte — so only
//! wall-clock *measurement* needs serialization, which `wallclock` gets by
//! pinning its timed phase to one job via [`run_sweep_with_jobs`]. The
//! callback still fires in deterministic iteration order (apps outermost,
//! then protocols, then plans): finished cells are buffered and released
//! only when every earlier cell has been delivered.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use cashmere_apps::{AppOutcome, Benchmark};
use cashmere_core::{FaultPlan, ProtocolKind, TraceEvent};

use crate::{run_with, RunOpts};

/// One fault-plan flavor in a sweep. [`SweepPlan::NONE`] is the fault-free
/// pass every plain sweep runs.
#[derive(Clone, Copy)]
pub struct SweepPlan {
    /// Flavor label, echoed into [`Cell::plan`] (empty for [`Self::NONE`]).
    pub name: &'static str,
    /// Plan constructor, called with the sweep seed once per repetition;
    /// `None` runs fault-free.
    pub build: Option<fn(u64) -> FaultPlan>,
}

impl SweepPlan {
    /// The fault-free pass.
    pub const NONE: SweepPlan = SweepPlan {
        name: "",
        build: None,
    };
}

/// Everything that defines one sweep.
pub struct SweepSpec<'a> {
    /// Applications, outermost loop.
    pub apps: &'a [Box<dyn Benchmark>],
    /// Protocols per application.
    pub protocols: &'a [ProtocolKind],
    /// Total processors.
    pub total: usize,
    /// Processes per node.
    pub per_node: usize,
    /// Per-run options (directory/messaging/instrumentation/observability).
    pub opts: RunOpts,
    /// Repetitions per cell; the best (smallest wall-clock) one is kept.
    pub reps: usize,
    /// Record the protocol event trace for `cashmere_check::audit`.
    pub audit: bool,
    /// Fault-plan seed, passed to every [`SweepPlan::build`].
    pub seed: u64,
    /// Fault-plan flavors, innermost loop; empty means one fault-free pass
    /// per (app, protocol).
    pub plans: &'a [SweepPlan],
}

impl<'a> SweepSpec<'a> {
    /// A fault-free single-repetition sweep with default options.
    #[must_use]
    pub fn new(apps: &'a [Box<dyn Benchmark>], protocols: &'a [ProtocolKind]) -> Self {
        Self {
            apps,
            protocols,
            total: 4,
            per_node: 2,
            opts: RunOpts::default(),
            reps: 1,
            audit: false,
            seed: 0,
            plans: &[],
        }
    }
}

/// One completed sweep cell: the best-of-`reps` outcome plus its trace and
/// wall-clock time.
pub struct Cell {
    /// Application name.
    pub app: String,
    /// Protocol run.
    pub protocol: ProtocolKind,
    /// Fault-plan flavor (empty when fault-free).
    pub plan: &'static str,
    /// The winning repetition's outcome (checksum, report, `Report::obs`).
    pub outcome: AppOutcome,
    /// The winning repetition's protocol event trace (empty unless
    /// [`SweepSpec::audit`]).
    pub trace: Vec<TraceEvent>,
    /// The winning repetition's wall-clock seconds.
    pub wall_secs: f64,
}

/// Worker count from `CASHMERE_JOBS` (default: available parallelism).
pub fn jobs_from_env() -> usize {
    match std::env::var("CASHMERE_JOBS") {
        Ok(v) => v.trim().parse().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Runs one cell: best-of-`reps` over fresh per-repetition fault plans.
fn run_cell(
    spec: &SweepSpec<'_>,
    app: &dyn Benchmark,
    protocol: ProtocolKind,
    flavor: &SweepPlan,
) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..spec.reps.max(1) {
        let plan = flavor.build.map(|build| Arc::new(build(spec.seed)));
        let t = Instant::now();
        let (outcome, trace) = run_with(
            app,
            protocol,
            spec.total,
            spec.per_node,
            spec.opts,
            plan,
            spec.audit,
        );
        let wall_secs = t.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|b| wall_secs < b.wall_secs) {
            best = Some(Cell {
                app: app.name().to_string(),
                protocol,
                plan: flavor.name,
                outcome,
                trace,
                wall_secs,
            });
        }
    }
    best.expect("reps >= 1")
}

/// Runs the sweep, invoking `on_cell` as each cell completes, and returns
/// every cell in iteration order. Worker count comes from `CASHMERE_JOBS`
/// (see [`jobs_from_env`]); callbacks are delivered in iteration order
/// regardless of which worker finishes first.
pub fn run_sweep(spec: &SweepSpec<'_>, on_cell: impl FnMut(&Cell)) -> Vec<Cell> {
    run_sweep_with_jobs(spec, jobs_from_env(), on_cell)
}

/// [`run_sweep`] with an explicit worker count. `jobs <= 1` runs the exact
/// sequential loop (used by `wallclock`'s timed phase so measured numbers
/// never share the host with a sibling cell).
pub fn run_sweep_with_jobs(
    spec: &SweepSpec<'_>,
    jobs: usize,
    mut on_cell: impl FnMut(&Cell),
) -> Vec<Cell> {
    let fault_free = [SweepPlan::NONE];
    let plans = if spec.plans.is_empty() {
        &fault_free[..]
    } else {
        spec.plans
    };
    // Flatten the triple loop into the deterministic iteration order the
    // callers (and the golden gates) rely on.
    let combos: Vec<(&dyn Benchmark, ProtocolKind, &SweepPlan)> = spec
        .apps
        .iter()
        .flat_map(|app| {
            spec.protocols.iter().flat_map(move |&protocol| {
                plans
                    .iter()
                    .map(move |flavor| (app.as_ref(), protocol, flavor))
            })
        })
        .collect();

    if jobs <= 1 || combos.len() <= 1 {
        let mut cells = Vec::with_capacity(combos.len());
        for (app, protocol, flavor) in combos {
            let cell = run_cell(spec, app, protocol, flavor);
            on_cell(&cell);
            cells.push(cell);
        }
        return cells;
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Cell)>();
    let workers = jobs.min(combos.len());
    let mut slots: Vec<Option<Cell>> = (0..combos.len()).map(|_| None).collect();
    let mut cells = Vec::with_capacity(combos.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let combos = &combos;
            s.spawn(move || loop {
                // relaxed-ok: work-stealing index; claims only need to be
                // unique, which single-location RMW coherence guarantees,
                // and results travel through the channel's own ordering.
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(app, protocol, flavor)) = combos.get(i) else {
                    break;
                };
                let cell = run_cell(spec, app, protocol, flavor);
                if tx.send((i, cell)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Release finished cells strictly in iteration order: buffer
        // out-of-order completions until the prefix is contiguous.
        let mut delivered = 0;
        for (i, cell) in rx {
            slots[i] = Some(cell);
            while delivered < slots.len() {
                let Some(cell) = slots[delivered].take() else {
                    break;
                };
                on_cell(&cell);
                cells.push(cell);
                delivered += 1;
            }
        }
    });
    assert_eq!(cells.len(), slots.len(), "every sweep cell must complete");
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_apps::{suite, Scale};
    use cashmere_core::{FaultKind, FaultRule};

    #[test]
    fn sweep_covers_the_full_matrix_in_order() {
        let apps = suite(Scale::Test);
        let apps = &apps[..2];
        let protocols = [ProtocolKind::TwoLevel, ProtocolKind::OneLevelDiff];
        let mut seen = Vec::new();
        let cells = run_sweep(&SweepSpec::new(apps, &protocols), |c| {
            seen.push((c.app.clone(), c.protocol));
        });
        assert_eq!(cells.len(), 4);
        assert_eq!(
            seen,
            cells
                .iter()
                .map(|c| (c.app.clone(), c.protocol))
                .collect::<Vec<_>>()
        );
        assert_eq!(seen[0].0, apps[0].name());
        assert_eq!(seen[0].1, ProtocolKind::TwoLevel);
        assert_eq!(seen[1].1, ProtocolKind::OneLevelDiff);
        for c in &cells {
            assert_eq!(c.plan, "");
            assert!(c.outcome.report.exec_ns > 0);
            assert!(c.trace.is_empty(), "no audit requested");
        }
    }

    /// Forcing 4 workers must deliver callbacks in the same deterministic
    /// iteration order as the serial loop, with every cell computing the
    /// same answer — the parallel executor only changes host scheduling,
    /// never what a cell computes or the order it is reported. (Per-cell
    /// virtual time already varies with thread interleaving inside a single
    /// run, parallel or not; the *sequential* goldens are what the byte
    /// gates pin.)
    #[test]
    fn parallel_executor_matches_serial_order_and_results() {
        let apps = suite(Scale::Test);
        let apps = &apps[..3];
        let protocols = [ProtocolKind::TwoLevel, ProtocolKind::OneLevelDiff];
        let spec = SweepSpec::new(apps, &protocols);
        let mut serial_seen = Vec::new();
        let serial = run_sweep_with_jobs(&spec, 1, |c| {
            serial_seen.push((c.app.clone(), c.protocol));
        });
        let mut par_seen = Vec::new();
        let parallel = run_sweep_with_jobs(&spec, 4, |c| {
            par_seen.push((c.app.clone(), c.protocol));
        });
        assert_eq!(serial_seen, par_seen, "callback order must match serial");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.app, p.app);
            assert_eq!(s.protocol, p.protocol);
            assert_eq!(s.outcome.checksum, p.outcome.checksum, "{}", s.app);
            assert!(p.outcome.report.exec_ns > 0);
        }
    }

    #[test]
    fn plans_are_rebuilt_per_cell_and_obs_threads_through() {
        let apps = suite(Scale::Test);
        let apps = &apps[..1];
        let protocols = [ProtocolKind::TwoLevel];
        let plans = [SweepPlan {
            name: "lossy",
            build: Some(|seed| {
                FaultPlan::new(seed).with_rule(FaultRule::new(FaultKind::DropWrite, 0.2))
            }),
        }];
        let mut spec = SweepSpec::new(apps, &protocols);
        spec.opts.obs = true;
        spec.audit = true;
        spec.seed = 7;
        spec.plans = &plans;
        let cells = run_sweep(&spec, |_| {});
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!(c.plan, "lossy");
        assert!(!c.trace.is_empty(), "audit recorded a trace");
        assert!(
            c.outcome.report.recovery.faults_total() > 0,
            "fresh per-cell plan injected faults"
        );
        let obs = c.outcome.report.obs.as_ref().expect("obs requested");
        assert_eq!(
            obs.fig7.total(),
            c.outcome.report.breakdown.total(),
            "Figure-7 identity holds under the sweep"
        );
    }
}
