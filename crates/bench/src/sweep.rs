//! The shared app × protocol × fault-plan sweep driver.
//!
//! `wallclock` and `soak` used to hand-roll the same triple-nested loop
//! (applications, protocols, plans, with best-of-`reps` timing); both are
//! now thin drivers over [`run_sweep`]. A sweep is described by a
//! [`SweepSpec`]; every completed cell is delivered to the caller's
//! callback as it finishes (for progress printing) and returned in
//! deterministic iteration order — apps outermost, then protocols, then
//! plans.
//!
//! Fault plans are *rebuilt from the seed for every repetition*
//! ([`SweepPlan::build`] is a constructor, not a shared plan): a
//! [`FaultPlan`] accumulates injection statistics, so sharing one across
//! cells would conflate their fault counts and perturb the per-cell
//! schedules.

use std::sync::Arc;
use std::time::Instant;

use cashmere_apps::{AppOutcome, Benchmark};
use cashmere_core::{FaultPlan, ProtocolKind, TraceEvent};

use crate::{run_with, RunOpts};

/// One fault-plan flavor in a sweep. [`SweepPlan::NONE`] is the fault-free
/// pass every plain sweep runs.
#[derive(Clone, Copy)]
pub struct SweepPlan {
    /// Flavor label, echoed into [`Cell::plan`] (empty for [`Self::NONE`]).
    pub name: &'static str,
    /// Plan constructor, called with the sweep seed once per repetition;
    /// `None` runs fault-free.
    pub build: Option<fn(u64) -> FaultPlan>,
}

impl SweepPlan {
    /// The fault-free pass.
    pub const NONE: SweepPlan = SweepPlan {
        name: "",
        build: None,
    };
}

/// Everything that defines one sweep.
pub struct SweepSpec<'a> {
    /// Applications, outermost loop.
    pub apps: &'a [Box<dyn Benchmark>],
    /// Protocols per application.
    pub protocols: &'a [ProtocolKind],
    /// Total processors.
    pub total: usize,
    /// Processes per node.
    pub per_node: usize,
    /// Per-run options (directory/messaging/instrumentation/observability).
    pub opts: RunOpts,
    /// Repetitions per cell; the best (smallest wall-clock) one is kept.
    pub reps: usize,
    /// Record the protocol event trace for `cashmere_check::audit`.
    pub audit: bool,
    /// Fault-plan seed, passed to every [`SweepPlan::build`].
    pub seed: u64,
    /// Fault-plan flavors, innermost loop; empty means one fault-free pass
    /// per (app, protocol).
    pub plans: &'a [SweepPlan],
}

impl<'a> SweepSpec<'a> {
    /// A fault-free single-repetition sweep with default options.
    #[must_use]
    pub fn new(apps: &'a [Box<dyn Benchmark>], protocols: &'a [ProtocolKind]) -> Self {
        Self {
            apps,
            protocols,
            total: 4,
            per_node: 2,
            opts: RunOpts::default(),
            reps: 1,
            audit: false,
            seed: 0,
            plans: &[],
        }
    }
}

/// One completed sweep cell: the best-of-`reps` outcome plus its trace and
/// wall-clock time.
pub struct Cell {
    /// Application name.
    pub app: String,
    /// Protocol run.
    pub protocol: ProtocolKind,
    /// Fault-plan flavor (empty when fault-free).
    pub plan: &'static str,
    /// The winning repetition's outcome (checksum, report, `Report::obs`).
    pub outcome: AppOutcome,
    /// The winning repetition's protocol event trace (empty unless
    /// [`SweepSpec::audit`]).
    pub trace: Vec<TraceEvent>,
    /// The winning repetition's wall-clock seconds.
    pub wall_secs: f64,
}

/// Runs the sweep, invoking `on_cell` as each cell completes, and returns
/// every cell in iteration order.
pub fn run_sweep(spec: &SweepSpec<'_>, mut on_cell: impl FnMut(&Cell)) -> Vec<Cell> {
    let fault_free = [SweepPlan::NONE];
    let plans = if spec.plans.is_empty() {
        &fault_free[..]
    } else {
        spec.plans
    };
    let mut cells = Vec::with_capacity(spec.apps.len() * spec.protocols.len() * plans.len());
    for app in spec.apps {
        for &protocol in spec.protocols {
            for flavor in plans {
                let mut best: Option<Cell> = None;
                for _ in 0..spec.reps.max(1) {
                    let plan = flavor.build.map(|build| Arc::new(build(spec.seed)));
                    let t = Instant::now();
                    let (outcome, trace) = run_with(
                        app.as_ref(),
                        protocol,
                        spec.total,
                        spec.per_node,
                        spec.opts,
                        plan,
                        spec.audit,
                    );
                    let wall_secs = t.elapsed().as_secs_f64();
                    if best.as_ref().is_none_or(|b| wall_secs < b.wall_secs) {
                        best = Some(Cell {
                            app: app.name().to_string(),
                            protocol,
                            plan: flavor.name,
                            outcome,
                            trace,
                            wall_secs,
                        });
                    }
                }
                let cell = best.expect("reps >= 1");
                on_cell(&cell);
                cells.push(cell);
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_apps::{suite, Scale};
    use cashmere_core::{FaultKind, FaultRule};

    #[test]
    fn sweep_covers_the_full_matrix_in_order() {
        let apps = suite(Scale::Test);
        let apps = &apps[..2];
        let protocols = [ProtocolKind::TwoLevel, ProtocolKind::OneLevelDiff];
        let mut seen = Vec::new();
        let cells = run_sweep(&SweepSpec::new(apps, &protocols), |c| {
            seen.push((c.app.clone(), c.protocol));
        });
        assert_eq!(cells.len(), 4);
        assert_eq!(
            seen,
            cells
                .iter()
                .map(|c| (c.app.clone(), c.protocol))
                .collect::<Vec<_>>()
        );
        assert_eq!(seen[0].0, apps[0].name());
        assert_eq!(seen[0].1, ProtocolKind::TwoLevel);
        assert_eq!(seen[1].1, ProtocolKind::OneLevelDiff);
        for c in &cells {
            assert_eq!(c.plan, "");
            assert!(c.outcome.report.exec_ns > 0);
            assert!(c.trace.is_empty(), "no audit requested");
        }
    }

    #[test]
    fn plans_are_rebuilt_per_cell_and_obs_threads_through() {
        let apps = suite(Scale::Test);
        let apps = &apps[..1];
        let protocols = [ProtocolKind::TwoLevel];
        let plans = [SweepPlan {
            name: "lossy",
            build: Some(|seed| {
                FaultPlan::new(seed).with_rule(FaultRule::new(FaultKind::DropWrite, 0.2))
            }),
        }];
        let mut spec = SweepSpec::new(apps, &protocols);
        spec.opts.obs = true;
        spec.audit = true;
        spec.seed = 7;
        spec.plans = &plans;
        let cells = run_sweep(&spec, |_| {});
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!(c.plan, "lossy");
        assert!(!c.trace.is_empty(), "audit recorded a trace");
        assert!(
            c.outcome.report.recovery.faults_total() > 0,
            "fresh per-cell plan injected faults"
        );
        let obs = c.outcome.report.obs.as_ref().expect("obs requested");
        assert_eq!(
            obs.fig7.total(),
            c.outcome.report.breakdown.total(),
            "Figure-7 identity holds under the sweep"
        );
    }
}
