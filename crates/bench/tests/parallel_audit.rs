//! The full application suite × all four paper protocols, run under the
//! parallel sweep executor with the protocol auditor on: every cell must
//! audit clean. This is the gate proving the PR-5 concurrency work (twin
//! pooling, striped write-notice posting, lock-free directory reads, the
//! worker-pool executor itself) cannot corrupt protocol state no matter
//! how the host interleaves the cells (DESIGN.md §10).

use cashmere_apps::{suite, Scale};
use cashmere_bench::sweep::{run_sweep_with_jobs, SweepSpec};
use cashmere_check::audit;
use cashmere_core::ProtocolKind;

#[test]
fn full_sweep_audits_clean_under_the_parallel_executor() {
    let apps = suite(Scale::Test);
    let mut spec = SweepSpec::new(&apps, &ProtocolKind::PAPER_FOUR);
    spec.audit = true;
    let cells = run_sweep_with_jobs(&spec, 4, |_| {});
    assert_eq!(cells.len(), apps.len() * ProtocolKind::PAPER_FOUR.len());
    for cell in &cells {
        assert!(
            !cell.trace.is_empty(),
            "{} {}: audit requested but no trace recorded",
            cell.app,
            cell.protocol.label()
        );
        let report = audit(&cell.trace);
        assert!(
            report.is_clean(),
            "{} {}: {}",
            cell.app,
            cell.protocol.label(),
            report.summary()
        );
    }
}
