//! The full application suite × all four paper protocols at 16:4 under
//! `DirectoryMode::Sparse` (the home-sharded directory, DESIGN.md §12):
//! every cell must audit clean, and every checksum must equal the same
//! cell's checksum under the default replicated lock-free directory. The
//! directory layout is a protocol-invisible representation choice — this
//! gate proves the sparse fast path (invalidation-on-change caches, CAS
//! mask/claim transitions, home-shard updates) never changes what an
//! application computes or lets a stale mapping through the auditor.

use cashmere_apps::{suite, Scale};
use cashmere_bench::sweep::{run_sweep, SweepSpec};
use cashmere_check::audit;
use cashmere_core::{DirectoryMode, ProtocolKind};

#[test]
fn sparse_directory_audits_clean_and_matches_replicated_checksums() {
    let apps = suite(Scale::Test);
    let mut sparse = SweepSpec::new(&apps, &ProtocolKind::PAPER_FOUR);
    sparse.total = 16;
    sparse.per_node = 4;
    sparse.opts.directory = Some(DirectoryMode::Sparse);
    sparse.audit = true;
    let sparse_cells = run_sweep(&sparse, |_| {});

    let mut replicated = SweepSpec::new(&apps, &ProtocolKind::PAPER_FOUR);
    replicated.total = 16;
    replicated.per_node = 4;
    let replicated_cells = run_sweep(&replicated, |_| {});

    assert_eq!(
        sparse_cells.len(),
        apps.len() * ProtocolKind::PAPER_FOUR.len()
    );
    assert_eq!(sparse_cells.len(), replicated_cells.len());
    for (s, r) in sparse_cells.iter().zip(&replicated_cells) {
        assert_eq!((s.app.as_str(), s.protocol), (r.app.as_str(), r.protocol));
        assert!(
            !s.trace.is_empty(),
            "{} {}: audit requested but no trace recorded",
            s.app,
            s.protocol.label()
        );
        let report = audit(&s.trace);
        assert!(
            report.is_clean(),
            "{} {} (sparse): {}",
            s.app,
            s.protocol.label(),
            report.summary()
        );
        assert_eq!(
            s.outcome.checksum,
            r.outcome.checksum,
            "{} {}: sparse directory changed the computed answer",
            s.app,
            s.protocol.label()
        );
    }
}
