//! Protocol invariant auditor for the Cashmere-2L engine.
//!
//! [`audit`] replays a [`TraceEvent`] stream captured by an engine built
//! with [`cashmere_core::ClusterConfig::audit`] and verifies four invariant
//! families:
//!
//! 1. **Happens-before** — a vector-clock replay of the synchronization
//!    events (locks, flags, barriers) orders every remote write (a
//!    [`ProtocolEvent::DiffOut`] word epoch) against every fault that may
//!    observe it. An *ordered* fault that shows no evidence of having
//!    re-fetched the page after the write reached the master copy is a
//!    [`ViolationKind::StaleRead`] — release consistency promised the fresh
//!    value and the protocol served a stale one. An *unordered* pair is a
//!    [`Race`] — a property of the application, reported separately from
//!    protocol violations (data-race-free programs must have none; racy
//!    programs like TSP's speculative bound read are expected to show some).
//! 2. **Write-notice conservation** — every drained notice was posted
//!    ([`ViolationKind::WnFabricated`]), every drained notice is
//!    distributed ([`ViolationKind::WnDistributeMissing`]), and the
//!    per-processor bitmap suppression never drops a live notice
//!    ([`ViolationKind::WnLostNotice`]).
//! 3. **Directory and exclusive-mode legality** — at most one exclusive
//!    holder ([`ViolationKind::DupExclusive`]), breaks pair with entries
//!    ([`ViolationKind::UnpairedExclusiveBreak`]), no fetch from or flush
//!    to the master while it is stale under exclusivity
//!    ([`ViolationKind::FetchUnderExclusive`],
//!    [`ViolationKind::FlushUnderExclusive`]), the exclusive directory bit
//!    implies write permission ([`ViolationKind::DirPermInvariant`]), and
//!    homes migrate at most once, under the global lock, before the first
//!    fetch ([`ViolationKind::DuplicateHomeMigration`],
//!    [`ViolationKind::HomeMigrationOutsideLock`],
//!    [`ViolationKind::LateHomeMigration`]).
//! 4. **Release completeness and clock sanity** — every page a processor
//!    dirtied before a release is accounted for by that release
//!    ([`ViolationKind::MissingReleaseFlush`]), two-way diffs never
//!    overwrite concurrent local writes ([`ViolationKind::DiffInConflict`]),
//!    barrier episodes pair up ([`ViolationKind::BarrierEpochMismatch`]),
//!    and per-node logical-clock draws are unique
//!    ([`ViolationKind::TimestampCollision`] — the invariant that justifies
//!    the engine's relaxed atomic ordering on the clock).
//! 5. **Fault recovery** (runs with a `cashmere-faults` plan installed) —
//!    every timed-out page fetch or exclusive break is eventually satisfied
//!    or retried to success ([`ViolationKind::UnrecoveredTimeout`]), fresh
//!    fetch replies carry strictly increasing sequence numbers per
//!    (node, page) so a replayed duplicate can never re-apply against the
//!    twin ([`ViolationKind::DuplicateApplied`]), and the suppression path
//!    never swallows a genuinely fresh reply
//!    ([`ViolationKind::FreshReplyDropped`]).
//! 6. **Span well-nestedness** (runs on an [`ObsReport`] via
//!    [`audit_spans`], when observability was enabled) — on every
//!    (node, processor) track the observability spans are properly nested
//!    with non-negative durations, no span was left open at processor exit,
//!    and no end mismatched its open span ([`ViolationKind::SpanNegative`],
//!    [`ViolationKind::SpanOverlap`], [`ViolationKind::SpanUnclosed`],
//!    [`ViolationKind::SpanMismatched`]).
//!
//! The stream's global sequence numbers are a sound linearization because
//! every emission site follows the discipline documented in
//! [`cashmere_core::trace`]: producers emit before publication, consumers
//! after observation.
//!
//! ```
//! use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, Topology};
//!
//! let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
//!     .with_audit(true);
//! let mut cluster = Cluster::new(cfg);
//! let a = cluster.alloc(4);
//! cluster.run(|p| {
//!     p.lock(0);
//!     let v = p.read_u64(a);
//!     p.write_u64(a, v + 1);
//!     p.unlock(0);
//! });
//! let report = cashmere_check::audit(&cluster.take_trace());
//! assert!(report.is_clean(), "{}", report.summary());
//! assert!(report.races.is_empty(), "program is data-race-free");
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;

use cashmere_core::{ProtocolEvent, TraceEvent};
use cashmere_obs::{ObsReport, Span};

/// A hard protocol-invariant violation. Any of these in a trace means the
/// engine misbehaved (or the trace was tampered with — see the mutation
/// self-tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// An ordered (happens-before) remote write was observed stale: the
    /// faulting processor's vector clock dominates the write's, but the
    /// node never re-fetched the page after the write reached the master.
    StaleRead,
    /// A drained write notice was never posted.
    WnFabricated,
    /// The per-processor bitmap suppression dropped or duplicated a notice.
    WnLostNotice,
    /// A drained notice was never distributed to local processors.
    WnDistributeMissing,
    /// Two simultaneous exclusive holders for one page.
    DupExclusive,
    /// An exclusive break with no matching holder.
    UnpairedExclusiveBreak,
    /// A page fetch from the (stale) master while the page was exclusive.
    FetchUnderExclusive,
    /// A diff flush to the master while the page was exclusive elsewhere.
    FlushUnderExclusive,
    /// An incoming two-way diff overwrote words a concurrent local writer
    /// had modified.
    DiffInConflict,
    /// A directory word with the exclusive bit but non-write permission.
    DirPermInvariant,
    /// A home migration after the page had already been fetched.
    LateHomeMigration,
    /// A home migration performed without holding the global MC lock.
    HomeMigrationOutsideLock,
    /// A second home migration for the same page.
    DuplicateHomeMigration,
    /// A release ended without accounting for a page its processor had
    /// dirtied before the release began.
    MissingReleaseFlush,
    /// A barrier departure reported an episode the arrival ledger does not
    /// expect.
    BarrierEpochMismatch,
    /// Two identical logical-clock draws on one node.
    TimestampCollision,
    /// A timed-out request (page fetch or exclusive break) was never
    /// satisfied or retried to success by the end of the trace.
    UnrecoveredTimeout,
    /// A fetch reply was applied fresh with a sequence number at or below
    /// the last applied one — the double-apply the duplicate-suppression
    /// sequence check exists to prevent.
    DuplicateApplied,
    /// A fetch reply with a sequence number above the last applied one was
    /// suppressed as a duplicate (a genuinely fresh reply was dropped).
    FreshReplyDropped,
    /// An observability span with `end < begin` — virtual time ran
    /// backwards inside the span stack.
    SpanNegative,
    /// Two spans on one (node, processor) track partially overlap — the
    /// span stack's push/pop discipline guarantees proper nesting, so a
    /// straddle means begin/end hooks are misplaced.
    SpanOverlap,
    /// A span was still open when its processor finished (force-closed by
    /// `ProcObs::finish`).
    SpanUnclosed,
    /// A span end named a different kind than the open span it closed.
    SpanMismatched,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One hard violation, anchored at the sequence number of the event that
/// exposed it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Sequence number of the exposing event (`u64::MAX` for end-of-trace
    /// accounting checks).
    pub seq: u64,
    /// Human-readable specifics.
    pub detail: String,
}

/// An unordered remote-write/fault pair: a data race in the *application*
/// (deduplicated per page, word, and writer/reader pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Race {
    /// Page holding the raced word.
    pub page: usize,
    /// Word offset within the page.
    pub word: usize,
    /// Node whose flushed write is unordered with the access.
    pub writer_node: usize,
    /// Node whose fault observed (or wrote over) it.
    pub reader_node: usize,
    /// Cluster-wide id of the faulting processor.
    pub reader_proc: usize,
}

/// Everything the replay found.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Hard protocol violations — must be empty for a correct engine.
    pub violations: Vec<Violation>,
    /// Happens-before races — a property of the program, not the engine;
    /// empty for data-race-free programs.
    pub races: Vec<Race>,
    /// Number of events replayed.
    pub events: usize,
}

impl AuditReport {
    /// Whether the engine upheld every audited invariant (races are a
    /// property of the program and do not count).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The distinct violation kinds present.
    pub fn kinds(&self) -> HashSet<ViolationKind> {
        self.violations.iter().map(|v| v.kind).collect()
    }

    /// One line per violation/race, for assertion messages.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} events, {} violations, {} races\n",
            self.events,
            self.violations.len(),
            self.races.len()
        );
        for v in &self.violations {
            s.push_str(&format!("  [{}] seq {}: {}\n", v.kind, v.seq, v.detail));
        }
        for r in &self.races {
            s.push_str(&format!(
                "  [race] page {} word {}: node {} write vs proc {} (node {})\n",
                r.page, r.word, r.writer_node, r.reader_proc, r.reader_node
            ));
        }
        s
    }
}

/// A vector clock over processors.
type Vc = Vec<u64>;

fn join(dst: &mut Vc, src: &Vc) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn dominates(big: &Vc, small: &Vc) -> bool {
    big.iter().zip(small).all(|(b, s)| b >= s)
}

/// The last flushed remote write of one (page, word).
struct WordEpoch {
    node: usize,
    vc: Vc,
    seq: u64,
    /// False when the flush could not be attributed to an open release on
    /// its node (e.g. a shootdown flush during a remote fetch); such
    /// epochs are excluded from race and staleness reporting rather than
    /// risk a mis-attributed clock producing false positives.
    attributed: bool,
}

/// An in-progress release (between `ReleaseBegin` and `ReleaseEnd`).
struct OpenRelease {
    begin_seq: u64,
    covered: HashSet<usize>,
}

/// Replays `events` (as produced by `Cluster::take_trace` /
/// `TraceRecorder::take`) and reports every invariant violation and
/// happens-before race found. The stream must be seq-sorted, which `take`
/// guarantees.
pub fn audit(events: &[TraceEvent]) -> AuditReport {
    // Dimensions and the static proc → node map.
    let mut nprocs = 0usize;
    let mut node_of: HashMap<usize, usize> = HashMap::new();
    for e in events {
        if let Some(p) = event_proc(&e.ev) {
            nprocs = nprocs.max(p + 1);
            if let Some(n) = event_pnode(&e.ev) {
                node_of.entry(p).or_insert(n);
            }
        }
    }

    let mut violations: Vec<Violation> = Vec::new();
    let mut races: Vec<Race> = Vec::new();

    // Happens-before state.
    let mut vc: Vec<Vc> = vec![vec![0; nprocs]; nprocs];
    let mut lock_vc: HashMap<usize, Vc> = HashMap::new();
    let mut flag_vc: HashMap<usize, Vc> = HashMap::new();
    let mut barrier_acc: HashMap<(usize, u64), Vc> = HashMap::new();
    let mut barrier_next: HashMap<(usize, usize), u64> = HashMap::new();

    // Race / staleness state.
    let mut epochs: HashMap<(usize, usize), WordEpoch> = HashMap::new();
    let mut last_fetch: HashMap<(usize, usize), u64> = HashMap::new(); // (pnode, page)
    let mut raced: HashSet<Race> = HashSet::new();

    // Write-notice conservation.
    let mut posted: HashMap<(usize, usize, u32), u64> = HashMap::new(); // (to, from, page)
    let mut undistributed: HashMap<(usize, usize), u64> = HashMap::new(); // (to, page)
    let mut proc_pending: HashMap<(usize, usize), HashSet<u32>> = HashMap::new();

    // Exclusive mode / directory / homes.
    let mut excl: HashMap<usize, usize> = HashMap::new(); // page -> holder node
    let mut homes_written: HashSet<usize> = HashSet::new();
    let mut fetched_pages: HashSet<usize> = HashSet::new();
    let mut mc_holder: Option<usize> = None;

    // Release completeness.
    let mut open_release: HashMap<usize, OpenRelease> = HashMap::new();
    let mut pending_dirty: HashMap<usize, HashMap<usize, u64>> = HashMap::new(); // proc -> page -> seq

    // Clock sanity.
    let mut ticks: HashMap<usize, HashSet<u64>> = HashMap::new();

    // Fault recovery: last fresh-applied reply seq per (pnode, page),
    // pending fetch timeouts per (pnode, page), and pending break timeouts
    // per (holder, page, requester). Timeouts are cleared by the success
    // event they precede (a `Fetch`, an `ExclBreak`, or an explicit
    // `BreakAbandoned`); leftovers at end of trace are unrecovered.
    let mut applied_seq: HashMap<(usize, usize), u64> = HashMap::new();
    let mut pending_fetch_to: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    let mut pending_break_to: HashMap<(usize, usize, usize), Vec<u64>> = HashMap::new();

    macro_rules! flag {
        ($kind:expr, $seq:expr, $($arg:tt)*) => {
            violations.push(Violation {
                kind: $kind,
                seq: $seq,
                detail: format!($($arg)*),
            })
        };
    }

    for te in events {
        let seq = te.seq;
        match &te.ev {
            // --- Synchronization: happens-before edges -----------------
            ProtocolEvent::LockAcquire { proc, lock, .. } => {
                if let Some(l) = lock_vc.get(lock) {
                    let l = l.clone();
                    join(&mut vc[*proc], &l);
                }
            }
            ProtocolEvent::LockRelease { proc, lock, .. } => {
                let l = lock_vc.entry(*lock).or_insert_with(|| vec![0; nprocs]);
                join(l, &vc[*proc]);
            }
            ProtocolEvent::FlagWait { proc, flag: fl, .. } => {
                if let Some(f) = flag_vc.get(fl) {
                    let f = f.clone();
                    join(&mut vc[*proc], &f);
                }
            }
            ProtocolEvent::FlagSet { proc, flag: fl, .. } => {
                let f = flag_vc.entry(*fl).or_insert_with(|| vec![0; nprocs]);
                join(f, &vc[*proc]);
            }
            ProtocolEvent::BarrierArrive { proc, barrier, .. } => {
                let epoch = *barrier_next.entry((*barrier, *proc)).or_insert(1);
                let acc = barrier_acc
                    .entry((*barrier, epoch))
                    .or_insert_with(|| vec![0; nprocs]);
                join(acc, &vc[*proc]);
            }
            ProtocolEvent::BarrierDepart {
                proc,
                barrier,
                epoch,
                ..
            } => {
                let expected = barrier_next.entry((*barrier, *proc)).or_insert(1);
                if *epoch != *expected {
                    let exp = *expected;
                    flag!(
                        ViolationKind::BarrierEpochMismatch,
                        seq,
                        "proc {proc} departed barrier {barrier} epoch {epoch}, expected {exp}"
                    );
                }
                *expected = epoch + 1;
                if let Some(acc) = barrier_acc.get(&(*barrier, *epoch)) {
                    let acc = acc.clone();
                    join(&mut vc[*proc], &acc);
                }
            }
            ProtocolEvent::McLockAcquire { pnode } => {
                mc_holder = Some(*pnode);
            }
            ProtocolEvent::McLockRelease { .. } => {
                mc_holder = None;
            }

            // --- Clock ------------------------------------------------
            ProtocolEvent::ClockTick { pnode, ts } => {
                if !ticks.entry(*pnode).or_default().insert(*ts) {
                    flag!(
                        ViolationKind::TimestampCollision,
                        seq,
                        "node {pnode} drew logical timestamp {ts} twice"
                    );
                }
            }

            // --- Releases ---------------------------------------------
            ProtocolEvent::ReleaseBegin { proc, .. } => {
                vc[*proc][*proc] += 1;
                open_release.insert(
                    *proc,
                    OpenRelease {
                        begin_seq: seq,
                        covered: HashSet::new(),
                    },
                );
            }
            ProtocolEvent::ReleasePage { proc, page, .. } => {
                if let Some(r) = open_release.get_mut(proc) {
                    r.covered.insert(*page);
                }
            }
            ProtocolEvent::ReleaseEnd { proc, .. } => {
                if let Some(r) = open_release.remove(proc) {
                    if let Some(pending) = pending_dirty.get_mut(proc) {
                        for (&page, &pseq) in pending.iter() {
                            if pseq < r.begin_seq && !r.covered.contains(&page) {
                                flag!(
                                    ViolationKind::MissingReleaseFlush,
                                    seq,
                                    "proc {proc} release skipped dirty page {page} \
                                     (dirtied at seq {pseq})"
                                );
                            }
                        }
                        let begin = r.begin_seq;
                        pending.retain(|page, pseq| *pseq >= begin && !r.covered.contains(page));
                    }
                }
            }

            // --- Faults and data movement -----------------------------
            ProtocolEvent::Fault {
                proc,
                pnode,
                page,
                word,
                fetched,
                dirtied,
                is_home,
                excl: is_excl,
                ..
            } => {
                if *dirtied {
                    pending_dirty
                        .entry(*proc)
                        .or_default()
                        .entry(*page)
                        .or_insert(seq);
                }
                if let Some(e) = epochs.get(&(*page, *word)) {
                    if e.node != *pnode && e.attributed {
                        if dominates(&vc[*proc], &e.vc) {
                            let fetched_after = *fetched
                                || last_fetch.get(&(*pnode, *page)).is_some_and(|&f| f > e.seq);
                            if !is_home && !is_excl && !fetched_after {
                                flag!(
                                    ViolationKind::StaleRead,
                                    seq,
                                    "proc {proc} (node {pnode}) fault on page {page} word \
                                     {word} is ordered after node {}'s flush at seq {} but \
                                     never re-fetched",
                                    e.node,
                                    e.seq
                                );
                            }
                        } else {
                            let race = Race {
                                page: *page,
                                word: *word,
                                writer_node: e.node,
                                reader_node: *pnode,
                                reader_proc: *proc,
                            };
                            if raced.insert(race) {
                                races.push(race);
                            }
                        }
                    }
                }
            }
            ProtocolEvent::Fetch { pnode, page } => {
                fetched_pages.insert(*page);
                last_fetch.insert((*pnode, *page), seq);
                // A completed fetch satisfies every pending timeout this
                // node accumulated for the page.
                pending_fetch_to.remove(&(*pnode, *page));
                if let Some(holder) = excl.get(page) {
                    flag!(
                        ViolationKind::FetchUnderExclusive,
                        seq,
                        "node {pnode} fetched page {page} while node {holder} held it \
                         exclusively (master is stale)"
                    );
                }
            }
            ProtocolEvent::DiffOut { pnode, page, words } => {
                if let Some(holder) = excl.get(page) {
                    flag!(
                        ViolationKind::FlushUnderExclusive,
                        seq,
                        "node {pnode} flushed a diff for page {page} while node {holder} \
                         held it exclusively"
                    );
                }
                // Attribute the flush to the open release(s) on this node;
                // their joined clock is the write's happens-before position.
                let mut evc = vec![0; nprocs];
                let mut attributed = false;
                for p in open_release.keys() {
                    if node_of.get(p) == Some(pnode) {
                        join(&mut evc, &vc[*p]);
                        attributed = true;
                    }
                }
                for w in words {
                    epochs.insert(
                        (*page, *w as usize),
                        WordEpoch {
                            node: *pnode,
                            vc: evc.clone(),
                            seq,
                            attributed,
                        },
                    );
                }
            }
            ProtocolEvent::DiffIn {
                pnode,
                page,
                conflicts,
            } => {
                if *conflicts > 0 {
                    flag!(
                        ViolationKind::DiffInConflict,
                        seq,
                        "incoming diff for page {page} on node {pnode} overwrote \
                         {conflicts} concurrently-written word(s)"
                    );
                }
            }

            // --- Exclusive mode ---------------------------------------
            ProtocolEvent::ExclEnter { proc, pnode, page } => {
                if let Some(holder) = excl.insert(*page, *pnode) {
                    flag!(
                        ViolationKind::DupExclusive,
                        seq,
                        "proc {proc} (node {pnode}) entered exclusive mode for page {page} \
                         already held by node {holder}"
                    );
                }
            }
            ProtocolEvent::ExclBreak { pnode, page, by } => {
                match excl.remove(page) {
                    Some(h) if h == *pnode => {}
                    other => flag!(
                        ViolationKind::UnpairedExclusiveBreak,
                        seq,
                        "node {by} broke exclusivity of page {page} at node {pnode}, but the \
                         recorded holder is {other:?}"
                    ),
                }
                // The break satisfies every requester's pending timeout for
                // this (holder, page) — whoever's retry got through, the
                // exclusivity is gone.
                pending_break_to.retain(|&(h, p, _), _| h != *pnode || p != *page);
            }
            ProtocolEvent::NlePush { proc, page, .. } => {
                pending_dirty
                    .entry(*proc)
                    .or_default()
                    .entry(*page)
                    .or_insert(seq);
            }

            // --- Directory and homes ----------------------------------
            ProtocolEvent::DirWrite {
                pnode,
                page,
                perm,
                exclusive,
            } => {
                if *exclusive && *perm != 2 {
                    flag!(
                        ViolationKind::DirPermInvariant,
                        seq,
                        "node {pnode} published page {page} exclusive with perm {perm} \
                         (exclusive implies write)"
                    );
                }
            }
            ProtocolEvent::HomeWrite { pnode, page, to } => {
                if fetched_pages.contains(page) {
                    flag!(
                        ViolationKind::LateHomeMigration,
                        seq,
                        "page {page} migrated to node {to} after its first fetch"
                    );
                }
                if mc_holder != Some(*pnode) {
                    flag!(
                        ViolationKind::HomeMigrationOutsideLock,
                        seq,
                        "node {pnode} migrated page {page} without holding the MC lock \
                         (holder: {mc_holder:?})"
                    );
                }
                if !homes_written.insert(*page) {
                    flag!(
                        ViolationKind::DuplicateHomeMigration,
                        seq,
                        "page {page} migrated twice"
                    );
                }
            }

            // --- Write notices ----------------------------------------
            ProtocolEvent::WnPost { to, from, page } => {
                *posted.entry((*to, *from, *page)).or_insert(0) += 1;
            }
            ProtocolEvent::WnDrain { to, items } => {
                for (from, page) in items {
                    match posted.get_mut(&(*to, *from as usize, *page)) {
                        Some(n) if *n > 0 => *n -= 1,
                        _ => flag!(
                            ViolationKind::WnFabricated,
                            seq,
                            "node {to} drained a notice for page {page} from node {from} \
                             that was never posted"
                        ),
                    }
                    *undistributed.entry((*to, *page as usize)).or_insert(0) += 1;
                }
            }
            ProtocolEvent::WnDistribute { pnode, page, .. } => {
                match undistributed.get_mut(&(*pnode, *page)) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => flag!(
                        ViolationKind::WnFabricated,
                        seq,
                        "node {pnode} distributed a notice for page {page} with no \
                         matching drain"
                    ),
                }
            }
            ProtocolEvent::WnInsert {
                pnode,
                lproc,
                page,
                fresh,
            } => {
                let pending = proc_pending.entry((*pnode, *lproc)).or_default();
                if *fresh {
                    if !pending.insert(*page) {
                        flag!(
                            ViolationKind::WnLostNotice,
                            seq,
                            "(node {pnode}, lproc {lproc}) queued page {page} as fresh \
                             while already pending (duplicate queue entry)"
                        );
                    }
                } else if !pending.contains(page) {
                    flag!(
                        ViolationKind::WnLostNotice,
                        seq,
                        "(node {pnode}, lproc {lproc}) suppressed a notice for page {page} \
                         with nothing pending (live notice dropped)"
                    );
                }
            }
            ProtocolEvent::WnProcDrain {
                pnode,
                lproc,
                pages,
            } => {
                let pending = proc_pending.entry((*pnode, *lproc)).or_default();
                for p in pages {
                    if !pending.remove(p) {
                        flag!(
                            ViolationKind::WnLostNotice,
                            seq,
                            "(node {pnode}, lproc {lproc}) drained page {p} that was never \
                             queued"
                        );
                    }
                }
                if !pending.is_empty() {
                    flag!(
                        ViolationKind::WnLostNotice,
                        seq,
                        "(node {pnode}, lproc {lproc}) drain left {} queued page(s) behind: \
                         {pending:?}",
                        pending.len()
                    );
                    pending.clear();
                }
            }

            // --- Fault recovery ---------------------------------------
            ProtocolEvent::FetchTimeout { pnode, page, .. } => {
                pending_fetch_to
                    .entry((*pnode, *page))
                    .or_default()
                    .push(seq);
            }
            ProtocolEvent::FetchReply {
                pnode,
                page,
                seq: rseq,
                dup,
            } => {
                let last = applied_seq.entry((*pnode, *page)).or_insert(0);
                if *dup {
                    if *rseq > *last {
                        flag!(
                            ViolationKind::FreshReplyDropped,
                            seq,
                            "node {pnode} suppressed reply seq {rseq} for page {page} as a \
                             duplicate, but the last applied seq is {last}"
                        );
                    }
                } else {
                    if *rseq <= *last {
                        flag!(
                            ViolationKind::DuplicateApplied,
                            seq,
                            "node {pnode} applied reply seq {rseq} for page {page} fresh, \
                             but seq {last} was already applied (replayed duplicate \
                             double-applied against the twin)"
                        );
                    }
                    *last = (*last).max(*rseq);
                }
            }
            ProtocolEvent::BreakTimeout {
                pnode, page, by, ..
            } => {
                pending_break_to
                    .entry((*pnode, *page, *by))
                    .or_default()
                    .push(seq);
            }
            ProtocolEvent::BreakAbandoned { pnode, page, by } => {
                // The requester found the exclusivity already gone: its
                // timed-out break is satisfied.
                pending_break_to.remove(&(*pnode, *page, *by));
            }

            ProtocolEvent::TwinCreate { .. } => {}
        }
    }

    // Every drained notice must have been distributed by the end of the
    // trace (acquire drains and distributes in one protocol action).
    for ((to, page), n) in undistributed {
        if n > 0 {
            violations.push(Violation {
                kind: ViolationKind::WnDistributeMissing,
                seq: u64::MAX,
                detail: format!(
                    "node {to} drained {n} notice(s) for page {page} never distributed to \
                     local processors"
                ),
            });
        }
    }

    // Every timed-out request must have been satisfied (a later Fetch /
    // ExclBreak / BreakAbandoned) by the end of the trace: the engine's
    // retry loops emit the timeout strictly before the success event, so a
    // leftover means a request was lost and never recovered.
    for ((pnode, page), seqs) in pending_fetch_to {
        violations.push(Violation {
            kind: ViolationKind::UnrecoveredTimeout,
            seq: u64::MAX,
            detail: format!(
                "node {pnode} has {} unrecovered fetch timeout(s) for page {page} \
                 (first at seq {})",
                seqs.len(),
                seqs[0]
            ),
        });
    }
    for ((pnode, page, by), seqs) in pending_break_to {
        violations.push(Violation {
            kind: ViolationKind::UnrecoveredTimeout,
            seq: u64::MAX,
            detail: format!(
                "requester {by} has {} unrecovered break timeout(s) for page {page} at \
                 node {pnode} (first at seq {})",
                seqs.len(),
                seqs[0]
            ),
        });
    }

    AuditReport {
        violations,
        races,
        events: events.len(),
    }
}

/// Audits the observability layer's span stream (the sixth invariant
/// family): on every (node, processor) track, spans must be properly
/// nested — any two either disjoint or one containing the other — with
/// non-negative durations, and the collection anomalies the span stack
/// counted at runtime ([`ViolationKind::SpanUnclosed`],
/// [`ViolationKind::SpanMismatched`]) must be zero. Proper nesting is what
/// the `ProcObs` push/pop discipline guarantees by construction, so a
/// straddling pair means an engine hook opened a span it never closed (or
/// closed one it never opened) around a code path that charges time.
///
/// Races do not apply to spans; the returned report's `races` is empty and
/// `events` counts the spans examined.
pub fn audit_spans(obs: &ObsReport) -> AuditReport {
    let mut violations = Vec::new();
    if obs.spans_unclosed > 0 {
        violations.push(Violation {
            kind: ViolationKind::SpanUnclosed,
            seq: u64::MAX,
            detail: format!(
                "{} span(s) were force-closed at processor exit",
                obs.spans_unclosed
            ),
        });
    }
    if obs.spans_mismatched > 0 {
        violations.push(Violation {
            kind: ViolationKind::SpanMismatched,
            seq: u64::MAX,
            detail: format!(
                "{} span end(s) named a kind other than the open span",
                obs.spans_mismatched
            ),
        });
    }

    let mut tracks: HashMap<(u32, u32), Vec<&Span>> = HashMap::new();
    for s in &obs.spans {
        if s.end < s.begin {
            violations.push(Violation {
                kind: ViolationKind::SpanNegative,
                seq: s.begin,
                detail: format!(
                    "{} span on node {} proc {} ends at {} before its begin {}",
                    s.kind.label(),
                    s.node,
                    s.proc,
                    s.end,
                    s.begin
                ),
            });
            continue;
        }
        tracks.entry((s.node, s.proc)).or_default().push(s);
    }
    let mut keys: Vec<(u32, u32)> = tracks.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let spans = tracks.get_mut(&key).expect("keyed from tracks");
        // Sorted by begin, longest first on ties: a parent always precedes
        // the spans it contains, so a straddle shows up as a stack-top that
        // ends strictly inside the newcomer.
        spans.sort_by(|a, b| a.begin.cmp(&b.begin).then(b.end.cmp(&a.end)));
        let mut stack: Vec<&Span> = Vec::new();
        for s in spans.iter() {
            while stack.last().is_some_and(|open| open.end <= s.begin) {
                stack.pop();
            }
            if let Some(open) = stack.last() {
                if open.end < s.end {
                    violations.push(Violation {
                        kind: ViolationKind::SpanOverlap,
                        seq: s.begin,
                        detail: format!(
                            "on node {} proc {}: {} [{}, {}] straddles the end of {} [{}, {}]",
                            s.node,
                            s.proc,
                            s.kind.label(),
                            s.begin,
                            s.end,
                            open.kind.label(),
                            open.begin,
                            open.end
                        ),
                    });
                    continue;
                }
            }
            stack.push(s);
        }
    }

    AuditReport {
        violations,
        races: Vec::new(),
        events: obs.spans.len(),
    }
}

/// The cluster-wide processor id an event concerns, if any.
fn event_proc(ev: &ProtocolEvent) -> Option<usize> {
    match ev {
        ProtocolEvent::LockAcquire { proc, .. }
        | ProtocolEvent::LockRelease { proc, .. }
        | ProtocolEvent::BarrierArrive { proc, .. }
        | ProtocolEvent::BarrierDepart { proc, .. }
        | ProtocolEvent::FlagSet { proc, .. }
        | ProtocolEvent::FlagWait { proc, .. }
        | ProtocolEvent::ReleaseBegin { proc, .. }
        | ProtocolEvent::ReleasePage { proc, .. }
        | ProtocolEvent::ReleaseEnd { proc, .. }
        | ProtocolEvent::Fault { proc, .. }
        | ProtocolEvent::ExclEnter { proc, .. }
        | ProtocolEvent::NlePush { proc, .. } => Some(*proc),
        _ => None,
    }
}

/// The protocol node an event places its processor on, if it names both.
fn event_pnode(ev: &ProtocolEvent) -> Option<usize> {
    match ev {
        ProtocolEvent::LockAcquire { pnode, .. }
        | ProtocolEvent::LockRelease { pnode, .. }
        | ProtocolEvent::BarrierArrive { pnode, .. }
        | ProtocolEvent::BarrierDepart { pnode, .. }
        | ProtocolEvent::FlagSet { pnode, .. }
        | ProtocolEvent::FlagWait { pnode, .. }
        | ProtocolEvent::ReleaseBegin { pnode, .. }
        | ProtocolEvent::ReleasePage { pnode, .. }
        | ProtocolEvent::ReleaseEnd { pnode, .. }
        | ProtocolEvent::Fault { pnode, .. }
        | ProtocolEvent::ExclEnter { pnode, .. }
        | ProtocolEvent::NlePush { pnode, .. } => Some(*pnode),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqd(evs: Vec<ProtocolEvent>) -> Vec<TraceEvent> {
        evs.into_iter()
            .enumerate()
            .map(|(i, ev)| TraceEvent { seq: i as u64, ev })
            .collect()
    }

    #[test]
    fn empty_trace_is_clean() {
        let r = audit(&[]);
        assert!(r.is_clean());
        assert!(r.races.is_empty());
        assert_eq!(r.events, 0);
    }

    #[test]
    fn ordered_write_with_refetch_is_clean() {
        // Node 0 (proc 0) flushes word 3 during a release, hands the lock
        // to proc 1 (node 1), whose node fetches before faulting: ordered
        // and fresh.
        let t = seqd(vec![
            ProtocolEvent::ReleaseBegin {
                proc: 0,
                pnode: 0,
                ts: 1,
            },
            ProtocolEvent::DiffOut {
                pnode: 0,
                page: 7,
                words: vec![3],
            },
            ProtocolEvent::ReleaseEnd { proc: 0, pnode: 0 },
            ProtocolEvent::LockRelease {
                proc: 0,
                pnode: 0,
                lock: 0,
            },
            ProtocolEvent::LockAcquire {
                proc: 1,
                pnode: 1,
                lock: 0,
            },
            ProtocolEvent::Fetch { pnode: 1, page: 7 },
            ProtocolEvent::Fault {
                proc: 1,
                pnode: 1,
                page: 7,
                word: 3,
                write: false,
                fetched: true,
                dirtied: false,
                is_home: false,
                excl: false,
            },
        ]);
        let r = audit(&t);
        assert!(r.is_clean(), "{}", r.summary());
        assert!(r.races.is_empty(), "{}", r.summary());
    }

    #[test]
    fn ordered_write_without_refetch_is_stale_read() {
        let t = seqd(vec![
            ProtocolEvent::ReleaseBegin {
                proc: 0,
                pnode: 0,
                ts: 1,
            },
            ProtocolEvent::DiffOut {
                pnode: 0,
                page: 7,
                words: vec![3],
            },
            ProtocolEvent::ReleaseEnd { proc: 0, pnode: 0 },
            ProtocolEvent::LockRelease {
                proc: 0,
                pnode: 0,
                lock: 0,
            },
            ProtocolEvent::LockAcquire {
                proc: 1,
                pnode: 1,
                lock: 0,
            },
            ProtocolEvent::Fault {
                proc: 1,
                pnode: 1,
                page: 7,
                word: 3,
                write: false,
                fetched: false,
                dirtied: false,
                is_home: false,
                excl: false,
            },
        ]);
        let r = audit(&t);
        assert_eq!(r.kinds(), HashSet::from([ViolationKind::StaleRead]));
        assert!(r.races.is_empty());
    }

    #[test]
    fn unordered_write_is_a_race_not_a_violation() {
        // No sync edge between the flush and the fault: a program race.
        let t = seqd(vec![
            ProtocolEvent::ReleaseBegin {
                proc: 0,
                pnode: 0,
                ts: 1,
            },
            ProtocolEvent::DiffOut {
                pnode: 0,
                page: 7,
                words: vec![3],
            },
            ProtocolEvent::ReleaseEnd { proc: 0, pnode: 0 },
            ProtocolEvent::Fault {
                proc: 1,
                pnode: 1,
                page: 7,
                word: 3,
                write: false,
                fetched: false,
                dirtied: false,
                is_home: false,
                excl: false,
            },
        ]);
        let r = audit(&t);
        assert!(r.is_clean(), "{}", r.summary());
        assert_eq!(r.races.len(), 1);
        assert_eq!(r.races[0].writer_node, 0);
        assert_eq!(r.races[0].reader_proc, 1);
    }

    #[test]
    fn flag_edges_order_like_locks() {
        let t = seqd(vec![
            ProtocolEvent::ReleaseBegin {
                proc: 0,
                pnode: 0,
                ts: 1,
            },
            ProtocolEvent::DiffOut {
                pnode: 0,
                page: 2,
                words: vec![0],
            },
            ProtocolEvent::ReleaseEnd { proc: 0, pnode: 0 },
            ProtocolEvent::FlagSet {
                proc: 0,
                pnode: 0,
                flag: 5,
            },
            ProtocolEvent::FlagWait {
                proc: 1,
                pnode: 1,
                flag: 5,
            },
            ProtocolEvent::Fetch { pnode: 1, page: 2 },
            ProtocolEvent::Fault {
                proc: 1,
                pnode: 1,
                page: 2,
                word: 0,
                write: false,
                fetched: true,
                dirtied: false,
                is_home: false,
                excl: false,
            },
        ]);
        let r = audit(&t);
        assert!(r.is_clean(), "{}", r.summary());
        assert!(r.races.is_empty(), "flag edge orders the access");
    }

    #[test]
    fn barrier_epochs_pair_arrivals_and_departures() {
        let t = seqd(vec![
            ProtocolEvent::ReleaseBegin {
                proc: 0,
                pnode: 0,
                ts: 1,
            },
            ProtocolEvent::DiffOut {
                pnode: 0,
                page: 1,
                words: vec![4],
            },
            ProtocolEvent::ReleaseEnd { proc: 0, pnode: 0 },
            ProtocolEvent::BarrierArrive {
                proc: 0,
                pnode: 0,
                barrier: 0,
            },
            ProtocolEvent::BarrierArrive {
                proc: 1,
                pnode: 1,
                barrier: 0,
            },
            ProtocolEvent::BarrierDepart {
                proc: 0,
                pnode: 0,
                barrier: 0,
                epoch: 1,
            },
            ProtocolEvent::BarrierDepart {
                proc: 1,
                pnode: 1,
                barrier: 0,
                epoch: 1,
            },
            ProtocolEvent::Fetch { pnode: 1, page: 1 },
            ProtocolEvent::Fault {
                proc: 1,
                pnode: 1,
                page: 1,
                word: 4,
                write: false,
                fetched: true,
                dirtied: false,
                is_home: false,
                excl: false,
            },
        ]);
        let r = audit(&t);
        assert!(r.is_clean(), "{}", r.summary());
        assert!(r.races.is_empty(), "barrier orders the access");
    }

    #[test]
    fn barrier_epoch_mismatch_is_flagged() {
        let t = seqd(vec![
            ProtocolEvent::BarrierArrive {
                proc: 0,
                pnode: 0,
                barrier: 0,
            },
            ProtocolEvent::BarrierDepart {
                proc: 0,
                pnode: 0,
                barrier: 0,
                epoch: 7,
            },
        ]);
        let r = audit(&t);
        assert_eq!(
            r.kinds(),
            HashSet::from([ViolationKind::BarrierEpochMismatch])
        );
    }

    #[test]
    fn notice_conservation_catches_fabrication_and_loss() {
        // A drain of a never-posted notice, plus a suppression with
        // nothing pending.
        let t = seqd(vec![
            ProtocolEvent::WnDrain {
                to: 0,
                items: vec![(1, 9)],
            },
            ProtocolEvent::WnDistribute {
                pnode: 0,
                page: 9,
                mapped: 1,
            },
            ProtocolEvent::WnInsert {
                pnode: 0,
                lproc: 0,
                page: 9,
                fresh: false,
            },
        ]);
        let r = audit(&t);
        assert_eq!(
            r.kinds(),
            HashSet::from([ViolationKind::WnFabricated, ViolationKind::WnLostNotice])
        );
    }

    #[test]
    fn undistributed_drain_is_flagged_at_end_of_trace() {
        let t = seqd(vec![
            ProtocolEvent::WnPost {
                to: 0,
                from: 1,
                page: 9,
            },
            ProtocolEvent::WnDrain {
                to: 0,
                items: vec![(1, 9)],
            },
        ]);
        let r = audit(&t);
        assert_eq!(
            r.kinds(),
            HashSet::from([ViolationKind::WnDistributeMissing])
        );
    }

    #[test]
    fn healthy_notice_flow_is_clean() {
        let t = seqd(vec![
            ProtocolEvent::WnPost {
                to: 0,
                from: 1,
                page: 9,
            },
            ProtocolEvent::WnPost {
                to: 0,
                from: 1,
                page: 9,
            },
            ProtocolEvent::WnDrain {
                to: 0,
                items: vec![(1, 9), (1, 9)],
            },
            ProtocolEvent::WnDistribute {
                pnode: 0,
                page: 9,
                mapped: 3,
            },
            ProtocolEvent::WnDistribute {
                pnode: 0,
                page: 9,
                mapped: 3,
            },
            ProtocolEvent::WnInsert {
                pnode: 0,
                lproc: 0,
                page: 9,
                fresh: true,
            },
            ProtocolEvent::WnInsert {
                pnode: 0,
                lproc: 0,
                page: 9,
                fresh: false,
            },
            ProtocolEvent::WnProcDrain {
                pnode: 0,
                lproc: 0,
                pages: vec![9],
            },
        ]);
        let r = audit(&t);
        assert!(r.is_clean(), "{}", r.summary());
    }

    #[test]
    fn exclusive_lifecycle_checks() {
        let t = seqd(vec![
            ProtocolEvent::ExclEnter {
                proc: 2,
                pnode: 1,
                page: 4,
            },
            // A second holder while the first never broke.
            ProtocolEvent::ExclEnter {
                proc: 0,
                pnode: 0,
                page: 4,
            },
            // A fetch while the page is exclusive.
            ProtocolEvent::Fetch { pnode: 2, page: 4 },
            // A flush while the page is exclusive.
            ProtocolEvent::DiffOut {
                pnode: 2,
                page: 4,
                words: vec![0],
            },
            ProtocolEvent::ExclBreak {
                pnode: 0,
                page: 4,
                by: 2,
            },
            // And a break with no holder.
            ProtocolEvent::ExclBreak {
                pnode: 0,
                page: 4,
                by: 2,
            },
        ]);
        let r = audit(&t);
        assert_eq!(
            r.kinds(),
            HashSet::from([
                ViolationKind::DupExclusive,
                ViolationKind::FetchUnderExclusive,
                ViolationKind::FlushUnderExclusive,
                ViolationKind::UnpairedExclusiveBreak,
            ])
        );
    }

    #[test]
    fn home_migration_rules() {
        let t = seqd(vec![
            ProtocolEvent::McLockAcquire { pnode: 0 },
            ProtocolEvent::HomeWrite {
                pnode: 0,
                page: 3,
                to: 1,
            }, // fine
            ProtocolEvent::McLockRelease { pnode: 0 },
            ProtocolEvent::Fetch { pnode: 1, page: 3 },
            // Second migration, after a fetch, without the lock: 3 kinds.
            ProtocolEvent::HomeWrite {
                pnode: 0,
                page: 3,
                to: 0,
            },
        ]);
        let r = audit(&t);
        assert_eq!(
            r.kinds(),
            HashSet::from([
                ViolationKind::LateHomeMigration,
                ViolationKind::HomeMigrationOutsideLock,
                ViolationKind::DuplicateHomeMigration,
            ])
        );
    }

    #[test]
    fn missing_release_flush_is_flagged() {
        let t = seqd(vec![
            ProtocolEvent::Fault {
                proc: 0,
                pnode: 0,
                page: 5,
                word: 0,
                write: true,
                fetched: true,
                dirtied: true,
                is_home: false,
                excl: false,
            },
            ProtocolEvent::ReleaseBegin {
                proc: 0,
                pnode: 0,
                ts: 1,
            },
            // No ReleasePage for page 5.
            ProtocolEvent::ReleaseEnd { proc: 0, pnode: 0 },
        ]);
        let r = audit(&t);
        assert_eq!(
            r.kinds(),
            HashSet::from([ViolationKind::MissingReleaseFlush])
        );
    }

    #[test]
    fn covered_release_and_late_dirty_are_clean() {
        use cashmere_core::ReleaseAction;
        let t = seqd(vec![
            ProtocolEvent::Fault {
                proc: 0,
                pnode: 0,
                page: 5,
                word: 0,
                write: true,
                fetched: true,
                dirtied: true,
                is_home: false,
                excl: false,
            },
            ProtocolEvent::ReleaseBegin {
                proc: 0,
                pnode: 0,
                ts: 1,
            },
            ProtocolEvent::ReleasePage {
                proc: 0,
                pnode: 0,
                page: 5,
                action: ReleaseAction::Flushed,
            },
            ProtocolEvent::ReleaseEnd { proc: 0, pnode: 0 },
            // Dirtied between Begin and End of someone else's view — the
            // NEXT release covers it.
            ProtocolEvent::ReleaseBegin {
                proc: 1,
                pnode: 0,
                ts: 2,
            },
            ProtocolEvent::Fault {
                proc: 1,
                pnode: 0,
                page: 6,
                word: 0,
                write: true,
                fetched: false,
                dirtied: true,
                is_home: false,
                excl: false,
            },
            ProtocolEvent::ReleaseEnd { proc: 1, pnode: 0 },
        ]);
        let r = audit(&t);
        assert!(r.is_clean(), "{}", r.summary());
    }

    #[test]
    fn recovered_timeouts_and_suppressed_duplicates_are_clean() {
        let t = seqd(vec![
            // Two lost fetch attempts, then the fetch succeeds and the
            // reply applies fresh; a replayed duplicate is suppressed.
            ProtocolEvent::FetchTimeout {
                pnode: 1,
                page: 7,
                seq: 1,
                attempt: 1,
            },
            ProtocolEvent::FetchTimeout {
                pnode: 1,
                page: 7,
                seq: 1,
                attempt: 2,
            },
            ProtocolEvent::Fetch { pnode: 1, page: 7 },
            ProtocolEvent::FetchReply {
                pnode: 1,
                page: 7,
                seq: 1,
                dup: false,
            },
            ProtocolEvent::FetchReply {
                pnode: 1,
                page: 7,
                seq: 1,
                dup: true,
            },
            // A break that times out, then lands.
            ProtocolEvent::ExclEnter {
                proc: 0,
                pnode: 0,
                page: 3,
            },
            ProtocolEvent::BreakTimeout {
                pnode: 0,
                page: 3,
                by: 1,
                attempt: 1,
            },
            ProtocolEvent::ExclBreak {
                pnode: 0,
                page: 3,
                by: 1,
            },
            // A break that times out and is then found moot.
            ProtocolEvent::BreakTimeout {
                pnode: 0,
                page: 4,
                by: 2,
                attempt: 1,
            },
            ProtocolEvent::BreakAbandoned {
                pnode: 0,
                page: 4,
                by: 2,
            },
        ]);
        let r = audit(&t);
        assert!(r.is_clean(), "{}", r.summary());
    }

    #[test]
    fn unrecovered_timeouts_are_flagged_at_end_of_trace() {
        let t = seqd(vec![
            ProtocolEvent::FetchTimeout {
                pnode: 1,
                page: 7,
                seq: 1,
                attempt: 1,
            },
            ProtocolEvent::BreakTimeout {
                pnode: 0,
                page: 3,
                by: 1,
                attempt: 1,
            },
            // Neither a Fetch nor an ExclBreak/BreakAbandoned follows.
        ]);
        let r = audit(&t);
        assert_eq!(
            r.kinds(),
            HashSet::from([ViolationKind::UnrecoveredTimeout])
        );
        assert_eq!(r.violations.len(), 2, "{}", r.summary());
    }

    #[test]
    fn break_by_another_requester_satisfies_a_pending_timeout() {
        let t = seqd(vec![
            ProtocolEvent::ExclEnter {
                proc: 0,
                pnode: 0,
                page: 3,
            },
            ProtocolEvent::BreakTimeout {
                pnode: 0,
                page: 3,
                by: 1,
                attempt: 1,
            },
            // Node 2's break gets through first; node 1's obligation is
            // satisfied because the exclusivity is gone.
            ProtocolEvent::ExclBreak {
                pnode: 0,
                page: 3,
                by: 2,
            },
        ]);
        let r = audit(&t);
        assert!(r.is_clean(), "{}", r.summary());
    }

    #[test]
    fn double_applied_duplicate_is_flagged() {
        // The mutation target: with suppression disabled, a replayed reply
        // is applied fresh under a non-increasing sequence number.
        let t = seqd(vec![
            ProtocolEvent::FetchReply {
                pnode: 1,
                page: 7,
                seq: 2,
                dup: false,
            },
            ProtocolEvent::FetchReply {
                pnode: 1,
                page: 7,
                seq: 2,
                dup: false,
            },
        ]);
        let r = audit(&t);
        assert_eq!(r.kinds(), HashSet::from([ViolationKind::DuplicateApplied]));
    }

    #[test]
    fn fresh_reply_suppressed_as_duplicate_is_flagged() {
        let t = seqd(vec![
            ProtocolEvent::FetchReply {
                pnode: 1,
                page: 7,
                seq: 1,
                dup: false,
            },
            ProtocolEvent::FetchReply {
                pnode: 1,
                page: 7,
                seq: 2,
                dup: true, // seq 2 was never applied: this drop loses data
            },
        ]);
        let r = audit(&t);
        assert_eq!(r.kinds(), HashSet::from([ViolationKind::FreshReplyDropped]));
    }

    #[test]
    fn clock_collisions_and_dir_perm() {
        let t = seqd(vec![
            ProtocolEvent::ClockTick { pnode: 0, ts: 10 },
            ProtocolEvent::ClockTick { pnode: 1, ts: 10 }, // other node: fine
            ProtocolEvent::ClockTick { pnode: 0, ts: 10 }, // duplicate
            ProtocolEvent::DirWrite {
                pnode: 0,
                page: 0,
                perm: 1,
                exclusive: true,
            },
            ProtocolEvent::DiffIn {
                pnode: 0,
                page: 0,
                conflicts: 2,
            },
        ]);
        let r = audit(&t);
        assert_eq!(
            r.kinds(),
            HashSet::from([
                ViolationKind::TimestampCollision,
                ViolationKind::DirPermInvariant,
                ViolationKind::DiffInConflict,
            ])
        );
    }

    fn span(kind: cashmere_obs::SpanKind, proc: u32, begin: u64, end: u64) -> Span {
        Span {
            kind,
            node: 0,
            proc,
            begin,
            end,
            page: -1,
        }
    }

    #[test]
    fn well_nested_spans_audit_clean() {
        use cashmere_obs::SpanKind;
        let mut obs = ObsReport::new();
        obs.spans = vec![
            // proc 0: a fault nested inside a lock, then a disjoint barrier.
            span(SpanKind::Fault, 0, 120, 180),
            span(SpanKind::Lock, 0, 100, 200),
            span(SpanKind::Barrier, 0, 200, 300),
            // proc 1 overlaps proc 0 in time — different track, no conflict.
            span(SpanKind::Lock, 1, 150, 250),
            // Zero-duration span at a shared boundary.
            span(SpanKind::Release, 0, 300, 300),
        ];
        let r = audit_spans(&obs);
        assert!(r.is_clean(), "{}", r.summary());
        assert_eq!(r.events, 5);
        assert!(r.races.is_empty());
    }

    #[test]
    fn span_mutations_are_caught() {
        use cashmere_obs::SpanKind;
        // Straddling pair on one track.
        let mut obs = ObsReport::new();
        obs.spans = vec![
            span(SpanKind::Lock, 0, 100, 200),
            span(SpanKind::Fault, 0, 150, 250),
        ];
        let r = audit_spans(&obs);
        assert_eq!(r.kinds(), HashSet::from([ViolationKind::SpanOverlap]));

        // Negative duration.
        let mut obs = ObsReport::new();
        obs.spans = vec![span(SpanKind::Fetch, 2, 500, 400)];
        let r = audit_spans(&obs);
        assert_eq!(r.kinds(), HashSet::from([ViolationKind::SpanNegative]));

        // Runtime anomaly counters surface as violations.
        let mut obs = ObsReport::new();
        obs.spans_unclosed = 1;
        obs.spans_mismatched = 2;
        let r = audit_spans(&obs);
        assert_eq!(
            r.kinds(),
            HashSet::from([ViolationKind::SpanUnclosed, ViolationKind::SpanMismatched])
        );
    }

    #[test]
    fn real_obs_run_passes_the_span_audit() {
        use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, Topology};
        let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
            .with_heap_pages(8)
            .with_obs(true);
        let mut cluster = Cluster::new(cfg);
        let a = cluster.alloc(32);
        let report = cluster.run(|p| {
            p.lock(0);
            let v = p.read_u64(a);
            p.write_u64(a, v + 1);
            p.unlock(0);
            p.barrier(0);
        });
        let obs = report.obs.expect("obs enabled");
        let r = audit_spans(&obs);
        assert!(r.is_clean(), "{}", r.summary());
        assert!(r.events > 0, "spans were recorded");
    }
}
