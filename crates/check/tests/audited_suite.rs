//! The auditor against the real system: every application in the paper's
//! benchmark suite, under every protocol, with tracing enabled — zero
//! protocol violations. Plus deterministic positive/negative checks for
//! the happens-before race detector.

use cashmere_apps::{suite, Scale};
use cashmere_check::audit;
use cashmere_core::{Cluster, ClusterConfig, Engine, ProtocolKind, SyncSpec, Topology};
use cashmere_sim::ProcId;

/// The whole suite, all protocols, auditor on: the engine must uphold
/// every invariant on real workloads (locks, flags, barriers, exclusive
/// mode, first-touch homing, two-way diffs, shootdown — between them the
/// eight applications exercise all of it).
#[test]
fn application_suite_audits_clean_under_all_protocols() {
    for app in suite(Scale::Test) {
        for protocol in ProtocolKind::ALL {
            let mut cfg = ClusterConfig::new(Topology::new(2, 2), protocol).with_audit(true);
            app.configure(&mut cfg);
            let mut cluster = Cluster::new(cfg);
            app.execute(&mut cluster);
            let trace = cluster.take_trace();
            assert!(!trace.is_empty(), "{} emitted no events", app.name());
            let report = audit(&trace);
            assert!(
                report.is_clean(),
                "{} under {}:\n{}",
                app.name(),
                protocol.label(),
                report.summary()
            );
        }
    }
}

/// Lock-protected increments are data-race-free: the replay must find
/// happens-before edges covering every remote write.
#[test]
fn locked_increments_have_no_races() {
    for protocol in ProtocolKind::ALL {
        let cfg = ClusterConfig::new(Topology::new(2, 2), protocol)
            .with_heap_pages(4)
            .with_sync(SyncSpec {
                locks: 4,
                barriers: 2,
                flags: 2,
            })
            .with_audit(true);
        let mut cluster = Cluster::new(cfg);
        let a = cluster.alloc(4);
        cluster.run(|p| {
            for _ in 0..4 {
                p.lock(0);
                let v = p.read_u64(a);
                p.write_u64(a, v + 1);
                p.unlock(0);
            }
        });
        let report = audit(&cluster.take_trace());
        assert!(
            report.is_clean(),
            "{}:\n{}",
            protocol.label(),
            report.summary()
        );
        assert!(
            report.races.is_empty(),
            "{}: false race on a DRF program:\n{}",
            protocol.label(),
            report.summary()
        );
    }
}

/// A genuinely unsynchronized remote write/read pair must be reported as
/// a race (and as a race only — it is the program's bug, not the
/// engine's). Driven at the engine level so no hidden lock edge can
/// order the two accesses. A third node homes the page so the writer
/// takes the twin/diff path (home writes go straight to the master and
/// leave no flush epoch to race with).
#[test]
fn unsynchronized_remote_write_is_reported_as_a_race() {
    let cfg = ClusterConfig::new(Topology::new(3, 1), ProtocolKind::TwoLevel)
        .with_heap_pages(4)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        })
        .with_audit(true);
    let e = Engine::new(cfg);
    let mut home = e.make_ctx(ProcId(0));
    let mut w = e.make_ctx(ProcId(1));
    let mut r = e.make_ctx(ProcId(2));

    // Node 0 homes page 0 via first touch; nodes 1 and 2 both map it.
    e.write_word(&mut home, 0, 0);
    assert_eq!(e.read_word(&mut r, 0), 0);

    // Writer publishes word 0 = 7 with a release (twin + diff flush, then
    // a notice to the reader's node); reader acquires WITHOUT any lock
    // edge connecting it to the writer, then touches the word again after
    // its mapping was invalidated by the notice.
    e.write_word(&mut w, 0, 7);
    e.release_actions(&mut w);
    e.acquire_actions(&mut r);
    assert_eq!(e.read_word(&mut r, 0), 7);

    let report = audit(&e.recorder().unwrap().take());
    assert!(report.is_clean(), "{}", report.summary());
    assert!(
        report
            .races
            .iter()
            .any(|race| race.page == 0 && race.word == 0 && race.writer_node == 1),
        "expected a race on page 0 word 0:\n{}",
        report.summary()
    );
}

/// The audit switch must not change results: same checksums with and
/// without tracing (the recorder only observes).
#[test]
fn auditing_does_not_perturb_results() {
    for app in suite(Scale::Test) {
        if !app.deterministic() {
            continue;
        }
        let outcomes: Vec<u64> = [false, true]
            .into_iter()
            .map(|audit_on| {
                let mut cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
                    .with_audit(audit_on);
                app.configure(&mut cfg);
                let mut cluster = Cluster::new(cfg);
                app.execute(&mut cluster).checksum
            })
            .collect();
        assert_eq!(outcomes[0], outcomes[1], "{}", app.name());
    }
}
