//! Mutation self-test: the auditor must catch traces it is designed to
//! catch. A real trace is captured from a deterministic engine-driven
//! scenario (the undrained-notice exclusive-mode regression, which
//! exercises exclusive entry, twin/diff flushes, fetches, and the full
//! write-notice pipeline), verified clean, and then mutated in targeted
//! ways — each mutation must produce its specific violation kind.

use cashmere_check::{audit, ViolationKind};
use cashmere_core::{
    ClusterConfig, Engine, ProtocolEvent, ProtocolKind, SyncSpec, Topology, TraceEvent, PAGE_WORDS,
};
use cashmere_sim::ProcId;

/// Replays the undrained-write-notice scenario (see
/// `crates/core/tests/exclusive_residue.rs`) on an audited engine and
/// returns its trace: 3 nodes × 1 processor, superpage {0,1} homed at
/// node 0, exclusive entry and break on page 1, releases flushing diffs
/// and posting notices, and a refused exclusive re-entry.
fn base_trace() -> Vec<TraceEvent> {
    let mut cfg = ClusterConfig::new(Topology::new(3, 1), ProtocolKind::TwoLevel)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        })
        .with_audit(true);
    cfg.pages_per_superpage = 2;
    let e = Engine::new(cfg);
    let mut p0 = e.make_ctx(ProcId(0));
    let mut h = e.make_ctx(ProcId(1));
    let mut f = e.make_ctx(ProcId(2));

    let x = PAGE_WORDS;
    let y = PAGE_WORDS + 1;
    let z = PAGE_WORDS + 2;

    e.write_word(&mut p0, 0, 1);
    e.write_word(&mut h, y, 22); // exclusive entry
    e.write_word(&mut f, x, 1); // exclusive break
    e.release_actions(&mut f);
    e.acquire_actions(&mut h);
    e.write_word(&mut h, y, 23);
    e.release_actions(&mut h);
    e.write_word(&mut f, z, 3);
    e.release_actions(&mut f);
    e.acquire_actions(&mut f);
    e.write_word(&mut h, x + 3, 4); // refused exclusive re-entry
    e.release_actions(&mut h);
    e.release_actions(&mut p0);

    e.recorder().expect("audited engine has a recorder").take()
}

#[test]
fn base_trace_is_rich_and_clean() {
    let t = base_trace();
    // The scenario must exercise every event family the mutations target;
    // if the engine stops emitting one of these, the mutations below go
    // vacuous and this test says so first.
    let has = |f: &dyn Fn(&ProtocolEvent) -> bool| t.iter().any(|te| f(&te.ev));
    assert!(has(&|e| matches!(e, ProtocolEvent::ClockTick { .. })));
    assert!(has(
        &|e| matches!(e, ProtocolEvent::WnDrain { items, .. } if !items.is_empty())
    ));
    assert!(has(&|e| matches!(e, ProtocolEvent::ExclEnter { .. })));
    assert!(has(&|e| matches!(e, ProtocolEvent::ExclBreak { .. })));
    assert!(has(&|e| matches!(e, ProtocolEvent::DirWrite { .. })));
    assert!(has(&|e| matches!(e, ProtocolEvent::Fetch { .. })));
    assert!(has(&|e| matches!(e, ProtocolEvent::DiffOut { .. })));
    assert!(has(&|e| matches!(
        e,
        ProtocolEvent::Fault {
            dirtied: true,
            excl: false,
            ..
        }
    )));
    assert!(has(&|e| matches!(e, ProtocolEvent::ReleasePage { .. })));

    let r = audit(&t);
    assert!(
        r.is_clean(),
        "unmutated trace must audit clean:\n{}",
        r.summary()
    );
}

#[test]
fn duplicated_clock_tick_is_a_timestamp_collision() {
    let mut t = base_trace();
    let i = t
        .iter()
        .position(|te| matches!(te.ev, ProtocolEvent::ClockTick { .. }))
        .unwrap();
    let dup = t[i].clone();
    t.insert(i + 1, dup);
    let r = audit(&t);
    assert!(
        r.kinds().contains(&ViolationKind::TimestampCollision),
        "{}",
        r.summary()
    );
}

#[test]
fn fabricated_drain_item_is_caught() {
    let mut t = base_trace();
    let te = t
        .iter_mut()
        .find(|te| matches!(&te.ev, ProtocolEvent::WnDrain { items, .. } if !items.is_empty()))
        .unwrap();
    if let ProtocolEvent::WnDrain { items, .. } = &mut te.ev {
        // A notice from a node that never posted one.
        items.push((99, 1));
    }
    let r = audit(&t);
    assert!(
        r.kinds().contains(&ViolationKind::WnFabricated),
        "{}",
        r.summary()
    );
}

#[test]
fn duplicated_exclusive_entry_is_caught() {
    let mut t = base_trace();
    let i = t
        .iter()
        .position(|te| matches!(te.ev, ProtocolEvent::ExclEnter { .. }))
        .unwrap();
    let dup = t[i].clone();
    t.insert(i + 1, dup);
    let r = audit(&t);
    assert!(
        r.kinds().contains(&ViolationKind::DupExclusive),
        "{}",
        r.summary()
    );
}

#[test]
fn diff_applied_over_concurrent_writes_is_caught() {
    let mut t = base_trace();
    t.push(TraceEvent {
        seq: t.last().unwrap().seq + 1,
        ev: ProtocolEvent::DiffIn {
            pnode: 0,
            page: 1,
            conflicts: 1,
        },
    });
    let r = audit(&t);
    assert!(
        r.kinds().contains(&ViolationKind::DiffInConflict),
        "{}",
        r.summary()
    );
}

#[test]
fn dropped_release_flush_is_caught() {
    let mut t = base_trace();
    // Find a page some processor dirtied outside exclusive mode, then
    // erase every release record that accounts for it: the processor's
    // next ReleaseEnd is now lying about completeness.
    let (proc, page) = t
        .iter()
        .find_map(|te| match te.ev {
            ProtocolEvent::Fault {
                proc,
                page,
                dirtied: true,
                excl: false,
                ..
            } => Some((proc, page)),
            _ => None,
        })
        .unwrap();
    t.retain(|te| {
        !matches!(te.ev,
            ProtocolEvent::ReleasePage { proc: p, page: g, .. } if p == proc && g == page)
    });
    let r = audit(&t);
    assert!(
        r.kinds().contains(&ViolationKind::MissingReleaseFlush),
        "{}",
        r.summary()
    );
}

#[test]
fn exclusive_directory_word_without_write_perm_is_caught() {
    let mut t = base_trace();
    let te = t
        .iter_mut()
        .find(|te| matches!(te.ev, ProtocolEvent::DirWrite { .. }))
        .unwrap();
    if let ProtocolEvent::DirWrite {
        perm, exclusive, ..
    } = &mut te.ev
    {
        *exclusive = true;
        *perm = 1; // Read
    }
    let r = audit(&t);
    assert!(
        r.kinds().contains(&ViolationKind::DirPermInvariant),
        "{}",
        r.summary()
    );
}

#[test]
fn home_migration_after_first_fetch_is_caught() {
    let mut t = base_trace();
    let (i, page) = t
        .iter()
        .enumerate()
        .find_map(|(i, te)| match te.ev {
            ProtocolEvent::Fetch { page, .. } => Some((i, page)),
            _ => None,
        })
        .unwrap();
    let seq = t[i].seq;
    t.insert(
        i + 1,
        TraceEvent {
            seq,
            ev: ProtocolEvent::HomeWrite {
                pnode: 0,
                page,
                to: 2,
            },
        },
    );
    let r = audit(&t);
    assert!(
        r.kinds().contains(&ViolationKind::LateHomeMigration),
        "{}",
        r.summary()
    );
    assert!(
        r.kinds().contains(&ViolationKind::HomeMigrationOutsideLock),
        "{}",
        r.summary()
    );
}

/// The acceptance bar: across the mutation battery, at least three
/// *distinct* violation kinds are detected and correctly classified.
#[test]
fn mutations_cover_at_least_three_distinct_kinds() {
    let mut kinds = std::collections::HashSet::new();

    // Clock collision.
    let mut t = base_trace();
    let i = t
        .iter()
        .position(|te| matches!(te.ev, ProtocolEvent::ClockTick { .. }))
        .unwrap();
    let dup = t[i].clone();
    t.insert(i + 1, dup);
    kinds.extend(audit(&t).kinds());

    // Fabricated notice.
    let mut t = base_trace();
    if let Some(te) = t
        .iter_mut()
        .find(|te| matches!(&te.ev, ProtocolEvent::WnDrain { items, .. } if !items.is_empty()))
    {
        if let ProtocolEvent::WnDrain { items, .. } = &mut te.ev {
            items.push((99, 1));
        }
    }
    kinds.extend(audit(&t).kinds());

    // Duplicate exclusive holder.
    let mut t = base_trace();
    let i = t
        .iter()
        .position(|te| matches!(te.ev, ProtocolEvent::ExclEnter { .. }))
        .unwrap();
    let dup = t[i].clone();
    t.insert(i + 1, dup);
    kinds.extend(audit(&t).kinds());

    assert!(
        kinds.len() >= 3,
        "expected >= 3 distinct violation kinds, got {kinds:?}"
    );
}
