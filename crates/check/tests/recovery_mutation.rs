//! Recovery mutation self-test: an engine run under a certain-fire fault
//! plan must audit clean — every timeout recovered, every duplicate reply
//! suppressed — and targeted mutations of its trace (simulating a broken
//! recovery implementation) must each produce their specific violation.
//!
//! The headline mutation disables duplicate suppression: every reply the
//! engine suppressed (`FetchReply { dup: true }`) is rewritten as a fresh
//! apply, exactly the stream a build without the sequence check would emit.
//! The auditor must call that [`ViolationKind::DuplicateApplied`].

use cashmere_check::{audit, ViolationKind};
use cashmere_core::{
    ClusterConfig, Engine, FaultKind, FaultPlan, FaultRule, ProtocolEvent, ProtocolKind, SyncSpec,
    Topology, TraceEvent, PAGE_WORDS,
};
use cashmere_sim::ProcId;
use std::sync::Arc;

/// Certain-fire plan: every fetch request and break interrupt is lost until
/// the attempt cap, and every transfer (including fetch replies) is
/// duplicated. With probability 1.0 the hash draws are irrelevant, so the
/// single-threaded scenario below is fully deterministic.
fn hostile_plan() -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new(0xC0FFEE)
            .with_rule(FaultRule::new(FaultKind::LoseFetch, 1.0))
            .with_rule(FaultRule::new(FaultKind::LoseBreak, 1.0))
            .with_rule(FaultRule::new(FaultKind::DuplicateWrite, 1.0))
            .with_max_attempts(2),
    )
}

/// The exclusive-residue scenario from `mutation_selftest.rs`, run under
/// the hostile plan: remote fetches (timeouts + duplicated replies), an
/// exclusive entry and break (break timeouts), releases and notices.
fn faulty_trace() -> (Vec<TraceEvent>, u64) {
    let mut cfg = ClusterConfig::new(Topology::new(3, 1), ProtocolKind::TwoLevel)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        })
        .with_audit(true)
        .with_faults(hostile_plan());
    cfg.pages_per_superpage = 2;
    let e = Engine::new(cfg);
    let mut p0 = e.make_ctx(ProcId(0));
    let mut h = e.make_ctx(ProcId(1));
    let mut f = e.make_ctx(ProcId(2));

    let x = PAGE_WORDS;
    let y = PAGE_WORDS + 1;
    let z = PAGE_WORDS + 2;

    e.write_word(&mut p0, 0, 1);
    e.write_word(&mut h, y, 22); // exclusive entry
    e.write_word(&mut f, x, 1); // exclusive break
    e.release_actions(&mut f);
    e.acquire_actions(&mut h);
    e.write_word(&mut h, y, 23);
    e.release_actions(&mut h);
    e.write_word(&mut f, z, 3);
    e.release_actions(&mut f);
    e.acquire_actions(&mut f);
    e.write_word(&mut h, x + 3, 4); // refused exclusive re-entry
    e.release_actions(&mut h);
    e.release_actions(&mut p0);

    let recovered = e.recovery_summary().total();
    let trace = e.recorder().expect("audited engine has a recorder").take();
    (trace, recovered.total())
}

#[test]
fn faulty_run_recovers_and_audits_clean() {
    let (t, recovered) = faulty_trace();
    let has = |f: &dyn Fn(&ProtocolEvent) -> bool| t.iter().any(|te| f(&te.ev));
    // The plan must actually have bitten: lost fetches, duplicated
    // replies, and lost breaks all appear in the stream.
    assert!(has(&|e| matches!(e, ProtocolEvent::FetchTimeout { .. })));
    assert!(has(&|e| matches!(
        e,
        ProtocolEvent::FetchReply { dup: true, .. }
    )));
    assert!(has(&|e| matches!(e, ProtocolEvent::BreakTimeout { .. })));
    assert!(recovered > 0, "recovery counters must be nonzero");

    let r = audit(&t);
    assert!(
        r.is_clean(),
        "recovered faulty run must audit clean:\n{}",
        r.summary()
    );
}

#[test]
fn disabling_duplicate_suppression_is_caught() {
    let (mut t, _) = faulty_trace();
    // The mutation: what a build without the sequence check would emit —
    // every suppressed duplicate becomes a fresh apply.
    let mut flipped = 0;
    for te in &mut t {
        if let ProtocolEvent::FetchReply { dup, .. } = &mut te.ev {
            if *dup {
                *dup = false;
                flipped += 1;
            }
        }
    }
    assert!(flipped > 0, "scenario must contain suppressed duplicates");
    let r = audit(&t);
    assert!(
        r.kinds().contains(&ViolationKind::DuplicateApplied),
        "{}",
        r.summary()
    );
}

#[test]
fn losing_the_retried_fetch_is_caught() {
    let (mut t, _) = faulty_trace();
    // The mutation: a timed-out fetch whose retry never lands — erase the
    // (pnode, page)'s Fetch events after its first timeout.
    let (i, pnode, page) = t
        .iter()
        .enumerate()
        .find_map(|(i, te)| match te.ev {
            ProtocolEvent::FetchTimeout { pnode, page, .. } => Some((i, pnode, page)),
            _ => None,
        })
        .expect("scenario must contain a fetch timeout");
    let cut = t[i].seq;
    t.retain(|te| {
        te.seq <= cut
            || !matches!(te.ev,
                ProtocolEvent::Fetch { pnode: n, page: g } if n == pnode && g == page)
    });
    let r = audit(&t);
    assert!(
        r.kinds().contains(&ViolationKind::UnrecoveredTimeout),
        "{}",
        r.summary()
    );
}
