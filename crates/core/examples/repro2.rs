use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, SyncSpec, Topology, PAGE_WORDS};

fn one(iter: usize) -> bool {
    let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 4,
            flags: 0,
        });
    let mut c = Cluster::new(cfg);
    let ctl = c.alloc_page_aligned(8);
    let n = 64usize;
    let data = c.alloc_page_aligned(PAGE_WORDS);
    let errs = c.alloc_page_aligned(64);
    let rounds = 6usize;
    c.run(|p| {
        let me = p.id();
        for r in 1..=rounds {
            if me == 0 {
                p.write_u64(ctl, 0);
            }
            p.barrier(0);
            loop {
                p.lock(0);
                let s = p.read_u64(ctl) as usize;
                let e = (s + 4).min(n);
                p.write_u64(ctl, e as u64);
                p.unlock(0);
                if s >= n {
                    break;
                }
                for i in s..e {
                    p.write_u64(data + i, (r * 1000 + i) as u64);
                }
            }
            p.barrier(1);
            // chunked verification
            let lo = me * (n / 4);
            for i in lo..lo + n / 4 {
                let v = p.read_u64(data + i);
                if v != (r * 1000 + i) as u64 {
                    let old = p.read_u64(errs + me * 8);
                    p.write_u64(errs + me * 8, old + 1);
                    eprintln!(
                        "iter? proc {me} round {r} idx {i}: got {v} want {}",
                        r * 1000 + i
                    );
                }
            }
            p.barrier(2);
        }
    });
    let total: u64 = (0..4).map(|i| c.read_u64(errs + i * 8)).sum();
    if total > 0 {
        eprintln!("== iteration {iter}: {total} errors ==");
        for l in cashmere_core::engine::dump_trace() {
            eprintln!("{l}");
        }
        return false;
    }
    let _ = cashmere_core::engine::dump_trace();
    true
}

fn main() {
    for it in 0..400 {
        if !one(it) {
            std::process::exit(1);
        }
    }
    println!("all ok");
}
