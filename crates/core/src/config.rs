//! Run configuration: protocol selection, topology, heap, ablation switches.

use std::sync::Arc;

use cashmere_faults::FaultPlan;
use cashmere_sim::{Backend, CostModel, Nanos, NodeMap, Topology};

/// Which coherence protocol to run (§2.2, §2.6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Cashmere-2L: two-level, two-way diffing (the paper's contribution).
    TwoLevel,
    /// Cashmere-2LS: two-level, TLB-shootdown-style reconciliation.
    TwoLevelShootdown,
    /// Cashmere-1LD: one protocol node per processor, twins + outgoing diffs.
    OneLevelDiff,
    /// Cashmere-1L: one protocol node per processor, in-line write doubling.
    OneLevelWrite,
    /// 1LD with the home-node optimization: processors on a page's home
    /// *physical* node operate directly on the master copy.
    OneLevelDiffHome,
    /// 1L with the home-node optimization.
    OneLevelWriteHome,
}

impl ProtocolKind {
    /// All six variants, in the paper's presentation order.
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::TwoLevel,
        ProtocolKind::TwoLevelShootdown,
        ProtocolKind::OneLevelDiff,
        ProtocolKind::OneLevelWrite,
        ProtocolKind::OneLevelDiffHome,
        ProtocolKind::OneLevelWriteHome,
    ];

    /// The four protocols of Figures 6–7 and Table 3.
    pub const PAPER_FOUR: [ProtocolKind; 4] = [
        ProtocolKind::TwoLevel,
        ProtocolKind::TwoLevelShootdown,
        ProtocolKind::OneLevelDiff,
        ProtocolKind::OneLevelWrite,
    ];

    /// Protocol-node mapping: the two-level protocols treat a physical node
    /// as one protocol node; the one-level protocols treat every processor
    /// as a separate node.
    pub fn node_map(self) -> NodeMap {
        match self {
            ProtocolKind::TwoLevel | ProtocolKind::TwoLevelShootdown => NodeMap::Physical,
            _ => NodeMap::PerProcessor,
        }
    }

    /// Whether this is one of the two-level protocols.
    pub fn is_two_level(self) -> bool {
        matches!(
            self,
            ProtocolKind::TwoLevel | ProtocolKind::TwoLevelShootdown
        )
    }

    /// Whether intra-node reconciliation uses shootdown (2LS) rather than
    /// two-way diffing (2L). Irrelevant for the one-level protocols, whose
    /// protocol nodes have a single processor.
    pub fn uses_shootdown(self) -> bool {
        matches!(self, ProtocolKind::TwoLevelShootdown)
    }

    /// Whether stores are written through to the home copy in-line (the 1L
    /// write-doubling protocols) instead of collected with twins and diffs.
    pub fn write_through(self) -> bool {
        matches!(
            self,
            ProtocolKind::OneLevelWrite | ProtocolKind::OneLevelWriteHome
        )
    }

    /// Whether the one-level home-node optimization is enabled: every
    /// processor on the home *physical* node works directly on the master
    /// copy. (Inherent in the two-level protocols.)
    pub fn home_node_opt(self) -> bool {
        matches!(
            self,
            ProtocolKind::TwoLevel
                | ProtocolKind::TwoLevelShootdown
                | ProtocolKind::OneLevelDiffHome
                | ProtocolKind::OneLevelWriteHome
        )
    }

    /// Short display label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::TwoLevel => "2L",
            ProtocolKind::TwoLevelShootdown => "2LS",
            ProtocolKind::OneLevelDiff => "1LD",
            ProtocolKind::OneLevelWrite => "1L",
            ProtocolKind::OneLevelDiffHome => "1LD+H",
            ProtocolKind::OneLevelWriteHome => "1L+H",
        }
    }

    /// Parses a [`Self::label`] back to the protocol (used by report
    /// deserialization).
    pub fn from_label(s: &str) -> Option<Self> {
        ProtocolKind::ALL.into_iter().find(|p| p.label() == s)
    }
}

/// Named sizing of the application synchronization pools, taken by
/// [`ClusterConfig::with_sync`]. Replaces the old positional
/// `(locks, barriers, flags)` triple, whose call sites were unreadable and
/// transposition-prone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncSpec {
    /// Number of application locks.
    pub locks: usize,
    /// Number of application barriers.
    pub barriers: usize,
    /// Number of application flags.
    pub flags: usize,
}

impl Default for SyncSpec {
    /// The same pools [`ClusterConfig::new`] starts with: 64 locks, 8
    /// barriers, no flags.
    fn default() -> Self {
        Self {
            locks: 64,
            barriers: 8,
            flags: 0,
        }
    }
}

/// How the global directory and remote write-notice lists are protected
/// (§3.3.5). `LockFree` is Cashmere-2L's per-node-word design; `GlobalLock`
/// is the ablation that compresses each entry and serializes access with a
/// cluster-wide lock; `Sparse` is the beyond-the-paper scaling design
/// (DESIGN.md §12) that shards entries across home nodes instead of
/// replicating them everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryMode {
    /// One word per node per entry, replicated on every node; no locks (the
    /// paper's design). O(pages × nodes) memory per node and a per-replica
    /// broadcast per update.
    #[default]
    LockFree,
    /// Compressed entries protected by global locks (the ablation).
    GlobalLock,
    /// Home-sharded entries: each page's directory entry lives only on its
    /// home shard (`page % nodes`), readers consult the shard through a
    /// per-node cache guarded by an invalidation-on-change word, and updates
    /// are O(1) messages instead of an O(nodes) broadcast (DESIGN.md §12).
    /// O(pages) total directory memory. Lock-free like the paper's design.
    Sparse,
}

impl DirectoryMode {
    /// How many physical nodes the replicated (paper) directory comfortably
    /// serves. Beyond this, its O(pages × nodes) memory and O(nodes)
    /// broadcast per update dominate (DESIGN.md §12).
    pub const REPLICATED_NODE_LIMIT: usize = 8;

    /// The default directory for `topology`: the paper's replicated
    /// lock-free directory up to the paper's largest cluster (8 nodes), the
    /// home-sharded [`DirectoryMode::Sparse`] directory beyond it. Keyed on
    /// *physical* nodes — the directory is a per-node structure, and at the
    /// paper's 8×4 the one-level protocols already run 32 protocol nodes on
    /// 8 physical ones — so every paper configuration keeps the paper's
    /// directory under every protocol, and only the scaling-ladder shapes
    /// (16 nodes and up) flip to Sparse.
    pub fn default_for(topology: &Topology) -> Self {
        if topology.nodes() > Self::REPLICATED_NODE_LIMIT {
            DirectoryMode::Sparse
        } else {
            DirectoryMode::LockFree
        }
    }
}

/// Virtual-time timeout/backoff policy for lost protocol requests (page
/// fetches, exclusive-mode break interrupts). Timeouts double per attempt
/// from [`RecoveryPolicy::base_timeout`] up to [`RecoveryPolicy::backoff_cap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Timeout charged for the first lost attempt, in virtual nanoseconds.
    pub base_timeout: Nanos,
    /// Upper bound on the per-attempt timeout (caps the exponential).
    pub backoff_cap: Nanos,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        // ~60 µs base: comfortably above the round-trip a healthy fetch
        // takes under the default cost model, so a timeout only fires for
        // genuinely lost requests; capped at 16× to keep deep retry chains
        // from dominating virtual time.
        Self {
            base_timeout: 60_000,
            backoff_cap: 960_000,
        }
    }
}

impl RecoveryPolicy {
    /// The timeout charged before retrying after the `attempt`-th loss
    /// (attempts count from 1): `base_timeout << (attempt-1)`, capped.
    #[must_use]
    pub fn timeout(&self, attempt: u32) -> Nanos {
        let shift = attempt.saturating_sub(1).min(63);
        // `checked_mul`, not `checked_shl`: a shift only fails for counts
        // >= 64, silently discarding overflowed bits otherwise.
        self.base_timeout
            .checked_mul(1u64 << shift)
            .unwrap_or(self.backoff_cap)
            .min(self.backoff_cap)
    }
}

/// Complete configuration for one simulated run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Physical cluster shape.
    pub topology: Topology,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// Directory/write-notice locking discipline.
    pub directory: DirectoryMode,
    /// Size of the shared heap in 8 KB pages.
    pub heap_pages: usize,
    /// Pages per superpage (home-assignment granularity, §2.3
    /// "Superpages"). All pages of a superpage share a home node. The paper
    /// needed multi-page superpages only because of Memory Channel kernel
    /// table limits; at this reproduction's scaled-down problem sizes a
    /// multi-page granularity would misplace a large fraction of each
    /// processor's data (the paper's per-band data is hundreds of pages),
    /// so the default is per-page first-touch homing.
    pub pages_per_superpage: usize,
    /// Whether the first-touch home relocation heuristic runs (§2.3, "Home
    /// node selection"). When off, homes stay round-robin.
    pub first_touch: bool,
    /// Number of application locks.
    pub locks: usize,
    /// Number of application barriers.
    pub barriers: usize,
    /// Number of application flags.
    pub flags: usize,
    /// Interconnect backend the engine builds its transport from
    /// (DESIGN.md §14). The default, [`Backend::MemoryChannel`], is the
    /// paper's network; switching it swaps both the cost model and the
    /// page-fetch protocol shape. Set via [`Self::with_transport`], which
    /// also installs the backend's cost model into [`Self::cost`].
    pub backend: Backend,
    /// Virtual-time cost model.
    pub cost: CostModel,
    /// Fraction of user/compute time added as polling overhead (the paper's
    /// per-application 0–36% loop-instrumentation cost). Ignored when the
    /// cost model selects interrupt-based messaging.
    pub poll_fraction: f64,
    /// Memory-bus bytes charged per shared access, modeling cache-capacity
    /// traffic through the node's shared bus (what makes SOR and Gauss
    /// cluster badly). Applications may override per-phase via
    /// [`crate::Proc::set_bus_bytes_per_access`].
    pub bus_bytes_per_access: u64,
    /// Record a [`crate::trace::ProtocolEvent`] stream for the
    /// `cashmere-check` invariant auditor. Off by default; when off the
    /// protocol hot path pays only an `Option` discriminant test per
    /// potential emission.
    pub audit: bool,
    /// Record observability data (spans, metrics, Figure-7 breakdown; see
    /// `cashmere-obs`). Off by default; when off every hook site pays one
    /// `Option` discriminant test and nothing allocates. Unlike `audit`,
    /// enabling this is also *charge-free*: observability only reads
    /// clocks, so virtual times are byte-identical either way.
    pub obs: bool,
    /// Deterministic fault-injection plan (see `cashmere-faults`). `None`
    /// (the default) and an empty plan are both virtual-time-neutral: the
    /// run is byte-identical to one with no fault machinery at all.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Timeout/backoff policy for recovering lost requests.
    pub recovery: RecoveryPolicy,
    /// Deterministic parallel execution inside the run (DESIGN.md §15):
    /// `Some(w)` runs the simulated processors under the conservative
    /// virtual-time scheduler with at most `w` concurrently running host
    /// threads. `None` (the default) keeps the free-running path; the
    /// `CASHMERE_PROC_WORKERS` environment variable can then opt a run in
    /// at [`crate::Cluster::run`] time. The [`crate::Report`] of a
    /// deterministic run is byte-identical at any worker count.
    pub det_workers: Option<usize>,
    /// Lookahead window quantum for the deterministic scheduler, in
    /// virtual nanoseconds.
    pub det_quantum_ns: Nanos,
}

/// Default lookahead window quantum: coarse enough that a window spans many
/// operations of every paper app, fine enough to keep processors' virtual
/// times loosely synchronized at protocol boundaries.
pub const DET_QUANTUM_DEFAULT: Nanos = 50_000;

impl ClusterConfig {
    /// A small default configuration: the paper's full 8×4 cluster, the 2L
    /// protocol, and a 64-page heap.
    pub fn new(topology: Topology, protocol: ProtocolKind) -> Self {
        Self {
            directory: DirectoryMode::default_for(&topology),
            topology,
            protocol,
            heap_pages: 64,
            pages_per_superpage: 1,
            first_touch: true,
            locks: 64,
            barriers: 8,
            flags: 0,
            backend: Backend::default(),
            cost: CostModel::default(),
            poll_fraction: 0.05,
            bus_bytes_per_access: 2,
            audit: false,
            obs: false,
            fault_plan: None,
            recovery: RecoveryPolicy::default(),
            det_workers: None,
            det_quantum_ns: DET_QUANTUM_DEFAULT,
        }
    }

    /// Builder-style deterministic-parallelism opt-in: run the simulated
    /// processors under the conservative virtual-time scheduler with at
    /// most `workers` concurrently running host threads (DESIGN.md §15).
    pub fn with_det_parallel(mut self, workers: usize) -> Self {
        self.det_workers = Some(workers.max(1));
        self
    }

    /// Builder-style lookahead-quantum override for the deterministic
    /// scheduler.
    pub fn with_det_quantum(mut self, quantum_ns: Nanos) -> Self {
        self.det_quantum_ns = quantum_ns.max(1);
        self
    }

    /// Builder-style interconnect selection: installs `backend` and its
    /// cost model ([`Backend::cost_model`]). Callers that want a custom
    /// cost model on a non-default backend should override [`Self::cost`]
    /// *after* this call. `with_transport(Backend::MemoryChannel)` is a
    /// no-op relative to [`Self::new`].
    pub fn with_transport(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self.cost = backend.cost_model();
        self
    }

    /// Builder-style protocol-event tracing toggle (the invariant auditor).
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Builder-style observability toggle (spans + metrics registry).
    pub fn with_obs(mut self, on: bool) -> Self {
        self.obs = on;
        self
    }

    /// Builder-style fault-plan installation. The plan is shared with the
    /// Memory Channel and the engine's recovery paths.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style recovery-policy override.
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Builder-style heap size override.
    pub fn with_heap_pages(mut self, pages: usize) -> Self {
        self.heap_pages = pages;
        self
    }

    /// Builder-style lock/barrier/flag pool sizing.
    pub fn with_sync(mut self, sync: SyncSpec) -> Self {
        self.locks = sync.locks;
        self.barriers = sync.barriers;
        self.flags = sync.flags;
        self
    }

    /// Number of protocol nodes under this configuration's protocol.
    pub fn protocol_nodes(&self) -> usize {
        self.protocol.node_map().protocol_nodes(&self.topology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_default_is_replicated_up_to_the_papers_largest_cluster() {
        // Every paper configuration (Figure 7 tops out at 8×4) keeps the
        // paper's replicated lock-free directory — including under the
        // one-level protocols, whose 32 protocol nodes still live on 8
        // physical nodes.
        for (nodes, per) in [(1, 1), (2, 2), (4, 4), (8, 1), (8, 4)] {
            let t = Topology::new(nodes, per);
            assert_eq!(DirectoryMode::default_for(&t), DirectoryMode::LockFree);
            let cfg = ClusterConfig::new(t, ProtocolKind::OneLevelDiff);
            assert_eq!(cfg.directory, DirectoryMode::LockFree);
        }
        // The scaling-ladder shapes flip to the home-sharded directory.
        for (nodes, per) in [(16, 8), (32, 8), (64, 16)] {
            let t = Topology::new(nodes, per);
            assert_eq!(DirectoryMode::default_for(&t), DirectoryMode::Sparse);
            let cfg = ClusterConfig::new(t, ProtocolKind::TwoLevel);
            assert_eq!(cfg.directory, DirectoryMode::Sparse);
        }
    }

    #[test]
    fn transport_defaults_to_the_papers_network() {
        let cfg = ClusterConfig::new(Topology::new(8, 4), ProtocolKind::TwoLevel);
        assert_eq!(cfg.backend, Backend::MemoryChannel);
        // with_transport(MemoryChannel) must be a no-op relative to new():
        // goldens depend on it.
        let same = cfg.clone().with_transport(Backend::MemoryChannel);
        assert_eq!(same.backend, cfg.backend);
        assert_eq!(same.cost.mc_write_latency, cfg.cost.mc_write_latency);
        // Picking a modern fabric swaps the whole cost model in one move.
        let rdma = cfg.with_transport(Backend::Rdma);
        assert_eq!(rdma.backend, Backend::Rdma);
        assert_eq!(
            rdma.cost.remote_read_latency,
            Backend::Rdma.cost_model().remote_read_latency
        );
    }

    #[test]
    fn protocol_kind_properties() {
        use ProtocolKind::*;
        assert!(TwoLevel.is_two_level() && TwoLevelShootdown.is_two_level());
        assert!(!OneLevelDiff.is_two_level());
        assert!(TwoLevelShootdown.uses_shootdown());
        assert!(!TwoLevel.uses_shootdown());
        assert!(OneLevelWrite.write_through() && OneLevelWriteHome.write_through());
        assert!(!OneLevelDiff.write_through());
        assert!(TwoLevel.home_node_opt(), "inherent in the two-level design");
        assert!(OneLevelDiffHome.home_node_opt());
        assert!(!OneLevelDiff.home_node_opt());
    }

    #[test]
    fn protocol_node_counts() {
        let topo = Topology::new(8, 4);
        let two = ClusterConfig::new(topo, ProtocolKind::TwoLevel);
        assert_eq!(two.protocol_nodes(), 8);
        let one = ClusterConfig::new(topo, ProtocolKind::OneLevelDiff);
        assert_eq!(one.protocol_nodes(), 32);
    }

    #[test]
    fn recovery_timeouts_back_off_exponentially_and_cap() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.timeout(1), 60_000);
        assert_eq!(p.timeout(2), 120_000);
        assert_eq!(p.timeout(3), 240_000);
        assert_eq!(p.timeout(5), 960_000, "hits the cap at 16x");
        assert_eq!(p.timeout(6), 960_000, "stays capped");
        assert_eq!(p.timeout(200), 960_000, "no overflow at silly attempts");
    }

    #[test]
    fn with_faults_installs_a_shared_plan() {
        let plan = Arc::new(FaultPlan::new(7));
        let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
            .with_faults(Arc::clone(&plan));
        assert_eq!(cfg.fault_plan.as_ref().unwrap().seed(), 7);
        let cfg2 = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
        assert!(cfg2.fault_plan.is_none(), "default is fault-free");
    }

    #[test]
    fn sync_spec_defaults_match_config_defaults() {
        let spec = SyncSpec::default();
        let base = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
        assert_eq!(
            (spec.locks, spec.barriers, spec.flags),
            (base.locks, base.barriers, base.flags),
            "with_sync(SyncSpec::default()) must be a no-op"
        );
        let cfg = base.clone().with_sync(SyncSpec {
            locks: 3,
            barriers: 1,
            flags: 2,
        });
        assert_eq!((cfg.locks, cfg.barriers, cfg.flags), (3, 1, 2));
    }

    #[test]
    fn obs_defaults_off_and_toggles() {
        let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
        assert!(!cfg.obs, "observability must be opt-in");
        assert!(cfg.with_obs(true).obs);
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for p in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_label(p.label()), Some(p));
        }
        assert_eq!(ProtocolKind::from_label("bogus"), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ProtocolKind::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), ProtocolKind::ALL.len());
    }
}
