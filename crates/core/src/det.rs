//! Deterministic parallel execution inside a run (DESIGN.md §15).
//!
//! A conservative virtual-time scheduler: simulated processors run
//! concurrently on up to `workers` host threads, but only through *local*
//! segments (compute, non-faulting mapped accesses), and only up to the
//! shared lookahead horizon ([`HorizonClock`]). Everything that touches
//! shared protocol state — page faults, bus/link settles, release/acquire
//! actions, lock/barrier/flag carriers — is a **gate**: the processor parks
//! and the gate body executes only when every peer is parked, one gate at a
//! time, in ascending `(virtual time, proc id, per-proc seq)` order.
//!
//! Determinism argument (the full version is DESIGN.md §15): every
//! scheduling decision — which gate runs next, where the next window ends,
//! which processors it releases — is a pure function of the multiset of
//! parked states, never of host timing or the worker count. Shared protocol
//! state is mutated only inside gates, and gates run only when no processor
//! is free-running, so the frozen-state a free-running segment reads is the
//! same under any host interleaving. The worker bound changes only *when*
//! released processors run their (purely local) segments, not what those
//! segments compute. Hence the same config + seed produces byte-identical
//! [`Report`](crate::Report)s at any worker count — gated by
//! `scripts/detpar.sh`.
//!
//! The scheduler is a monitor: one mutex + condvar for parked-state
//! bookkeeping, plus the lock-free [`HorizonClock`] fast path consulted at
//! every operation entry ([`DetHandle::checkpoint`]). Horizon-parked
//! processors sleep through the `HorizonClock` wakeup protocol (the
//! model-checked piece — see `model_scenarios::lookahead_wakeup`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cashmere_sim::{HorizonClock, Nanos};
use parking_lot::{Condvar, Mutex};

/// What a blocked processor is waiting on, keyed by carrier pool index.
/// `unblock_all` with the same key re-arms every matching waiter as a
/// pending gate at its original virtual time (with a fresh seq, so re-tries
/// order deterministically after first arrivals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKey {
    /// Waiting for `CarrierLock` *index* to be released.
    Lock(usize),
    /// Waiting for the current episode of `CarrierBarrier` *index*.
    Barrier(usize),
    /// Waiting for `CarrierFlag` *index* to be set.
    Flag(usize),
}

/// Per-processor scheduler state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    /// Released: free-running a local segment (or executing its gate, if
    /// `granted` names it).
    Running,
    /// Parked at an operation entry at this virtual time (horizon reached,
    /// or re-parked after a gate) — runnable local work pending.
    Parked(Nanos),
    /// Parked at a gate entry: `(vt, seq)`; runs when granted.
    AtGate(Nanos, u64),
    /// Blocked inside a gate on a carrier; re-armed by `unblock_all`.
    Blocked(Nanos, WaitKey),
    /// Ran to completion.
    Finished,
}

#[derive(Debug)]
struct DetState {
    procs: Vec<PState>,
    /// Per-proc gate sequence numbers (third tie-break component).
    seq: Vec<u64>,
    /// Released processors that have not parked again (includes the granted
    /// one). All scheduling decisions happen at `runners == 0`.
    runners: usize,
    /// The processor currently granted exclusive gate execution.
    granted: Option<usize>,
    /// Window-eligible processors awaiting a free worker slot, in
    /// deterministic `(vt, id)` order.
    release_queue: VecDeque<usize>,
    finished: usize,
}

/// The conservative virtual-time scheduler for one run.
pub struct DetScheduler {
    state: Mutex<DetState>,
    /// Wakes stage-2 waits: admission grants and gate grants.
    cv: Condvar,
    /// Sleep channel for horizon-parked processors (stage 1). Separate from
    /// `state` so sleepers hold no scheduler state while parked.
    sleep: Mutex<()>,
    sleep_cv: Condvar,
    horizon: HorizonClock,
    nprocs: usize,
    workers: usize,
    /// Set when the coordinator detects a deadlock; every waiter converts
    /// its wait into a panic so the run aborts instead of hanging.
    aborted: AtomicBool,
}

impl DetScheduler {
    /// A scheduler for `nprocs` processors multiplexed onto at most
    /// `workers` concurrently running host threads, with windows of
    /// `quantum_ns` virtual nanoseconds.
    #[must_use]
    pub fn new(nprocs: usize, workers: usize, quantum_ns: Nanos) -> Self {
        Self {
            state: Mutex::new(DetState {
                procs: vec![PState::Running; nprocs],
                seq: vec![0; nprocs],
                runners: nprocs,
                granted: None,
                release_queue: VecDeque::new(),
                finished: 0,
            }),
            cv: Condvar::new(),
            sleep: Mutex::new(()),
            sleep_cv: Condvar::new(),
            horizon: HorizonClock::new(quantum_ns),
            nprocs,
            workers: workers.max(1),
            aborted: AtomicBool::new(false),
        }
    }

    /// The worker bound.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A per-processor handle for embedding in the engine's `ProcCtx`.
    #[must_use]
    pub fn handle(self: &Arc<Self>, id: usize) -> DetHandle {
        DetHandle {
            sched: Arc::clone(self),
            id,
        }
    }

    /// The per-op fast path: one atomic horizon load (see the hotpath rows).
    #[inline]
    fn must_park(&self, vt: Nanos) -> bool {
        self.horizon.past(vt)
    }

    /// Parks `me` at an operation entry and blocks until readmitted.
    fn park(&self, me: usize, vt: Nanos) {
        let mut st = self.state.lock();
        debug_assert_ne!(st.granted, Some(me), "park inside a gate body");
        st.procs[me] = PState::Parked(vt);
        self.retire_runner(&mut st);
        drop(st);
        self.wait_released(me, vt);
    }

    /// Parks `me` as a pending gate and blocks until the coordinator grants
    /// it exclusive execution.
    fn gate_enter(&self, me: usize, vt: Nanos) {
        let mut st = self.state.lock();
        debug_assert_ne!(st.granted, Some(me), "nested gate");
        st.seq[me] += 1;
        st.procs[me] = PState::AtGate(vt, st.seq[me]);
        self.retire_runner(&mut st);
        self.wait_granted(me, &mut st);
    }

    /// Ends `me`'s gate: re-parks at the (possibly advanced) virtual time
    /// and blocks until readmitted to a window.
    fn gate_exit(&self, me: usize, vt: Nanos) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.granted, Some(me), "gate_exit outside a gate");
        st.granted = None;
        st.procs[me] = PState::Parked(vt);
        self.retire_runner(&mut st);
        drop(st);
        self.wait_released(me, vt);
    }

    /// From inside `me`'s gate: gives up the grant, blocks on `key`, and
    /// returns once re-granted (after some peer's gate called
    /// [`unblock_all`](Self::unblock_all) and the coordinator re-selected
    /// `me`). The caller loops: re-check the carrier, block again if still
    /// unavailable.
    fn gate_block(&self, me: usize, vt: Nanos, key: WaitKey) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.granted, Some(me), "gate_block outside a gate");
        st.granted = None;
        st.procs[me] = PState::Blocked(vt, key);
        self.retire_runner(&mut st);
        self.wait_granted(me, &mut st);
    }

    /// From inside a gate: re-arms every processor blocked on `key` as a
    /// pending gate at its original virtual time with a fresh seq. The
    /// grants happen later, one at a time, once the unblocker's gate ends.
    fn unblock_all(&self, key: WaitKey) {
        let mut st = self.state.lock();
        debug_assert!(st.granted.is_some(), "unblock_all outside a gate");
        for p in 0..self.nprocs {
            if let PState::Blocked(vt, k) = st.procs[p] {
                if k == key {
                    st.seq[p] += 1;
                    st.procs[p] = PState::AtGate(vt, st.seq[p]);
                }
            }
        }
    }

    /// Marks `me` finished and hands its slot on.
    fn finish(&self, me: usize) {
        let mut st = self.state.lock();
        debug_assert_ne!(st.granted, Some(me), "finish inside a gate body");
        st.procs[me] = PState::Finished;
        st.finished += 1;
        self.retire_runner(&mut st);
    }

    /// One released processor has parked (in whatever state the caller just
    /// recorded): refill its worker slot from the release queue, and run the
    /// coordinator if it was the last runner.
    fn retire_runner(&self, st: &mut DetState) {
        st.runners -= 1;
        while st.runners < self.workers {
            let Some(p) = st.release_queue.pop_front() else {
                break;
            };
            st.procs[p] = PState::Running;
            st.runners += 1;
            self.cv.notify_all();
        }
        if st.runners == 0 {
            self.coordinate(st);
        }
    }

    /// The scheduling decision point, reached only when every processor is
    /// parked. Everything here is a pure function of the parked multiset.
    fn coordinate(&self, st: &mut DetState) {
        debug_assert_eq!(st.runners, 0);
        debug_assert!(st.granted.is_none());
        debug_assert!(st.release_queue.is_empty());

        // 1. Drain pending gates, earliest (vt, id, seq) first.
        let next_gate = (0..self.nprocs)
            .filter_map(|p| match st.procs[p] {
                PState::AtGate(vt, seq) => Some((vt, p, seq)),
                _ => None,
            })
            .min();
        if let Some((_, p, _)) = next_gate {
            st.granted = Some(p);
            st.procs[p] = PState::Running;
            st.runners = 1;
            self.cv.notify_all();
            return;
        }

        // 2. No gates pending: open the next window over the parked set.
        let mut parked: Vec<(Nanos, usize)> = (0..self.nprocs)
            .filter_map(|p| match st.procs[p] {
                PState::Parked(vt) => Some((vt, p)),
                _ => None,
            })
            .collect();
        if parked.is_empty() {
            if st.finished == self.nprocs {
                self.cv.notify_all();
                return;
            }
            self.abort_deadlocked(st);
        }
        parked.sort_unstable();
        let min_vt = parked[0].0;
        let mut advanced = false;
        if self.horizon.past(min_vt) {
            self.horizon.advance_past(min_vt);
            advanced = true;
        }
        let end = self.horizon.end();
        for &(vt, p) in &parked {
            if vt >= end {
                // Beyond the window: stays parked for a later one.
                continue;
            }
            if st.runners < self.workers {
                st.procs[p] = PState::Running;
                st.runners += 1;
            } else {
                st.release_queue.push_back(p);
            }
        }
        debug_assert!(st.runners > 0, "window covers no parked processor");
        if advanced {
            // Wake stage-1 sleepers under the sleep lock (the HorizonClock
            // epoch already changed, so late sleepers re-check and return).
            let _g = self.sleep.lock();
            self.sleep_cv.notify_all();
        }
        self.cv.notify_all();
    }

    /// Blocks `me` until it is released into a window: first until the
    /// horizon passes its parked vt (stage 1, the lock-free wakeup
    /// protocol), then until the coordinator admits it (stage 2).
    fn wait_released(&self, me: usize, vt: Nanos) {
        self.horizon.wait_past(vt, |seen| {
            let mut g = self.sleep.lock();
            while self.horizon.sleep_epoch() == seen {
                self.check_abort();
                self.sleep_cv.wait(&mut g);
            }
        });
        let mut st = self.state.lock();
        while st.procs[me] != PState::Running {
            self.check_abort();
            self.cv.wait(&mut st);
        }
    }

    /// Blocks `me` (already recorded AtGate/Blocked, lock held) until the
    /// coordinator grants it the gate.
    fn wait_granted(&self, me: usize, st: &mut parking_lot::MutexGuard<'_, DetState>) {
        while st.granted != Some(me) {
            self.check_abort();
            self.cv.wait(st);
        }
        debug_assert_eq!(st.procs[me], PState::Running);
    }

    fn check_abort(&self) {
        assert!(
            !self.aborted.load(Ordering::SeqCst),
            "deterministic scheduler aborted (deadlock detected by the coordinator)"
        );
    }

    /// No gate pending, nobody parked, not everyone finished: the remaining
    /// processors are blocked on carriers nobody will ever signal. Wake
    /// every waiter into a panic (instead of hanging the run) and report
    /// who waits on what.
    fn abort_deadlocked(&self, st: &DetState) -> ! {
        self.aborted.store(true, Ordering::SeqCst);
        {
            let _g = self.sleep.lock();
            self.sleep_cv.notify_all();
        }
        self.cv.notify_all();
        let waiters: Vec<String> = (0..self.nprocs)
            .filter_map(|p| match st.procs[p] {
                PState::Blocked(vt, key) => Some(format!("proc {p} blocked on {key:?} at vt {vt}")),
                _ => None,
            })
            .collect();
        panic!(
            "deterministic scheduler deadlock: no runnable processor \
             ({}/{} finished; {})",
            st.finished,
            self.nprocs,
            waiters.join(", ")
        );
    }

    // -- microbench probes (charge-free host machinery; see `hotpath`) ----

    /// The checkpoint fast path, exposed for the hotpath rows.
    #[doc(hidden)]
    #[must_use]
    pub fn bench_horizon_check(&self, vt: Nanos) -> bool {
        self.must_park(vt)
    }

    /// The coordinator's grant selection over the current parked multiset,
    /// exposed for the hotpath rows. Scans like `coordinate` step 1 but
    /// changes nothing.
    #[doc(hidden)]
    #[must_use]
    pub fn bench_grant_scan(&self) -> Option<usize> {
        let st = self.state.lock();
        (0..self.nprocs)
            .filter_map(|p| match st.procs[p] {
                PState::AtGate(vt, seq) => Some((vt, p, seq)),
                _ => None,
            })
            .min()
            .map(|(_, p, _)| p)
    }

    /// Seeds proc `p` as a pending gate at `(vt, seq)` for
    /// [`bench_grant_scan`](Self::bench_grant_scan). Bench-only: bypasses
    /// the runner accounting.
    #[doc(hidden)]
    pub fn bench_seed_gate(&self, p: usize, vt: Nanos, seq: u64) {
        let mut st = self.state.lock();
        st.procs[p] = PState::AtGate(vt, seq);
    }
}

/// A per-processor handle on the shared scheduler, embedded in the engine's
/// `ProcCtx` (absent in the default free-running mode, so the off path costs
/// one `Option` discriminant test per hook, like the obs layer).
#[derive(Clone)]
pub struct DetHandle {
    sched: Arc<DetScheduler>,
    id: usize,
}

impl DetHandle {
    /// Operation-entry checkpoint: park if the lookahead horizon has been
    /// reached. The common case is a single atomic load.
    #[inline]
    pub fn checkpoint(&self, vt: Nanos) {
        if self.sched.must_park(vt) {
            self.sched.park(self.id, vt);
        }
    }

    /// Start-of-run barrier: parks at vt 0 so the first window opens only
    /// once every processor has checked in, and no more than `workers`
    /// processors ever run concurrently.
    pub fn start(&self) {
        self.sched.park(self.id, 0);
    }

    /// Enters a gate at `vt`: blocks until every peer is parked and this
    /// processor's `(vt, id, seq)` is the earliest pending gate.
    pub fn gate_enter(&self, vt: Nanos) {
        self.sched.gate_enter(self.id, vt);
    }

    /// Leaves the current gate at `vt` (clock may have advanced inside) and
    /// blocks until readmitted to a window.
    pub fn gate_exit(&self, vt: Nanos) {
        self.sched.gate_exit(self.id, vt);
    }

    /// From inside a gate: block on `key` until re-granted after a peer's
    /// `unblock_all(key)`.
    pub fn gate_block(&self, vt: Nanos, key: WaitKey) {
        self.sched.gate_block(self.id, vt, key);
    }

    /// From inside a gate: re-arm every processor blocked on `key`.
    pub fn unblock_all(&self, key: WaitKey) {
        self.sched.unblock_all(key);
    }

    /// Marks this processor finished.
    pub fn finish(&self) {
        self.sched.finish(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type ProcBody = Box<dyn FnOnce(&DetHandle) + Send>;

    fn run_procs(sched: &Arc<DetScheduler>, bodies: Vec<ProcBody>) {
        std::thread::scope(|s| {
            for (id, body) in bodies.into_iter().enumerate() {
                let h = sched.handle(id);
                s.spawn(move || {
                    h.start();
                    body(&h);
                    h.finish();
                });
            }
        });
    }

    #[test]
    fn windows_release_all_procs_regardless_of_worker_bound() {
        for workers in [1, 2, 8] {
            let sched = Arc::new(DetScheduler::new(4, workers, 100));
            let bodies: Vec<ProcBody> = (0..4)
                .map(|p| {
                    Box::new(move |h: &DetHandle| {
                        let mut vt = 0;
                        for _ in 0..10 {
                            vt += 30 + p as u64;
                            h.checkpoint(vt);
                        }
                    }) as Box<dyn FnOnce(&DetHandle) + Send>
                })
                .collect();
            run_procs(&sched, bodies);
        }
    }

    #[test]
    fn gates_serialize_in_vt_id_order() {
        let sched = Arc::new(DetScheduler::new(3, 8, 1_000));
        let log = Arc::new(Mutex::new(Vec::new()));
        let bodies: Vec<ProcBody> = (0..3)
            .map(|p| {
                let log = Arc::clone(&log);
                Box::new(move |h: &DetHandle| {
                    // Proc p gates at vt 30-p: higher ids carry earlier vts,
                    // so the grant order must be exactly reversed.
                    let vt = 30 - p as u64;
                    h.gate_enter(vt);
                    log.lock().push(p);
                    h.gate_exit(vt);
                }) as Box<dyn FnOnce(&DetHandle) + Send>
            })
            .collect();
        run_procs(&sched, bodies);
        assert_eq!(*log.lock(), vec![2, 1, 0]);
    }

    #[test]
    fn blocked_procs_reacquire_in_vt_order() {
        // A 1-slot "carrier" lock: procs 1 and 2 block until proc 0's gate
        // releases it; proc 1 (earlier gate vt) must win the re-grant race,
        // and proc 2 acquires only after proc 1 releases in turn.
        let sched = Arc::new(DetScheduler::new(3, 8, 1_000));
        let held = Arc::new(Mutex::new(true));
        let log = Arc::new(Mutex::new(Vec::new()));
        let bodies: Vec<ProcBody> = (0..3)
            .map(|p| {
                let held = Arc::clone(&held);
                let log = Arc::clone(&log);
                Box::new(move |h: &DetHandle| {
                    if p == 0 {
                        // Initial holder: release inside a later gate.
                        h.gate_enter(50);
                        *held.lock() = false;
                        h.unblock_all(WaitKey::Lock(0));
                        h.gate_exit(50);
                        return;
                    }
                    let vt = 10 * p as u64; // proc 1 at 10, proc 2 at 20
                    h.gate_enter(vt);
                    loop {
                        let mut s = held.lock();
                        if !*s {
                            *s = true;
                            drop(s);
                            log.lock().push(p);
                            break;
                        }
                        drop(s);
                        h.gate_block(vt, WaitKey::Lock(0));
                    }
                    h.gate_exit(vt);
                    // Release in a second gate so the other waiter can run.
                    h.gate_enter(vt + 5);
                    *held.lock() = false;
                    h.unblock_all(WaitKey::Lock(0));
                    h.gate_exit(vt + 5);
                }) as Box<dyn FnOnce(&DetHandle) + Send>
            })
            .collect();
        run_procs(&sched, bodies);
        assert_eq!(*log.lock(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "deterministic scheduler deadlock")]
    fn deadlock_panics_with_diagnostics() {
        // Single proc, no scope: blocking on a flag nobody will ever set
        // makes the coordinator's deadlock panic fire on this very thread.
        let sched = Arc::new(DetScheduler::new(1, 1, 100));
        let h = sched.handle(0);
        h.start();
        h.gate_enter(5);
        h.gate_block(5, WaitKey::Flag(0));
    }
}
