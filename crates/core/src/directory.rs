//! The replicated global page directory (§2.3).
//!
//! Every shared page has a directory entry replicated on each protocol node
//! through a Memory Channel region (receive mapping everywhere, transmit
//! mapping everywhere, *no* loop-back — writers double their writes into
//! their own copy by hand, exactly as the paper describes in Figure 1).
//!
//! An entry consists of:
//!
//! * **one word per protocol node**, written *only* by that node. The word
//!   holds the page's loosest permissions on that node, and whether a
//!   processor on that node holds the page in exclusive mode. Because each
//!   word has a single writer, no locks are needed — this is the paper's
//!   key "lock-free structures" design (§2.3, evaluated in §3.3.5).
//! * **one home word** holding the page's home node, whether a home has been
//!   assigned, and whether it is still the round-robin default (eligible for
//!   first-touch relocation). The home word is only written under the global
//!   home-selection lock, which the paper deems acceptable because
//!   relocation happens at most once per page.
//!
//! [`DirectoryMode::GlobalLock`] switches in the §3.3.5 ablation: entries
//! are conceptually compressed into a single word, so every modification
//! must take a cluster-wide lock — modeled by a per-entry virtual-time gate
//! plus the paper's higher (16 µs vs 5 µs) update cost.
//!
//! # Sparse mode (beyond the paper — DESIGN.md §12)
//!
//! [`DirectoryMode::Sparse`] drops the replication entirely for scaling
//! past the paper's 8×4 cluster: page `p`'s entry lives *only* on its home
//! shard (`p % pnodes`), in a compact per-shard region — a change-version
//! word, a home word, a single cluster-wide exclusive-claim word, and a
//! 2-bit-per-node permission mask. Total directory memory is O(pages), not
//! O(pages × nodes). Readers keep a node-local cache of each entry guarded
//! by the entry's *invalidation-on-change* word: the common read is one
//! sequentially consistent load of that word plus a couple of cached loads;
//! only a version change pays a refill. Updates touch the one shard copy
//! (host-side atomics standing in for the remote-atomic operations of a
//! modern interconnect) and charge a single O(1) message through the
//! sender's link via the tree primitive — contrast the replicated mode's
//! per-replica broadcast. Exclusive-mode safety comes from the claim word's
//! compare-and-swap plus the publish-claim-then-validate protocol the
//! engine already runs: the version word's SeqCst bump/probe pair
//! guarantees two racing claimants cannot both miss each other.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use cashmere_memchan::{RegionId, RxBuffer, TREE_FANOUT};
use cashmere_model::ModelAtomicU64;
use cashmere_sim::{Counter, Nanos, Resource};
use cashmere_transport::Transport;
use cashmere_vmpage::Perm;

use crate::config::DirectoryMode;
use crate::trace::{emit, ProtocolEvent, TraceRecorder};

/// One protocol node's view of a page, packed into its directory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirWord {
    /// Loosest permission held by any processor on the node.
    pub perm: PermBits,
    /// Whether a processor on the node holds the page exclusively.
    pub exclusive: bool,
    /// Cluster-wide processor id of the exclusive holder (valid when
    /// `exclusive`).
    pub excl_proc: u16,
}

/// Permission bits as stored in the directory (mirrors [`Perm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PermBits {
    /// No mapping on the node.
    #[default]
    None,
    /// At least one read-only mapping.
    Read,
    /// At least one read-write mapping.
    Write,
}

impl From<Perm> for PermBits {
    fn from(p: Perm) -> Self {
        match p {
            Perm::None => PermBits::None,
            Perm::Read => PermBits::Read,
            Perm::Write => PermBits::Write,
        }
    }
}

impl DirWord {
    /// Packs into the on-wire word.
    pub fn pack(self) -> u64 {
        let perm = match self.perm {
            PermBits::None => 0u64,
            PermBits::Read => 1,
            PermBits::Write => 2,
        };
        perm | ((self.exclusive as u64) << 4) | ((self.excl_proc as u64) << 8)
    }

    /// Unpacks from the on-wire word.
    pub fn unpack(v: u64) -> Self {
        let perm = match v & 0b11 {
            0 => PermBits::None,
            1 => PermBits::Read,
            _ => PermBits::Write,
        };
        Self {
            perm,
            exclusive: (v >> 4) & 1 == 1,
            excl_proc: ((v >> 8) & 0xFFFF) as u16,
        }
    }

    /// Whether this node has any mapping (counts as a "copy"/sharer).
    pub fn has_copy(self) -> bool {
        !matches!(self.perm, PermBits::None)
    }
}

/// The home word of a page's directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeInfo {
    /// Protocol node that is the page's home.
    pub pnode: usize,
    /// True until the first-touch heuristic relocates the page (or forever,
    /// if first-touch is disabled).
    pub is_default: bool,
}

impl HomeInfo {
    fn pack(self) -> u64 {
        // Real (release-mode) checks: at 64×16 and beyond a silently
        // truncated node id would scatter pages to the wrong homes.
        assert!(
            self.pnode <= MAX_PNODES,
            "home node {} does not fit the home word's 16-bit field",
            self.pnode
        );
        1 | ((self.is_default as u64) << 1) | ((self.pnode as u64) << 8)
    }

    fn unpack(v: u64) -> Self {
        assert!(v & 1 == 1, "home word read before initialization");
        Self {
            pnode: ((v >> 8) & 0xFFFF) as usize,
            is_default: (v >> 1) & 1 == 1,
        }
    }
}

/// Largest protocol-node id representable in the packed home and
/// exclusive-claim words (16-bit fields).
const MAX_PNODES: usize = 0xFFFF;

/// Sparse-entry field offsets within one entry's `entry_words` window
/// (DESIGN.md §12): the invalidation-on-change version word, the home word,
/// the cluster-wide exclusive-claim word, then `⌈pnodes/32⌉` permission
/// mask words holding 2 bits per node.
const F_VERSION: usize = 0;
const F_HOME: usize = 1;
const F_EXCL: usize = 2;
const F_MASK0: usize = 3;

/// Sentinel stored in a cache line's version slot while a refill is in
/// flight; concurrent readers fall back to reading the shard directly.
const REFILLING: u64 = u64::MAX;

/// Wire bytes modeled for one sparse directory update: one word of payload
/// plus the entry index, the same 12-byte format as a diff word.
const SPARSE_UPDATE_BYTES: u64 = 12;

fn excl_pack(pnode: usize, excl_proc: u16) -> u64 {
    assert!(
        pnode <= MAX_PNODES,
        "claimant node {pnode} does not fit the claim word's 16-bit field"
    );
    1 | ((pnode as u64) << 8) | ((excl_proc as u64) << 32)
}

fn excl_unpack(v: u64) -> Option<(usize, u16)> {
    (v & 1 == 1).then_some((((v >> 8) & 0xFFFF) as usize, ((v >> 32) & 0xFFFF) as u16))
}

fn perm_code(p: PermBits) -> u64 {
    match p {
        PermBits::None => 0,
        PermBits::Read => 1,
        PermBits::Write => 2,
    }
}

fn perm_decode(v: u64) -> PermBits {
    match v & 0b11 {
        0 => PermBits::None,
        1 => PermBits::Read,
        _ => PermBits::Write,
    }
}

/// Charge-free directory traffic accounting, in modeled wire bytes. These
/// counters feed the scaling experiment (`BENCH_scaling.json`) and are NOT
/// part of [`cashmere_sim::Stats`] — the golden-pinned counter snapshot is
/// untouched.
#[derive(Default)]
struct DirTraffic {
    /// Directory-entry modifications (any mode).
    updates: Counter,
    /// Bytes delivered for updates: per-replica broadcast deliveries in the
    /// replicated modes, one O(1) shard message in sparse mode.
    update_bytes: Counter,
    /// Sparse-mode remote probes of an entry's invalidation-on-change word.
    probes: Counter,
    probe_bytes: Counter,
    /// Sparse-mode cache refills after a version change.
    misses: Counter,
    miss_bytes: Counter,
}

/// Snapshot of directory traffic and memory, for the scaling experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirUsage {
    /// Entry modifications.
    pub updates: u64,
    /// Modeled wire bytes delivered for updates.
    pub update_bytes: u64,
    /// Remote change-word probes (sparse mode only).
    pub probes: u64,
    pub probe_bytes: u64,
    /// Cache refills (sparse mode only).
    pub misses: u64,
    pub miss_bytes: u64,
    /// Memory Channel bytes backing the directory: every node's replica in
    /// the replicated modes, the single sharded copy in sparse mode.
    pub mc_bytes: u64,
    /// Node-local RAM spent on sparse read caches (0 when replicated).
    pub cache_bytes: u64,
}

impl DirUsage {
    /// Total modeled directory protocol bytes (updates + probes + misses).
    pub fn protocol_bytes(&self) -> u64 {
        self.update_bytes + self.probe_bytes + self.miss_bytes
    }
}

/// Sparse-mode state: one compact region per home shard plus per-node read
/// caches (DESIGN.md §12).
struct SparseDir {
    /// Words per entry: version + home + claim + permission mask.
    entry_words: usize,
    /// Shard `s`'s region handle (its own receive mapping — the single
    /// authoritative copy of every entry homed on `s`).
    shards: Vec<RxBuffer>,
    /// Per-node entry caches, `pages × entry_words` each, mirroring the
    /// shard layout; the version slot holds the shard version the line was
    /// filled at, or [`REFILLING`]. Model-routed atomics so the
    /// interleaving explorer schedules around the cached read path.
    caches: Vec<Box<[ModelAtomicU64]>>,
}

/// Where a sparse read is served from (see `Directory::sparse_sync`).
#[derive(Clone, Copy)]
enum SparseSrc {
    /// The reader's cache line is fresh.
    Cache,
    /// A concurrent refill owns the line; read the shard copy directly.
    Shard,
}

/// The global page directory: replicated (the paper's design, plus the
/// global-lock ablation) or home-sharded ([`DirectoryMode::Sparse`]).
pub struct Directory {
    mc: Arc<dyn Transport>,
    region: RegionId,
    pnodes: usize,
    pages: usize,
    mode: DirectoryMode,
    /// Cached per-node receive-buffer handles, one per protocol node. Every
    /// directory read is an atomic load straight through the handle — no
    /// region-table lock, no `Arc` bump per word. This is the host-side
    /// analogue of the paper's lock-free directory (§2.3): the words are
    /// single-writer, so readers never need mutual exclusion, only the
    /// acquire/release ordering the atomics already provide (DESIGN.md §10).
    /// Empty in sparse mode.
    replicas: Vec<RxBuffer>,
    /// Sparse-mode shards and caches (`None` in the replicated modes).
    sparse: Option<SparseDir>,
    /// Virtual-time serialization gates for the GlobalLock ablation (one per
    /// page entry; unused — empty — in the lock-free modes).
    gates: Vec<Resource>,
    /// Charge-free wire-byte accounting for the scaling experiment.
    traffic: DirTraffic,
    /// Auditor event stream, when enabled.
    rec: Option<Arc<TraceRecorder>>,
}

impl Directory {
    /// Builds the directory for `pages` pages over `pnodes` protocol nodes:
    /// one region replicated on every node in the replicated modes, or one
    /// compact region per home shard in sparse mode.
    ///
    /// # Panics
    ///
    /// Panics (a real error, not a debug assert) if `pnodes` exceeds the
    /// packed words' 16-bit node fields or the entry layout's word indices
    /// would overflow `usize` — silent wraparound at high node counts would
    /// corrupt the directory.
    pub fn new(mc: Arc<dyn Transport>, pnodes: usize, pages: usize, mode: DirectoryMode) -> Self {
        assert!(
            (1..=MAX_PNODES).contains(&pnodes),
            "directory supports 1..={MAX_PNODES} protocol nodes, got {pnodes}"
        );
        let (region, replicas, sparse) = match mode {
            DirectoryMode::LockFree | DirectoryMode::GlobalLock => {
                let words = pages
                    .checked_mul(pnodes + 1)
                    .expect("directory word index overflows usize at this pages × nodes");
                let region = mc.create_region(words.max(1), false);
                for e in 0..pnodes {
                    mc.attach_rx(region, e);
                }
                let replicas = (0..pnodes)
                    .map(|e| {
                        mc.rx_buffer(region, e)
                            .expect("replica attached immediately above")
                    })
                    .collect();
                (region, replicas, None)
            }
            DirectoryMode::Sparse => {
                let entry_words = F_MASK0 + pnodes.div_ceil(32);
                let cache_words = pages
                    .checked_mul(entry_words)
                    .expect("directory word index overflows usize at this pages × nodes");
                // One compact region per shard, receive-mapped only on the
                // shard itself: the single authoritative copy.
                let shards = (0..pnodes)
                    .map(|s| {
                        let slots = if s >= pages {
                            0
                        } else {
                            (pages - 1 - s) / pnodes + 1
                        };
                        let r = mc.create_region((slots * entry_words).max(1), false);
                        mc.attach_rx(r, s);
                        mc.rx_buffer(r, s)
                            .expect("shard attached immediately above")
                    })
                    .collect();
                let caches = (0..pnodes)
                    .map(|_| {
                        (0..cache_words.max(1))
                            .map(|_| ModelAtomicU64::new(0))
                            .collect()
                    })
                    .collect();
                (
                    RegionId(usize::MAX),
                    Vec::new(),
                    Some(SparseDir {
                        entry_words,
                        shards,
                        caches,
                    }),
                )
            }
        };
        let gates = match mode {
            DirectoryMode::LockFree | DirectoryMode::Sparse => Vec::new(),
            DirectoryMode::GlobalLock => (0..pages).map(|_| Resource::new()).collect(),
        };
        Self {
            mc,
            region,
            pnodes,
            pages,
            mode,
            replicas,
            sparse,
            gates,
            traffic: DirTraffic::default(),
            rec: None,
        }
    }

    /// Attaches the auditor's event recorder.
    pub fn with_recorder(mut self, rec: Arc<TraceRecorder>) -> Self {
        self.rec = Some(rec);
        self
    }

    fn entry_base(&self, page: usize) -> usize {
        debug_assert!(page < self.pages);
        page * (self.pnodes + 1)
    }

    fn word_idx(&self, page: usize, pnode: usize) -> usize {
        debug_assert!(pnode < self.pnodes);
        self.entry_base(page) + pnode
    }

    fn home_idx(&self, page: usize) -> usize {
        self.entry_base(page) + self.pnodes
    }

    // --- sparse-mode plumbing (DESIGN.md §12) ---------------------------

    /// The home shard serving `page`'s entry.
    fn shard_of(&self, page: usize) -> usize {
        page % self.pnodes
    }

    /// Offset of `field` within `page`'s entry in its shard's region.
    fn shard_field(&self, page: usize, field: usize) -> usize {
        let sp = self.sparse.as_ref().expect("sparse mode");
        (page / self.pnodes) * sp.entry_words + field
    }

    /// Ensures `reader`'s cache line for `page` is at least as fresh as the
    /// shard's invalidation-on-change word, refilling it on a version
    /// change. Returns where this read should be served from: the cache
    /// (common case — the probe plus a couple of cached loads), or the
    /// shard directly when a concurrent refill owns the line.
    ///
    /// The probe is a SeqCst load pairing with the SeqCst bump in
    /// [`sparse_update`](Self::sparse_update): in the engine's
    /// publish-claim-then-validate exclusive entry, two racing claimants
    /// cannot both have their validation probe ordered before the other's
    /// bump, so at least one observes the other and backs off.
    ///
    /// The refill tags the line with the version loaded *before* copying
    /// the fields, so a concurrent update can only make the line
    /// conservatively fresh (newer data under an older tag — the next probe
    /// refills again), never stale under a fresh tag.
    fn sparse_sync(&self, page: usize, reader: usize) -> SparseSrc {
        let sp = self.sparse.as_ref().expect("sparse mode");
        let shard = self.shard_of(page);
        let sv = sp.shards[shard].load_sc(self.shard_field(page, F_VERSION));
        if reader != shard {
            self.traffic.probes.inc();
            self.traffic.probe_bytes.add(8);
        }
        let cache = &sp.caches[reader];
        let vslot = page * sp.entry_words + F_VERSION;
        let cv = cache[vslot].load(Ordering::Acquire);
        if cv == sv {
            return SparseSrc::Cache;
        }
        if cv == REFILLING
            || cache[vslot]
                .compare_exchange(cv, REFILLING, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
        {
            // Another reader on this node owns the refill; don't wait — the
            // shard copy is always authoritative.
            return SparseSrc::Shard;
        }
        for f in F_HOME..sp.entry_words {
            let v = sp.shards[shard].load(self.shard_field(page, f));
            cache[page * sp.entry_words + f].store(v, Ordering::Release);
        }
        cache[vslot].store(sv, Ordering::Release);
        if reader != shard {
            self.traffic.misses.inc();
            self.traffic.miss_bytes.add((sp.entry_words as u64 - 1) * 8);
        }
        SparseSrc::Cache
    }

    /// Loads `field` of `page`'s entry from wherever
    /// [`sparse_sync`](Self::sparse_sync) said to read.
    fn sparse_field(&self, page: usize, reader: usize, src: SparseSrc, field: usize) -> u64 {
        let sp = self.sparse.as_ref().expect("sparse mode");
        match src {
            SparseSrc::Cache => {
                sp.caches[reader][page * sp.entry_words + field].load(Ordering::Acquire)
            }
            SparseSrc::Shard => sp.shards[self.shard_of(page)].load(self.shard_field(page, field)),
        }
    }

    /// Applies `me`'s word to `page`'s sparse entry on its home shard:
    /// `me`'s two permission-mask bits move in a single compare-and-swap
    /// (no torn intermediate is ever visible), the cluster-wide exclusive
    /// claim word is claimed/updated/cleared by CAS, then the entry's
    /// invalidation-on-change word is bumped — data before bump, so a
    /// reader that refills on the new version always sees the new fields.
    /// When `bump` is false the version bump is skipped (the mutant hook).
    fn sparse_apply(&self, page: usize, me: usize, w: DirWord, bump: bool) {
        let sp = self.sparse.as_ref().expect("sparse mode");
        let sh = &sp.shards[self.shard_of(page)];
        let moff = self.shard_field(page, F_MASK0 + me / 32);
        let shift = (me % 32) * 2;
        let bits = perm_code(w.perm) << shift;
        loop {
            let old = sh.load_sc(moff);
            let new = (old & !(0b11 << shift)) | bits;
            if old == new || sh.compare_exchange(moff, old, new).is_ok() {
                break;
            }
        }
        let eoff = self.shard_field(page, F_EXCL);
        let cur = sh.load_sc(eoff);
        if w.exclusive {
            match excl_unpack(cur) {
                // Refresh my own claim (e.g. a new holder processor).
                Some((n, _)) if n == me => {
                    let _ = sh.compare_exchange(eoff, cur, excl_pack(me, w.excl_proc));
                }
                // Claim from empty; losing the race leaves the winner's
                // claim in place and my permission bits force the engine's
                // validation step to back off.
                None => {
                    let _ = sh.compare_exchange(eoff, 0, excl_pack(me, w.excl_proc));
                }
                // Someone else's claim stands; validation resolves the race.
                Some(_) => {}
            }
        } else if matches!(excl_unpack(cur), Some((n, _)) if n == me) {
            // Clearing is only legal for my own claim (my own exit, or a
            // breaker writing the holder's word under the holder's
            // node-page lock).
            let _ = sh.compare_exchange(eoff, cur, 0);
        }
        if bump {
            sh.fetch_add(self.shard_field(page, F_VERSION), 1);
        }
    }

    /// Traffic accounting + virtual-time link charge for one sparse update
    /// from `me`; a shard-local update is an ordinary memory operation.
    fn sparse_update_charge(&self, page: usize, me: usize, now: Nanos) -> Nanos {
        self.traffic.updates.inc();
        let shard = self.shard_of(page);
        if me == shard {
            return now;
        }
        self.traffic.update_bytes.add(SPARSE_UPDATE_BYTES);
        // The degenerate (single-target) tree: exactly one fault-interposed
        // link reservation plus latency — directory updates and the
        // write-notice fan-out share the same broadcast primitive.
        self.mc
            .charge_tree(me, &[shard], TREE_FANOUT, SPARSE_UPDATE_BYTES, now)
    }

    /// Per-replica delivery accounting for one replicated-mode update.
    fn replicated_update_traffic(&self) {
        self.traffic.updates.inc();
        // The hub fans the 8-byte word out to every other node's replica.
        self.traffic.update_bytes.add(8 * (self.pnodes as u64 - 1));
    }

    /// Per-modification cost under the configured mode (§3.1: 5 µs
    /// lock-free, 16 µs when a global lock must be acquired; sparse keeps
    /// the lock-free cost).
    pub fn update_cost(&self) -> Nanos {
        match self.mode {
            DirectoryMode::LockFree | DirectoryMode::Sparse => self.mc.cost().dir_update,
            DirectoryMode::GlobalLock => self.mc.cost().dir_update_locked,
        }
    }

    /// Reads node `pnode`'s word of `page`'s entry as seen by `reader`: a
    /// single atomic load from `reader`'s local replica in the replicated
    /// modes; in sparse mode, a change-word probe plus cached mask/claim
    /// loads (DESIGN.md §12).
    #[inline]
    pub fn read_word(&self, page: usize, pnode: usize, reader: usize) -> DirWord {
        if self.sparse.is_none() {
            return DirWord::unpack(self.replicas[reader].load(self.word_idx(page, pnode)));
        }
        let src = self.sparse_sync(page, reader);
        let mask = self.sparse_field(page, reader, src, F_MASK0 + pnode / 32);
        let perm = perm_decode(mask >> ((pnode % 32) * 2));
        match excl_unpack(self.sparse_field(page, reader, src, F_EXCL)) {
            Some((n, p)) if n == pnode => DirWord {
                perm,
                exclusive: true,
                excl_proc: p,
            },
            _ => DirWord {
                perm,
                exclusive: false,
                excl_proc: 0,
            },
        }
    }

    /// Writes `me`'s own word of `page`'s entry. Replicated modes:
    /// broadcast over the Memory Channel plus the manual double into the
    /// local replica (under [`DirectoryMode::GlobalLock`] the write also
    /// serializes through the entry's global-lock gate). Sparse mode: CAS
    /// transitions on the home shard's single copy followed by the
    /// invalidation-on-change bump, charged as one O(1) message. Returns
    /// the completion time.
    pub fn write_my_word(&self, page: usize, me: usize, w: DirWord, now: Nanos) -> Nanos {
        // Producer: emit before the write so any read that observes the new
        // word is sequenced after it.
        emit(&self.rec, || ProtocolEvent::DirWrite {
            pnode: me,
            page,
            perm: perm_code(w.perm) as u8,
            exclusive: w.exclusive,
        });
        if self.sparse.is_some() {
            self.sparse_apply(page, me, w, true);
            return self.sparse_update_charge(page, me, now);
        }
        let start = match self.mode {
            DirectoryMode::LockFree | DirectoryMode::Sparse => now,
            // Model the global lock's serialization: hold the gate for the
            // difference between the locked and lock-free update costs.
            DirectoryMode::GlobalLock => {
                let hold = self.mc.cost().dir_update_locked - self.mc.cost().dir_update;
                self.gates[page].acquire(now, hold)
            }
        };
        self.replicated_update_traffic();
        let idx = self.word_idx(page, me);
        let done = self.mc.write(self.region, me, idx, w.pack(), start);
        self.replicas[me].store(idx, w.pack());
        done
    }

    /// A deliberately wrong sparse `write_my_word` kept for the model
    /// checker's mutation battery (DESIGN.md §11/§12): the
    /// invalidation-on-change word is bumped *before* the mask and claim
    /// words are written. A reader that refills between the bump and the
    /// data writes caches the stale fields under the new version — and
    /// since the version never moves again, the staleness is permanent: the
    /// reader's final observation misses the last published word. The model
    /// tests assert the explorer finds such a schedule within the default
    /// budget.
    #[doc(hidden)]
    pub fn write_my_word_mutant_version_before_data(
        &self,
        page: usize,
        me: usize,
        w: DirWord,
        now: Nanos,
    ) -> Nanos {
        emit(&self.rec, || ProtocolEvent::DirWrite {
            pnode: me,
            page,
            perm: perm_code(w.perm) as u8,
            exclusive: w.exclusive,
        });
        let sp = self.sparse.as_ref().expect("sparse-mode mutant");
        sp.shards[self.shard_of(page)].fetch_add(self.shard_field(page, F_VERSION), 1);
        self.sparse_apply(page, me, w, false);
        self.sparse_update_charge(page, me, now)
    }

    /// A deliberately wrong `write_my_word` kept for the model checker's
    /// mutation battery (DESIGN.md §11): the manual local double is done as
    /// *two* stores — a partial word carrying only the permission bits, then
    /// the full word. A reader's single atomic load can land between them
    /// and observe a word the writer never published (the torn state the
    /// real single-store double rules out). The model tests assert the
    /// explorer finds such a schedule within the default budget.
    #[doc(hidden)]
    pub fn write_my_word_mutant_torn_local_double(
        &self,
        page: usize,
        me: usize,
        w: DirWord,
        now: Nanos,
    ) -> Nanos {
        emit(&self.rec, || ProtocolEvent::DirWrite {
            pnode: me,
            page,
            perm: match w.perm {
                PermBits::None => 0,
                PermBits::Read => 1,
                PermBits::Write => 2,
            },
            exclusive: w.exclusive,
        });
        let idx = self.word_idx(page, me);
        let done = self.mc.write(self.region, me, idx, w.pack(), now);
        self.replicas[me].store(idx, w.pack() & 0b11);
        self.replicas[me].store(idx, w.pack());
        done
    }

    /// Reads the home word as seen by `reader`. Returns `None` if no home
    /// has been assigned yet.
    #[inline]
    pub fn read_home(&self, page: usize, reader: usize) -> Option<HomeInfo> {
        let v = if self.sparse.is_none() {
            self.replicas[reader].load(self.home_idx(page))
        } else {
            let src = self.sparse_sync(page, reader);
            self.sparse_field(page, reader, src, F_HOME)
        };
        if v & 1 == 0 {
            None
        } else {
            Some(HomeInfo::unpack(v))
        }
    }

    /// Writes the home word (caller must hold the global home-selection
    /// lock). Broadcast + local double in the replicated modes; a shard
    /// store plus version bump in sparse mode.
    pub fn write_home(&self, page: usize, me: usize, h: HomeInfo, now: Nanos) -> Nanos {
        emit(&self.rec, || ProtocolEvent::HomeWrite {
            pnode: me,
            page,
            to: h.pnode,
        });
        if let Some(sp) = &self.sparse {
            let sh = &sp.shards[self.shard_of(page)];
            sh.store(self.shard_field(page, F_HOME), h.pack());
            sh.fetch_add(self.shard_field(page, F_VERSION), 1);
            return self.sparse_update_charge(page, me, now);
        }
        self.replicated_update_traffic();
        let idx = self.home_idx(page);
        let done = self.mc.write(self.region, me, idx, h.pack(), now);
        self.replicas[me].store(idx, h.pack());
        done
    }

    /// Setup-time home initialization (round-robin assignment before the
    /// run); writes directly with no cost and no traffic.
    pub fn init_home(&self, page: usize, h: HomeInfo) {
        if let Some(sp) = &self.sparse {
            let sh = &sp.shards[self.shard_of(page)];
            sh.store(self.shard_field(page, F_HOME), h.pack());
            sh.fetch_add(self.shard_field(page, F_VERSION), 1);
            return;
        }
        let idx = self.home_idx(page);
        for r in &self.replicas {
            r.store(idx, h.pack());
        }
    }

    /// Protocol nodes (≠ `exclude`) that currently hold a copy of `page`,
    /// as seen by `reader`. Sparse mode scans the O(pnodes/32) mask words
    /// after a single change-word probe instead of O(pnodes) replica loads.
    pub fn sharers(&self, page: usize, reader: usize, exclude: usize) -> Vec<usize> {
        let Some(sp) = &self.sparse else {
            return (0..self.pnodes)
                .filter(|&n| n != exclude && self.read_word(page, n, reader).has_copy())
                .collect();
        };
        let src = self.sparse_sync(page, reader);
        let mut out = Vec::new();
        for mw in 0..sp.entry_words - F_MASK0 {
            let mask = self.sparse_field(page, reader, src, F_MASK0 + mw);
            if mask == 0 {
                continue;
            }
            for bit in 0..32 {
                let n = mw * 32 + bit;
                if n < self.pnodes && n != exclude && (mask >> (bit * 2)) & 0b11 != 0 {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Whether any node other than `exclude` holds a copy or the exclusive
    /// flag for `page`.
    pub fn shared_by_others(&self, page: usize, reader: usize, exclude: usize) -> bool {
        let Some(sp) = &self.sparse else {
            return (0..self.pnodes).any(|n| {
                if n == exclude {
                    return false;
                }
                let w = self.read_word(page, n, reader);
                w.has_copy() || w.exclusive
            });
        };
        let src = self.sparse_sync(page, reader);
        if matches!(
            excl_unpack(self.sparse_field(page, reader, src, F_EXCL)),
            Some((n, _)) if n != exclude
        ) {
            return true;
        }
        for mw in 0..sp.entry_words - F_MASK0 {
            let mut mask = self.sparse_field(page, reader, src, F_MASK0 + mw);
            if exclude / 32 == mw {
                mask &= !(0b11 << ((exclude % 32) * 2));
            }
            if mask != 0 {
                return true;
            }
        }
        false
    }

    /// The node currently holding `page` in exclusive mode, if any, with the
    /// holder's cluster-wide processor id. Sparse mode reads the single
    /// claim word instead of scanning every node's word.
    pub fn exclusive_holder(&self, page: usize, reader: usize) -> Option<(usize, u16)> {
        if self.sparse.is_none() {
            return (0..self.pnodes).find_map(|n| {
                let w = self.read_word(page, n, reader);
                w.exclusive.then_some((n, w.excl_proc))
            });
        }
        let src = self.sparse_sync(page, reader);
        excl_unpack(self.sparse_field(page, reader, src, F_EXCL))
    }

    /// Number of protocol nodes.
    pub fn pnodes(&self) -> usize {
        self.pnodes
    }

    /// Number of pages covered.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Charge-free snapshot of directory traffic and memory, for the
    /// scaling experiment (`BENCH_scaling.json`). Not part of
    /// [`cashmere_sim::Stats`]; the golden-pinned counters are untouched.
    pub fn usage(&self) -> DirUsage {
        let (mc_bytes, cache_bytes) = match &self.sparse {
            None => {
                // Every node holds a full replica of the directory region.
                let words = self.pages * (self.pnodes + 1);
                (8 * (words * self.pnodes) as u64, 0)
            }
            Some(sp) => {
                let shard_words: usize = sp.shards.iter().map(RxBuffer::words).sum();
                let cache_words: usize = sp.caches.iter().map(|c| c.len()).sum();
                (8 * shard_words as u64, 8 * cache_words as u64)
            }
        };
        DirUsage {
            updates: self.traffic.updates.get(),
            update_bytes: self.traffic.update_bytes.get(),
            probes: self.traffic.probes.get(),
            probe_bytes: self.traffic.probe_bytes.get(),
            misses: self.traffic.misses.get(),
            miss_bytes: self.traffic.miss_bytes.get(),
            mc_bytes,
            cache_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_memchan::TransportConfig;
    use cashmere_transport::build_transport;

    fn dir(pnodes: usize, mode: DirectoryMode) -> Directory {
        let mc = build_transport(TransportConfig::new(
            (0..pnodes).map(|e| e % 2).collect(),
            2,
        ));
        Directory::new(mc, pnodes, 4, mode)
    }

    #[test]
    fn dir_word_packs_and_unpacks() {
        let w = DirWord {
            perm: PermBits::Write,
            exclusive: true,
            excl_proc: 31,
        };
        assert_eq!(DirWord::unpack(w.pack()), w);
        let none = DirWord::default();
        assert_eq!(DirWord::unpack(none.pack()), none);
        assert!(!none.has_copy());
        assert!(w.has_copy());
    }

    #[test]
    fn home_info_round_trips() {
        let h = HomeInfo {
            pnode: 7,
            is_default: true,
        };
        assert_eq!(HomeInfo::unpack(h.pack()), h);
    }

    #[test]
    fn write_is_visible_on_all_replicas_including_writer() {
        let d = dir(4, DirectoryMode::LockFree);
        let w = DirWord {
            perm: PermBits::Read,
            exclusive: false,
            excl_proc: 0,
        };
        d.write_my_word(2, 1, w, 0);
        for reader in 0..4 {
            assert_eq!(d.read_word(2, 1, reader), w, "replica on node {reader}");
        }
    }

    #[test]
    fn sharers_and_exclusive_holder() {
        let d = dir(4, DirectoryMode::LockFree);
        d.write_my_word(
            0,
            1,
            DirWord {
                perm: PermBits::Read,
                ..Default::default()
            },
            0,
        );
        d.write_my_word(
            0,
            3,
            DirWord {
                perm: PermBits::Write,
                exclusive: true,
                excl_proc: 12,
            },
            0,
        );
        assert_eq!(d.sharers(0, 0, usize::MAX), vec![1, 3]);
        assert_eq!(d.sharers(0, 0, 3), vec![1]);
        assert!(d.shared_by_others(0, 0, 1));
        assert!(
            !d.shared_by_others(1, 0, 0),
            "untouched page has no sharers"
        );
        assert_eq!(d.exclusive_holder(0, 0), Some((3, 12)));
        assert_eq!(d.exclusive_holder(1, 0), None);
    }

    #[test]
    fn home_assignment_and_relocation() {
        let d = dir(2, DirectoryMode::LockFree);
        assert_eq!(d.read_home(0, 0), None);
        d.init_home(
            0,
            HomeInfo {
                pnode: 1,
                is_default: true,
            },
        );
        assert_eq!(d.read_home(0, 0).unwrap().pnode, 1);
        assert!(d.read_home(0, 1).unwrap().is_default);
        d.write_home(
            0,
            0,
            HomeInfo {
                pnode: 0,
                is_default: false,
            },
            0,
        );
        for reader in 0..2 {
            let h = d.read_home(0, reader).unwrap();
            assert_eq!(h.pnode, 0);
            assert!(!h.is_default);
        }
    }

    /// Interleaving schedule for the lock-free read fast path: a writer
    /// publishes a sequence of distinct directory words while a reader spins
    /// on `read_word` with `yield_now` between loads. Every observed word
    /// must be one the writer actually published (single-writer words can
    /// never tear or go backwards past the final state), and once the writer
    /// finishes the reader must observe the last write. The scenario body is
    /// shared with `tests/model_directory.rs`, which runs the same
    /// assertions under the interleaving explorer (DESIGN.md §11).
    #[test]
    fn lock_free_reads_never_observe_torn_or_phantom_words() {
        crate::model_scenarios::directory_single_writer_reads(64, usize::MAX, false);
    }

    // --- sparse mode (DESIGN.md §12) ------------------------------------

    /// OS-thread run of the sparse read-vs-home-update scenario (shared
    /// with `tests/model_directory.rs`, which explores it exhaustively):
    /// a remote reader's invalidation-on-change cache may lag the home
    /// shard but never travels backwards, and settles on the final claim.
    #[test]
    fn sparse_reads_lag_but_never_regress() {
        crate::model_scenarios::sparse_directory_read_vs_update(64, usize::MAX, false);
    }

    #[test]
    fn excl_word_round_trips() {
        assert_eq!(excl_unpack(0), None);
        assert_eq!(excl_unpack(excl_pack(0, 0)), Some((0, 0)));
        assert_eq!(excl_unpack(excl_pack(513, 31)), Some((513, 31)));
        assert_eq!(
            excl_unpack(excl_pack(MAX_PNODES, u16::MAX)),
            Some((MAX_PNODES, u16::MAX))
        );
    }

    /// Every public read observes the same state through the sparse layout
    /// as through the replicated one, across a write/claim/clear script
    /// touching several pages (so multiple shards and shard slots).
    #[test]
    fn sparse_reads_match_replicated_reads() {
        let modes = [DirectoryMode::LockFree, DirectoryMode::Sparse];
        let [lf, sp] = modes.map(|m| dir(4, m));
        let script: &[(usize, usize, DirWord)] = &[
            (
                0,
                1,
                DirWord {
                    perm: PermBits::Read,
                    ..Default::default()
                },
            ),
            (
                0,
                3,
                DirWord {
                    perm: PermBits::Write,
                    exclusive: true,
                    excl_proc: 12,
                },
            ),
            (
                1,
                2,
                DirWord {
                    perm: PermBits::Write,
                    ..Default::default()
                },
            ),
            (
                3,
                0,
                DirWord {
                    perm: PermBits::Read,
                    ..Default::default()
                },
            ),
            // Holder drops the claim and its mapping.
            (0, 3, DirWord::default()),
        ];
        for (i, &(page, me, w)) in script.iter().enumerate() {
            lf.write_my_word(page, me, w, i as Nanos);
            sp.write_my_word(page, me, w, i as Nanos);
        }
        lf.write_home(
            1,
            2,
            HomeInfo {
                pnode: 2,
                is_default: false,
            },
            0,
        );
        sp.write_home(
            1,
            2,
            HomeInfo {
                pnode: 2,
                is_default: false,
            },
            0,
        );
        for page in 0..4 {
            for reader in 0..4 {
                for pnode in 0..4 {
                    assert_eq!(
                        sp.read_word(page, pnode, reader),
                        lf.read_word(page, pnode, reader),
                        "page {page} pnode {pnode} reader {reader}"
                    );
                }
                assert_eq!(
                    sp.sharers(page, reader, usize::MAX),
                    lf.sharers(page, reader, usize::MAX)
                );
                for exclude in 0..4 {
                    assert_eq!(
                        sp.sharers(page, reader, exclude),
                        lf.sharers(page, reader, exclude)
                    );
                    assert_eq!(
                        sp.shared_by_others(page, reader, exclude),
                        lf.shared_by_others(page, reader, exclude),
                        "page {page} reader {reader} exclude {exclude}"
                    );
                }
                assert_eq!(
                    sp.exclusive_holder(page, reader),
                    lf.exclusive_holder(page, reader)
                );
                assert_eq!(sp.read_home(page, reader), lf.read_home(page, reader));
            }
        }
    }

    #[test]
    fn sparse_common_read_hits_the_cache_after_one_refill() {
        let d = dir(4, DirectoryMode::Sparse);
        d.write_my_word(
            1,
            2,
            DirWord {
                perm: PermBits::Read,
                ..Default::default()
            },
            0,
        );
        // Page 1's shard is node 1; reader node 0 is remote.
        let before = d.usage();
        for _ in 0..8 {
            assert_eq!(d.read_word(1, 2, 0).perm, PermBits::Read);
        }
        let after = d.usage();
        assert_eq!(after.probes - before.probes, 8, "one probe per read");
        assert_eq!(
            after.misses - before.misses,
            1,
            "only the first read pays a refill; the rest hit the cache"
        );
        // A change invalidates: the next read refills exactly once more.
        d.write_my_word(
            1,
            3,
            DirWord {
                perm: PermBits::Write,
                ..Default::default()
            },
            0,
        );
        let w = d.read_word(1, 3, 0);
        assert_eq!(w.perm, PermBits::Write);
        assert_eq!(d.usage().misses - after.misses, 1);
    }

    #[test]
    fn sparse_claim_word_admits_one_claimant() {
        let d = dir(4, DirectoryMode::Sparse);
        let claim = |proc: u16| DirWord {
            perm: PermBits::Write,
            exclusive: true,
            excl_proc: proc,
        };
        d.write_my_word(2, 1, claim(5), 0);
        // A racing claim from node 3 must not displace node 1's.
        d.write_my_word(2, 3, claim(9), 0);
        assert_eq!(
            d.exclusive_holder(2, 0),
            Some((1, 5)),
            "first claim stands; the loser is caught by validation"
        );
        // But node 3's permission bits landed, so the winner's validation
        // (shared_by_others excluding itself) sees the contender.
        assert!(d.shared_by_others(2, 1, 1));
        // Clearing by a non-holder is a no-op; clearing by the holder works.
        d.write_my_word(2, 3, DirWord::default(), 0);
        assert_eq!(d.exclusive_holder(2, 0), Some((1, 5)));
        d.write_my_word(2, 1, DirWord::default(), 0);
        assert_eq!(d.exclusive_holder(2, 0), None);
    }

    #[test]
    fn sparse_memory_and_update_traffic_beat_replication() {
        let pnodes = 16;
        let [lf, sp] = [DirectoryMode::LockFree, DirectoryMode::Sparse].map(|m| {
            let mc = build_transport(TransportConfig::new((0..pnodes).collect(), pnodes));
            Directory::new(mc, pnodes, 64, m)
        });
        // Replicated: every node holds pages × (pnodes + 1) words. Sparse:
        // one copy of pages × entry_words total (+ node-local caches).
        assert_eq!(lf.usage().mc_bytes, 8 * 64 * 17 * 16);
        assert!(
            sp.usage().mc_bytes < lf.usage().mc_bytes / 10,
            "sparse MC footprint at least 10× smaller at 16 nodes: {} vs {}",
            sp.usage().mc_bytes,
            lf.usage().mc_bytes
        );
        // Update traffic: per-replica broadcast vs one O(1) shard message.
        let w = DirWord {
            perm: PermBits::Write,
            ..Default::default()
        };
        for page in 0..8 {
            lf.write_my_word(page, 0, w, 0);
            sp.write_my_word(page, 0, w, 0);
        }
        assert_eq!(lf.usage().update_bytes, 8 * 8 * (16 - 1));
        assert!(sp.usage().update_bytes <= 12 * 8);
    }

    #[test]
    #[should_panic(expected = "protocol nodes")]
    fn directory_rejects_oversized_clusters_in_release_builds() {
        let mc = build_transport(TransportConfig::new(vec![0], 1));
        // 70k pnodes would truncate in the packed words' 16-bit fields.
        Directory::new(mc, 70_000, 1, DirectoryMode::LockFree);
    }

    #[test]
    fn global_lock_mode_serializes_and_costs_more() {
        let lf = dir(2, DirectoryMode::LockFree);
        let gl = dir(2, DirectoryMode::GlobalLock);
        assert!(gl.update_cost() > lf.update_cost());
        let w = DirWord {
            perm: PermBits::Read,
            ..Default::default()
        };
        // Two updates to the same entry at the same instant must serialize
        // through the gate under GlobalLock.
        let a = gl.write_my_word(0, 0, w, 0);
        let b = gl.write_my_word(0, 1, w, 0);
        assert!(b > a, "second global-locked update queues behind the first");
    }
}
