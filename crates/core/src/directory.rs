//! The replicated global page directory (§2.3).
//!
//! Every shared page has a directory entry replicated on each protocol node
//! through a Memory Channel region (receive mapping everywhere, transmit
//! mapping everywhere, *no* loop-back — writers double their writes into
//! their own copy by hand, exactly as the paper describes in Figure 1).
//!
//! An entry consists of:
//!
//! * **one word per protocol node**, written *only* by that node. The word
//!   holds the page's loosest permissions on that node, and whether a
//!   processor on that node holds the page in exclusive mode. Because each
//!   word has a single writer, no locks are needed — this is the paper's
//!   key "lock-free structures" design (§2.3, evaluated in §3.3.5).
//! * **one home word** holding the page's home node, whether a home has been
//!   assigned, and whether it is still the round-robin default (eligible for
//!   first-touch relocation). The home word is only written under the global
//!   home-selection lock, which the paper deems acceptable because
//!   relocation happens at most once per page.
//!
//! [`DirectoryMode::GlobalLock`] switches in the §3.3.5 ablation: entries
//! are conceptually compressed into a single word, so every modification
//! must take a cluster-wide lock — modeled by a per-entry virtual-time gate
//! plus the paper's higher (16 µs vs 5 µs) update cost.

use std::sync::Arc;

use cashmere_memchan::{MemoryChannel, RegionId, RxBuffer};
use cashmere_sim::{Nanos, Resource};
use cashmere_vmpage::Perm;

use crate::config::DirectoryMode;
use crate::trace::{emit, ProtocolEvent, TraceRecorder};

/// One protocol node's view of a page, packed into its directory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirWord {
    /// Loosest permission held by any processor on the node.
    pub perm: PermBits,
    /// Whether a processor on the node holds the page exclusively.
    pub exclusive: bool,
    /// Cluster-wide processor id of the exclusive holder (valid when
    /// `exclusive`).
    pub excl_proc: u16,
}

/// Permission bits as stored in the directory (mirrors [`Perm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PermBits {
    /// No mapping on the node.
    #[default]
    None,
    /// At least one read-only mapping.
    Read,
    /// At least one read-write mapping.
    Write,
}

impl From<Perm> for PermBits {
    fn from(p: Perm) -> Self {
        match p {
            Perm::None => PermBits::None,
            Perm::Read => PermBits::Read,
            Perm::Write => PermBits::Write,
        }
    }
}

impl DirWord {
    /// Packs into the on-wire word.
    pub fn pack(self) -> u64 {
        let perm = match self.perm {
            PermBits::None => 0u64,
            PermBits::Read => 1,
            PermBits::Write => 2,
        };
        perm | ((self.exclusive as u64) << 4) | ((self.excl_proc as u64) << 8)
    }

    /// Unpacks from the on-wire word.
    pub fn unpack(v: u64) -> Self {
        let perm = match v & 0b11 {
            0 => PermBits::None,
            1 => PermBits::Read,
            _ => PermBits::Write,
        };
        Self {
            perm,
            exclusive: (v >> 4) & 1 == 1,
            excl_proc: ((v >> 8) & 0xFFFF) as u16,
        }
    }

    /// Whether this node has any mapping (counts as a "copy"/sharer).
    pub fn has_copy(self) -> bool {
        !matches!(self.perm, PermBits::None)
    }
}

/// The home word of a page's directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeInfo {
    /// Protocol node that is the page's home.
    pub pnode: usize,
    /// True until the first-touch heuristic relocates the page (or forever,
    /// if first-touch is disabled).
    pub is_default: bool,
}

impl HomeInfo {
    fn pack(self) -> u64 {
        1 | ((self.is_default as u64) << 1) | ((self.pnode as u64) << 8)
    }

    fn unpack(v: u64) -> Self {
        debug_assert!(v & 1 == 1, "home word read before initialization");
        Self {
            pnode: ((v >> 8) & 0xFFFF) as usize,
            is_default: (v >> 1) & 1 == 1,
        }
    }
}

/// The replicated directory.
pub struct Directory {
    mc: Arc<MemoryChannel>,
    region: RegionId,
    pnodes: usize,
    pages: usize,
    mode: DirectoryMode,
    /// Cached per-node receive-buffer handles, one per protocol node. Every
    /// directory read is an atomic load straight through the handle — no
    /// region-table lock, no `Arc` bump per word. This is the host-side
    /// analogue of the paper's lock-free directory (§2.3): the words are
    /// single-writer, so readers never need mutual exclusion, only the
    /// acquire/release ordering the atomics already provide (DESIGN.md §10).
    replicas: Vec<RxBuffer>,
    /// Virtual-time serialization gates for the GlobalLock ablation (one per
    /// page entry; unused — empty — in LockFree mode).
    gates: Vec<Resource>,
    /// Auditor event stream, when enabled.
    rec: Option<Arc<TraceRecorder>>,
}

impl Directory {
    /// Builds the directory region for `pages` pages over `pnodes` protocol
    /// nodes and attaches a receive mapping on every node.
    pub fn new(mc: Arc<MemoryChannel>, pnodes: usize, pages: usize, mode: DirectoryMode) -> Self {
        let words = pages * (pnodes + 1);
        let region = mc.create_region(words.max(1), false);
        for e in 0..pnodes {
            mc.attach_rx(region, e);
        }
        let replicas = (0..pnodes)
            .map(|e| {
                mc.rx_buffer(region, e)
                    .expect("replica attached immediately above")
            })
            .collect();
        let gates = match mode {
            DirectoryMode::LockFree => Vec::new(),
            DirectoryMode::GlobalLock => (0..pages).map(|_| Resource::new()).collect(),
        };
        Self {
            mc,
            region,
            pnodes,
            pages,
            mode,
            replicas,
            gates,
            rec: None,
        }
    }

    /// Attaches the auditor's event recorder.
    pub fn with_recorder(mut self, rec: Arc<TraceRecorder>) -> Self {
        self.rec = Some(rec);
        self
    }

    fn entry_base(&self, page: usize) -> usize {
        debug_assert!(page < self.pages);
        page * (self.pnodes + 1)
    }

    fn word_idx(&self, page: usize, pnode: usize) -> usize {
        debug_assert!(pnode < self.pnodes);
        self.entry_base(page) + pnode
    }

    fn home_idx(&self, page: usize) -> usize {
        self.entry_base(page) + self.pnodes
    }

    /// Per-modification cost under the configured mode (§3.1: 5 µs
    /// lock-free, 16 µs when a global lock must be acquired).
    pub fn update_cost(&self) -> Nanos {
        match self.mode {
            DirectoryMode::LockFree => self.mc.cost().dir_update,
            DirectoryMode::GlobalLock => self.mc.cost().dir_update_locked,
        }
    }

    /// Reads node `pnode`'s word of `page`'s entry from `reader`'s local
    /// replica (an ordinary memory read): a single atomic load through the
    /// cached receive-buffer handle, with no lock on the read path.
    #[inline]
    pub fn read_word(&self, page: usize, pnode: usize, reader: usize) -> DirWord {
        DirWord::unpack(self.replicas[reader].load(self.word_idx(page, pnode)))
    }

    /// Writes `me`'s own word of `page`'s entry: broadcast over the Memory
    /// Channel plus the manual double into the local replica. Returns the
    /// completion time; under [`DirectoryMode::GlobalLock`] the write also
    /// serializes through the entry's global-lock gate.
    pub fn write_my_word(&self, page: usize, me: usize, w: DirWord, now: Nanos) -> Nanos {
        let start = match self.mode {
            DirectoryMode::LockFree => now,
            // Model the global lock's serialization: hold the gate for the
            // difference between the locked and lock-free update costs.
            DirectoryMode::GlobalLock => {
                let hold = self.mc.cost().dir_update_locked - self.mc.cost().dir_update;
                self.gates[page].acquire(now, hold)
            }
        };
        // Producer: emit before the write so any read that observes the new
        // word is sequenced after it.
        emit(&self.rec, || ProtocolEvent::DirWrite {
            pnode: me,
            page,
            perm: match w.perm {
                PermBits::None => 0,
                PermBits::Read => 1,
                PermBits::Write => 2,
            },
            exclusive: w.exclusive,
        });
        let idx = self.word_idx(page, me);
        let done = self.mc.write(self.region, me, idx, w.pack(), start);
        self.replicas[me].store(idx, w.pack());
        done
    }

    /// A deliberately wrong `write_my_word` kept for the model checker's
    /// mutation battery (DESIGN.md §11): the manual local double is done as
    /// *two* stores — a partial word carrying only the permission bits, then
    /// the full word. A reader's single atomic load can land between them
    /// and observe a word the writer never published (the torn state the
    /// real single-store double rules out). The model tests assert the
    /// explorer finds such a schedule within the default budget.
    #[doc(hidden)]
    pub fn write_my_word_mutant_torn_local_double(
        &self,
        page: usize,
        me: usize,
        w: DirWord,
        now: Nanos,
    ) -> Nanos {
        emit(&self.rec, || ProtocolEvent::DirWrite {
            pnode: me,
            page,
            perm: match w.perm {
                PermBits::None => 0,
                PermBits::Read => 1,
                PermBits::Write => 2,
            },
            exclusive: w.exclusive,
        });
        let idx = self.word_idx(page, me);
        let done = self.mc.write(self.region, me, idx, w.pack(), now);
        self.replicas[me].store(idx, w.pack() & 0b11);
        self.replicas[me].store(idx, w.pack());
        done
    }

    /// Reads the home word from `reader`'s replica. Returns `None` if no
    /// home has been assigned yet.
    #[inline]
    pub fn read_home(&self, page: usize, reader: usize) -> Option<HomeInfo> {
        let v = self.replicas[reader].load(self.home_idx(page));
        if v & 1 == 0 {
            None
        } else {
            Some(HomeInfo::unpack(v))
        }
    }

    /// Writes the home word (caller must hold the global home-selection
    /// lock). Broadcast + local double, as for node words.
    pub fn write_home(&self, page: usize, me: usize, h: HomeInfo, now: Nanos) -> Nanos {
        emit(&self.rec, || ProtocolEvent::HomeWrite {
            pnode: me,
            page,
            to: h.pnode,
        });
        let idx = self.home_idx(page);
        let done = self.mc.write(self.region, me, idx, h.pack(), now);
        self.replicas[me].store(idx, h.pack());
        done
    }

    /// Setup-time home initialization (round-robin assignment before the
    /// run); writes every replica directly with no cost.
    pub fn init_home(&self, page: usize, h: HomeInfo) {
        let idx = self.home_idx(page);
        for r in &self.replicas {
            r.store(idx, h.pack());
        }
    }

    /// Protocol nodes (≠ `exclude`) that currently hold a copy of `page`,
    /// per `reader`'s replica.
    pub fn sharers(&self, page: usize, reader: usize, exclude: usize) -> Vec<usize> {
        (0..self.pnodes)
            .filter(|&n| n != exclude && self.read_word(page, n, reader).has_copy())
            .collect()
    }

    /// Whether any node other than `exclude` holds a copy or the exclusive
    /// flag for `page`.
    pub fn shared_by_others(&self, page: usize, reader: usize, exclude: usize) -> bool {
        (0..self.pnodes).any(|n| {
            if n == exclude {
                return false;
            }
            let w = self.read_word(page, n, reader);
            w.has_copy() || w.exclusive
        })
    }

    /// The node currently holding `page` in exclusive mode, if any, with the
    /// holder's cluster-wide processor id.
    pub fn exclusive_holder(&self, page: usize, reader: usize) -> Option<(usize, u16)> {
        (0..self.pnodes).find_map(|n| {
            let w = self.read_word(page, n, reader);
            w.exclusive.then_some((n, w.excl_proc))
        })
    }

    /// Number of protocol nodes.
    pub fn pnodes(&self) -> usize {
        self.pnodes
    }

    /// Number of pages covered.
    pub fn pages(&self) -> usize {
        self.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_sim::CostModel;

    fn dir(pnodes: usize, mode: DirectoryMode) -> Directory {
        let mc = Arc::new(MemoryChannel::new(
            (0..pnodes).map(|e| e % 2).collect(),
            2,
            CostModel::default(),
        ));
        Directory::new(mc, pnodes, 4, mode)
    }

    #[test]
    fn dir_word_packs_and_unpacks() {
        let w = DirWord {
            perm: PermBits::Write,
            exclusive: true,
            excl_proc: 31,
        };
        assert_eq!(DirWord::unpack(w.pack()), w);
        let none = DirWord::default();
        assert_eq!(DirWord::unpack(none.pack()), none);
        assert!(!none.has_copy());
        assert!(w.has_copy());
    }

    #[test]
    fn home_info_round_trips() {
        let h = HomeInfo {
            pnode: 7,
            is_default: true,
        };
        assert_eq!(HomeInfo::unpack(h.pack()), h);
    }

    #[test]
    fn write_is_visible_on_all_replicas_including_writer() {
        let d = dir(4, DirectoryMode::LockFree);
        let w = DirWord {
            perm: PermBits::Read,
            exclusive: false,
            excl_proc: 0,
        };
        d.write_my_word(2, 1, w, 0);
        for reader in 0..4 {
            assert_eq!(d.read_word(2, 1, reader), w, "replica on node {reader}");
        }
    }

    #[test]
    fn sharers_and_exclusive_holder() {
        let d = dir(4, DirectoryMode::LockFree);
        d.write_my_word(
            0,
            1,
            DirWord {
                perm: PermBits::Read,
                ..Default::default()
            },
            0,
        );
        d.write_my_word(
            0,
            3,
            DirWord {
                perm: PermBits::Write,
                exclusive: true,
                excl_proc: 12,
            },
            0,
        );
        assert_eq!(d.sharers(0, 0, usize::MAX), vec![1, 3]);
        assert_eq!(d.sharers(0, 0, 3), vec![1]);
        assert!(d.shared_by_others(0, 0, 1));
        assert!(
            !d.shared_by_others(1, 0, 0),
            "untouched page has no sharers"
        );
        assert_eq!(d.exclusive_holder(0, 0), Some((3, 12)));
        assert_eq!(d.exclusive_holder(1, 0), None);
    }

    #[test]
    fn home_assignment_and_relocation() {
        let d = dir(2, DirectoryMode::LockFree);
        assert_eq!(d.read_home(0, 0), None);
        d.init_home(
            0,
            HomeInfo {
                pnode: 1,
                is_default: true,
            },
        );
        assert_eq!(d.read_home(0, 0).unwrap().pnode, 1);
        assert!(d.read_home(0, 1).unwrap().is_default);
        d.write_home(
            0,
            0,
            HomeInfo {
                pnode: 0,
                is_default: false,
            },
            0,
        );
        for reader in 0..2 {
            let h = d.read_home(0, reader).unwrap();
            assert_eq!(h.pnode, 0);
            assert!(!h.is_default);
        }
    }

    /// Interleaving schedule for the lock-free read fast path: a writer
    /// publishes a sequence of distinct directory words while a reader spins
    /// on `read_word` with `yield_now` between loads. Every observed word
    /// must be one the writer actually published (single-writer words can
    /// never tear or go backwards past the final state), and once the writer
    /// finishes the reader must observe the last write. The scenario body is
    /// shared with `tests/model_directory.rs`, which runs the same
    /// assertions under the interleaving explorer (DESIGN.md §11).
    #[test]
    fn lock_free_reads_never_observe_torn_or_phantom_words() {
        crate::model_scenarios::directory_single_writer_reads(64, usize::MAX, false);
    }

    #[test]
    fn global_lock_mode_serializes_and_costs_more() {
        let lf = dir(2, DirectoryMode::LockFree);
        let gl = dir(2, DirectoryMode::GlobalLock);
        assert!(gl.update_cost() > lf.update_cost());
        let w = DirWord {
            perm: PermBits::Read,
            ..Default::default()
        };
        // Two updates to the same entry at the same instant must serialize
        // through the gate under GlobalLock.
        let a = gl.write_my_word(0, 0, w, 0);
        let b = gl.write_my_word(0, 1, w, 0);
        assert!(b > a, "second global-locked update queues behind the first");
    }
}
