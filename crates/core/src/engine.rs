//! The coherence protocol engine.
//!
//! One [`Engine`] instance embodies the whole simulated cluster's protocol
//! state: the replicated global directory, per-node second-level state
//! (frames, twins, timestamps, per-processor permission bitmaps), the
//! write-notice board, home assignment, and the master page copies. The
//! engine implements *all* of the paper's protocols; [`ProtocolKind`]
//! selects the behavioral differences:
//!
//! * protocol-node granularity (physical node for 2L/2LS, processor for the
//!   one-level protocols),
//! * reconciliation of remote updates with concurrent local writers
//!   (two-way diffing for 2L, shootdown for 2LS — the one-level protocols
//!   have single-processor nodes and never need either),
//! * the store path (twins + outgoing diffs, or 1L's in-line write
//!   doubling),
//! * the home-node optimization (inherent to 2L/2LS; optional for 1LD/1L).
//!
//! The principal operations follow §2.4 of the paper: page faults
//! ([`Engine::read_fault`] / [`Engine::write_fault`]), releases
//! ([`Engine::release_actions`]), acquires ([`Engine::acquire_actions`]),
//! plus exclusive-mode maintenance and the explicit-request paths (page
//! fetch and exclusive-mode break).
//!
//! ### Simulation notes
//!
//! Explicit requests are *serviced by the requesting thread* against the
//! holder's (properly locked) state, charging virtual time as if the remote
//! processor had polled and serviced them — see DESIGN.md §2.4. Per-page
//! protocol state is protected by a per-(node, page) mutex; a thread holds
//! at most one such mutex, except that servicing an exclusive-mode break
//! takes the *holder's* mutex while holding none of its own.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use cashmere_faults::FaultPlan;
use cashmere_memchan::{TransportConfig, TREE_FANOUT};
use cashmere_obs::{LinkMetrics, ProcObs, SpanKind};
use cashmere_sim::{
    FetchShape, Messaging, Nanos, NodeMap, ProcClock, ProcId, Resource, Stats, TimeCategory,
    Topology,
};
use cashmere_transport::{build_transport, Transport};
use cashmere_vmpage::{
    apply_incoming_diff, diff_against_twin, flush_update_twin, DiffRuns, Frame, PagePool,
    PageTable, Perm, Twin, PAGE_BYTES, PAGE_WORDS,
};

use crate::config::{ClusterConfig, DirectoryMode};
use crate::det::DetHandle;
use crate::directory::{DirWord, Directory, HomeInfo, PermBits};
use crate::mc_lock::McLock;
use crate::recovery::{RecoveryStats, RecoverySummary};
use crate::trace::{emit, ProtocolEvent, ReleaseAction, TraceRecorder};
use crate::write_notice::{NleList, NoticeBoard, ProcNoticeList};
use crate::Addr;

/// Per-processor protocol context. Owned by the processor's [`crate::Proc`]
/// handle; passed by `&mut` into every engine operation.
pub struct ProcCtx {
    /// Cluster-wide processor id.
    pub id: ProcId,
    /// Protocol node index.
    pub pnode: usize,
    /// Index of this processor within its protocol node.
    pub local: usize,
    /// Physical node index (for link/bus charging).
    pub phys: usize,
    /// Virtual clock.
    pub clock: ProcClock,
    /// Cached page-frame pointers (stable per (pnode, page) once created).
    pub frames: Vec<Option<Arc<Frame>>>,
    /// The private dirty list: pages written since the last release (§2.3).
    pub dirty: Vec<u32>,
    /// Node-logical time of this processor's most recent acquire.
    pub acquire_ts: u64,
    /// Polling-overhead fraction applied to user time.
    pub poll_fraction: f64,
    /// Memory-bus bytes charged per shared access.
    pub bus_bytes: u64,
    /// This processor's page table — the same object as its
    /// `LocalProc::pt`, cached here so the access fast path skips the
    /// pnodes→procs pointer chase on every read and write.
    pt: Arc<PageTable>,
    /// Per-shared-access polling charge, precomputed from `poll_fraction`
    /// (zero when interrupt messaging is selected or the fraction is zero),
    /// so the fast path avoids an f64 multiply + cast per access.
    poll_access_ns: Nanos,
    /// Pages this context has ever held in exclusive mode (sticky; see
    /// `Engine::write_word` for the in-write-flag gating it permits).
    excl_held: Vec<bool>,
    /// Accumulated unsettled bus bytes (settled in batches).
    pending_bus: u64,
    /// Accumulated unsettled write-doubling bytes (1L; settled in batches).
    pending_double: u64,
    /// Per-processor observability state ([`ClusterConfig::obs`]); `None`
    /// when observability is off, so the disabled cost is one discriminant
    /// test per hook and zero allocations.
    pub obs: Option<Box<ProcObs>>,
    /// Deterministic parallel scheduler handle (DESIGN.md §15); `None` in
    /// the sequential engine, so the disabled cost — like `obs` — is one
    /// discriminant test per hook.
    pub(crate) det: Option<DetHandle>,
}

impl ProcCtx {
    fn new(
        id: ProcId,
        pnode: usize,
        local: usize,
        phys: usize,
        pt: Arc<PageTable>,
        excl_held: Vec<bool>,
        cfg: &ClusterConfig,
    ) -> Self {
        let mut ctx = Self {
            id,
            pnode,
            local,
            phys,
            clock: ProcClock::new(),
            frames: vec![None; cfg.heap_pages],
            dirty: Vec::new(),
            acquire_ts: 0,
            poll_fraction: cfg.poll_fraction,
            bus_bytes: cfg.bus_bytes_per_access,
            pt,
            poll_access_ns: 0,
            excl_held,
            pending_bus: 0,
            pending_double: 0,
            obs: cfg
                .obs
                .then(|| Box::new(ProcObs::new(pnode as u32, id.0 as u32, cfg.heap_pages))),
            det: None,
        };
        ctx.set_poll_fraction(cfg.poll_fraction, cfg);
        ctx
    }

    /// Opens an observability span (no-op when observability is off).
    #[inline]
    pub(crate) fn obs_begin(&mut self, kind: SpanKind, page: i64) {
        if let Some(o) = &mut self.obs {
            o.begin(kind, page, &self.clock);
        }
    }

    /// Closes the innermost observability span, returning its virtual
    /// duration (0 when observability is off).
    #[inline]
    pub(crate) fn obs_end(&mut self, kind: SpanKind) -> Nanos {
        match &mut self.obs {
            Some(o) => o.end(kind, &self.clock),
            None => 0,
        }
    }

    /// Attaches the deterministic-scheduler handle (set by
    /// [`crate::Cluster::run`] before the processor body starts).
    pub(crate) fn set_det(&mut self, handle: DetHandle) {
        self.det = Some(handle);
    }

    /// Lookahead checkpoint (DESIGN.md §15): parks this processor if its
    /// virtual time has reached the scheduler's horizon. Placed at the
    /// entry of every data-access/compute operation; a no-op (one
    /// discriminant test) in the sequential engine.
    #[inline]
    pub(crate) fn det_checkpoint(&self) {
        if let Some(d) = &self.det {
            d.checkpoint(self.clock.now());
        }
    }

    /// Sets the polling-overhead fraction and rederives the per-access
    /// polling charge from it.
    pub(crate) fn set_poll_fraction(&mut self, f: f64, cfg: &ClusterConfig) {
        self.poll_fraction = f;
        self.poll_access_ns = if cfg.cost.messaging == Messaging::Polling && f > 0.0 {
            (cfg.cost.shared_access as f64 * f) as Nanos
        } else {
            0
        };
    }
}

/// Per-(protocol node, page) second-level state (§2.3: second-level
/// directory, twins, timestamps).
#[derive(Default)]
struct NodePage {
    /// The node's local frame, shared by all its processors. `None` until
    /// first mapped. For home pages this is the master copy itself.
    frame: Option<Arc<Frame>>,
    /// The twin (pristine copy), present while a non-home local writer
    /// exists and the page is not exclusive.
    twin: Option<Twin>,
    /// Node-logical time the most recent flush to the home began.
    ts_flush: u64,
    /// Node-logical time of the most recent local update (fetch) completion.
    ts_update: u64,
    /// Node-logical time the most recent write notice was distributed.
    ts_wn: u64,
    /// Local processor holding the page in exclusive mode, if any.
    excl_local: Option<usize>,
    /// Bitmap of local processors with read (or better) mappings.
    readers: u64,
    /// Bitmap of local processors with write mappings.
    writers: u64,
    /// Whether this node acts as the page's home (its frame *is* the
    /// master); set when the mapping is first established.
    is_home: bool,
    /// Sequence number of the most recent page-fetch request this node
    /// issued for this page (fault-recovery: requests are idempotent and
    /// replies are matched against this).
    fetch_seq: u64,
    /// Sequence number of the most recent fetch reply *applied* to this
    /// node's frame. A reply with `seq <= applied_reply_seq` is a replayed
    /// duplicate and is suppressed — applying it against the current twin
    /// would double-apply remote words over newer local state.
    applied_reply_seq: u64,
}

impl NodePage {
    /// The permission this node must advertise in the directory. Beyond the
    /// loosest mapped permission, a node with **no** mapped processors but a
    /// live twin still claims Read: the twin marks unflushed local
    /// modifications (a processor invalidated at its own acquire leaves its
    /// writes in the frame until a later release's residue flush), and the
    /// claim keeps remote nodes from entering exclusive mode — whose break
    /// would fill the master from the holder's whole frame — while those
    /// words have yet to reach the master.
    fn effective_perm(&self) -> PermBits {
        if self.writers != 0 {
            PermBits::Write
        } else if self.readers != 0 || self.twin.is_some() {
            PermBits::Read
        } else {
            PermBits::None
        }
    }

    fn dir_word(&self, excl_proc: u16) -> DirWord {
        DirWord {
            perm: self.effective_perm(),
            exclusive: self.excl_local.is_some(),
            excl_proc,
        }
    }
}

/// Per-processor protocol-shared state (write-notice and NLE lists, page
/// table) — shared because *other* local processors post into the lists and
/// shootdowns downgrade the page table.
struct LocalProc {
    wn: ProcNoticeList,
    nle: NleList,
    pt: Arc<PageTable>,
    /// Cluster-wide id, for directory exclusive-holder words.
    global: ProcId,
    /// True while the processor is between its write-permission check and
    /// the completion of the store. Shootdowns and exclusive-mode breaks
    /// wait for this to clear after downgrading the page table — the
    /// simulation's equivalent of the synchronous interrupt a real TLB
    /// shootdown delivers (an in-flight store finishing after the shooter's
    /// flush would otherwise be lost).
    in_write: AtomicBool,
}

/// Per-protocol-node state.
struct PNode {
    /// The node's logical protocol clock (§2.2: incremented on protocol
    /// events — faults, flushes, acquires, releases).
    clock: AtomicU64,
    /// Logical time the most recent release by any local processor began.
    last_release: AtomicU64,
    /// Serializes bin-drain + distribution on this node (a node-local lock,
    /// as in §2.3's "several intra-node data structures … are protected by
    /// local locks"). Without it, a processor's acquire can complete while
    /// a sibling's concurrent distribution has drained the bins but not yet
    /// inserted into this processor's list — losing an invalidation.
    distribute: Mutex<()>,
    pages: Vec<Mutex<NodePage>>,
    procs: Vec<LocalProc>,
    /// Recycles twin / whole-frame snapshot buffers for this node's faults
    /// and exclusive-mode breaks (DESIGN.md §10). Host-side only: no
    /// virtual-time charge depends on where a twin's memory came from.
    twin_pool: PagePool,
}

/// The protocol engine. One per cluster; shared by all processors.
pub struct Engine {
    cfg: ClusterConfig,
    topo: Topology,
    map: NodeMap,
    mc: Arc<dyn Transport>,
    dir: Directory,
    notices: NoticeBoard,
    /// Master copies, one per page, location-independent (see DESIGN.md:
    /// page data lives in frames; the Memory Channel region machinery
    /// carries the directory and locks, and transfers are charged through
    /// the link model).
    masters: Vec<OnceLock<Arc<Frame>>>,
    pnodes: Vec<PNode>,
    /// The global home-selection lock (§2.3: the only protocol use of
    /// cluster-wide locks).
    home_lock: McLock,
    /// Per-physical-node memory buses.
    buses: Vec<Resource>,
    /// Whether *any* page has ever entered exclusive mode on this engine.
    /// While false, [`Engine::make_ctx`] can skip the per-page scan that
    /// seeds the sticky `excl_held` bitmap (a fresh cluster takes
    /// `procs × pages` node-page locks otherwise).
    any_exclusive: AtomicBool,
    /// Auditor event stream (`Some` only when [`ClusterConfig::audit`]).
    rec: Option<Arc<TraceRecorder>>,
    /// The fault plan, when one is installed (`ClusterConfig::fault_plan`).
    /// Shared with the Memory Channel; the engine consults it at the
    /// user-level request interposition points (page fetch, exclusive
    /// break) and recovers from the losses it injects.
    faults: Option<Arc<FaultPlan>>,
    /// Per-protocol-node recovery counters (timeouts, retries, duplicate
    /// replies suppressed).
    recovery: Vec<RecoveryStats>,
    /// Per-link traffic counters, shared with the Memory Channel (`Some`
    /// only when [`ClusterConfig::obs`]).
    link_metrics: Option<Arc<LinkMetrics>>,
    /// Cluster-wide statistics.
    pub stats: Stats,
}

/// Whether `CASHMERE_TRACE` protocol tracing is enabled (diagnostics only).
fn trace_on() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("CASHMERE_TRACE").is_some())
}

/// Capacity of the diagnostic trace ring. Once full, the oldest entry is
/// overwritten, so arbitrarily long traced runs hold at most this many
/// lines (the old implementation grew an unbounded `Vec` and periodically
/// discarded *everything*, losing the recent tail a diagnosis needs).
const TRACE_RING_CAP: usize = 65_536;

/// Fixed-capacity diagnostic ring (populated when `CASHMERE_TRACE` is set).
struct TraceRing {
    buf: Vec<String>,
    /// Oldest entry / next overwrite slot once `buf` reached capacity.
    next: usize,
}

/// In-memory trace ring (diagnostics only).
static TRACE_RING: Mutex<TraceRing> = Mutex::new(TraceRing {
    buf: Vec::new(),
    next: 0,
});

/// Appends one diagnostic line, overwriting the oldest once the ring is at
/// [`TRACE_RING_CAP`]. Public so the ring's bounding behavior is testable
/// without enabling `CASHMERE_TRACE`; the [`trace!`] macro is the real
/// producer.
pub fn push_trace(line: String) {
    let mut ring = TRACE_RING.lock();
    if ring.buf.len() < TRACE_RING_CAP {
        ring.buf.push(line);
    } else {
        let i = ring.next;
        ring.buf[i] = line;
        ring.next = (i + 1) % TRACE_RING_CAP;
    }
}

/// Dumps and clears the diagnostic trace ring, oldest entry first.
pub fn dump_trace() -> Vec<String> {
    let mut ring = TRACE_RING.lock();
    let n = ring.next;
    ring.next = 0;
    let mut v = std::mem::take(&mut ring.buf);
    v.rotate_left(n);
    v
}

macro_rules! trace {
    ($($arg:tt)*) => {
        if trace_on() {
            $crate::engine::push_trace(format!($($arg)*));
        }
    };
}

impl Engine {
    /// Builds the engine: directory, notice board, per-node state, home
    /// round-robin assignment.
    pub fn new(cfg: ClusterConfig) -> Arc<Self> {
        let topo = cfg.topology;
        let map = cfg.protocol.node_map();
        let n_pnodes = map.protocol_nodes(&topo);
        let pages = cfg.heap_pages;
        // A real (release-mode) bound: the directory's exclusive-holder
        // fields carry cluster-wide processor ids in 16 bits, and a
        // silently truncated id at very large shapes would corrupt the
        // exclusive-mode protocol.
        assert!(
            topo.total_procs() <= u16::MAX as usize,
            "cluster exceeds the directory's 16-bit processor-id fields"
        );
        let link_of: Vec<usize> = (0..n_pnodes)
            .map(|pn| map.physical_of(&topo, cashmere_sim::NodeId(pn)).0)
            .collect();
        let link_metrics = cfg.obs.then(|| Arc::new(LinkMetrics::new(topo.nodes())));
        // The `cfg.cost.clone()` below is the one construction-time deep
        // clone that is semantically required: the transport *owns* its
        // `CostModel` (the link layer must keep charging consistently even
        // if a caller later tweaks its config copy). `fault_plan` and
        // `link_metrics` are `Option<Arc<_>>`, so their `.clone()`s are
        // reference-count bumps sharing one plan / one counter set —
        // exactly what the fault and observability designs need.
        let mc = build_transport(
            TransportConfig::new(link_of, topo.nodes())
                .with_backend(cfg.backend)
                .with_cost(cfg.cost.clone())
                .with_fault_plan(cfg.fault_plan.clone())
                .with_metrics(link_metrics.clone()),
        );
        let rec = cfg.audit.then(|| Arc::new(TraceRecorder::new()));
        let mut dir = Directory::new(Arc::clone(&mc), n_pnodes, pages, cfg.directory);
        let gate_hold = cfg
            .cost
            .dir_update_locked
            .saturating_sub(cfg.cost.dir_update);
        let mut notices = NoticeBoard::new(n_pnodes, cfg.directory, gate_hold);
        let mut home_lock = McLock::new(Arc::clone(&mc), n_pnodes);
        if let Some(r) = &rec {
            dir = dir.with_recorder(Arc::clone(r));
            notices = notices.with_recorder(Arc::clone(r));
            home_lock = home_lock.with_recorder(Arc::clone(r));
        }

        // Initial round-robin home assignment at superpage granularity,
        // flagged as default so first touch may relocate (§2.3).
        let spp = cfg.pages_per_superpage.max(1);
        for page in 0..pages {
            let sp = page / spp;
            dir.init_home(
                page,
                HomeInfo {
                    pnode: sp % n_pnodes,
                    is_default: true,
                },
            );
        }

        let total_procs = topo.total_procs();
        let pnodes = (0..n_pnodes)
            .map(|pn| {
                let locals = map.procs_of(&topo, cashmere_sim::NodeId(pn));
                // Notice-list stripes: one per local poster; NLE stripes:
                // one per cluster processor (exclusive-mode breakers post
                // on the holder's behalf from any node).
                let nlocal = locals.len();
                PNode {
                    clock: AtomicU64::new(1),
                    last_release: AtomicU64::new(0),
                    distribute: Mutex::new(()),
                    pages: (0..pages)
                        .map(|_| Mutex::new(NodePage::default()))
                        .collect(),
                    procs: locals
                        .into_iter()
                        .enumerate()
                        .map(|(li, p)| LocalProc {
                            wn: match &rec {
                                Some(r) => ProcNoticeList::new(pages, nlocal).with_identity(
                                    pn,
                                    li,
                                    Arc::clone(r),
                                ),
                                None => ProcNoticeList::new(pages, nlocal),
                            },
                            nle: NleList::new(total_procs),
                            pt: Arc::new(PageTable::new(pages)),
                            global: p,
                            in_write: AtomicBool::new(false),
                        })
                        .collect(),
                    twin_pool: PagePool::new(),
                }
            })
            .collect();

        Arc::new(Self {
            topo,
            map,
            mc,
            dir,
            notices,
            masters: (0..pages).map(|_| OnceLock::new()).collect(),
            pnodes,
            home_lock,
            buses: (0..topo.nodes()).map(|_| Resource::new()).collect(),
            any_exclusive: AtomicBool::new(false),
            rec,
            faults: cfg.fault_plan.clone(),
            recovery: (0..n_pnodes).map(|_| RecoveryStats::new()).collect(),
            link_metrics,
            cfg,
            stats: Stats::new(),
        })
    }

    /// The shared per-link traffic counters, when [`ClusterConfig::obs`] is
    /// set.
    pub fn link_metrics(&self) -> Option<&Arc<LinkMetrics>> {
        self.link_metrics.as_ref()
    }

    /// The auditor's event recorder, when [`ClusterConfig::audit`] is set.
    pub fn recorder(&self) -> Option<&Arc<TraceRecorder>> {
        self.rec.as_ref()
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Live per-protocol-node recovery counters.
    pub fn recovery_stats(&self) -> &[RecoveryStats] {
        &self.recovery
    }

    /// Snapshot of the cluster's recovery state: per-node counters plus the
    /// fault plan's injection counters (for [`crate::Report`]).
    pub fn recovery_summary(&self) -> RecoverySummary {
        RecoverySummary {
            per_node: self.recovery.iter().map(RecoveryStats::counts).collect(),
            faults_injected: self
                .faults
                .as_ref()
                .map(|p| p.stats().snapshot())
                .unwrap_or_default(),
            fault_seed: self.faults.as_ref().map(|p| p.seed()),
        }
    }

    /// Creates the protocol context for processor `p`.
    pub fn make_ctx(&self, p: ProcId) -> ProcCtx {
        let pnode = self.map.pnode_of(&self.topo, p).0;
        let local = self
            .map
            .procs_of(&self.topo, cashmere_sim::NodeId(pnode))
            .iter()
            .position(|&q| q == p)
            .expect("processor not on its protocol node");
        let phys = self.topo.node_of(p).0;
        let pt = Arc::clone(&self.pnodes[pnode].procs[local].pt);
        // Seed the sticky exclusive-held bitmap from current protocol state:
        // page-table state persists across `Cluster::run` calls on the same
        // cluster, so a fresh context for a processor still registered as a
        // page's exclusive holder must start with that page's bit set. On an
        // engine where no page has ever gone exclusive (Acquire pairs with
        // the Release in `try_enter_exclusive`) the scan is skipped.
        let excl_held = if self.any_exclusive.load(Ordering::Acquire) {
            (0..self.cfg.heap_pages)
                .map(|page| self.pnodes[pnode].pages[page].lock().excl_local == Some(local))
                .collect()
        } else {
            vec![false; self.cfg.heap_pages]
        };
        ProcCtx::new(p, pnode, local, phys, pt, excl_held, &self.cfg)
    }

    fn master(&self, page: usize) -> &Arc<Frame> {
        self.masters[page].get_or_init(|| Arc::new(Frame::new()))
    }

    fn node_now(&self, pnode: usize) -> u64 {
        // relaxed-ok: the only property the protocol needs from
        // the clock is that draws on one node are distinct and allocated
        // monotonically, which `fetch_add` guarantees through the atomic's
        // modification order under *any* memory ordering. No consumer reads
        // a timestamp outside the per-(node, page) mutex that stored it, so
        // the mutex's acquire/release edges order all surrounding state.
        // The auditor's TimestampCollision check verifies the per-node
        // uniqueness invariant on every audited run.
        let ts = self.pnodes[pnode].clock.fetch_add(1, Ordering::Relaxed);
        emit(&self.rec, || ProtocolEvent::ClockTick { pnode, ts });
        ts
    }

    fn pt<'a>(&self, ctx: &'a ProcCtx) -> &'a PageTable {
        // Same object as `self.pnodes[ctx.pnode].procs[ctx.local].pt`,
        // reached without the two-level indexing on every access.
        ctx.pt.as_ref()
    }

    // ------------------------------------------------------------------
    // Data access fast path
    // ------------------------------------------------------------------

    /// Reads the 64-bit word at `addr`, faulting if necessary.
    pub fn read_word(&self, ctx: &mut ProcCtx, addr: Addr) -> u64 {
        ctx.det_checkpoint();
        let page = addr / PAGE_WORDS;
        if self.pt(ctx).read_faults(page) {
            self.stats.read_faults.inc();
            self.fault_common(ctx, page, addr % PAGE_WORDS, /* write: */ false);
        } else if ctx.frames[page].is_none() {
            self.refresh_frame_cache(ctx, page);
        }
        self.charge_access(ctx);
        // The fault path always installs the frame pointer.
        ctx.frames[page]
            .as_ref()
            .expect("fault left no frame")
            .load(addr % PAGE_WORDS)
    }

    /// Repopulates a context's cached frame pointer for a page it already
    /// has permissions on — needed when a fresh [`ProcCtx`] is created for
    /// a processor whose page-table state persists (e.g. a second
    /// [`crate::Cluster::run`] on the same cluster).
    fn refresh_frame_cache(&self, ctx: &mut ProcCtx, page: usize) {
        let np = self.pnodes[ctx.pnode].pages[page].lock();
        ctx.frames[page] = Some(Arc::clone(
            np.frame
                .as_ref()
                .expect("permissioned page must have a frame"),
        ));
    }

    /// Writes the 64-bit word at `addr`, faulting if necessary. Under the
    /// write-doubling protocols the store is also sent to the home copy
    /// in-line.
    pub fn write_word(&self, ctx: &mut ProcCtx, addr: Addr, val: u64) {
        ctx.det_checkpoint();
        let page = addr / PAGE_WORDS;
        if ctx.frames[page].is_none() && !self.pt(ctx).write_faults(page) {
            self.refresh_frame_cache(ctx, page);
        }
        // The in-write flag must cover the permission check and the store
        // together (SeqCst pairs with the downgrading shooter's check), but
        // must be clear while the fault handler runs — the shooter spins on
        // it while holding the node-page lock the handler needs.
        //
        // Only two downgraders ever race with a write in flight: a 2LS
        // shootdown (which consults every local writer's flag) and an
        // exclusive-mode break (which consults only the registered holder's
        // flag). So unless this protocol shoots down, or this context has
        // ever held the page exclusively, no other thread can revoke our
        // write permission mid-store — the flag and the re-check loop are
        // provably unnecessary and the fast path skips both SeqCst stores.
        let shootdown = self.cfg.protocol.uses_shootdown();
        let mut guarded;
        loop {
            // Recomputed per iteration: a fault below can enter exclusive
            // mode, flipping this context's `excl_held` bit mid-loop.
            guarded = shootdown || ctx.excl_held[page];
            if guarded {
                let in_write = &self.pnodes[ctx.pnode].procs[ctx.local].in_write;
                in_write.store(true, Ordering::SeqCst);
                if !self.pt(ctx).write_faults(page) {
                    break;
                }
                in_write.store(false, Ordering::SeqCst);
            } else if !self.pt(ctx).write_faults(page) {
                break;
            }
            self.stats.write_faults.inc();
            self.fault_common(ctx, page, addr % PAGE_WORDS, /* write: */ true);
        }
        let off = addr % PAGE_WORDS;
        // Store before the access charge (the store itself is charge-free,
        // so virtual time is unchanged): the in-write flag then clears
        // before `charge_access`, whose bus settle is a lookahead barrier
        // under the deterministic scheduler — a processor must never park
        // with the flag raised (a gated shooter would spin on it forever).
        ctx.frames[page]
            .as_ref()
            .expect("fault left no frame")
            .store(off, val);
        if guarded {
            self.pnodes[ctx.pnode].procs[ctx.local]
                .in_write
                .store(false, Ordering::Release);
        }
        self.charge_access(ctx);
        if self.cfg.protocol.write_through() {
            let master = self.master(page);
            // Home procs write the master directly (frame == master); only
            // remote copies need the doubled write.
            if !Arc::ptr_eq(ctx.frames[page].as_ref().unwrap(), master) {
                master.store(off, val);
                ctx.clock.charge(
                    TimeCategory::WriteDoubling,
                    self.cfg.cost.write_double_per_store,
                );
                ctx.pending_double += 8;
                self.stats.data_bytes.add(8);
                if ctx.pending_double >= 512 {
                    self.settle_double(ctx);
                }
            }
        }
    }

    fn charge_access(&self, ctx: &mut ProcCtx) {
        let c = &self.cfg.cost;
        ctx.clock.charge(TimeCategory::User, c.shared_access);
        if ctx.poll_access_ns > 0 {
            // Precomputed in `ProcCtx::set_poll_fraction` — identical to
            // `(shared_access as f64 * poll_fraction) as Nanos` but without
            // the per-access float multiply.
            ctx.clock.charge(TimeCategory::Polling, ctx.poll_access_ns);
        }
        // Cache-capacity traffic through the node's shared bus, settled in
        // batches to keep contention on the Resource realistic but cheap.
        ctx.pending_bus += ctx.bus_bytes;
        if ctx.pending_bus >= 4096 {
            self.settle_bus(ctx);
        }
    }

    /// Settles the accumulated bus batch against the node's shared bus.
    /// The bus `Resource` is shared mutable state whose grant times depend
    /// on acquisition order, so under the deterministic scheduler the
    /// settle is a lookahead barrier (DESIGN.md §15).
    fn settle_bus(&self, ctx: &mut ProcCtx) {
        let det = ctx.det.clone();
        if let Some(d) = &det {
            d.gate_enter(ctx.clock.now());
        }
        let busy = ctx.pending_bus * self.cfg.cost.node_bus_ns_per_byte;
        ctx.pending_bus = 0;
        let done = self.buses[ctx.phys].acquire(ctx.clock.now(), busy);
        ctx.clock.wait_until(done);
        if let Some(d) = &det {
            d.gate_exit(ctx.clock.now());
        }
    }

    /// Settles the accumulated write-doubling bytes through the node's MC
    /// link in bulk (the hardware's write buffer coalesces them; the writes
    /// are posted, so the writer does not block). Like [`Self::settle_bus`],
    /// a lookahead barrier: link occupancy is order-sensitive shared state.
    fn settle_double(&self, ctx: &mut ProcCtx) {
        let det = ctx.det.clone();
        if let Some(d) = &det {
            d.gate_enter(ctx.clock.now());
        }
        let _ = self
            .mc
            .charge_link(ctx.pnode, ctx.pending_double, ctx.clock.now());
        ctx.pending_double = 0;
        if let Some(d) = &det {
            d.gate_exit(ctx.clock.now());
        }
    }

    /// Charges `n` shared accesses in bulk, *bit-identically* to `n` calls
    /// of [`Self::charge_access`]. The per-access charges are constants, so
    /// `k` of them sum to `k × constant` regardless of grouping; the only
    /// ordering-sensitive step is the bus settle, which the scalar path
    /// performs after exactly the access that pushes `pending_bus` to the
    /// 4096-byte threshold. The loop below replays each settle at the same
    /// access index (the same clock value, since the intervening charges
    /// are pure additions), so bus `Resource` acquisitions happen at
    /// identical virtual times.
    fn charge_accesses(&self, ctx: &mut ProcCtx, mut n: u64) {
        if n == 0 {
            return;
        }
        let c = &self.cfg.cost;
        if ctx.bus_bytes == 0 {
            ctx.clock.charge(TimeCategory::User, c.shared_access * n);
            if ctx.poll_access_ns > 0 {
                ctx.clock
                    .charge(TimeCategory::Polling, ctx.poll_access_ns * n);
            }
            return;
        }
        while n > 0 {
            // Accesses until the batch crosses the settle threshold
            // (`charge_access` keeps `pending_bus < 4096` between calls).
            let to_settle = 4096u64
                .saturating_sub(ctx.pending_bus)
                .div_ceil(ctx.bus_bytes)
                .max(1);
            let k = to_settle.min(n);
            ctx.clock.charge(TimeCategory::User, c.shared_access * k);
            if ctx.poll_access_ns > 0 {
                ctx.clock
                    .charge(TimeCategory::Polling, ctx.poll_access_ns * k);
            }
            ctx.pending_bus += ctx.bus_bytes * k;
            if ctx.pending_bus >= 4096 {
                self.settle_bus(ctx);
            }
            n -= k;
        }
    }

    /// Reads a run of consecutive words starting at `addr`, faulting
    /// page-by-page exactly as a word-at-a-time loop would. Virtual time is
    /// charged through [`Self::charge_accesses`] (bit-identical to the
    /// scalar loop); values match the scalar loop because read permission,
    /// once present, is only ever revoked by this processor's *own*
    /// acquire — which cannot run mid-call.
    pub fn read_run(&self, ctx: &mut ProcCtx, addr: Addr, out: &mut [u64]) {
        ctx.det_checkpoint();
        let total = out.len();
        let mut done = 0;
        while done < total {
            let page = (addr + done) / PAGE_WORDS;
            let off = (addr + done) % PAGE_WORDS;
            let n = (total - done).min(PAGE_WORDS - off);
            if self.pt(ctx).read_faults(page) {
                self.stats.read_faults.inc();
                self.fault_common(ctx, page, off, /* write: */ false);
            } else if ctx.frames[page].is_none() {
                self.refresh_frame_cache(ctx, page);
            }
            self.charge_accesses(ctx, n as u64);
            ctx.frames[page]
                .as_ref()
                .expect("fault left no frame")
                .load_run(off, &mut out[done..done + n]);
            done += n;
        }
    }

    /// Writes a run of consecutive words starting at `addr`, faulting
    /// page-by-page. Under a guarded page (shootdown protocols or a page
    /// this context has held exclusively) the in-write flag is raised over
    /// the whole page sub-run: the mutual-exclusion argument of
    /// [`Self::write_word`] is unchanged (no lock is held while storing; a
    /// concurrent shooter merely waits for the full sub-run, and its flush
    /// then captures every word of it). Under the write-doubling protocols
    /// the per-page charges go through [`Self::charge_doubled_stores`],
    /// which replays the scalar loop's charge/settle sequence exactly.
    pub fn write_run(&self, ctx: &mut ProcCtx, addr: Addr, vals: &[u64]) {
        ctx.det_checkpoint();
        let write_through = self.cfg.protocol.write_through();
        let total = vals.len();
        let mut done = 0;
        while done < total {
            let page = (addr + done) / PAGE_WORDS;
            let off = (addr + done) % PAGE_WORDS;
            let n = (total - done).min(PAGE_WORDS - off);
            if ctx.frames[page].is_none() && !self.pt(ctx).write_faults(page) {
                self.refresh_frame_cache(ctx, page);
            }
            let shootdown = self.cfg.protocol.uses_shootdown();
            let mut guarded;
            loop {
                // Recomputed per iteration — see `write_word`.
                guarded = shootdown || ctx.excl_held[page];
                if guarded {
                    let in_write = &self.pnodes[ctx.pnode].procs[ctx.local].in_write;
                    in_write.store(true, Ordering::SeqCst);
                    if !self.pt(ctx).write_faults(page) {
                        break;
                    }
                    in_write.store(false, Ordering::SeqCst);
                } else if !self.pt(ctx).write_faults(page) {
                    break;
                }
                self.stats.write_faults.inc();
                self.fault_common(ctx, page, off, /* write: */ true);
            }
            let frame = ctx.frames[page].as_ref().expect("fault left no frame");
            frame.store_run(off, &vals[done..done + n]);
            let doubled = write_through && {
                let master = self.master(page);
                if Arc::ptr_eq(frame, master) {
                    false
                } else {
                    master.store_run(off, &vals[done..done + n]);
                    true
                }
            };
            // Clear the in-write flag before the charges: their settles are
            // lookahead barriers under the deterministic scheduler, and a
            // processor must never park with the flag raised (see
            // `write_word`). The charges are pure clock additions plus
            // settles that never read the flag, so virtual time is
            // unchanged by the move.
            if guarded {
                self.pnodes[ctx.pnode].procs[ctx.local]
                    .in_write
                    .store(false, Ordering::Release);
            }
            if doubled {
                self.charge_doubled_stores(ctx, n as u64);
            } else {
                self.charge_accesses(ctx, n as u64);
            }
            done += n;
        }
    }

    /// Charges `n` write-doubled stores in bulk, bit-identically to `n`
    /// iterations of [`Self::write_word`]'s write-through tail (access
    /// charge + doubling charge + the 4096-byte bus and 512-byte link
    /// settles). Both settle counters advance by a constant per store, so
    /// each settle fires after the same store index — at the same clock
    /// value — as in the scalar loop; within a batch the charges are pure
    /// additions and commute. The one ordering quirk preserved below: the
    /// store that trips the bus settle charges its own doubling cost
    /// *after* the bus wait, exactly as the scalar sequence does.
    fn charge_doubled_stores(&self, ctx: &mut ProcCtx, mut n: u64) {
        let c = &self.cfg.cost;
        let wd = c.write_double_per_store;
        self.stats.data_bytes.add(8 * n);
        while n > 0 {
            let k_bus = if ctx.bus_bytes == 0 {
                u64::MAX
            } else {
                4096u64
                    .saturating_sub(ctx.pending_bus)
                    .div_ceil(ctx.bus_bytes)
                    .max(1)
            };
            // `pending_double` stays a multiple of 8 below 512.
            let k_dbl = (512u64.saturating_sub(ctx.pending_double))
                .div_ceil(8)
                .max(1);
            let k = k_bus.min(k_dbl).min(n);
            ctx.clock.charge(TimeCategory::User, c.shared_access * k);
            if ctx.poll_access_ns > 0 {
                ctx.clock
                    .charge(TimeCategory::Polling, ctx.poll_access_ns * k);
            }
            ctx.pending_bus += ctx.bus_bytes * k;
            if ctx.pending_bus >= 4096 {
                if k > 1 {
                    ctx.clock.charge(TimeCategory::WriteDoubling, wd * (k - 1));
                }
                self.settle_bus(ctx);
                ctx.clock.charge(TimeCategory::WriteDoubling, wd);
            } else {
                ctx.clock.charge(TimeCategory::WriteDoubling, wd * k);
            }
            ctx.pending_double += 8 * k;
            if ctx.pending_double >= 512 {
                self.settle_double(ctx);
            }
            n -= k;
        }
    }

    /// Charges `ns` of application compute time (plus polling overhead).
    pub fn compute(&self, ctx: &mut ProcCtx, ns: Nanos) {
        ctx.det_checkpoint();
        ctx.clock.charge(TimeCategory::User, ns);
        if self.cfg.cost.messaging == Messaging::Polling && ctx.poll_fraction > 0.0 {
            ctx.clock.charge(
                TimeCategory::Polling,
                (ns as f64 * ctx.poll_fraction) as Nanos,
            );
        }
    }

    // ------------------------------------------------------------------
    // Home assignment (§2.3 "Home node selection", "Superpages")
    // ------------------------------------------------------------------

    /// Resolves the page's home, running the first-touch relocation
    /// heuristic on the first fault of a still-default superpage.
    fn resolve_home(&self, ctx: &mut ProcCtx, page: usize) -> usize {
        let home = self
            .dir
            .read_home(page, ctx.pnode)
            .expect("home initialized at startup");
        if !home.is_default || !self.cfg.first_touch {
            return home.pnode;
        }
        // First touch: relocate the whole superpage to us, once, under the
        // global home-selection lock (the only protocol use of global
        // locks; "because we only relocate once, the use of locks does not
        // impact performance").
        ctx.obs_begin(SpanKind::McLock, page as i64);
        let vt = self
            .home_lock
            .acquire(ctx.pnode, ctx.clock.now(), self.lock_cost());
        ctx.clock.wait_until(vt);
        ctx.clock
            .charge(TimeCategory::Protocol, self.cfg.cost.dir_update_locked);
        let home = self
            .dir
            .read_home(page, ctx.pnode)
            .expect("home initialized");
        let chosen = if home.is_default {
            let spp = self.cfg.pages_per_superpage.max(1);
            let sp_base = page / spp * spp;
            for p in sp_base..(sp_base + spp).min(self.cfg.heap_pages) {
                self.dir.write_home(
                    p,
                    ctx.pnode,
                    HomeInfo {
                        pnode: ctx.pnode,
                        is_default: false,
                    },
                    ctx.clock.now(),
                );
                self.stats.directory_updates.inc();
                if let Some(o) = &mut ctx.obs {
                    o.metrics.directory_updates += 1;
                }
            }
            self.stats.home_relocations.inc();
            ctx.pnode
        } else {
            home.pnode
        };
        let vt = self.home_lock.release(ctx.pnode, ctx.clock.now());
        ctx.clock.wait_until(vt);
        if let Some(o) = &mut ctx.obs {
            o.end(SpanKind::McLock, &ctx.clock);
            o.metrics.mc_lock_acquires += 1;
        }
        chosen
    }

    fn lock_cost(&self) -> Nanos {
        if self.cfg.protocol.is_two_level() {
            self.cfg.cost.lock_two_level
        } else {
            self.cfg.cost.lock_one_level
        }
    }

    /// Whether `ctx`'s node acts as home for a page homed at `home_pnode`:
    /// either it *is* the home protocol node, or the home-node optimization
    /// extends master access to every processor on the home physical node.
    fn acts_as_home(&self, ctx: &ProcCtx, home_pnode: usize) -> bool {
        if ctx.pnode == home_pnode {
            return true;
        }
        self.cfg.protocol.home_node_opt()
            && !self.cfg.protocol.is_two_level()
            && self
                .map
                .physical_of(&self.topo, cashmere_sim::NodeId(home_pnode))
                .0
                == ctx.phys
    }

    // ------------------------------------------------------------------
    // Page faults (§2.4.1)
    // ------------------------------------------------------------------

    /// Handles a read fault on `page` by `ctx` (§2.4.1).
    pub fn read_fault(&self, ctx: &mut ProcCtx, page: usize) {
        self.stats.read_faults.inc();
        self.fault_common(ctx, page, 0, /* write: */ false);
    }

    /// Handles a write fault on `page` by `ctx` (§2.4.1).
    pub fn write_fault(&self, ctx: &mut ProcCtx, page: usize) {
        self.stats.write_faults.inc();
        self.fault_common(ctx, page, 0, /* write: */ true);
    }

    /// Fault entry point: under the deterministic scheduler the whole
    /// handler is one exclusive gate (DESIGN.md §15) — it reads and writes
    /// the directory, node-page state, the notice board, node clocks, the
    /// home lock, and the transport, all order-sensitive shared state.
    fn fault_common(&self, ctx: &mut ProcCtx, page: usize, word: usize, write: bool) {
        match ctx.det.clone() {
            Some(d) => {
                d.gate_enter(ctx.clock.now());
                self.fault_common_inner(ctx, page, word, write);
                d.gate_exit(ctx.clock.now());
            }
            None => self.fault_common_inner(ctx, page, word, write),
        }
    }

    fn fault_common_inner(&self, ctx: &mut ProcCtx, page: usize, word: usize, write: bool) {
        ctx.obs_begin(SpanKind::Fault, page as i64);
        if let Some(o) = &mut ctx.obs {
            if write {
                o.metrics.write_faults += 1;
            } else {
                o.metrics.read_faults += 1;
            }
            o.heat(page);
        }
        // Borrow, don't clone: every call below takes `&self`, so the fault
        // path no longer deep-copies the whole cost table per fault.
        let c = &self.cfg.cost;
        ctx.clock.charge(TimeCategory::Protocol, c.page_fault);
        let home = self.resolve_home(ctx, page);
        let my_home = self.acts_as_home(ctx, home);

        loop {
            // Cheap pre-check: break a remote exclusive holder before
            // taking our own per-page lock (we hold none of our own locks
            // while touching the holder's — lock-ordering discipline).
            if let Some((holder, hproc)) = self.dir.exclusive_holder(page, ctx.pnode) {
                if holder != ctx.pnode {
                    ctx.obs_begin(SpanKind::Break, page as i64);
                    self.break_exclusive(ctx, page, holder, hproc, home);
                    if let Some(o) = &mut ctx.obs {
                        let dur = o.end(SpanKind::Break, &ctx.clock);
                        o.metrics.break_rtt.record(dur);
                        o.metrics.breaks += 1;
                        if self.cfg.cost.messaging == Messaging::Interrupt {
                            o.metrics.interrupts += 1;
                        }
                    }
                    continue;
                }
            }

            let mut np = self.pnodes[ctx.pnode].pages[page].lock();
            let node_now = self.node_now(ctx.pnode);

            // Establish the frame.
            if np.frame.is_none() {
                if my_home {
                    np.frame = Some(Arc::clone(self.master(page)));
                    np.is_home = true;
                } else {
                    np.frame = Some(Arc::new(Frame::new()));
                }
            }

            // Publish our sharing intent in the directory FIRST (§2.4.1:
            // "a processor first modifies the page's second-level directory
            // entry … if no other local processor has the same permissions,
            // the global directory entry is modified as well"). Publishing
            // before the exclusivity re-check closes the race with a
            // concurrent exclusive-mode entry: either the enterer's
            // validation read sees our word, or our re-check below sees its
            // exclusive flag — standard flag-race reasoning.
            let bit = 1u64 << ctx.local;
            let before = np.effective_perm();
            np.readers |= bit;
            if write {
                np.writers |= bit;
            }
            if np.effective_perm() != before {
                self.write_dir(ctx, page, &np);
            }

            // Re-validate exclusivity now that we are visible.
            if let Some((holder, _)) = self.dir.exclusive_holder(page, ctx.pnode) {
                if holder != ctx.pnode {
                    drop(np);
                    continue;
                }
            }

            // Fetch an up-to-date copy if needed (§2.4.1: "if no local copy
            // exists, or if the local copy's update timestamp precedes its
            // write notice timestamp or the processor's acquire timestamp,
            // whichever is earlier").
            let never_fetched = np.ts_update == 0 && !np.is_home;
            // §2.4.1: fetch if the update timestamp precedes the write-
            // notice timestamp or the processor's acquire timestamp,
            // whichever is earlier. A copy newer than the last distributed
            // notice is current (pending notices a mapping processor missed
            // are handled by the self-notice queued below).
            let stale = np.ts_update < np.ts_wn.min(ctx.acquire_ts);
            trace!(
                "FAULT p{} pg{} w={} upd={} wn={} acq={} fetch={} now={}us",
                ctx.id.0,
                page,
                write,
                np.ts_update,
                np.ts_wn,
                ctx.acquire_ts,
                !np.is_home && (never_fetched || stale) && np.excl_local.is_none(),
                ctx.clock.now() / 1000
            );
            let mut fetched = false;
            if !np.is_home && (never_fetched || stale) && np.excl_local.is_none() {
                self.fetch_page(ctx, page, home, &mut np, node_now);
                fetched = true;
            }

            // Write faults: exclusive mode or dirty-list + twin (§2.4.1).
            // If a *local* processor already holds the page exclusively we
            // simply join under hardware coherence; the NLE mechanism
            // handles us at break time.
            let mut dirtied = false;
            if write && np.excl_local.is_none() {
                let mut entered = false;
                if !np.is_home && !self.dir.shared_by_others(page, ctx.pnode, ctx.pnode) {
                    entered = self.try_enter_exclusive(ctx, page, &mut np);
                }
                if !entered {
                    ctx.dirty.push(page as u32);
                    dirtied = true;
                    if !np.is_home && np.twin.is_none() && !self.cfg.protocol.write_through() {
                        let frame = np.frame.as_ref().unwrap();
                        np.twin = Some(self.pnodes[ctx.pnode].twin_pool.twin_of(frame));
                        emit(&self.rec, || ProtocolEvent::TwinCreate {
                            pnode: ctx.pnode,
                            page,
                        });
                        self.stats.twin_creations.inc();
                        if let Some(o) = &mut ctx.obs {
                            o.metrics.twin_creations += 1;
                        }
                        ctx.clock.charge(TimeCategory::Protocol, c.twin_create);
                    }
                }
            }

            // Install permissions (the simulated mprotect) and cache the
            // frame pointer.
            let perm = if write { Perm::Write } else { Perm::Read };
            self.pt(ctx).set(page, perm);
            ctx.clock.charge(TimeCategory::Protocol, c.mprotect);
            ctx.frames[page] = Some(Arc::clone(np.frame.as_ref().unwrap()));

            // If the page has a pending write notice that this fault
            // legitimately did not act on (our acquire predates the
            // notice), queue a self-notice: notices are distributed only
            // to processors with mappings, so a processor that maps the
            // page *after* the distribution would otherwise carry the
            // stale copy straight through its next acquire.
            if !np.is_home && np.ts_update < np.ts_wn {
                self.pnodes[ctx.pnode].procs[ctx.local]
                    .wn
                    .insert(page as u32, ctx.local);
            }
            // Emitted while the node-page lock is still held, so the fault
            // is sequenced before any later protocol action on this page.
            emit(&self.rec, || ProtocolEvent::Fault {
                proc: ctx.id.0,
                pnode: ctx.pnode,
                page,
                word,
                write,
                fetched,
                dirtied,
                is_home: np.is_home,
                excl: np.excl_local.is_some(),
            });
            if let Some(o) = &mut ctx.obs {
                let dur = o.end(SpanKind::Fault, &ctx.clock);
                o.metrics.fault_ns.record(dur);
            }
            return;
        }
    }

    /// Attempts to put the page into exclusive mode (§2.4.1 "Exclusive
    /// Mode"). Publishes the exclusive claim, then re-validates against the
    /// other nodes' words; on a race both claimants back off to the shared
    /// path. Returns whether exclusive mode was entered.
    fn try_enter_exclusive(&self, ctx: &mut ProcCtx, page: usize, np: &mut NodePage) -> bool {
        // A node must not enter exclusive mode on a copy that a pending
        // write notice has already superseded: notices for an exclusive
        // page invalidate the mapping but the exclusivity suppresses the
        // re-fetch, and the eventual break would fill the master from the
        // holder's stale frame. `ts_wn > ts_update` means exactly that a
        // distributed notice postdates our copy.
        if np.ts_wn > np.ts_update {
            return false;
        }
        let me = self.pnodes[ctx.pnode].procs[ctx.local].global.0 as u16;
        np.excl_local = Some(ctx.local);
        let bit = 1u64 << ctx.local;
        np.readers |= bit;
        np.writers |= bit;
        self.write_dir_with(ctx, page, np.dir_word(me));
        // Validation read: if anyone else claims a copy or exclusivity, back
        // off (conservative on races; safe because both racers back off).
        //
        // Passing validation also implies no *future* notice can target our
        // copy unseen: a poster's directory word stays set from before its
        // post until its own later acquire-time invalidation, so a post not
        // yet visible below would have left its word visible instead.
        let mut ok = !self.dir.shared_by_others(page, ctx.pnode, ctx.pnode);
        if ok {
            // Undrained-notice gate: a notice already in our global bins
            // (or mid-distribution) may be for this page, superseding the
            // copy we are about to pin. `try_lock` is mandatory — we hold
            // the node-page mutex, and the distribution loop takes node-
            // page mutexes while holding `distribute`, so blocking here
            // would deadlock; a held `distribute` conservatively refuses.
            ok = match self.pnodes[ctx.pnode].distribute.try_lock() {
                Some(_guard) => self.notices.is_empty(ctx.pnode),
                None => false,
            };
        }
        if !ok {
            np.excl_local = None;
            self.write_dir_with(ctx, page, np.dir_word(0));
            return false;
        }
        emit(&self.rec, || ProtocolEvent::ExclEnter {
            proc: ctx.id.0,
            pnode: ctx.pnode,
            page,
        });
        // Sticky: an exclusive break downgrades this holder's page table
        // from another thread, so from now on this context's writes to the
        // page must always raise the in-write flag (see `write_word`).
        ctx.excl_held[page] = true;
        self.any_exclusive.store(true, Ordering::Release);
        self.stats.exclusive_transitions.inc();
        true
    }

    /// Fetches the current master copy into the node's frame, reconciling
    /// with concurrent local writers by incoming diff (2L) or shootdown
    /// (2LS). Called with the node-page lock held.
    fn fetch_page(
        &self,
        ctx: &mut ProcCtx,
        page: usize,
        home: usize,
        np: &mut NodePage,
        node_now: u64,
    ) {
        let c = &self.cfg.cost;
        ctx.obs_begin(SpanKind::Fetch, page as i64);
        self.stats.page_transfers.inc();
        self.stats.data_bytes.add(PAGE_BYTES as u64);

        // Sequence-number the request (fault recovery): a lost request can
        // simply be re-sent, and the reply is idempotent — the sequence
        // check in `apply_reply` suppresses replayed duplicates.
        np.fetch_seq += 1;
        let seq = np.fetch_seq;

        let home_phys = self
            .map
            .physical_of(&self.topo, cashmere_sim::NodeId(home))
            .0;
        // Direct-read fabrics (RDMA, CXL) pull the page with a one-sided
        // remote read: no request message, no home-side handler, no reply —
        // a protocol-shape change, not just different constants
        // (DESIGN.md §14). Only the Memory Channel's request/reply fetch
        // counts as a remote request in the Table-3 sense.
        let direct = home_phys != ctx.phys && self.mc.fetch_shape() == FetchShape::DirectRead;
        if !direct {
            self.stats.remote_requests.inc();
        }
        if home_phys == ctx.phys {
            // Same physical node (one-level protocols without the home
            // optimization): a memory-to-memory copy, no Memory Channel.
            ctx.clock.charge(TimeCategory::CommWait, c.fetch_local);
        } else if direct {
            // Fault recovery for a lost read: burn the descriptor post/poll
            // cost plus a backed-off timeout, then reissue.
            if let Some(plan) = &self.faults {
                let mut attempt = 1u32;
                while plan.fetch_lost(ctx.pnode, home_phys, ctx.clock.now(), attempt) {
                    self.recovery[ctx.pnode].fetch_timeouts.inc();
                    emit(&self.rec, || ProtocolEvent::FetchTimeout {
                        pnode: ctx.pnode,
                        page,
                        seq,
                        attempt,
                    });
                    ctx.clock.charge(
                        TimeCategory::CommWait,
                        c.fetch_direct_fixed + self.cfg.recovery.timeout(attempt),
                    );
                    self.recovery[ctx.pnode].fetch_retries.inc();
                    attempt += 1;
                }
            }
            ctx.clock
                .charge(TimeCategory::CommWait, c.fetch_direct_fixed);
            let done = self.mc.fetch_data(home, PAGE_BYTES as u64, ctx.clock.now());
            ctx.clock.wait_until(done);
        } else {
            // Remote fetch: request delivery at the home (polling or
            // interrupt), fixed protocol cost, and the 8 KB reply
            // serialized through the home's link.
            let fixed = if self.cfg.protocol.is_two_level() {
                c.fetch_remote_fixed_2l
            } else {
                c.fetch_remote_fixed_1l
            };
            // Fault recovery: each lost transmission burns its delivery
            // cost plus a backed-off virtual-time timeout, then the request
            // is re-sent. The plan's `max_attempts` bounds the loop (the
            // fabric escalates to a reliable path beyond it), so every
            // timed-out fetch eventually succeeds.
            if let Some(plan) = &self.faults {
                let mut attempt = 1u32;
                while plan.fetch_lost(ctx.pnode, home_phys, ctx.clock.now(), attempt) {
                    self.recovery[ctx.pnode].fetch_timeouts.inc();
                    emit(&self.rec, || ProtocolEvent::FetchTimeout {
                        pnode: ctx.pnode,
                        page,
                        seq,
                        attempt,
                    });
                    ctx.clock.charge(
                        TimeCategory::CommWait,
                        c.request_delivery() + self.cfg.recovery.timeout(attempt),
                    );
                    self.recovery[ctx.pnode].fetch_retries.inc();
                    attempt += 1;
                }
            }
            ctx.clock
                .charge(TimeCategory::CommWait, c.request_delivery() + fixed);
            // The reply is the home's one-sided write of the page
            // (`fetch_data` on the Memory Channel backend prices exactly
            // like `charge_link`).
            let done = self.mc.fetch_data(home, PAGE_BYTES as u64, ctx.clock.now());
            ctx.clock.wait_until(done);
        }

        if np.twin.is_some() && self.cfg.protocol.uses_shootdown() {
            // 2LS: shoot down the other local write mappings, flush their
            // outstanding changes, and discard the twin (§2.6).
            self.shootdown_local_writers(ctx, page, home, np, node_now);
        }
        let mut incoming = [0u64; PAGE_WORDS];
        self.master(page).snapshot(&mut incoming);
        // Consumer: the snapshot observed the master, so the fetch is
        // sequenced after every flush it saw.
        emit(&self.rec, || ProtocolEvent::Fetch {
            pnode: ctx.pnode,
            page,
        });
        self.apply_reply(ctx, page, np, seq, &incoming, node_now);

        // A duplicated reply re-delivers the same contents under the same
        // sequence number: the link is charged again (the bytes really
        // crossed the wire twice) but the apply is suppressed by the
        // sequence check — a replayed diff must never double-apply against
        // the twin. Direct-read fabrics have no reply message to duplicate.
        if home_phys != ctx.phys && !direct {
            if let Some(plan) = &self.faults {
                if plan.reply_duplicated(home, home_phys, ctx.clock.now()) {
                    let _ = self
                        .mc
                        .charge_link(home, PAGE_BYTES as u64, ctx.clock.now());
                    self.apply_reply(ctx, page, np, seq, &incoming, node_now);
                }
            }
        }
        if let Some(o) = &mut ctx.obs {
            let dur = o.end(SpanKind::Fetch, &ctx.clock);
            o.metrics.fetch_rtt.record(dur);
            o.metrics.fetches += 1;
            // A one-sided read never interrupts the home processor.
            if home_phys != ctx.phys && !direct && self.cfg.cost.messaging == Messaging::Interrupt {
                o.metrics.interrupts += 1;
            }
        }
    }

    /// Applies a fetch reply to the node's frame, reconciling with the twin
    /// (2L two-way diffing). Replayed duplicates — replies whose sequence
    /// number does not exceed the last applied one — are suppressed: the
    /// twin has moved on since that reply was first consumed, and applying
    /// it again would overwrite newer state. Returns whether the reply was
    /// fresh. Called with the node-page lock held.
    fn apply_reply(
        &self,
        ctx: &mut ProcCtx,
        page: usize,
        np: &mut NodePage,
        seq: u64,
        incoming: &[u64; PAGE_WORDS],
        node_now: u64,
    ) -> bool {
        let c = &self.cfg.cost;
        if seq <= np.applied_reply_seq {
            self.recovery[ctx.pnode].duplicates_dropped.inc();
            emit(&self.rec, || ProtocolEvent::FetchReply {
                pnode: ctx.pnode,
                page,
                seq,
                dup: true,
            });
            return false;
        }
        np.applied_reply_seq = seq;
        emit(&self.rec, || ProtocolEvent::FetchReply {
            pnode: ctx.pnode,
            page,
            seq,
            dup: false,
        });
        let frame = Arc::clone(np.frame.as_ref().expect("frame installed before fetch"));
        match np.twin.as_mut() {
            Some(twin) => {
                // 2L's two-way diffing: remote changes are exactly the words
                // where the master differs from the twin; apply them to both
                // the working page and the twin, leaving concurrent local
                // modifications untouched (§2.2).
                if let Some(r) = &self.rec {
                    // A conflict word is one both sides modified: incoming
                    // differs from the twin (a remote write) while the frame
                    // also differs (an unflushed local write the apply below
                    // will overwrite). Zero for data-race-free programs.
                    let conflicts = (0..PAGE_WORDS)
                        .filter(|&i| incoming[i] != twin[i] && frame.load(i) != twin[i])
                        .count() as u32;
                    r.emit(ProtocolEvent::DiffIn {
                        pnode: ctx.pnode,
                        page,
                        conflicts,
                    });
                }
                let applied = apply_incoming_diff(&frame, twin, incoming);
                self.stats.incoming_diffs.inc();
                if let Some(o) = &mut ctx.obs {
                    o.metrics.diffs_applied += 1;
                }
                ctx.clock
                    .charge(TimeCategory::Protocol, c.diff_in(applied, PAGE_WORDS));
            }
            None => frame.fill_from(incoming),
        }
        np.ts_update = node_now;
        true
    }

    /// 2LS's shootdown: downgrade every *other* local write mapping, flush
    /// outstanding local changes to the home, and discard the twin. Called
    /// with the node-page lock held.
    fn shootdown_local_writers(
        &self,
        ctx: &mut ProcCtx,
        page: usize,
        home: usize,
        np: &mut NodePage,
        node_now: u64,
    ) {
        let c = &self.cfg.cost;
        let per_proc = match self.cfg.cost.messaging {
            Messaging::Polling => c.shootdown_polling,
            Messaging::Interrupt => c.shootdown_interrupt,
        };
        let mut shot = 0u64;
        for (i, lp) in self.pnodes[ctx.pnode].procs.iter().enumerate() {
            if i != ctx.local && np.writers >> i & 1 == 1 {
                lp.pt.set(page, Perm::Read);
                // Wait out any store that already passed its permission
                // check — the synchronous half of a real TLB shootdown.
                // Yield rather than spin: the writer may not be scheduled
                // (the simulator oversubscribes cores), and a burned
                // quantum here stalls the whole node-page lock.
                while lp.in_write.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                np.writers &= !(1u64 << i);
                shot += 1;
            }
        }
        if shot > 0 {
            self.stats.shootdowns.add(shot);
            ctx.clock.charge(TimeCategory::Protocol, per_proc * shot);
        }
        // Flush the outstanding local modifications so they aren't lost
        // when the fresh copy overwrites the frame.
        if let Some(twin) = np.twin.take() {
            let frame = np.frame.as_ref().unwrap();
            let diff = diff_against_twin(frame, &twin);
            if !diff.is_empty() {
                self.flush_diff_to_master(ctx, page, home, &diff);
                np.ts_flush = node_now;
            }
            self.pnodes[ctx.pnode].twin_pool.release(twin);
        }
    }

    /// Applies an outgoing diff to the master copy, charging diff cost,
    /// link occupancy, and byte counts. Every cost below is a function of
    /// the dirty-word count (`diff.words()`), so the run-length
    /// representation cannot perturb virtual time.
    fn flush_diff_to_master(&self, ctx: &mut ProcCtx, page: usize, home: usize, diff: &DiffRuns) {
        let c = &self.cfg.cost;
        // Producer: emit before the master stores so any fetch that sees
        // these words is sequenced after this flush.
        emit(&self.rec, || ProtocolEvent::DiffOut {
            pnode: ctx.pnode,
            page,
            words: diff.iter_words().map(|(i, _)| i).collect(),
        });
        let master = self.master(page);
        for (start, vals) in diff.runs() {
            master.store_run(start as usize, vals);
        }
        let home_phys = self
            .map
            .physical_of(&self.topo, cashmere_sim::NodeId(home))
            .0;
        let cost = if home_phys == ctx.phys {
            c.diff_out_local(diff.words(), PAGE_WORDS)
        } else {
            // Posted writes: reserve the link for bandwidth accounting but
            // do not block the flusher on delivery.
            let _ = self
                .mc
                .charge_link(ctx.pnode, diff.words() as u64 * 12, ctx.clock.now());
            c.diff_out_remote(diff.words(), PAGE_WORDS)
        };
        ctx.clock.charge(TimeCategory::Protocol, cost);
        self.stats.data_bytes.add(diff.words() as u64 * 12);
        if let Some(o) = &mut ctx.obs {
            o.metrics.diffs_sent += 1;
        }
    }

    // ------------------------------------------------------------------
    // Exclusive-mode break (§2.4.1 "Exclusive Mode")
    // ------------------------------------------------------------------

    /// Breaks `page` out of exclusive mode on `holder`. In the simulation
    /// the requesting thread performs the holder-side work against the
    /// holder's locked state, charging virtual time as if the holder had
    /// polled and serviced the request (DESIGN.md §2.4).
    fn break_exclusive(
        &self,
        ctx: &mut ProcCtx,
        page: usize,
        holder: usize,
        holder_proc: u16,
        home: usize,
    ) {
        // Borrow, don't clone (see `fault_common`).
        let c = &self.cfg.cost;
        self.stats.remote_requests.inc();

        // Fault recovery: a lost break interrupt times out in virtual time
        // (backed off per attempt) and is re-sent; `max_attempts` bounds
        // the loop, so the break is eventually delivered or found moot.
        let mut timed_out = false;
        if let Some(plan) = &self.faults {
            let holder_phys = self
                .map
                .physical_of(&self.topo, cashmere_sim::NodeId(holder))
                .0;
            let mut attempt = 1u32;
            while plan.break_lost(ctx.pnode, holder_phys, ctx.clock.now(), attempt) {
                self.recovery[ctx.pnode].break_timeouts.inc();
                emit(&self.rec, || ProtocolEvent::BreakTimeout {
                    pnode: holder,
                    page,
                    by: ctx.pnode,
                    attempt,
                });
                ctx.clock.charge(
                    TimeCategory::CommWait,
                    c.request_delivery() + self.cfg.recovery.timeout(attempt),
                );
                self.recovery[ctx.pnode].break_retries.inc();
                timed_out = true;
                attempt += 1;
            }
        }
        ctx.clock
            .charge(TimeCategory::CommWait, c.request_delivery());

        let hnode = &self.pnodes[holder];
        let mut np = hnode.pages[page].lock();
        let Some(excl_local) = np.excl_local else {
            // Someone else broke it first. If our request had timed out,
            // close the auditor's pending-timeout obligation explicitly:
            // the retried break is abandoned as already satisfied.
            if timed_out {
                emit(&self.rec, || ProtocolEvent::BreakAbandoned {
                    pnode: holder,
                    page,
                    by: ctx.pnode,
                });
            }
            return;
        };
        let node_now = self.node_now(holder);
        // Producer: the break publishes the holder's frame to the master
        // and clears the exclusive claim; emit before either is visible.
        emit(&self.rec, || ProtocolEvent::ExclBreak {
            pnode: holder,
            page,
            by: ctx.pnode,
        });

        // Downgrade the responding processor's permissions FIRST and wait
        // out any in-flight store, so the flush below captures everything
        // the holder wrote (on real hardware the request handler runs on
        // the holder itself, giving this synchrony for free).
        hnode.procs[excl_local].pt.set(page, Perm::Read);
        // Yield, not spin: the holder may be descheduled mid-store (see
        // `shootdown_local_writers`), and it may now be storing a whole
        // page run under the flag.
        while hnode.procs[excl_local].in_write.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }

        // One snapshot serves both the whole-page flush to the home and the
        // twin: any concurrent store by a *remaining* local writer then
        // either made it into both (already flushed) or neither (still
        // differs from the twin, flushed at that writer's next release).
        // The buffer comes from the holder's pool: it either becomes the
        // twin below or goes straight back.
        let mut buf = hnode.twin_pool.acquire();
        np.frame
            .as_ref()
            .expect("exclusive page has a frame")
            .snapshot(&mut buf);

        if !self.cfg.protocol.write_through() {
            self.master(page).fill_from(&buf);
            self.stats.data_bytes.add(PAGE_BYTES as u64);
            let holder_phys = self
                .map
                .physical_of(&self.topo, cashmere_sim::NodeId(holder))
                .0;
            let home_phys = self
                .map
                .physical_of(&self.topo, cashmere_sim::NodeId(home))
                .0;
            if holder_phys != home_phys {
                // Posted write of the whole page; reserves the holder's link
                // but does not block the requester beyond the fetch below.
                let _ = self
                    .mc
                    .charge_link(holder, PAGE_BYTES as u64, ctx.clock.now());
            }
        }
        np.ts_flush = node_now;

        // If other local processors hold write mappings, create a twin and
        // leave no-longer-exclusive notices for them.
        let other_writers = np.writers & !(1u64 << excl_local);
        if other_writers != 0 {
            np.twin = Some(buf);
            emit(&self.rec, || ProtocolEvent::TwinCreate {
                pnode: holder,
                page,
            });
            self.stats.twin_creations.inc();
            if let Some(o) = &mut ctx.obs {
                o.metrics.twin_creations += 1;
            }
            ctx.clock.charge(TimeCategory::Protocol, c.twin_create);
            for (i, lp) in hnode.procs.iter().enumerate() {
                if other_writers >> i & 1 == 1 {
                    emit(&self.rec, || ProtocolEvent::NlePush {
                        proc: lp.global.0,
                        pnode: holder,
                        page,
                    });
                    // The breaker (`ctx`) is the poster, from any node.
                    lp.nle.push(page as u32, ctx.id.0);
                }
            }
        } else {
            hnode.twin_pool.release(buf);
        }

        // The page leaves exclusive mode.
        np.writers &= !(1u64 << excl_local);
        np.excl_local = None;
        self.stats.exclusive_transitions.inc();
        // Update the holder's directory word on its behalf, while its
        // node-page lock is still held (the holder's own directory writes
        // all happen under this lock, so this cannot interleave with them).
        let word = np.dir_word(holder_proc);
        let done = self.dir.write_my_word(page, holder, word, ctx.clock.now());
        self.stats.directory_updates.inc();
        if let Some(o) = &mut ctx.obs {
            o.metrics.directory_updates += 1;
        }
        ctx.clock
            .charge(TimeCategory::Protocol, self.dir.update_cost());
        ctx.clock.wait_until(done);
        drop(np);
    }

    // ------------------------------------------------------------------
    // Releases (§2.4.3)
    // ------------------------------------------------------------------

    /// Posts write notices for one flushed page to every node in `sharers`
    /// except the home node, then charges the fan-out: in the replicated
    /// modes the batch rides one remote write (a single flat
    /// `mc_write_latency`, byte-identical to the pre-sparse engine); in
    /// sparse mode it is charged as a hierarchical tree broadcast over the
    /// actual recipient set — O(fanout) sender-link occupancy per level,
    /// every hop fault-interposed (DESIGN.md §12). Returns whether any
    /// notice was posted.
    fn post_write_notices(
        &self,
        ctx: &mut ProcCtx,
        page32: u32,
        home: usize,
        mut sharers: Vec<usize>,
    ) {
        sharers.retain(|&s| s != home);
        for &s in &sharers {
            let done = self.notices.post(s, ctx.pnode, page32, ctx.clock.now());
            ctx.clock.wait_until(done);
            self.stats.write_notices.inc();
            if let Some(o) = &mut ctx.obs {
                o.metrics.write_notices += 1;
            }
        }
        if sharers.is_empty() {
            return;
        }
        if self.cfg.directory == DirectoryMode::Sparse {
            // 12 bytes per notice hop: the page index rides a diff-format
            // word, as for sparse directory updates.
            let now = ctx.clock.now();
            let done = self
                .mc
                .charge_tree(ctx.pnode, &sharers, TREE_FANOUT, 12, now);
            ctx.clock
                .charge(TimeCategory::Protocol, done.saturating_sub(now));
        } else {
            // The notice batch for this page rides one remote write.
            ctx.clock
                .charge(TimeCategory::Protocol, self.cfg.cost.mc_write_latency);
        }
    }

    /// Consistency actions before a release: flush every dirty, non-
    /// exclusive page to its home and send write notices to the sharers.
    /// Under the deterministic scheduler the whole release is one
    /// exclusive gate (DESIGN.md §15).
    pub fn release_actions(&self, ctx: &mut ProcCtx) {
        match ctx.det.clone() {
            Some(d) => {
                d.gate_enter(ctx.clock.now());
                self.release_actions_inner(ctx);
                d.gate_exit(ctx.clock.now());
            }
            None => self.release_actions_inner(ctx),
        }
    }

    fn release_actions_inner(&self, ctx: &mut ProcCtx) {
        ctx.obs_begin(SpanKind::Release, -1);
        let release_begin = self.node_now(ctx.pnode);
        // relaxed-ok: `last_release` is monotonic bookkeeping that no
        // protocol path currently reads (the overlapping-release skip below
        // compares the per-page `ts_flush` against this release's own
        // `release_begin` instead); `fetch_max` on one atomic is coherent
        // under any ordering. Retained as the node's release horizon for
        // diagnostics.
        self.pnodes[ctx.pnode]
            .last_release
            .fetch_max(release_begin, Ordering::Relaxed);
        emit(&self.rec, || ProtocolEvent::ReleaseBegin {
            proc: ctx.id.0,
            pnode: ctx.pnode,
            ts: release_begin,
        });

        let mut pages: Vec<u32> = std::mem::take(&mut ctx.dirty);
        pages.extend(self.pnodes[ctx.pnode].procs[ctx.local].nle.drain());
        pages.sort_unstable();
        pages.dedup();

        for page32 in pages {
            let page = page32 as usize;
            let mut np = self.pnodes[ctx.pnode].pages[page].lock();

            // Exclusive pages incur no coherence overhead at releases.
            if np.excl_local.is_some() {
                emit(&self.rec, || ProtocolEvent::ReleasePage {
                    proc: ctx.id.0,
                    pnode: ctx.pnode,
                    page,
                    action: ReleaseAction::ExclusiveSkip,
                });
                continue;
            }

            // Skip the flush and the notices if an overlapping release
            // already flushed this page ("it skips the flush and the
            // sending of write notices if the [node's last release time]
            // precedes the [flush timestamp]") — but NOT the permission
            // downgrade below: the paper downgrades after processing every
            // dirty page, and keeping the write mapping would let future
            // stores bypass the dirty list entirely.
            let home = self
                .dir
                .read_home(page, ctx.pnode)
                .expect("dirty page has a home")
                .pnode;
            let mut entered_exclusive = false;
            let mut action = ReleaseAction::OverlapSkip;
            if np.ts_flush < release_begin {
                let node_now = self.node_now(ctx.pnode);
                np.ts_flush = node_now;
                action = ReleaseAction::Clean;

                // Flush local modifications to the home.
                if !np.is_home && !self.cfg.protocol.write_through() {
                    if self.cfg.protocol.uses_shootdown() {
                        // 2LS: shoot down concurrent local writers before
                        // flushing, then discard the twin (§2.6).
                        self.shootdown_local_writers(ctx, page, home, &mut np, node_now);
                    }
                    if np.twin.is_some() {
                        let frame = Arc::clone(np.frame.as_ref().unwrap());
                        let twin = np.twin.as_mut().unwrap();
                        let diff = diff_against_twin(&frame, twin);
                        if !diff.is_empty() {
                            flush_update_twin(twin, &diff);
                            self.stats.flush_updates.inc();
                            self.flush_diff_to_master(ctx, page, home, &diff);
                            action = ReleaseAction::Flushed;
                        }
                    }
                }
                // (Write-through pages and home pages are already current
                // at the master; only notices remain.)

                // One-level protocols: with no remaining sharers the page
                // moves to exclusive mode at release (§2.6, Cashmere-1LD).
                entered_exclusive = !self.cfg.protocol.is_two_level()
                    && !np.is_home
                    && !self.dir.shared_by_others(page, ctx.pnode, ctx.pnode)
                    && self.try_enter_exclusive_at_release(ctx, page, &mut np);

                if !entered_exclusive {
                    // Send write notices to every other node with a copy,
                    // excluding the home node (its master was just updated
                    // directly).
                    let sharers = self.dir.sharers(page, ctx.pnode, ctx.pnode);
                    trace!(
                        "RELEASE p{} pg{} sharers={:?} home={}",
                        ctx.id.0,
                        page,
                        sharers,
                        home
                    );
                    self.post_write_notices(ctx, page32, home, sharers);
                }
            }
            if entered_exclusive {
                emit(&self.rec, || ProtocolEvent::ReleasePage {
                    proc: ctx.id.0,
                    pnode: ctx.pnode,
                    page,
                    action: ReleaseAction::EnteredExclusive,
                });
                continue;
            }

            // Downgrade write permission so future modifications are
            // trapped, and retire the twin once no local writer remains.
            if np.writers >> ctx.local & 1 == 1 {
                self.pt(ctx).set(page, Perm::Read);
                np.writers &= !(1u64 << ctx.local);
                ctx.clock
                    .charge(TimeCategory::Protocol, self.cfg.cost.mprotect);
                if np.effective_perm() != PermBits::Write {
                    self.write_dir(ctx, page, &np);
                }
            }
            // Retire the twin once no local writer remains — but only if
            // nothing unflushed hides behind it: a processor invalidated at
            // its own acquire clears its writer bit while its modifications
            // still sit in the frame, and if our flush above was skipped by
            // the overlapping-release rule, dropping the twin here would
            // orphan those words. Flush any residue first, *with* the full
            // flush protocol: stamp `ts_flush` and post write notices to
            // the sharers — the residue words are as-yet-unannounced
            // modifications, and sharers that skip a re-fetch because no
            // notice arrived would read stale data.
            if np.writers == 0 {
                let before = np.effective_perm();
                if let Some(twin) = np.twin.take() {
                    let frame = Arc::clone(np.frame.as_ref().unwrap());
                    let diff = diff_against_twin(&frame, &twin);
                    if !diff.is_empty() {
                        self.flush_diff_to_master(ctx, page, home, &diff);
                        self.stats.flush_updates.inc();
                        np.ts_flush = self.node_now(ctx.pnode);
                        action = ReleaseAction::Flushed;
                        let sharers = self.dir.sharers(page, ctx.pnode, ctx.pnode);
                        self.post_write_notices(ctx, page32, home, sharers);
                    }
                    self.pnodes[ctx.pnode].twin_pool.release(twin);
                }
                // Retiring the twin may drop the residue-sharer Read claim
                // (see `NodePage::effective_perm`): with no mapped local
                // processor left, publish the now-empty word.
                if np.effective_perm() != before {
                    self.write_dir(ctx, page, &np);
                }
            }
            emit(&self.rec, || ProtocolEvent::ReleasePage {
                proc: ctx.id.0,
                pnode: ctx.pnode,
                page,
                action,
            });
        }
        emit(&self.rec, || ProtocolEvent::ReleaseEnd {
            proc: ctx.id.0,
            pnode: ctx.pnode,
        });
        ctx.obs_end(SpanKind::Release);
    }

    fn try_enter_exclusive_at_release(
        &self,
        ctx: &mut ProcCtx,
        page: usize,
        np: &mut NodePage,
    ) -> bool {
        // Only meaningful when this processor still has the write mapping.
        if np.writers >> ctx.local & 1 != 1 {
            return false;
        }
        let entered = self.try_enter_exclusive(ctx, page, np);
        if entered {
            // Exclusive mode needs no twin; recycle it.
            if let Some(twin) = np.twin.take() {
                self.pnodes[ctx.pnode].twin_pool.release(twin);
            }
        }
        entered
    }

    // ------------------------------------------------------------------
    // Acquires (§2.4.2)
    // ------------------------------------------------------------------

    /// Consistency actions after an acquire: distribute the node's global
    /// write notices, then invalidate the pages in this processor's list
    /// whose updates predate their notices. Under the deterministic
    /// scheduler the whole acquire is one exclusive gate (DESIGN.md §15).
    pub fn acquire_actions(&self, ctx: &mut ProcCtx) {
        match ctx.det.clone() {
            Some(d) => {
                d.gate_enter(ctx.clock.now());
                self.acquire_actions_inner(ctx);
                d.gate_exit(ctx.clock.now());
            }
            None => self.acquire_actions_inner(ctx),
        }
    }

    fn acquire_actions_inner(&self, ctx: &mut ProcCtx) {
        ctx.obs_begin(SpanKind::Acquire, -1);
        // Distribute the global bins to affected local processors. The
        // drain + distribute is serialized per node so a sibling's acquire
        // cannot slip between our bin drain and our list inserts.
        {
            let _serialize = self.pnodes[ctx.pnode].distribute.lock();
            let incoming = self.notices.drain(ctx.pnode);
            // Both this acquire's timestamp and the write-notice timestamp
            // must be drawn from the same clock read, AFTER the drain: a
            // sibling's concurrent fault may take a later clock value for
            // `ts_update` while fetching a copy that predates the noticed
            // write. Stamping notices (or this acquire) with an earlier
            // time would rank that stale copy as newer than the notice —
            // `min(ts_wn, acquire_ts)` in the fetch check would then
            // suppress the re-fetch and reads after this acquire would see
            // stale data.
            let wn_now = self.node_now(ctx.pnode);
            ctx.acquire_ts = wn_now;
            for (_from, page32) in incoming {
                let page = page32 as usize;
                let mut np = self.pnodes[ctx.pnode].pages[page].lock();
                np.ts_wn = wn_now;
                let mapped = np.readers | np.writers;
                trace!(
                    "DISTRIB p{} pg{} ts_wn={} mapped={:b}",
                    ctx.id.0,
                    page,
                    wn_now,
                    mapped
                );
                // Producer: emitted under the node-page lock, before the
                // per-processor inserts below.
                emit(&self.rec, || ProtocolEvent::WnDistribute {
                    pnode: ctx.pnode,
                    page,
                    mapped,
                });
                drop(np);
                ctx.clock.charge(TimeCategory::Protocol, 500);
                for (i, lp) in self.pnodes[ctx.pnode].procs.iter().enumerate() {
                    if mapped >> i & 1 == 1 {
                        lp.wn.insert(page32, ctx.local);
                    }
                }
            }
        }

        // Process this processor's own list (which may also hold entries
        // enqueued by other local processors' distributions).
        for page32 in self.pnodes[ctx.pnode].procs[ctx.local].wn.drain() {
            let page = page32 as usize;
            let mut np = self.pnodes[ctx.pnode].pages[page].lock();
            if np.is_home {
                continue;
            }
            trace!(
                "WNPROC p{} pg{} upd={} wn={} inval={}",
                ctx.id.0,
                page,
                np.ts_update,
                np.ts_wn,
                np.ts_update < np.ts_wn
            );
            if np.ts_update < np.ts_wn {
                // Invalidate our mapping with an mprotect; the twin (if any)
                // survives so unflushed local modifications keep their
                // baseline.
                let bit = 1u64 << ctx.local;
                if (np.readers | np.writers) & bit != 0 {
                    // `effective_perm` (not the raw mapped bits) drives the
                    // directory update: when a twin with unflushed residue
                    // survives this invalidation, the node keeps claiming
                    // Read so no remote node can enter exclusive mode until
                    // a release's residue flush retires the twin.
                    let before = np.effective_perm();
                    self.pt(ctx).set(page, Perm::None);
                    np.readers &= !bit;
                    np.writers &= !bit;
                    ctx.clock
                        .charge(TimeCategory::Protocol, self.cfg.cost.mprotect);
                    if np.effective_perm() != before {
                        self.write_dir(ctx, page, &np);
                    }
                }
            }
        }
        ctx.obs_end(SpanKind::Acquire);
    }

    // ------------------------------------------------------------------
    // Directory helpers
    // ------------------------------------------------------------------

    fn write_dir(&self, ctx: &mut ProcCtx, page: usize, np: &NodePage) {
        let excl_proc = np
            .excl_local
            .map(|l| self.pnodes[ctx.pnode].procs[l].global.0 as u16)
            .unwrap_or(0);
        self.write_dir_with(ctx, page, np.dir_word(excl_proc));
    }

    fn write_dir_with(&self, ctx: &mut ProcCtx, page: usize, word: DirWord) {
        // Memory Channel writes are posted: the writer pays the update cost
        // (and the link reservation models bandwidth for *other* traffic)
        // but does not block on delivery.
        let _ = self
            .dir
            .write_my_word(page, ctx.pnode, word, ctx.clock.now());
        self.stats.directory_updates.inc();
        if let Some(o) = &mut ctx.obs {
            o.metrics.directory_updates += 1;
        }
        ctx.clock
            .charge(TimeCategory::Protocol, self.dir.update_cost());
    }

    // ------------------------------------------------------------------
    // Setup / teardown helpers
    // ------------------------------------------------------------------

    /// Seeds the master copy of `addr` with `val` before the run (models
    /// pre-parallel-phase initialization without touching the protocol, so
    /// the first-touch heuristic still sees the parallel phase's accesses).
    pub fn seed_word(&self, addr: Addr, val: u64) {
        self.master(addr / PAGE_WORDS).store(addr % PAGE_WORDS, val);
    }

    /// Reads back the authoritative value of `addr` after a run: the
    /// exclusive holder's frame if the page is exclusive, the master copy
    /// otherwise. Intended for verification once all processors have
    /// finished (every `run` closure gets a final implicit release).
    pub fn read_back(&self, addr: Addr) -> u64 {
        let page = addr / PAGE_WORDS;
        let off = addr % PAGE_WORDS;
        if let Some((holder, _)) = self.dir.exclusive_holder(page, 0) {
            let np = self.pnodes[holder].pages[page].lock();
            if let Some(frame) = np.frame.as_ref() {
                return frame.load(off);
            }
        }
        self.master(page).load(off)
    }

    /// Bulk [`Self::read_back`]: one directory exclusive-holder lookup (and
    /// at most one node-page lock) per page instead of per word.
    pub fn read_back_run(&self, addr: Addr, out: &mut [u64]) {
        let total = out.len();
        let mut done = 0;
        while done < total {
            let page = (addr + done) / PAGE_WORDS;
            let off = (addr + done) % PAGE_WORDS;
            let n = (total - done).min(PAGE_WORDS - off);
            let dst = &mut out[done..done + n];
            let mut from_holder = false;
            if let Some((holder, _)) = self.dir.exclusive_holder(page, 0) {
                let np = self.pnodes[holder].pages[page].lock();
                if let Some(frame) = np.frame.as_ref() {
                    frame.load_run(off, dst);
                    from_holder = true;
                }
            }
            if !from_holder {
                self.master(page).load_run(off, dst);
            }
            done += n;
        }
    }

    /// Flushes a processor's residual accounting (bus/doubling batches) at
    /// the end of its run. Each settle self-gates under the deterministic
    /// scheduler (see [`Self::settle_bus`] / [`Self::settle_double`]).
    pub fn settle(&self, ctx: &mut ProcCtx) {
        if ctx.pending_bus > 0 {
            self.settle_bus(ctx);
        }
        if ctx.pending_double > 0 {
            self.settle_double(ctx);
        }
    }

    /// The directory (exposed for tests and diagnostics).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Protocol-node count.
    pub fn protocol_nodes(&self) -> usize {
        self.pnodes.len()
    }
}

#[cfg(test)]
mod trace_ring_tests {
    use super::{dump_trace, push_trace, TRACE_RING_CAP};

    /// One test owns the (process-global) ring: fill far past capacity and
    /// check both the bound and that the *newest* entries survive in order.
    #[test]
    fn trace_ring_is_bounded_and_keeps_the_newest_entries() {
        dump_trace();
        let total = TRACE_RING_CAP + 1000;
        for i in 0..total {
            push_trace(format!("line {i}"));
        }
        let dumped = dump_trace();
        assert_eq!(dumped.len(), TRACE_RING_CAP, "ring never exceeds capacity");
        for (k, line) in dumped.iter().enumerate() {
            assert_eq!(
                line,
                &format!("line {}", total - TRACE_RING_CAP + k),
                "oldest-first order with the oldest overflow entries evicted"
            );
        }
        assert!(dump_trace().is_empty(), "dump clears the ring");

        // A partially filled ring dumps exactly what was pushed.
        push_trace("a".into());
        push_trace("b".into());
        assert_eq!(dump_trace(), vec!["a".to_string(), "b".to_string()]);
    }
}
