//! The Cashmere coherence protocols (SOSP '97).
//!
//! This crate implements the paper's primary contribution — the
//! **Cashmere-2L** two-level software coherent shared memory protocol — plus
//! every protocol it is evaluated against:
//!
//! * **2L** ([`ProtocolKind::TwoLevel`]) — hardware sharing within a node,
//!   "moderately lazy" release consistency across nodes, multiple concurrent
//!   writers, home nodes, page-size coherence blocks, directory-based
//!   sharing sets, *two-way diffing* instead of TLB shootdown, exclusive
//!   mode, and lock-free (per-node-word) directory and write-notice
//!   structures.
//! * **2LS** ([`ProtocolKind::TwoLevelShootdown`]) — identical except that
//!   races between a faulting/releasing processor and concurrent local
//!   writers are resolved by shooting down the other write mappings on the
//!   node (§2.6).
//! * **1LD** ([`ProtocolKind::OneLevelDiff`]) — every processor is its own
//!   protocol node; twins and outgoing diffs.
//! * **1L** ([`ProtocolKind::OneLevelWrite`]) — every processor is its own
//!   protocol node; in-line *write doubling* to the home copy.
//! * The **home-node optimization** variants of both one-level protocols
//!   ([`ProtocolKind::OneLevelDiffHome`], [`ProtocolKind::OneLevelWriteHome`]).
//! * The **global-lock ablation** of §3.3.5 ([`DirectoryMode::GlobalLock`]).
//!
//! The public surface is [`Cluster`] (build a simulated cluster from a
//! [`ClusterConfig`], allocate shared memory, seed initial data) and
//! [`Proc`] (the per-processor handle applications use to access shared
//! memory and synchronize). See the runnable examples in the repository's
//! `examples/` directory.

pub mod config;
pub mod det;
pub mod directory;
pub mod engine;
pub mod mc_lock;
#[doc(hidden)]
pub mod model_scenarios;
pub mod proc;
pub mod recovery;
pub mod report;
pub mod run;
pub mod sync;
pub mod trace;
pub mod write_notice;

pub use config::{ClusterConfig, DirectoryMode, ProtocolKind, RecoveryPolicy, SyncSpec};
pub use engine::Engine;
pub use proc::{Cluster, Proc};
pub use recovery::{RecoveryCounts, RecoveryStats, RecoverySummary};
pub use report::Report;
pub use run::{run, RunOutput, RunSpec};
pub use trace::{ProtocolEvent, ReleaseAction, TraceEvent, TraceRecorder};

pub use cashmere_faults::{FaultKind, FaultPlan, FaultRule, FaultScope};
pub use cashmere_obs::ObsReport;

pub use cashmere_sim::{
    Backend, CostModel, FetchShape, Messaging, Nanos, NodeId, ProcId, Stats, TimeCategory, Topology,
};
pub use cashmere_transport::{build_transport, Transport};
pub use cashmere_vmpage::{PAGE_BYTES, PAGE_WORDS};

/// A word address in the shared heap (index of a 64-bit word).
pub type Addr = usize;

/// The page containing word address `a`.
#[inline]
pub fn page_of(a: Addr) -> usize {
    a / PAGE_WORDS
}

/// The offset of word address `a` within its page.
#[inline]
pub fn offset_of(a: Addr) -> usize {
    a % PAGE_WORDS
}
