//! The paper's Memory Channel lock algorithm (§2.3, "Synchronization").
//!
//! Application and protocol locks are "represented by an 8-entry array in
//! Memory Channel space, and by a test-and-set flag on each node. Lock
//! arrays are replicated on every node, with updates performed via
//! broadcast [and] configured for loop-back. To acquire a lock, a process
//! first acquires the per-node flag using ll/sc. It then sets the array
//! entry for its node, waits for the write to appear via loop-back, and
//! reads the whole array. If its entry is the only one set, then the
//! process has acquired the lock. Otherwise it clears its entry, backs off,
//! and tries again."
//!
//! This module implements that algorithm verbatim over the simulated Memory
//! Channel. The protocol uses it where the paper does — serializing
//! home-node selection — and the test suite uses it to validate mutual
//! exclusion and the loop-back machinery. (Bulk application locking goes
//! through the [`crate::sync::CarrierLock`] carrier, which blocks instead of
//! spinning; the cost model is identical.)
//!
//! Under the deterministic parallel engine (DESIGN.md §15) this lock is
//! only ever reached from home-node resolution inside the page-fault
//! lookahead barrier, whose holder is the sole running processor — so
//! acquires are uncontended by construction and the set-then-check loop
//! succeeds on its first attempt. The simulated *cost* (the paper's 11 µs
//! pair) is charged the same either way; contention remains exercised by
//! the sequential engine, the OS-thread stress tests, and the `model_*`
//! explorer scenarios.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use cashmere_model::{ModelAtomicBool, ModelAtomicU64};

use cashmere_memchan::RegionId;
use cashmere_sim::Nanos;
use cashmere_transport::Transport;

use crate::trace::{emit, ProtocolEvent, TraceRecorder};

/// One Memory Channel lock: the loop-back array plus per-node `ll/sc` flags.
pub struct McLock {
    mc: Arc<dyn Transport>,
    region: RegionId,
    /// The per-node test-and-set flag ("acquired first using ll/sc").
    /// [`ModelAtomicBool`] routes the test-and-set through the model
    /// scheduler when the interleaving explorer is active (DESIGN.md §11).
    node_flags: Vec<ModelAtomicBool>,
    pnodes: usize,
    /// Virtual time of the most recent release. The *real* spin loop below
    /// provides mutual exclusion; virtual time is reconciled against this
    /// (an acquire completes no earlier than the previous release) so that
    /// simulated cost does not depend on real-machine scheduling of the
    /// spin attempts.
    release_vt: ModelAtomicU64,
    /// Auditor event stream, when enabled.
    rec: Option<Arc<TraceRecorder>>,
}

impl McLock {
    /// Creates the lock's array region (loop-back enabled, one entry per
    /// node) replicated across all `pnodes` endpoints of `mc`.
    pub fn new(mc: Arc<dyn Transport>, pnodes: usize) -> Self {
        let region = mc.create_region(pnodes.max(1), true);
        for e in 0..pnodes {
            mc.attach_rx(region, e);
        }
        Self {
            mc,
            region,
            node_flags: (0..pnodes).map(|_| ModelAtomicBool::new(false)).collect(),
            pnodes,
            release_vt: ModelAtomicU64::new(0),
            rec: None,
        }
    }

    /// Attaches the auditor's event recorder.
    pub fn with_recorder(mut self, rec: Arc<TraceRecorder>) -> Self {
        self.rec = Some(rec);
        self
    }

    /// Acquires the lock on behalf of a processor on protocol node `me`.
    ///
    /// Returns the virtual time at which the acquire completed, given the
    /// caller arrived at `now` and each attempt costs `attempt_cost`
    /// (the paper's 11 µs uncontended acquire/release pair).
    pub fn acquire(&self, me: usize, now: Nanos, attempt_cost: Nanos) -> Nanos {
        // Step 1: the intra-node ll/sc flag.
        let mut spins = 0u32;
        // relaxed-ok: the failure load only decides whether to retry; the
        // successful exchange carries Acquire, and no data is read under
        // the flag until the exchange succeeds.
        while self.node_flags[me]
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff(&mut spins);
        }
        // Step 2: the Memory Channel array protocol (real mutual exclusion).
        let mut spins = 0u32;
        loop {
            // Set our entry; the loop-back write's completion time models
            // waiting for it to be globally performed.
            let vt = self.mc.write(self.region, me, me, 1, now);
            // Read the whole array from our local replica.
            let others_set =
                (0..self.pnodes).any(|n| n != me && self.mc.read_local(self.region, me, n) == 1);
            if !others_set {
                // Consumer: the win is an observation of the previous
                // holder's release; emit after it.
                emit(&self.rec, || ProtocolEvent::McLockAcquire { pnode: me });
                // Virtual cost: one uncontended acquire. The cost is NOT
                // reconciled against the previous holder's clock: real
                // hardware would grant the lock in virtual-time order, but
                // our free-running threads acquire in arbitrary real order,
                // and chaining clocks through the grant order would let one
                // late-scheduled, high-clock holder drag every later
                // acquirer forward. Contention on this lock is a once-per-
                // page startup transient ("because we only relocate once,
                // the use of locks does not impact performance", §2.3).
                return vt.max(now) + attempt_cost;
            }
            // Contention: clear our entry, back off, retry.
            self.mc.write(self.region, me, me, 0, now);
            backoff(&mut spins);
        }
    }

    /// A deliberately wrong `acquire` kept for the model checker's mutation
    /// battery (DESIGN.md §11): it reads the array *before* setting its own
    /// entry (check-then-set instead of the paper's set-then-check). Two
    /// nodes can both read an all-clear array, then both set their entries
    /// and both believe they won — the model tests assert the explorer
    /// finds a two-holders schedule within the default budget.
    #[doc(hidden)]
    pub fn acquire_mutant_check_before_set(
        &self,
        me: usize,
        now: Nanos,
        attempt_cost: Nanos,
    ) -> Nanos {
        let mut spins = 0u32;
        // relaxed-ok: same retry-only failure load as `acquire`.
        while self.node_flags[me]
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff(&mut spins);
        }
        let mut spins = 0u32;
        loop {
            let others_set =
                (0..self.pnodes).any(|n| n != me && self.mc.read_local(self.region, me, n) == 1);
            if !others_set {
                let vt = self.mc.write(self.region, me, me, 1, now);
                emit(&self.rec, || ProtocolEvent::McLockAcquire { pnode: me });
                return vt.max(now) + attempt_cost;
            }
            backoff(&mut spins);
        }
    }

    /// Releases the lock held by node `me` at virtual time `vt`.
    pub fn release(&self, me: usize, vt: Nanos) -> Nanos {
        // Producer: emit before clearing the entry, so the next acquirer's
        // event is sequenced after this one.
        emit(&self.rec, || ProtocolEvent::McLockRelease { pnode: me });
        let done = self.mc.write(self.region, me, me, 0, vt);
        self.release_vt.fetch_max(vt, Ordering::AcqRel);
        self.node_flags[me].store(false, Ordering::Release);
        done
    }
}

fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 8 {
        std::hint::spin_loop();
    } else {
        // Routed through the model facade so the explorer sees the backoff
        // as a schedule point; plain `yield_now` outside exploration.
        cashmere_model::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_memchan::TransportConfig;
    use cashmere_model::thread;
    use cashmere_transport::{build_transport, Transport};
    use parking_lot::Mutex;

    fn mc(pnodes: usize) -> Arc<dyn Transport> {
        build_transport(TransportConfig::new(vec![0; pnodes], 1))
    }

    #[test]
    fn uncontended_acquire_release_round_trip() {
        let l = McLock::new(mc(4), 4);
        let vt = l.acquire(2, 1_000, 11_000);
        assert!(
            vt >= 12_000,
            "acquire charges at least one attempt, got {vt}"
        );
        l.release(2, vt);
        // Lock is reacquirable, including by another node.
        let vt2 = l.acquire(3, vt, 11_000);
        assert!(vt2 > vt);
        l.release(3, vt2);
    }

    #[test]
    fn excludes_across_threads_and_nodes() {
        // OS-thread run of the shared mutual-exclusion scenario; the model
        // variant in `tests/model_mclock.rs` explores the same assertions
        // exhaustively and catches the check-before-set mutant.
        crate::model_scenarios::mc_lock_exclusion(4, 100, false);
    }

    #[test]
    fn acquire_release_events_alternate_in_holder_order() {
        // The recorder's global sequence must show strict
        // acquire/release/acquire/release alternation with matching nodes:
        // each win emits after the previous holder's release.
        let rec = Arc::new(TraceRecorder::new());
        let l = McLock::new(mc(4), 4).with_recorder(Arc::clone(&rec));
        let mut vt = 0;
        for me in [2usize, 0, 3, 0, 1] {
            vt = l.acquire(me, vt, 11_000);
            vt = l.release(me, vt);
        }
        let evs = rec.take();
        assert_eq!(evs.len(), 10);
        let mut expect_holder = None;
        for (i, te) in evs.iter().enumerate() {
            match (&te.ev, i % 2) {
                (ProtocolEvent::McLockAcquire { pnode }, 0) => expect_holder = Some(*pnode),
                (ProtocolEvent::McLockRelease { pnode }, 1) => {
                    assert_eq!(Some(*pnode), expect_holder, "release by a non-holder");
                }
                other => panic!("event {i} out of order: {other:?}"),
            }
        }
    }

    #[test]
    fn contention_is_fair_enough_that_no_node_starves() {
        // Four nodes hammer the lock until 200 total critical sections have
        // completed; the backoff/retry loop must not starve any node.
        let l = Arc::new(McLock::new(mc(4), 4));
        let total = Arc::new(Mutex::new([0u64; 4]));
        let hs: Vec<_> = (0..4)
            .map(|node| {
                let l = Arc::clone(&l);
                let total = Arc::clone(&total);
                thread::spawn(move || loop {
                    let vt = l.acquire(node, 0, 11_000);
                    let done = {
                        let mut g = total.lock();
                        g[node] += 1;
                        g.iter().sum::<u64>() >= 200
                    };
                    l.release(node, vt);
                    if done {
                        return;
                    }
                    thread::yield_now();
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        let g = *total.lock();
        for (node, &n) in g.iter().enumerate() {
            assert!(n > 0, "node {node} never acquired the lock: {g:?}");
        }
    }

    #[test]
    fn holder_stalled_by_link_outage_keeps_exclusion_and_vt_order() {
        // A whole-link outage stalls the holder's loop-back write: the
        // acquire completes only after the dark epoch, and the lock stays
        // usable (and exclusive) for the next node afterwards.
        use cashmere_faults::{FaultKind, FaultPlan, FaultRule};
        let plan = Arc::new(
            FaultPlan::new(7)
                .with_rule(FaultRule::new(FaultKind::LinkOutage, 1.0).with_param_ns(10_000)),
        );
        let mc = build_transport(
            TransportConfig::new(vec![0; 2], 1).with_fault_plan(Some(plan.clone())),
        );
        let l = McLock::new(mc, 2);
        let vt = l.acquire(0, 2_500, 11_000);
        assert!(
            vt >= 10_000 + 11_000,
            "acquire must wait out the outage epoch, got {vt}"
        );
        assert!(plan.stats().total() > 0, "the outage must have fired");
        let rel = l.release(0, vt);
        let vt2 = l.acquire(1, rel, 11_000);
        assert!(vt2 > vt, "second acquire follows the stalled holder");
        l.release(1, vt2);
    }

    #[test]
    fn same_node_contention_uses_the_ll_sc_flag() {
        // Two processors on the same protocol node serialize on the node
        // flag before ever touching the Memory Channel.
        let l = Arc::new(McLock::new(mc(2), 2));
        let counter = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..200 {
                        let vt = l.acquire(0, 0, 11_000);
                        *counter.lock() += 1;
                        l.release(0, vt);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(*counter.lock(), 400);
    }
}
