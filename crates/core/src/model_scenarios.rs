//! Shared concurrency scenarios for the interleaving explorer (DESIGN.md
//! §11).
//!
//! Each function here is a complete concurrent scenario — threads, shared
//! structure, and assertions — parameterized by size and by whether to run
//! the real implementation or a known-wrong mutant. The same scenario runs
//! two ways:
//!
//! * as a plain OS-thread stress test (large parameters, real scheduler),
//!   from this crate's unit tests, and
//! * under the bounded interleaving explorer (small parameters, exhaustive
//!   schedules), from the `model_*` integration tests.
//!
//! Threads are spawned through [`cashmere_model::thread`], which routes
//! through the model scheduler when an exploration is active and falls back
//! to `std::thread` otherwise, so both modes exercise byte-for-byte the
//! same code and assertions.
//!
//! Hidden from docs: this is test plumbing that lives in the library only
//! so unit tests and integration tests can share it.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use cashmere_memchan::TransportConfig;
use cashmere_model::{thread, ModelAtomicBool, ModelAtomicU64};
use cashmere_sim::{HorizonClock, Nanos};
use cashmere_transport::build_transport;

use crate::config::DirectoryMode;
use crate::directory::{DirWord, Directory, PermBits};
use crate::mc_lock::McLock;
use crate::write_notice::ProcNoticeList;

/// Striped write-notice lists: `posters` threads insert disjoint page
/// ranges (`per` pages each) while a drainer runs `drains` concurrent
/// drains. Every page must be delivered exactly once and per-poster FIFO
/// order must survive the ticket merge.
pub fn striped_notice_exactly_once(posters: u32, per: u32, drains: usize) {
    let l = Arc::new(ProcNoticeList::new(
        (posters * per) as usize + 1,
        posters as usize,
    ));
    let hs: Vec<_> = (0..posters)
        .map(|from| {
            let l = Arc::clone(&l);
            thread::spawn(move || {
                for i in 0..per {
                    l.insert(from * per + i, from as usize);
                    if i % 64 == 0 {
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();
    let drainer = {
        let l = Arc::clone(&l);
        thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..drains {
                got.extend(l.drain());
                thread::yield_now();
            }
            got
        })
    };
    for h in hs {
        h.join();
    }
    let mut all = drainer.join();
    all.extend(l.drain());
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for p in &all {
        *counts.entry(*p).or_default() += 1;
    }
    assert_eq!(
        counts.len(),
        (posters * per) as usize,
        "every page delivered"
    );
    assert!(
        counts.values().all(|&c| c == 1),
        "disjoint pages queued in one epoch each → delivered exactly once"
    );
    for from in 0..posters {
        let mine: Vec<u32> = all.iter().copied().filter(|p| p / per == from).collect();
        assert!(
            mine.windows(2).all(|w| w[0] < w[1]),
            "poster {from}'s pages left the merge in post order"
        );
    }
}

/// Two posters race to insert the *same* page while a drainer runs
/// concurrent drains. The exactly-once queuing invariant says a single
/// drain can never deliver a duplicate (the bitmap admits at most one
/// queued entry per page per epoch), and every fresh claim is delivered
/// exactly once. With `mutant`, the insert claims the bitmap bit outside
/// the stripe lock, so a drain between claim and push lets the page queue
/// twice — some schedule then delivers a duplicate in one drain.
pub fn contended_insert_exactly_once(mutant: bool) {
    let l = Arc::new(ProcNoticeList::new(64, 2));
    let posters: Vec<_> = (0..2usize)
        .map(|from| {
            let l = Arc::clone(&l);
            thread::spawn(move || {
                if mutant {
                    l.insert_mutant_claim_outside_stripe_lock(3, from)
                } else {
                    l.insert(3, from)
                }
            })
        })
        .collect();
    let drainer = {
        let l = Arc::clone(&l);
        thread::spawn(move || {
            let mut epochs = Vec::new();
            for _ in 0..2 {
                epochs.push(l.drain());
                thread::yield_now();
            }
            epochs
        })
    };
    let fresh: u64 = posters.into_iter().map(|h| u64::from(h.join())).sum();
    let mut epochs = drainer.join();
    epochs.push(l.drain());
    for d in &epochs {
        let mut s = d.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(
            s.len(),
            d.len(),
            "a single drain delivered a duplicate page: {d:?}"
        );
    }
    let delivered = epochs.iter().map(Vec::len).sum::<usize>() as u64;
    assert_eq!(
        delivered, fresh,
        "every fresh claim delivered exactly once (fresh={fresh})"
    );
}

/// The lock-free directory read fast path: a single writer publishes
/// `words` distinct directory words while a reader polls both its own and
/// the writer's replica (the broadcast path and the manual local double,
/// respectively) up to `max_reads` times. Every observed non-default word
/// must be one the writer actually published, observations must move
/// forward through the publish order, and — if the reader saw the writer
/// finish — the last observation must be the final published word. With
/// `mutant`, the local double is torn into two stores and the explorer
/// must find a schedule observing the partial word.
pub fn directory_single_writer_reads(words: u16, max_reads: usize, mutant: bool) {
    let pnodes = 2usize;
    let mc = build_transport(TransportConfig::new(
        (0..pnodes).map(|e| e % 2).collect(),
        2,
    ));
    let d = Arc::new(Directory::new(mc, pnodes, 4, DirectoryMode::LockFree));
    // `excl_proc` starts at 1 so a torn perm-only word (excl_proc = 0,
    // exclusive = false) can never collide with a published word.
    let published: Vec<DirWord> = (0..words)
        .map(|i| DirWord {
            perm: if i % 2 == 0 {
                PermBits::Read
            } else {
                PermBits::Write
            },
            exclusive: i % 3 == 0,
            excl_proc: i + 1,
        })
        .collect();
    let done = Arc::new(ModelAtomicBool::new(false));
    let writer = {
        let d = Arc::clone(&d);
        let published = published.clone();
        let done = Arc::clone(&done);
        thread::spawn(move || {
            for (t, w) in published.iter().enumerate() {
                if mutant {
                    d.write_my_word_mutant_torn_local_double(1, 0, *w, t as Nanos);
                } else {
                    d.write_my_word(1, 0, *w, t as Nanos);
                }
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
        })
    };
    let reader = {
        let d = Arc::clone(&d);
        let published = published.clone();
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut seen: Vec<Vec<DirWord>> = vec![Vec::new(); pnodes];
            let mut finished = false;
            for _ in 0..max_reads {
                finished = done.load(Ordering::Acquire);
                for (replica, log) in seen.iter_mut().enumerate() {
                    let w = d.read_word(1, 0, replica);
                    if w != DirWord::default() {
                        assert!(
                            published.contains(&w),
                            "replica {replica} observed a word the writer never published: {w:?}"
                        );
                        log.push(w);
                    }
                }
                if finished {
                    break;
                }
                thread::yield_now();
            }
            (seen, finished)
        })
    };
    writer.join();
    let (seen, finished) = reader.join();
    for (replica, s) in seen.iter().enumerate() {
        if finished {
            assert_eq!(
                s.last(),
                Some(published.last().unwrap()),
                "replica {replica}: reader must observe the final published word"
            );
        }
        // The observation sequence must be a subsequence of the publish
        // order — a cached or locked read path that replayed stale words
        // out of order would violate this.
        let mut cursor = 0;
        for w in s {
            let pos = published[cursor..]
                .iter()
                .position(|p| p == w)
                .expect("observations must move forward through the publish order");
            cursor += pos;
        }
    }
}

/// The sparse directory's read-vs-home-update race (DESIGN.md §12): a
/// single writer on the home-shard node publishes `words` successive
/// exclusive claims (`excl_proc` = 1..=`words`) on page 0 while a remote
/// reader polls `read_word` through its invalidation-on-change cache up to
/// `max_reads` times. Sparse reads are composite (mask word + claim word),
/// so the assertions are per-field rather than whole-word: every observed
/// claim must be one the writer actually published, the observed claim
/// sequence must be non-decreasing (the cache may lag the shard but never
/// travels backwards), and — if the reader saw the writer finish — the last
/// observation must be the final claim (the data-before-bump ordering
/// guarantees a refill on the final version sees the final fields). With
/// `mutant`, the version word is bumped *before* the data words and the
/// explorer must find a schedule where the reader caches stale fields
/// under the final version forever, missing the last claim.
pub fn sparse_directory_read_vs_update(words: u16, max_reads: usize, mutant: bool) {
    let pnodes = 2usize;
    let mc = build_transport(TransportConfig::new(
        (0..pnodes).map(|e| e % 2).collect(),
        2,
    ));
    let d = Arc::new(Directory::new(mc, pnodes, 4, DirectoryMode::Sparse));
    // Page 0's home shard is node 0 — the writer updates locally, the
    // reader on node 1 probes and refills over the (simulated) channel.
    let done = Arc::new(ModelAtomicBool::new(false));
    let writer = {
        let d = Arc::clone(&d);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            for i in 0..words {
                let w = DirWord {
                    perm: if i % 2 == 0 {
                        PermBits::Read
                    } else {
                        PermBits::Write
                    },
                    exclusive: true,
                    excl_proc: i + 1,
                };
                if mutant {
                    d.write_my_word_mutant_version_before_data(0, 0, w, Nanos::from(i));
                } else {
                    d.write_my_word(0, 0, w, Nanos::from(i));
                }
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
        })
    };
    let reader = {
        let d = Arc::clone(&d);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut claims: Vec<u16> = Vec::new();
            let mut finished = false;
            for _ in 0..max_reads {
                finished = done.load(Ordering::Acquire);
                let w = d.read_word(0, 0, 1);
                if w.excl_proc != 0 {
                    assert!(w.exclusive, "a claim always names its holder");
                    assert!(
                        (1..=words).contains(&w.excl_proc),
                        "observed a claim the writer never published: {w:?}"
                    );
                    claims.push(w.excl_proc);
                }
                if finished {
                    break;
                }
                thread::yield_now();
            }
            (claims, finished)
        })
    };
    writer.join();
    let (claims, finished) = reader.join();
    assert!(
        claims.windows(2).all(|w| w[0] <= w[1]),
        "the cache may lag the shard but never travels backwards: {claims:?}"
    );
    if finished && words > 0 {
        assert_eq!(
            claims.last(),
            Some(&words),
            "reader must settle on the final published claim"
        );
    }
}

/// The deterministic scheduler's parked-processor wakeup (DESIGN.md §15):
/// a waiter sleeps on the lookahead horizon while the coordinator advances
/// it past the waiter's virtual time. The seqlock protocol — horizon store
/// first, epoch bump second — guarantees the waiter either re-reads the new
/// horizon before sleeping or captured a pre-bump epoch that the bump
/// wakes. With `mutant`, the advancer bumps the epoch *before* publishing
/// the horizon, and the explorer must find the schedule where the waiter
/// captures the post-bump epoch against the stale horizon and sleeps on an
/// epoch that will never change — detected by the `done` flag the main
/// thread raises once the advancer has provably finished (so a stuck sleep
/// can no longer be woken by any future advance).
pub fn lookahead_wakeup(mutant: bool) {
    let hc = Arc::new(HorizonClock::new(100));
    let done = Arc::new(ModelAtomicBool::new(false));
    let waiter = {
        let hc = Arc::clone(&hc);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            // The sleep closure blocks until the epoch moves off `seen`,
            // exactly like the scheduler's condvar wait (which is banned
            // under exploration) — a yielding spin the explorer can
            // preempt. Once `done` is up no advance is coming, so an
            // unchanged epoch at that point is a lost wakeup, not a race
            // still in flight. `done` is read *before* the epoch so the
            // pair cannot straddle an advance: an epoch still at `seen`
            // after `done` was observed up is conclusive.
            hc.wait_past(50, |seen| loop {
                thread::yield_now();
                let finished = done.load(Ordering::Acquire);
                if hc.sleep_epoch() != seen {
                    return;
                }
                if finished {
                    panic!(
                        "lost wakeup: advance finished but the captured sleep epoch never changed"
                    );
                }
            });
        })
    };
    let advancer = {
        let hc = Arc::clone(&hc);
        thread::spawn(move || {
            if mutant {
                hc.advance_past_mutant_wake_first(50);
            } else {
                hc.advance_past(50);
            }
        })
    };
    advancer.join();
    done.store(true, Ordering::Release);
    waiter.join();
    assert!(
        hc.end() > 50,
        "the horizon must have opened past the waiter"
    );
}

/// Mutual exclusion through the Memory Channel lock: `nodes` threads (one
/// per protocol node) each run `iters` critical sections guarded by the
/// paper's set-then-check array protocol, with a yield inside the section
/// to widen any exclusion hole. With `mutant`, acquire checks the array
/// *before* setting its own entry, and the explorer must find a schedule
/// with two simultaneous holders.
pub fn mc_lock_exclusion(nodes: usize, iters: usize, mutant: bool) {
    let mc = build_transport(TransportConfig::new(vec![0; nodes], 1));
    let l = Arc::new(McLock::new(mc, nodes));
    let in_section = Arc::new(ModelAtomicBool::new(false));
    let total = Arc::new(ModelAtomicU64::new(0));
    let hs: Vec<_> = (0..nodes)
        .map(|node| {
            let l = Arc::clone(&l);
            let in_section = Arc::clone(&in_section);
            let total = Arc::clone(&total);
            thread::spawn(move || {
                for _ in 0..iters {
                    let vt = if mutant {
                        l.acquire_mutant_check_before_set(node, 0, 11_000)
                    } else {
                        l.acquire(node, 0, 11_000)
                    };
                    assert!(
                        !in_section.swap(true, Ordering::SeqCst),
                        "two holders inside the critical section"
                    );
                    thread::yield_now();
                    in_section.store(false, Ordering::SeqCst);
                    total.fetch_add(1, Ordering::SeqCst);
                    l.release(node, vt);
                }
            })
        })
        .collect();
    for h in hs {
        h.join();
    }
    assert_eq!(total.load(Ordering::SeqCst), (nodes * iters) as u64);
}
