//! The public API: [`Cluster`] (build, allocate, seed, run) and [`Proc`]
//! (the per-processor handle applications program against).
//!
//! A `Cluster` owns the protocol [`Engine`] and the pools of application
//! synchronization objects. [`Cluster::run`] spawns one OS thread per
//! simulated processor, hands each a `Proc`, and collects a [`Report`]
//! (virtual execution time, Figure 6 time breakdown, Table 3 counters) when
//! all of them finish.
//!
//! ```
//! use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, Topology};
//!
//! let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
//! let mut cluster = Cluster::new(cfg);
//! let counters = cluster.alloc(4);
//! let report = cluster.run(|p| {
//!     p.barrier(0);
//!     p.write_u64(counters + p.id(), p.id() as u64 + 1);
//!     p.barrier(0);
//! });
//! assert_eq!(cluster.read_u64(counters + 3), 4);
//! assert!(report.exec_ns > 0);
//! ```

use std::sync::Arc;

use cashmere_obs::{ObsReport, ProcObs, SpanKind};
use cashmere_sim::{Nanos, ProcClock, ProcId, TimeCategory};
use cashmere_vmpage::PAGE_WORDS;

use crate::config::ClusterConfig;
use crate::det::{DetScheduler, WaitKey};
use crate::engine::{Engine, ProcCtx};
use crate::report::Report;
use crate::sync::{BarrierArrival, CarrierBarrier, CarrierFlag, CarrierLock};
use crate::trace::{ProtocolEvent, TraceEvent};
use crate::Addr;

/// Synchronization-object pools shared by all processors.
struct SyncPools {
    locks: Vec<CarrierLock>,
    barriers: Vec<CarrierBarrier>,
    flags: Vec<CarrierFlag>,
}

/// A simulated cluster, ready to allocate shared memory and run programs.
pub struct Cluster {
    engine: Arc<Engine>,
    pools: Arc<SyncPools>,
    next_word: usize,
}

impl Cluster {
    /// Builds a cluster for `cfg`.
    pub fn new(cfg: ClusterConfig) -> Self {
        let pools = Arc::new(SyncPools {
            locks: (0..cfg.locks).map(|_| CarrierLock::new()).collect(),
            barriers: (0..cfg.barriers).map(|_| CarrierBarrier::new()).collect(),
            flags: (0..cfg.flags).map(|_| CarrierFlag::new()).collect(),
        });
        Self {
            engine: Engine::new(cfg),
            pools,
            next_word: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        self.engine.config()
    }

    /// The protocol engine (exposed for tests that drive protocol
    /// operations deterministically).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Allocates `words` contiguous 64-bit words of shared memory and
    /// returns the base address.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn alloc(&mut self, words: usize) -> Addr {
        let base = self.next_word;
        self.next_word += words;
        assert!(
            self.next_word <= self.config().heap_pages * PAGE_WORDS,
            "shared heap exhausted: need {} words, have {}",
            self.next_word,
            self.config().heap_pages * PAGE_WORDS
        );
        base
    }

    /// Allocates `words` of shared memory starting on a fresh page boundary
    /// (useful to give an array its own pages and control false sharing).
    pub fn alloc_page_aligned(&mut self, words: usize) -> Addr {
        if !self.next_word.is_multiple_of(PAGE_WORDS) {
            let pad = PAGE_WORDS - self.next_word % PAGE_WORDS;
            self.alloc(pad);
        }
        self.alloc(words)
    }

    /// Seeds initial data into the master copy of `addr` before the run —
    /// models pre-parallel-phase initialization without perturbing the
    /// first-touch home heuristic.
    pub fn seed_u64(&self, addr: Addr, val: u64) {
        self.engine.seed_word(addr, val);
    }

    /// Seeds an `f64` (stored via its bit pattern).
    pub fn seed_f64(&self, addr: Addr, val: f64) {
        self.engine.seed_word(addr, val.to_bits());
    }

    /// Reads back the authoritative post-run value at `addr`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.engine.read_back(addr)
    }

    /// Reads back a run of consecutive words (bulk [`Self::read_u64`]; one
    /// directory lookup per page instead of per word).
    pub fn read_back_run(&self, addr: Addr, out: &mut [u64]) {
        self.engine.read_back_run(addr, out);
    }

    /// Reads back an `f64`.
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.engine.read_back(addr))
    }

    /// Takes the protocol event trace accumulated so far (empty unless the
    /// cluster was built with [`ClusterConfig::audit`] set). Feed it to
    /// `cashmere_check::audit` to verify the run's coherence invariants.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.engine.recorder().map(|r| r.take()).unwrap_or_default()
    }

    /// Runs `f` on every simulated processor (one OS thread each) and
    /// returns the run's [`Report`]. Each processor gets an implicit final
    /// release so all its modifications reach the home copies.
    ///
    /// With [`ClusterConfig::with_det_parallel`] (or the
    /// `CASHMERE_PROC_WORKERS` environment opt-in), the processors advance
    /// under the deterministic parallel scheduler (DESIGN.md §15): at most
    /// that many host workers run concurrently, and the returned `Report`
    /// is byte-identical at every worker count.
    pub fn run<F>(&self, f: F) -> Report
    where
        F: Fn(&mut Proc) + Sync,
    {
        match self.config().det_workers.or_else(det_workers_from_env) {
            Some(workers) => self.run_det(&f, workers),
            None => self.run_seq(&f),
        }
    }

    fn run_seq<F>(&self, f: &F) -> Report
    where
        F: Fn(&mut Proc) + Sync,
    {
        let n = self.config().topology.total_procs();
        let results: Vec<(ProcClock, Option<Box<ProcObs>>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|p| {
                    let engine = Arc::clone(&self.engine);
                    let pools = Arc::clone(&self.pools);
                    s.spawn(move || {
                        let mut proc = Proc::new(engine, pools, ProcId(p));
                        f(&mut proc);
                        proc.finish()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulated processor panicked"))
                .collect()
        });
        self.collect_report(&results)
    }

    /// Deterministic parallel run (DESIGN.md §15): one OS thread per
    /// processor as in [`Self::run_seq`], but gated by a [`DetScheduler`]
    /// that bounds concurrency to `workers` and serializes every
    /// protocol/sync boundary in (virtual time, processor id) order.
    fn run_det<F>(&self, f: &F, workers: usize) -> Report
    where
        F: Fn(&mut Proc) + Sync,
    {
        let n = self.config().topology.total_procs();
        let sched = Arc::new(DetScheduler::new(n, workers, self.config().det_quantum_ns));
        let results: Vec<(ProcClock, Option<Box<ProcObs>>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|p| {
                    let engine = Arc::clone(&self.engine);
                    let pools = Arc::clone(&self.pools);
                    let h = sched.handle(p);
                    s.spawn(move || {
                        let mut proc = Proc::new(engine, pools, ProcId(p));
                        proc.ctx.set_det(h.clone());
                        // Start barrier: no processor computes until every
                        // context exists, so window 0 opens identically at
                        // any worker count.
                        h.start();
                        f(&mut proc);
                        let out = proc.finish();
                        h.finish();
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulated processor panicked"))
                .collect()
        });
        self.collect_report(&results)
    }

    fn collect_report(&self, results: &[(ProcClock, Option<Box<ProcObs>>)]) -> Report {
        let clocks: Vec<ProcClock> = results.iter().map(|(c, _)| c.clone()).collect();
        let mut report = Report::build(self.engine.config(), &self.engine.stats, &clocks)
            .with_recovery(self.engine.recovery_summary());
        if self.config().obs {
            let mut obs = ObsReport::new();
            for po in results.iter().filter_map(|(_, po)| po.as_deref()) {
                obs.merge_proc(po);
            }
            if let Some(lm) = self.engine.link_metrics() {
                obs.links = lm.snapshot();
            }
            report = report.with_obs(obs);
        }
        report
    }
}

/// `CASHMERE_PROC_WORKERS` opt-in: a positive integer enables the
/// deterministic parallel engine at that worker count for clusters whose
/// config did not choose explicitly.
fn det_workers_from_env() -> Option<usize> {
    std::env::var("CASHMERE_PROC_WORKERS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&w| w >= 1)
}

/// A simulated processor's handle: shared-memory accesses, synchronization,
/// and compute-time accounting. One per processor, owned by its thread.
pub struct Proc {
    engine: Arc<Engine>,
    pools: Arc<SyncPools>,
    ctx: ProcCtx,
    /// Reusable bit-pattern buffer for the `f64` run accessors.
    scratch: Vec<u64>,
}

impl Proc {
    fn new(engine: Arc<Engine>, pools: Arc<SyncPools>, id: ProcId) -> Self {
        let ctx = engine.make_ctx(id);
        Self {
            engine,
            pools,
            ctx,
            scratch: Vec::new(),
        }
    }

    /// Cluster-wide processor id, `0..nprocs()`.
    pub fn id(&self) -> usize {
        self.ctx.id.0
    }

    /// Total processors in the run.
    pub fn nprocs(&self) -> usize {
        self.engine.config().topology.total_procs()
    }

    /// Physical node index of this processor.
    pub fn node(&self) -> usize {
        self.ctx.phys
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.ctx.clock.now()
    }

    // --- Shared-memory accesses -------------------------------------

    /// Reads the shared 64-bit word at `addr`.
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        self.engine.read_word(&mut self.ctx, addr)
    }

    /// Writes the shared 64-bit word at `addr`.
    pub fn write_u64(&mut self, addr: Addr, val: u64) {
        self.engine.write_word(&mut self.ctx, addr, val);
    }

    /// Reads the shared `f64` at `addr`.
    pub fn read_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes the shared `f64` at `addr`.
    pub fn write_f64(&mut self, addr: Addr, val: f64) {
        self.write_u64(addr, val.to_bits());
    }

    /// Reads `out.len()` consecutive shared words starting at `addr`.
    /// Virtual time and values are identical to the equivalent
    /// [`Self::read_u64`] loop; the wall cost is one fault check and one
    /// bulk charge per page touched.
    pub fn read_run_u64(&mut self, addr: Addr, out: &mut [u64]) {
        self.engine.read_run(&mut self.ctx, addr, out);
    }

    /// Writes `vals` to consecutive shared words starting at `addr`
    /// (run-granular [`Self::write_u64`]; virtual time identical).
    pub fn write_run_u64(&mut self, addr: Addr, vals: &[u64]) {
        self.engine.write_run(&mut self.ctx, addr, vals);
    }

    /// [`Self::read_run_u64`] for `f64` values.
    pub fn read_run_f64(&mut self, addr: Addr, out: &mut [f64]) {
        self.scratch.clear();
        self.scratch.resize(out.len(), 0);
        self.engine.read_run(&mut self.ctx, addr, &mut self.scratch);
        for (o, &w) in out.iter_mut().zip(&self.scratch) {
            *o = f64::from_bits(w);
        }
    }

    /// [`Self::write_run_u64`] for `f64` values.
    pub fn write_run_f64(&mut self, addr: Addr, vals: &[f64]) {
        self.scratch.clear();
        self.scratch.extend(vals.iter().map(|v| v.to_bits()));
        self.engine.write_run(&mut self.ctx, addr, &self.scratch);
    }

    /// Charges `ns` of application compute time (private computation that
    /// touches no shared words).
    pub fn compute(&mut self, ns: Nanos) {
        self.engine.compute(&mut self.ctx, ns);
    }

    // --- Synchronization ---------------------------------------------

    /// Emits a synchronization event when auditing is enabled.
    fn trace(&self, ev: impl FnOnce() -> ProtocolEvent) {
        if let Some(r) = self.engine.recorder() {
            r.emit(ev());
        }
    }

    /// Acquires application lock `l`, then performs the protocol's acquire
    /// consistency actions (§2.4.2).
    pub fn lock(&mut self, l: usize) {
        self.ctx.obs_begin(SpanKind::Lock, l as i64);
        self.engine.stats.lock_acquires.inc();
        let cost = self.lock_cost();
        let vt = match self.ctx.det.clone() {
            Some(d) => {
                // Deterministic grant (DESIGN.md §15): the acquire is a
                // gate; contenders park in the scheduler and are re-granted
                // in (virtual time, processor id) order at each release.
                d.gate_enter(self.ctx.clock.now());
                loop {
                    match self.pools.locks[l].try_acquire_for(self.ctx.clock.now(), cost) {
                        Some(vt) => {
                            d.gate_exit(self.ctx.clock.now());
                            break vt;
                        }
                        None => d.gate_block(self.ctx.clock.now(), WaitKey::Lock(l)),
                    }
                }
            }
            None => self.pools.locks[l].acquire_for(self.ctx.clock.now(), cost),
        };
        self.ctx.clock.wait_until(vt);
        // Consumer: emitted after the carrier grant, so it is sequenced
        // after the previous holder's LockRelease.
        self.trace(|| ProtocolEvent::LockAcquire {
            proc: self.ctx.id.0,
            pnode: self.ctx.pnode,
            lock: l,
        });
        self.engine.acquire_actions(&mut self.ctx);
        self.ctx.obs_end(SpanKind::Lock);
    }

    /// Performs the protocol's release consistency actions (§2.4.3), then
    /// releases application lock `l`.
    pub fn unlock(&mut self, l: usize) {
        self.engine.release_actions(&mut self.ctx);
        // Producer: emitted after the consistency actions but before the
        // carrier hand-off, so the next holder's LockAcquire follows it.
        self.trace(|| ProtocolEvent::LockRelease {
            proc: self.ctx.id.0,
            pnode: self.ctx.pnode,
            lock: l,
        });
        match self.ctx.det.clone() {
            Some(d) => {
                d.gate_enter(self.ctx.clock.now());
                self.pools.locks[l].release(self.ctx.clock.now());
                d.unblock_all(WaitKey::Lock(l));
                d.gate_exit(self.ctx.clock.now());
            }
            None => self.pools.locks[l].release(self.ctx.clock.now()),
        }
    }

    /// Crosses application barrier `b` (all processors participate): a
    /// release on arrival, the two-level rendezvous, and an acquire on
    /// departure (§2.3, §2.4).
    pub fn barrier(&mut self, b: usize) {
        self.ctx.obs_begin(SpanKind::Barrier, b as i64);
        let t0 = self.ctx.clock.now();
        self.engine.release_actions(&mut self.ctx);
        let t1 = self.ctx.clock.now();
        // Producer: arrival is the release half of the crossing; emit before
        // the rendezvous so every departure is sequenced after it.
        self.trace(|| ProtocolEvent::BarrierArrive {
            proc: self.ctx.id.0,
            pnode: self.ctx.pnode,
            barrier: b,
        });
        let cost = self.barrier_cost();
        let n = self.nprocs();
        let crossing = match self.ctx.det.clone() {
            Some(d) => {
                // Deterministic rendezvous (DESIGN.md §15): arrivals are
                // gates ordered by (virtual time, processor id); early
                // arrivers park in the scheduler until the last arrival
                // completes the episode and unblocks them.
                d.gate_enter(self.ctx.clock.now());
                match self.pools.barriers[b].arrive(n, self.ctx.clock.now(), cost) {
                    BarrierArrival::Complete(c) => {
                        d.unblock_all(WaitKey::Barrier(b));
                        d.gate_exit(self.ctx.clock.now());
                        c
                    }
                    BarrierArrival::Waiting(epoch) => loop {
                        d.gate_block(self.ctx.clock.now(), WaitKey::Barrier(b));
                        if let Some(c) = self.pools.barriers[b].poll(epoch) {
                            d.gate_exit(self.ctx.clock.now());
                            break c;
                        }
                    },
                }
            }
            None => self.pools.barriers[b].wait(n, self.ctx.clock.now(), cost),
        };
        if crossing.was_last {
            self.engine.stats.barriers.inc();
        }
        // Consumer: emitted after the rendezvous completes; `epoch` lets the
        // auditor pair every departure with its episode's arrivals.
        self.trace(|| ProtocolEvent::BarrierDepart {
            proc: self.ctx.id.0,
            pnode: self.ctx.pnode,
            barrier: b,
            epoch: crossing.epoch,
        });
        self.ctx.clock.wait_until(crossing.departure_vt);
        let t2 = self.ctx.clock.now();
        self.engine.acquire_actions(&mut self.ctx);
        self.ctx.obs_end(SpanKind::Barrier);
        fn barrier_debug() -> bool {
            static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
            *ON.get_or_init(|| std::env::var_os("CASHMERE_BARRIER_DEBUG").is_some())
        }
        if barrier_debug() {
            eprintln!(
                "BAR p{} b{} release={}us wait={}us acq={}us",
                self.id(),
                b,
                (t1 - t0) / 1000,
                (t2 - t1) / 1000,
                (self.ctx.clock.now() - t2) / 1000
            );
        }
    }

    /// Sets application flag `fl` (release semantics).
    pub fn flag_set(&mut self, fl: usize) {
        self.engine.release_actions(&mut self.ctx);
        // Producer: emitted before the carrier set, so waiters' FlagWait
        // events are sequenced after it.
        self.trace(|| ProtocolEvent::FlagSet {
            proc: self.ctx.id.0,
            pnode: self.ctx.pnode,
            flag: fl,
        });
        match self.ctx.det.clone() {
            Some(d) => {
                d.gate_enter(self.ctx.clock.now());
                self.pools.flags[fl].set(self.ctx.clock.now());
                d.unblock_all(WaitKey::Flag(fl));
                d.gate_exit(self.ctx.clock.now());
            }
            None => self.pools.flags[fl].set(self.ctx.clock.now()),
        }
    }

    /// Waits for application flag `fl` (acquire semantics).
    pub fn flag_wait(&mut self, fl: usize) {
        self.ctx.obs_begin(SpanKind::Flag, fl as i64);
        self.engine.stats.lock_acquires.inc();
        let vt = match self.ctx.det.clone() {
            Some(d) => {
                d.gate_enter(self.ctx.clock.now());
                loop {
                    match self.pools.flags[fl].try_wait(self.ctx.clock.now()) {
                        Some(vt) => {
                            d.gate_exit(self.ctx.clock.now());
                            break vt;
                        }
                        None => d.gate_block(self.ctx.clock.now(), WaitKey::Flag(fl)),
                    }
                }
            }
            None => self.pools.flags[fl].wait(self.ctx.clock.now()),
        };
        // Consumer: emitted after the wait observed the set.
        self.trace(|| ProtocolEvent::FlagWait {
            proc: self.ctx.id.0,
            pnode: self.ctx.pnode,
            flag: fl,
        });
        self.ctx.clock.wait_until(vt);
        self.ctx
            .clock
            .charge(TimeCategory::CommWait, self.lock_cost());
        self.engine.acquire_actions(&mut self.ctx);
        self.ctx.obs_end(SpanKind::Flag);
    }

    /// Non-blocking flag check (no consistency actions). Under the
    /// deterministic scheduler this is a lookahead checkpoint: flag sets
    /// land at exclusive gates, so the value read here is a pure function
    /// of the caller's window — identical at every worker count. (Callers
    /// polling in a loop must charge time between polls, as any real
    /// program would; a zero-cost spin never reaches the horizon.)
    pub fn flag_is_set(&self, fl: usize) -> bool {
        self.ctx.det_checkpoint();
        self.pools.flags[fl].is_set()
    }

    // --- Accounting knobs ---------------------------------------------

    /// Records one request's sojourn (arrival-to-completion) latency into
    /// the observability histograms (`Report::obs`, `sojourn_ns`). Used by
    /// the trace-driven service applications (DESIGN.md §13); a no-op when
    /// observability is off — like every obs hook it never charges the
    /// clock, so recording cannot perturb virtual time.
    pub fn record_sojourn(&mut self, ns: Nanos) {
        if let Some(o) = &mut self.ctx.obs {
            o.metrics.sojourn_ns.record(ns);
        }
    }

    /// Overrides the polling-overhead fraction for this processor (the
    /// paper's per-application 0–36%).
    pub fn set_poll_fraction(&mut self, f: f64) {
        self.ctx.set_poll_fraction(f, self.engine.config());
    }

    /// Overrides the memory-bus bytes charged per shared access (models an
    /// application phase's cache-capacity traffic).
    pub fn set_bus_bytes_per_access(&mut self, b: u64) {
        self.ctx.bus_bytes = b;
    }

    fn lock_cost(&self) -> Nanos {
        let c = &self.engine.config().cost;
        if self.engine.config().protocol.is_two_level() {
            c.lock_two_level
        } else {
            c.lock_one_level
        }
    }

    fn barrier_cost(&self) -> Nanos {
        let cfg = self.engine.config();
        if cfg.protocol.is_two_level() {
            cfg.cost.barrier_two_level(cfg.topology.nodes())
        } else {
            cfg.cost.barrier_one_level(cfg.topology.total_procs())
        }
    }

    /// Final release + accounting settlement; returns the processor's
    /// clock and (when observability is on) its finished observability
    /// state. Called automatically at the end of [`Cluster::run`].
    fn finish(mut self) -> (ProcClock, Option<Box<ProcObs>>) {
        self.engine.release_actions(&mut self.ctx);
        self.engine.settle(&mut self.ctx);
        if let Some(o) = &mut self.ctx.obs {
            o.finish(&self.ctx.clock);
        }
        (self.ctx.clock.clone(), self.ctx.obs.take())
    }
}
