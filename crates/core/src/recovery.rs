//! Recovery accounting for the fault-injection subsystem.
//!
//! When a [`cashmere_faults::FaultPlan`] is installed, lost page-fetch
//! requests and lost exclusive-break interrupts are recovered by the engine:
//! requests are sequence-numbered, timed out in virtual time with capped
//! exponential backoff ([`crate::config::RecoveryPolicy`]), and retried;
//! replayed replies are suppressed by a per-(node, page) sequence check so a
//! duplicate can never double-apply against a twin. This module holds the
//! per-protocol-node counters those paths maintain and the plain-value
//! summary [`crate::Report`] carries.

// Recovery code must degrade gracefully, never panic: a recovery path that
// unwraps turns an injected fault into a crash (scripts/lint.sh pins this
// for the whole file, including future additions).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use cashmere_sim::Counter;

/// Live per-protocol-node recovery counters (atomic; owned by the engine).
#[derive(Debug, Default)]
pub struct RecoveryStats {
    /// Page-fetch requests that timed out (one per lost attempt).
    pub fetch_timeouts: Counter,
    /// Page-fetch retransmissions sent after a timeout.
    pub fetch_retries: Counter,
    /// Exclusive-break interrupts that timed out (one per lost attempt).
    pub break_timeouts: Counter,
    /// Exclusive-break retransmissions sent after a timeout.
    pub break_retries: Counter,
    /// Replayed (duplicate) fetch replies suppressed by the sequence check.
    pub duplicates_dropped: Counter,
}

impl RecoveryStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-value snapshot.
    #[must_use]
    pub fn counts(&self) -> RecoveryCounts {
        RecoveryCounts {
            fetch_timeouts: self.fetch_timeouts.get(),
            fetch_retries: self.fetch_retries.get(),
            break_timeouts: self.break_timeouts.get(),
            break_retries: self.break_retries.get(),
            duplicates_dropped: self.duplicates_dropped.get(),
        }
    }
}

/// Plain-value snapshot of one node's [`RecoveryStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// Page-fetch requests that timed out.
    pub fetch_timeouts: u64,
    /// Page-fetch retransmissions sent.
    pub fetch_retries: u64,
    /// Exclusive-break interrupts that timed out.
    pub break_timeouts: u64,
    /// Exclusive-break retransmissions sent.
    pub break_retries: u64,
    /// Duplicate fetch replies suppressed.
    pub duplicates_dropped: u64,
}

impl RecoveryCounts {
    /// Whether every counter is zero (true for every fault-free run).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.total() == 0
    }

    /// Sum of all counters.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.fetch_timeouts
            + self.fetch_retries
            + self.break_timeouts
            + self.break_retries
            + self.duplicates_dropped
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &RecoveryCounts) {
        self.fetch_timeouts += other.fetch_timeouts;
        self.fetch_retries += other.fetch_retries;
        self.break_timeouts += other.break_timeouts;
        self.break_retries += other.break_retries;
        self.duplicates_dropped += other.duplicates_dropped;
    }
}

/// Cluster-wide recovery summary attached to a [`crate::Report`]: per-node
/// recovery counters plus the fault plan's injection counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Per-protocol-node recovery counters.
    pub per_node: Vec<RecoveryCounts>,
    /// Labelled injection counters from the fault plan
    /// (`FaultStats::snapshot`); empty when no plan was installed.
    pub faults_injected: Vec<(&'static str, u64)>,
    /// The fault plan's seed, when one was installed.
    pub fault_seed: Option<u64>,
}

impl RecoverySummary {
    /// Cluster-wide totals across all nodes.
    #[must_use]
    pub fn total(&self) -> RecoveryCounts {
        let mut t = RecoveryCounts::default();
        for c in &self.per_node {
            t.merge(c);
        }
        t
    }

    /// Total faults the plan injected (all kinds).
    #[must_use]
    pub fn faults_total(&self) -> u64 {
        self.faults_injected.iter().map(|&(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_snapshot_and_merge() {
        let s = RecoveryStats::new();
        assert!(s.counts().is_zero());
        s.fetch_timeouts.inc();
        s.fetch_retries.inc();
        s.duplicates_dropped.add(3);
        let c = s.counts();
        assert_eq!(c.fetch_timeouts, 1);
        assert_eq!(c.fetch_retries, 1);
        assert_eq!(c.duplicates_dropped, 3);
        assert_eq!(c.total(), 5);
        let mut acc = RecoveryCounts::default();
        acc.merge(&c);
        acc.merge(&c);
        assert_eq!(acc.total(), 10);
    }

    #[test]
    fn summary_totals() {
        let a = RecoveryCounts {
            fetch_timeouts: 2,
            ..Default::default()
        };
        let b = RecoveryCounts {
            break_retries: 5,
            ..Default::default()
        };
        let sum = RecoverySummary {
            per_node: vec![a, b],
            faults_injected: vec![("writes_dropped", 4), ("fetches_lost", 2)],
            fault_seed: Some(42),
        };
        assert_eq!(sum.total().total(), 7);
        assert_eq!(sum.faults_total(), 6);
        assert_eq!(sum.fault_seed, Some(42));
        assert!(RecoverySummary::default().total().is_zero());
    }
}
