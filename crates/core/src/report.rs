//! Run reports: simulated execution time, the Figure 6 time breakdown, the
//! Table 3 counters, optional observability results, and a JSON round-trip.

use std::fmt::Write as _;

use cashmere_obs::json::{self, push_str_escaped, Value};
use cashmere_obs::ObsReport;
use cashmere_sim::{Nanos, ProcClock, Stats, TimeBreakdown, TimeCategory};

use crate::config::{ClusterConfig, ProtocolKind};
use crate::recovery::{RecoveryCounts, RecoverySummary};

/// Plain-value snapshot of the cluster-wide [`Stats`] counters, in Table 3
/// terms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Lock and flag acquires.
    pub lock_acquires: u64,
    /// Barrier episodes.
    pub barriers: u64,
    /// Read page faults.
    pub read_faults: u64,
    /// Write page faults.
    pub write_faults: u64,
    /// Page transfers from home nodes.
    pub page_transfers: u64,
    /// Global directory updates.
    pub directory_updates: u64,
    /// Write notices sent.
    pub write_notices: u64,
    /// Exclusive-mode transitions (in or out).
    pub exclusive_transitions: u64,
    /// Bytes moved across the Memory Channel.
    pub data_bytes: u64,
    /// Twins created.
    pub twin_creations: u64,
    /// Incoming (two-way) diffs applied.
    pub incoming_diffs: u64,
    /// Flush-update operations.
    pub flush_updates: u64,
    /// Shootdowns performed.
    pub shootdowns: u64,
    /// First-touch home relocations.
    pub home_relocations: u64,
    /// Explicit remote requests.
    pub remote_requests: u64,
}

impl From<&Stats> for Counters {
    fn from(s: &Stats) -> Self {
        Self {
            lock_acquires: s.lock_acquires.get(),
            barriers: s.barriers.get(),
            read_faults: s.read_faults.get(),
            write_faults: s.write_faults.get(),
            page_transfers: s.page_transfers.get(),
            directory_updates: s.directory_updates.get(),
            write_notices: s.write_notices.get(),
            exclusive_transitions: s.exclusive_transitions.get(),
            data_bytes: s.data_bytes.get(),
            twin_creations: s.twin_creations.get(),
            incoming_diffs: s.incoming_diffs.get(),
            flush_updates: s.flush_updates.get(),
            shootdowns: s.shootdowns.get(),
            home_relocations: s.home_relocations.get(),
            remote_requests: s.remote_requests.get(),
        }
    }
}

impl Counters {
    /// Labelled snapshot of every counter, in Table 3 order (mirrors
    /// `Stats::snapshot`).
    #[must_use]
    pub fn pairs(&self) -> [(&'static str, u64); 15] {
        [
            ("lock_acquires", self.lock_acquires),
            ("barriers", self.barriers),
            ("read_faults", self.read_faults),
            ("write_faults", self.write_faults),
            ("page_transfers", self.page_transfers),
            ("directory_updates", self.directory_updates),
            ("write_notices", self.write_notices),
            ("exclusive_transitions", self.exclusive_transitions),
            ("data_bytes", self.data_bytes),
            ("twin_creations", self.twin_creations),
            ("incoming_diffs", self.incoming_diffs),
            ("flush_updates", self.flush_updates),
            ("shootdowns", self.shootdowns),
            ("home_relocations", self.home_relocations),
            ("remote_requests", self.remote_requests),
        ]
    }

    /// Sets a counter by its [`Self::pairs`] label; unknown names are
    /// ignored (forward compatibility).
    pub fn set(&mut self, name: &str, v: u64) {
        match name {
            "lock_acquires" => self.lock_acquires = v,
            "barriers" => self.barriers = v,
            "read_faults" => self.read_faults = v,
            "write_faults" => self.write_faults = v,
            "page_transfers" => self.page_transfers = v,
            "directory_updates" => self.directory_updates = v,
            "write_notices" => self.write_notices = v,
            "exclusive_transitions" => self.exclusive_transitions = v,
            "data_bytes" => self.data_bytes = v,
            "twin_creations" => self.twin_creations = v,
            "incoming_diffs" => self.incoming_diffs = v,
            "flush_updates" => self.flush_updates = v,
            "shootdowns" => self.shootdowns = v,
            "home_relocations" => self.home_relocations = v,
            "remote_requests" => self.remote_requests = v,
            _ => {}
        }
    }
}

/// The known fault-injection counter labels (`FaultStats::snapshot`),
/// needed to map parsed JSON keys back to the summary's `&'static str`.
const FAULT_LABELS: [&str; 7] = [
    "writes_dropped",
    "writes_duplicated",
    "writes_delayed",
    "outage_stalls",
    "fetches_lost",
    "breaks_lost",
    "replies_duplicated",
];

/// The result of one [`crate::Cluster::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Protocol that produced this run.
    pub protocol: ProtocolKind,
    /// Processors in the run.
    pub procs: usize,
    /// Physical nodes in the run.
    pub nodes: usize,
    /// Simulated execution time: the maximum processor virtual time.
    pub exec_ns: Nanos,
    /// Per-processor virtual finish times.
    pub per_proc_ns: Vec<Nanos>,
    /// Merged per-category time across all processors (Figure 6).
    pub breakdown: TimeBreakdown,
    /// Cluster-wide event counters (Table 3).
    pub counters: Counters,
    /// Fault-recovery accounting (timeouts, retries, duplicates dropped,
    /// faults injected). All-zero for fault-free runs.
    pub recovery: RecoverySummary,
    /// Observability results (spans, metrics registry, Figure-7 breakdown,
    /// link traffic). `None` unless the run had
    /// [`crate::ClusterConfig::with_obs`] set.
    pub obs: Option<ObsReport>,
}

impl Report {
    /// Assembles a report from the engine's statistics and the collected
    /// processor clocks.
    pub fn build(cfg: &ClusterConfig, stats: &Stats, clocks: &[ProcClock]) -> Self {
        let mut breakdown = TimeBreakdown::default();
        let mut per_proc = Vec::with_capacity(clocks.len());
        for c in clocks {
            breakdown.merge(c.breakdown());
            per_proc.push(c.now());
        }
        Self {
            protocol: cfg.protocol,
            procs: cfg.topology.total_procs(),
            nodes: cfg.topology.nodes(),
            exec_ns: per_proc.iter().copied().max().unwrap_or(0),
            per_proc_ns: per_proc,
            breakdown,
            counters: Counters::from(stats),
            recovery: RecoverySummary::default(),
            obs: None,
        }
    }

    /// Attaches the engine's recovery summary (see
    /// [`crate::Engine::recovery_summary`]).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoverySummary) -> Self {
        self.recovery = recovery;
        self
    }

    /// Attaches merged observability results.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsReport) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Simulated execution time in seconds.
    pub fn exec_secs(&self) -> f64 {
        self.exec_ns as f64 / 1e9
    }

    /// Speedup relative to a sequential execution time.
    pub fn speedup(&self, sequential_ns: Nanos) -> f64 {
        sequential_ns as f64 / self.exec_ns.max(1) as f64
    }

    /// Fraction of total processor time spent in `cat` (Figure 6's
    /// normalized components).
    pub fn fraction(&self, cat: TimeCategory) -> f64 {
        let total = self.breakdown.total();
        if total == 0 {
            0.0
        } else {
            self.breakdown.get(cat) as f64 / total as f64
        }
    }

    /// Serializes the full report (including `recovery` and `obs`) as one
    /// JSON object; [`Self::from_json`] inverts it exactly.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"protocol\":");
        push_str_escaped(&mut out, self.protocol.label());
        let _ = write!(
            out,
            ",\"procs\":{},\"nodes\":{},\"exec_ns\":{},\"per_proc_ns\":[",
            self.procs, self.nodes, self.exec_ns
        );
        for (i, ns) in self.per_proc_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{ns}");
        }
        out.push_str("],\"breakdown\":{");
        for (i, cat) in TimeCategory::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_escaped(&mut out, cat.label());
            let _ = write!(out, ":{}", self.breakdown.get(cat));
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.pairs().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"recovery\":{\"per_node\":[");
        for (i, c) in self.recovery.per_node.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "[{},{},{},{},{}]",
                c.fetch_timeouts,
                c.fetch_retries,
                c.break_timeouts,
                c.break_retries,
                c.duplicates_dropped
            );
        }
        out.push_str("],\"faults_injected\":{");
        for (i, (name, v)) in self.recovery.faults_injected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"fault_seed\":");
        match self.recovery.fault_seed {
            Some(s) => {
                let _ = write!(out, "{s}");
            }
            None => out.push_str("null"),
        }
        out.push_str("},\"obs\":");
        match &self.obs {
            Some(o) => out.push_str(&o.to_json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Deserializes a document produced by [`Self::to_json`].
    pub fn from_json(doc: &str) -> Result<Self, String> {
        let v = json::parse(doc)?;
        let protocol = v
            .get("protocol")
            .and_then(Value::as_str)
            .and_then(ProtocolKind::from_label)
            .ok_or("missing or unknown protocol label")?;
        let int = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let mut per_proc_ns = Vec::new();
        for ns in v.get("per_proc_ns").and_then(Value::as_arr).unwrap_or(&[]) {
            per_proc_ns.push(ns.as_u64().ok_or("bad per_proc_ns entry")?);
        }
        let mut breakdown = TimeBreakdown::default();
        let bd = v.get("breakdown").ok_or("missing breakdown")?;
        for cat in TimeCategory::ALL {
            let ns = bd
                .get(cat.label())
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing breakdown bin {:?}", cat.label()))?;
            breakdown.add(cat, ns);
        }
        let mut counters = Counters::default();
        if let Some(Value::Obj(fields)) = v.get("counters") {
            for (name, val) in fields {
                counters.set(name, val.as_u64().ok_or("bad counter")?);
            }
        }
        let mut recovery = RecoverySummary::default();
        if let Some(rec) = v.get("recovery") {
            for node in rec.get("per_node").and_then(Value::as_arr).unwrap_or(&[]) {
                let p = node.as_arr().ok_or("bad per_node entry")?;
                if p.len() != 5 {
                    return Err("bad per_node entry".into());
                }
                let g = |i: usize| p[i].as_u64().ok_or("bad per_node entry");
                recovery.per_node.push(RecoveryCounts {
                    fetch_timeouts: g(0)?,
                    fetch_retries: g(1)?,
                    break_timeouts: g(2)?,
                    break_retries: g(3)?,
                    duplicates_dropped: g(4)?,
                });
            }
            if let Some(Value::Obj(fields)) = rec.get("faults_injected") {
                for (name, val) in fields {
                    // Map back to the fixed static label set; labels from a
                    // newer build are dropped rather than invented.
                    if let Some(label) = FAULT_LABELS.iter().find(|&&l| l == name) {
                        recovery
                            .faults_injected
                            .push((label, val.as_u64().ok_or("bad fault counter")?));
                    }
                }
            }
            recovery.fault_seed = rec.get("fault_seed").and_then(Value::as_u64);
        }
        let obs = match v.get("obs") {
            None | Some(Value::Null) => None,
            Some(o) => Some(ObsReport::from_json(o)?),
        };
        Ok(Self {
            protocol,
            procs: int("procs")? as usize,
            nodes: int("nodes")? as usize,
            exec_ns: int("exec_ns")?,
            per_proc_ns,
            breakdown,
            counters,
            recovery,
            obs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_sim::Topology;

    #[test]
    fn report_aggregates_clocks() {
        let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
        let stats = Stats::new();
        stats.page_transfers.add(7);
        let mut c0 = ProcClock::new();
        c0.charge(TimeCategory::User, 100);
        let mut c1 = ProcClock::new();
        c1.charge(TimeCategory::Protocol, 250);
        let r = Report::build(&cfg, &stats, &[c0, c1]);
        assert_eq!(r.exec_ns, 250);
        assert_eq!(r.per_proc_ns, vec![100, 250]);
        assert_eq!(r.counters.page_transfers, 7);
        assert_eq!(r.breakdown.total(), 350);
        assert!((r.fraction(TimeCategory::User) - 100.0 / 350.0).abs() < 1e-12);
        assert!((r.speedup(500) - 2.0).abs() < 1e-12);
        assert!(r.recovery.total().is_zero(), "no recovery by default");
    }

    #[test]
    fn with_recovery_attaches_summary() {
        use crate::recovery::RecoveryCounts;
        let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
        let summary = RecoverySummary {
            per_node: vec![RecoveryCounts {
                fetch_retries: 3,
                ..Default::default()
            }],
            faults_injected: vec![("fetches_lost", 3)],
            fault_seed: Some(9),
        };
        let r = Report::build(&cfg, &Stats::new(), &[ProcClock::new()]).with_recovery(summary);
        assert_eq!(r.recovery.total().fetch_retries, 3);
        assert_eq!(r.recovery.faults_total(), 3);
        assert_eq!(r.recovery.fault_seed, Some(9));
    }

    #[test]
    fn json_round_trip_is_exact() {
        use crate::recovery::RecoveryCounts;
        let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::OneLevelDiff);
        let stats = Stats::new();
        stats.twin_creations.add(11);
        stats.data_bytes.add(4096);
        let mut c0 = ProcClock::new();
        c0.charge(TimeCategory::User, 100);
        c0.charge(TimeCategory::Polling, 7);
        let mut c1 = ProcClock::new();
        c1.charge(TimeCategory::Protocol, 250);
        let summary = RecoverySummary {
            per_node: vec![
                RecoveryCounts {
                    fetch_timeouts: 1,
                    break_retries: 2,
                    ..Default::default()
                },
                RecoveryCounts::default(),
            ],
            faults_injected: vec![("writes_dropped", 5), ("breaks_lost", 2)],
            fault_seed: Some(77),
        };
        let r = Report::build(&cfg, &stats, &[c0, c1]).with_recovery(summary);
        let doc = r.to_json();
        let back = Report::from_json(&doc).expect("round trip");
        assert_eq!(back, r);
        // Serializing again must be byte-identical (stable ordering).
        assert_eq!(back.to_json(), doc);
    }

    #[test]
    fn json_round_trip_with_obs() {
        let cfg = ClusterConfig::new(Topology::new(1, 2), ProtocolKind::TwoLevel);
        let mut obs = ObsReport::new();
        obs.procs = 4;
        obs.page_heat = vec![0, 3, 9];
        obs.spans_dropped = 1;
        let r = Report::build(&cfg, &Stats::new(), &[ProcClock::new()]).with_obs(obs);
        let back = Report::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.obs.as_ref().map(|o| o.procs), Some(4));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json("{\"protocol\":\"nope\"}").is_err());
    }
}
