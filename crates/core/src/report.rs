//! Run reports: simulated execution time, the Figure 6 time breakdown, and
//! the Table 3 counters.

use cashmere_sim::{Nanos, ProcClock, Stats, TimeBreakdown, TimeCategory};

use crate::config::{ClusterConfig, ProtocolKind};
use crate::recovery::RecoverySummary;

/// Plain-value snapshot of the cluster-wide [`Stats`] counters, in Table 3
/// terms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Lock and flag acquires.
    pub lock_acquires: u64,
    /// Barrier episodes.
    pub barriers: u64,
    /// Read page faults.
    pub read_faults: u64,
    /// Write page faults.
    pub write_faults: u64,
    /// Page transfers from home nodes.
    pub page_transfers: u64,
    /// Global directory updates.
    pub directory_updates: u64,
    /// Write notices sent.
    pub write_notices: u64,
    /// Exclusive-mode transitions (in or out).
    pub exclusive_transitions: u64,
    /// Bytes moved across the Memory Channel.
    pub data_bytes: u64,
    /// Twins created.
    pub twin_creations: u64,
    /// Incoming (two-way) diffs applied.
    pub incoming_diffs: u64,
    /// Flush-update operations.
    pub flush_updates: u64,
    /// Shootdowns performed.
    pub shootdowns: u64,
    /// First-touch home relocations.
    pub home_relocations: u64,
    /// Explicit remote requests.
    pub remote_requests: u64,
}

impl From<&Stats> for Counters {
    fn from(s: &Stats) -> Self {
        Self {
            lock_acquires: s.lock_acquires.get(),
            barriers: s.barriers.get(),
            read_faults: s.read_faults.get(),
            write_faults: s.write_faults.get(),
            page_transfers: s.page_transfers.get(),
            directory_updates: s.directory_updates.get(),
            write_notices: s.write_notices.get(),
            exclusive_transitions: s.exclusive_transitions.get(),
            data_bytes: s.data_bytes.get(),
            twin_creations: s.twin_creations.get(),
            incoming_diffs: s.incoming_diffs.get(),
            flush_updates: s.flush_updates.get(),
            shootdowns: s.shootdowns.get(),
            home_relocations: s.home_relocations.get(),
            remote_requests: s.remote_requests.get(),
        }
    }
}

/// The result of one [`crate::Cluster::run`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Protocol that produced this run.
    pub protocol: ProtocolKind,
    /// Processors in the run.
    pub procs: usize,
    /// Physical nodes in the run.
    pub nodes: usize,
    /// Simulated execution time: the maximum processor virtual time.
    pub exec_ns: Nanos,
    /// Per-processor virtual finish times.
    pub per_proc_ns: Vec<Nanos>,
    /// Merged per-category time across all processors (Figure 6).
    pub breakdown: TimeBreakdown,
    /// Cluster-wide event counters (Table 3).
    pub counters: Counters,
    /// Fault-recovery accounting (timeouts, retries, duplicates dropped,
    /// faults injected). All-zero for fault-free runs.
    pub recovery: RecoverySummary,
}

impl Report {
    /// Assembles a report from the engine's statistics and the collected
    /// processor clocks.
    pub fn build(cfg: &ClusterConfig, stats: &Stats, clocks: &[ProcClock]) -> Self {
        let mut breakdown = TimeBreakdown::default();
        let mut per_proc = Vec::with_capacity(clocks.len());
        for c in clocks {
            breakdown.merge(c.breakdown());
            per_proc.push(c.now());
        }
        Self {
            protocol: cfg.protocol,
            procs: cfg.topology.total_procs(),
            nodes: cfg.topology.nodes(),
            exec_ns: per_proc.iter().copied().max().unwrap_or(0),
            per_proc_ns: per_proc,
            breakdown,
            counters: Counters::from(stats),
            recovery: RecoverySummary::default(),
        }
    }

    /// Attaches the engine's recovery summary (see
    /// [`crate::Engine::recovery_summary`]).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoverySummary) -> Self {
        self.recovery = recovery;
        self
    }

    /// Simulated execution time in seconds.
    pub fn exec_secs(&self) -> f64 {
        self.exec_ns as f64 / 1e9
    }

    /// Speedup relative to a sequential execution time.
    pub fn speedup(&self, sequential_ns: Nanos) -> f64 {
        sequential_ns as f64 / self.exec_ns.max(1) as f64
    }

    /// Fraction of total processor time spent in `cat` (Figure 6's
    /// normalized components).
    pub fn fraction(&self, cat: TimeCategory) -> f64 {
        let total = self.breakdown.total();
        if total == 0 {
            0.0
        } else {
            self.breakdown.get(cat) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_sim::Topology;

    #[test]
    fn report_aggregates_clocks() {
        let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
        let stats = Stats::new();
        stats.page_transfers.add(7);
        let mut c0 = ProcClock::new();
        c0.charge(TimeCategory::User, 100);
        let mut c1 = ProcClock::new();
        c1.charge(TimeCategory::Protocol, 250);
        let r = Report::build(&cfg, &stats, &[c0, c1]);
        assert_eq!(r.exec_ns, 250);
        assert_eq!(r.per_proc_ns, vec![100, 250]);
        assert_eq!(r.counters.page_transfers, 7);
        assert_eq!(r.breakdown.total(), 350);
        assert!((r.fraction(TimeCategory::User) - 100.0 / 350.0).abs() < 1e-12);
        assert!((r.speedup(500) - 2.0).abs() < 1e-12);
        assert!(r.recovery.total().is_zero(), "no recovery by default");
    }

    #[test]
    fn with_recovery_attaches_summary() {
        use crate::recovery::RecoveryCounts;
        let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
        let summary = RecoverySummary {
            per_node: vec![RecoveryCounts {
                fetch_retries: 3,
                ..Default::default()
            }],
            faults_injected: vec![("fetches_lost", 3)],
            fault_seed: Some(9),
        };
        let r = Report::build(&cfg, &Stats::new(), &[ProcClock::new()]).with_recovery(summary);
        assert_eq!(r.recovery.total().fetch_retries, 3);
        assert_eq!(r.recovery.faults_total(), 3);
        assert_eq!(r.recovery.fault_seed, Some(9));
    }
}
