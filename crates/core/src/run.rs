//! The unified run facade: describe a run with [`RunSpec`], get a
//! [`Report`] back.
//!
//! Before this module existed every caller — the examples, the bench
//! harness, the integration tests — hand-assembled a [`ClusterConfig`],
//! remembered to apply the audit/fault/observability toggles in the right
//! order, built a [`Cluster`], ran it, and pulled the trace out. [`RunSpec`]
//! centralizes that assembly so the toggles compose the same way everywhere,
//! and [`run`] packages the common "seed memory, run every processor,
//! collect results" shape behind one call.

use std::sync::Arc;

use cashmere_faults::FaultPlan;
use cashmere_sim::{Backend, Messaging, Topology};

use crate::config::{ClusterConfig, DirectoryMode, ProtocolKind, RecoveryPolicy, SyncSpec};
use crate::proc::{Cluster, Proc};
use crate::report::Report;
use crate::trace::TraceEvent;

/// Everything that defines one simulated run, independent of the
/// application code itself. Construct with [`RunSpec::new`], refine with
/// the builder methods, execute with [`run`] (or build the cluster yourself
/// via [`RunSpec::build_cluster`] when the application drives it, as the
/// bench harness does).
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Physical cluster shape.
    pub topology: Topology,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// Deterministic-schedule provenance tag. Echoed into [`RunOutput`];
    /// fault plans carry their own seed.
    pub seed: u64,
    /// Synchronization pool sizing.
    pub sync: SyncSpec,
    /// Shared-heap override in pages (`None` keeps the config default).
    pub heap_pages: Option<usize>,
    /// Directory/write-notice locking ablation.
    pub directory: DirectoryMode,
    /// Interconnect backend (DESIGN.md §14). Defaults to the paper's
    /// Memory Channel; [`Backend::Rdma`] / [`Backend::Cxl`] swap in a
    /// modern cost model and a direct-read page-fetch shape.
    pub backend: Backend,
    /// Request-delivery mechanism.
    pub messaging: Messaging,
    /// Force the polling-overhead fraction to zero (the paper's
    /// "uninstrumented" sequential runs).
    pub uninstrumented: bool,
    /// Record the protocol event trace for `cashmere_check::audit`.
    pub audit: bool,
    /// Record observability data (`Report::obs`).
    pub obs: bool,
    /// Deterministic fault-injection plan.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Timeout/backoff policy for lost-request recovery.
    pub recovery: RecoveryPolicy,
    /// Deterministic parallel execution (DESIGN.md §15): run the simulated
    /// processors on this many host workers. `None` keeps the sequential
    /// engine (unless `CASHMERE_PROC_WORKERS` opts in at run time).
    pub det_workers: Option<usize>,
}

impl RunSpec {
    /// A spec with every toggle at its default (no audit, no faults, no
    /// observability, default pools and heap).
    #[must_use]
    pub fn new(topology: Topology, protocol: ProtocolKind) -> Self {
        Self {
            directory: DirectoryMode::default_for(&topology),
            topology,
            protocol,
            seed: 0,
            sync: SyncSpec::default(),
            heap_pages: None,
            backend: Backend::default(),
            messaging: Messaging::default(),
            uninstrumented: false,
            audit: false,
            obs: false,
            fault_plan: None,
            recovery: RecoveryPolicy::default(),
            det_workers: None,
        }
    }

    /// Builder-style seed tag.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style sync pool sizing.
    #[must_use]
    pub fn with_sync(mut self, sync: SyncSpec) -> Self {
        self.sync = sync;
        self
    }

    /// Builder-style heap size.
    #[must_use]
    pub fn with_heap_pages(mut self, pages: usize) -> Self {
        self.heap_pages = Some(pages);
        self
    }

    /// Builder-style directory ablation.
    #[must_use]
    pub fn with_directory(mut self, directory: DirectoryMode) -> Self {
        self.directory = directory;
        self
    }

    /// Builder-style interconnect backend. Mirrors
    /// [`ClusterConfig::with_transport`]: a non-default backend replaces
    /// the whole cost model when the config is materialized, so goldens
    /// (always Memory Channel) are untouched by this machinery existing.
    #[must_use]
    pub fn with_transport(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style messaging mechanism.
    #[must_use]
    pub fn with_messaging(mut self, messaging: Messaging) -> Self {
        self.messaging = messaging;
        self
    }

    /// Builder-style uninstrumented toggle.
    #[must_use]
    pub fn uninstrumented(mut self, on: bool) -> Self {
        self.uninstrumented = on;
        self
    }

    /// Builder-style audit toggle.
    #[must_use]
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Builder-style observability toggle.
    #[must_use]
    pub fn with_obs(mut self, on: bool) -> Self {
        self.obs = on;
        self
    }

    /// Builder-style fault plan.
    #[must_use]
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style recovery policy.
    #[must_use]
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Builder-style deterministic parallelism: run the simulated
    /// processors on `workers` host threads (clamped to at least 1). The
    /// [`Report`] is byte-identical at any worker count — see
    /// [`ClusterConfig::with_det_parallel`].
    #[must_use]
    pub fn with_det_parallel(mut self, workers: usize) -> Self {
        self.det_workers = Some(workers.max(1));
        self
    }

    /// Materializes the [`ClusterConfig`], letting `tweak` (typically an
    /// application's `configure`) adjust the base config *before* the
    /// spec's overriding toggles (directory, messaging, instrumentation,
    /// audit/obs/faults/recovery) are applied on top.
    #[must_use]
    pub fn to_config_with(&self, tweak: impl FnOnce(&mut ClusterConfig)) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(self.topology, self.protocol).with_sync(self.sync);
        if let Some(pages) = self.heap_pages {
            cfg.heap_pages = pages;
        }
        tweak(&mut cfg);
        cfg.directory = self.directory;
        cfg.backend = self.backend;
        if self.backend != Backend::MemoryChannel {
            // A modern fabric brings its own cost model; on the default
            // backend the tweak's cost adjustments (if any) stand.
            cfg.cost = self.backend.cost_model();
        }
        cfg.cost.messaging = self.messaging;
        if self.uninstrumented {
            cfg.poll_fraction = 0.0;
        }
        cfg.audit = self.audit;
        cfg.obs = self.obs;
        cfg.fault_plan = self.fault_plan.clone();
        cfg.recovery = self.recovery;
        if let Some(workers) = self.det_workers {
            cfg = cfg.with_det_parallel(workers);
        }
        cfg
    }

    /// Materializes the [`ClusterConfig`] with no application tweak.
    #[must_use]
    pub fn to_config(&self) -> ClusterConfig {
        self.to_config_with(|_| {})
    }

    /// Builds a [`Cluster`] ready to run, after letting `tweak` adjust the
    /// base config (see [`Self::to_config_with`]).
    #[must_use]
    pub fn build_cluster(&self, tweak: impl FnOnce(&mut ClusterConfig)) -> Cluster {
        Cluster::new(self.to_config_with(tweak))
    }
}

/// Everything [`run`] produces: the report, the audit trace (empty unless
/// `spec.audit`), the value the setup closure returned (addresses, shapes),
/// and the cluster itself for post-run readback.
pub struct RunOutput<T> {
    /// The spec's seed tag, echoed for provenance.
    pub seed: u64,
    /// Virtual-time results ([`Report::obs`] is set when `spec.obs`).
    pub report: Report,
    /// Protocol event trace, for `cashmere_check::audit`.
    pub trace: Vec<TraceEvent>,
    /// Whatever `setup` returned.
    pub shared: T,
    /// The finished cluster (read checksums back with
    /// [`Cluster::read_u64`] and friends).
    pub cluster: Cluster,
}

/// Runs one complete experiment: builds the cluster from `spec`, calls
/// `setup` once to allocate and seed shared memory, runs `body` on every
/// simulated processor, and returns the results.
///
/// ```
/// use cashmere_core::{run, ProtocolKind, RunSpec, Topology};
/// let spec = RunSpec::new(Topology::new(2, 2), ProtocolKind::TwoLevel);
/// let out = run(&spec, |c| c.alloc_page_aligned(4), |p, &addr| {
///     p.write_u64(addr + p.id(), p.id() as u64);
///     p.barrier(0);
/// });
/// assert_eq!(out.cluster.read_u64(out.shared + 3), 3);
/// assert!(out.report.exec_ns > 0);
/// ```
pub fn run<T, S, B>(spec: &RunSpec, setup: S, body: B) -> RunOutput<T>
where
    S: FnOnce(&mut Cluster) -> T,
    T: Sync,
    B: Fn(&mut Proc, &T) + Sync,
{
    let mut cluster = spec.build_cluster(|_| {});
    let shared = setup(&mut cluster);
    let report = cluster.run(|p| body(p, &shared));
    let trace = cluster.take_trace();
    RunOutput {
        seed: spec.seed,
        report,
        trace,
        shared,
        cluster,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_match_hand_assembled_config() {
        let topo = Topology::new(2, 2);
        let spec = RunSpec::new(topo, ProtocolKind::OneLevelDiff);
        let cfg = spec.to_config();
        let base = ClusterConfig::new(topo, ProtocolKind::OneLevelDiff);
        assert_eq!(cfg.heap_pages, base.heap_pages);
        assert_eq!(
            (cfg.locks, cfg.barriers, cfg.flags),
            (base.locks, base.barriers, base.flags)
        );
        assert_eq!(cfg.directory, base.directory);
        assert_eq!(cfg.poll_fraction, base.poll_fraction);
        assert!(!cfg.audit && !cfg.obs && cfg.fault_plan.is_none());
        assert_eq!(cfg.recovery, base.recovery);
        assert_eq!(spec.seed, 0);
    }

    #[test]
    fn spec_directory_tracks_the_topology_default() {
        let small = RunSpec::new(Topology::new(8, 4), ProtocolKind::OneLevelWrite);
        assert_eq!(small.directory, DirectoryMode::LockFree);
        let large = RunSpec::new(Topology::new(16, 8), ProtocolKind::TwoLevel);
        assert_eq!(large.directory, DirectoryMode::Sparse);
        // An explicit choice still wins over the topology default.
        let forced = large.with_directory(DirectoryMode::LockFree);
        assert_eq!(forced.to_config().directory, DirectoryMode::LockFree);
    }

    #[test]
    fn backend_selection_swaps_the_cost_model_but_default_leaves_it_alone() {
        let topo = Topology::new(2, 2);
        let spec = RunSpec::new(topo, ProtocolKind::TwoLevel);
        assert_eq!(spec.backend, Backend::MemoryChannel);
        // Default backend: an application cost tweak survives.
        let cfg = spec.to_config_with(|c| c.cost.shared_access = 99);
        assert_eq!(cfg.backend, Backend::MemoryChannel);
        assert_eq!(cfg.cost.shared_access, 99);
        // A modern backend replaces the cost model wholesale (its constants
        // are a coherent set) but keeps the spec's messaging choice.
        let rdma = RunSpec::new(topo, ProtocolKind::TwoLevel)
            .with_transport(Backend::Rdma)
            .with_messaging(Messaging::Interrupt);
        let cfg = rdma.to_config();
        assert_eq!(cfg.backend, Backend::Rdma);
        assert_eq!(
            cfg.cost.remote_read_latency,
            Backend::Rdma.cost_model().remote_read_latency
        );
        assert_eq!(cfg.cost.messaging, Messaging::Interrupt);
    }

    #[test]
    fn overrides_apply_after_the_tweak() {
        let spec = RunSpec::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
            .with_heap_pages(8)
            .uninstrumented(true)
            .with_audit(true)
            .with_obs(true)
            .with_seed(42);
        let cfg = spec.to_config_with(|c| {
            c.heap_pages = 32; // the "application" wants more heap
            c.poll_fraction = 0.9; // …but cannot undo uninstrumented
        });
        assert_eq!(cfg.heap_pages, 32, "tweak overrides the spec's heap");
        assert_eq!(cfg.poll_fraction, 0.0, "spec toggles win over the tweak");
        assert!(cfg.audit && cfg.obs);
    }

    #[test]
    fn run_facade_round_trips_shared_state() {
        let spec = RunSpec::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
            .with_sync(SyncSpec {
                locks: 1,
                barriers: 2,
                flags: 0,
            })
            .with_heap_pages(8)
            .with_seed(7);
        let out = run(
            &spec,
            |c| c.alloc_page_aligned(8),
            |p, &addr| {
                p.write_u64(addr + p.id(), 100 + p.id() as u64);
                p.barrier(0);
                if p.id() == 0 {
                    let sum: u64 = (0..p.nprocs()).map(|i| p.read_u64(addr + i)).sum();
                    p.write_u64(addr, sum);
                }
                p.barrier(1);
            },
        );
        assert_eq!(out.seed, 7);
        assert_eq!(out.cluster.read_u64(out.shared), 100 + 101 + 102 + 103);
        assert!(out.report.exec_ns > 0);
        assert!(out.trace.is_empty(), "no audit requested");
        assert!(out.report.obs.is_none(), "no obs requested");
    }
}
