//! Synchronization carriers: locks, barriers, and flags.
//!
//! The paper's synchronization primitives are two-level: an intra-node
//! `ll/sc` flag plus reads and writes to a loop-back Memory Channel array
//! (§2.3, "Synchronization"). This module provides the *carrier* half of
//! each primitive — real blocking (so the simulated processors, which are OS
//! threads, actually exclude each other and rendezvous) plus **virtual-time
//! reconciliation**:
//!
//! * a lock occupies a virtual-time slot per hand-off (see [`CarrierLock`]
//!   for why it deliberately does NOT chain clocks through release times),
//! * a barrier departs at the maximum arrival time plus the barrier cost,
//! * a flag wait completes no earlier than the flag's set time (flags carry
//!   the producer→consumer causality, e.g. Gauss's pivot-row readiness).
//!
//! The protocol side of synchronization (consistency actions on acquire and
//! release) lives in the engine; the faithful Memory Channel lock algorithm
//! itself is in [`crate::mc_lock`] and is used where the paper uses it —
//! home-node selection.

use parking_lot::{Condvar, Mutex};

use cashmere_sim::{Nanos, Resource};

/// A mutual-exclusion carrier.
///
/// *Real* mutual exclusion comes from the mutex/condvar pair — critical
/// sections of the simulated program never overlap in real execution, so
/// shared data stays consistent. *Virtual-time* cost is modeled with a
/// busy-interval [`Resource`]: each acquire occupies the lock for the
/// configured hand-off cost in the earliest gap at or after the caller's
/// own clock. Overlapping (virtual-time) acquires therefore queue, while a
/// processor whose clock is far behind the previous holder's is NOT dragged
/// to that holder's release time — on real hardware it would have been
/// granted the lock long before, and chaining clocks through the host
/// machine's arbitrary real-time grant order would serialize whole
/// applications behind whichever thread the OS happened to schedule first.
/// (Coherence itself is ordered by the protocol's per-node logical clocks
/// and by the real execution order, not by these accounting clocks.)
pub struct CarrierLock {
    inner: Mutex<LockInner>,
    cv: Condvar,
    slots: Resource,
}

#[derive(Default)]
struct LockInner {
    held: bool,
}

impl CarrierLock {
    /// Creates an unheld lock.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(LockInner::default()),
            cv: Condvar::new(),
            slots: Resource::new(),
        }
    }

    /// Blocks until the lock is free, takes it, and returns the virtual
    /// time at which the acquire completes, having occupied the lock for
    /// `hold` ns in the earliest available virtual-time slot.
    pub fn acquire_for(&self, arrive_vt: Nanos, hold: Nanos) -> Nanos {
        let mut g = self.inner.lock();
        while g.held {
            self.cv.wait(&mut g);
        }
        g.held = true;
        drop(g);
        self.slots.acquire(arrive_vt, hold.max(1))
    }

    /// Blocks until the lock is free and takes it (zero-cost hand-off;
    /// tests and simple callers).
    pub fn acquire(&self, arrive_vt: Nanos) -> Nanos {
        self.acquire_for(arrive_vt, 1)
    }

    /// Non-blocking [`Self::acquire_for`]: takes the lock and returns the
    /// completion time if it is free, or `None` without blocking. Used by
    /// the deterministic scheduler's lock gate (DESIGN.md §15), where
    /// blocking in real time would stall a host worker — contenders park in
    /// the scheduler instead and retry when the holder's release unblocks
    /// them.
    pub fn try_acquire_for(&self, arrive_vt: Nanos, hold: Nanos) -> Option<Nanos> {
        let mut g = self.inner.lock();
        if g.held {
            return None;
        }
        g.held = true;
        drop(g);
        Some(self.slots.acquire(arrive_vt, hold.max(1)))
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held.
    pub fn release(&self, _vt: Nanos) {
        let mut g = self.inner.lock();
        assert!(g.held, "release of an unheld lock");
        g.held = false;
        drop(g);
        self.cv.notify_one();
    }
}

impl Default for CarrierLock {
    fn default() -> Self {
        Self::new()
    }
}

/// A generation (sense-reversing) barrier carrier.
pub struct CarrierBarrier {
    inner: Mutex<BarrierInner>,
    cv: Condvar,
}

#[derive(Default)]
struct BarrierInner {
    arrived: usize,
    max_vt: Nanos,
    epoch: u64,
    departure_vt: Nanos,
}

/// Result of a non-blocking barrier arrival ([`CarrierBarrier::arrive`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierArrival {
    /// This arrival completed the rendezvous; every participant departs.
    Complete(BarrierCrossing),
    /// Others are still missing; poll with the returned epoch.
    Waiting(u64),
}

/// Result of a barrier crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierCrossing {
    /// Virtual time at which every participant departs.
    pub departure_vt: Nanos,
    /// Whether this caller was the last arriver (used to count episodes).
    pub was_last: bool,
    /// The barrier episode this crossing completed (1-based). All
    /// participants of one rendezvous report the same epoch.
    pub epoch: u64,
}

impl CarrierBarrier {
    /// Creates a barrier.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(BarrierInner::default()),
            cv: Condvar::new(),
        }
    }

    /// Waits for `participants` arrivals. The last arriver computes the
    /// common departure time `max(arrival times) + cost` and wakes everyone.
    pub fn wait(&self, participants: usize, arrive_vt: Nanos, cost: Nanos) -> BarrierCrossing {
        assert!(participants > 0);
        let mut g = self.inner.lock();
        g.max_vt = g.max_vt.max(arrive_vt);
        g.arrived += 1;
        if g.arrived == participants {
            let departure = g.max_vt + cost;
            g.departure_vt = departure;
            g.arrived = 0;
            g.max_vt = 0;
            g.epoch += 1;
            let epoch = g.epoch;
            drop(g);
            self.cv.notify_all();
            BarrierCrossing {
                departure_vt: departure,
                was_last: true,
                epoch,
            }
        } else {
            let epoch = g.epoch;
            while g.epoch == epoch {
                self.cv.wait(&mut g);
            }
            BarrierCrossing {
                departure_vt: g.departure_vt,
                was_last: false,
                epoch: epoch + 1,
            }
        }
    }

    /// Non-blocking [`Self::wait`]: registers the arrival and either
    /// completes the rendezvous (this caller was the last participant) or
    /// returns the epoch to [`poll`](Self::poll) once the completion has
    /// been signalled. Used by the deterministic scheduler's barrier gate
    /// (DESIGN.md §15): early arrivers park in the scheduler instead of on
    /// the condvar.
    pub fn arrive(&self, participants: usize, arrive_vt: Nanos, cost: Nanos) -> BarrierArrival {
        assert!(participants > 0);
        let mut g = self.inner.lock();
        g.max_vt = g.max_vt.max(arrive_vt);
        g.arrived += 1;
        if g.arrived == participants {
            let departure = g.max_vt + cost;
            g.departure_vt = departure;
            g.arrived = 0;
            g.max_vt = 0;
            g.epoch += 1;
            let epoch = g.epoch;
            BarrierArrival::Complete(BarrierCrossing {
                departure_vt: departure,
                was_last: true,
                epoch,
            })
        } else {
            BarrierArrival::Waiting(g.epoch)
        }
    }

    /// Checks whether the episode a [`Self::arrive`] joined at `epoch` has
    /// completed; returns the crossing if so.
    pub fn poll(&self, epoch: u64) -> Option<BarrierCrossing> {
        let g = self.inner.lock();
        (g.epoch != epoch).then_some(BarrierCrossing {
            departure_vt: g.departure_vt,
            was_last: false,
            epoch: epoch + 1,
        })
    }
}

impl Default for CarrierBarrier {
    fn default() -> Self {
        Self::new()
    }
}

/// A one-shot (resettable) event flag carrier — the paper's third primitive,
/// used e.g. by Gauss to announce pivot-row availability.
pub struct CarrierFlag {
    inner: Mutex<FlagInner>,
    cv: Condvar,
}

#[derive(Default)]
struct FlagInner {
    set: bool,
    set_vt: Nanos,
}

impl CarrierFlag {
    /// Creates an unset flag.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(FlagInner::default()),
            cv: Condvar::new(),
        }
    }

    /// Sets the flag at virtual time `vt`, waking waiters.
    pub fn set(&self, vt: Nanos) {
        let mut g = self.inner.lock();
        g.set = true;
        g.set_vt = g.set_vt.max(vt);
        drop(g);
        self.cv.notify_all();
    }

    /// Blocks until the flag is set; returns the virtual time at which the
    /// wait logically completes.
    pub fn wait(&self, arrive_vt: Nanos) -> Nanos {
        let mut g = self.inner.lock();
        while !g.set {
            self.cv.wait(&mut g);
        }
        arrive_vt.max(g.set_vt)
    }

    /// Non-blocking [`Self::wait`]: returns the completion time if the flag
    /// is set, `None` otherwise. Used by the deterministic scheduler's flag
    /// gate (DESIGN.md §15); waiters park in the scheduler and retry when
    /// the setter unblocks them.
    pub fn try_wait(&self, arrive_vt: Nanos) -> Option<Nanos> {
        let g = self.inner.lock();
        g.set.then_some(arrive_vt.max(g.set_vt))
    }

    /// Non-blocking check.
    pub fn is_set(&self) -> bool {
        self.inner.lock().set
    }

    /// Clears the flag (for reuse across phases).
    pub fn reset(&self) {
        self.inner.lock().set = false;
    }
}

impl Default for CarrierFlag {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_handoff_occupies_virtual_time_slots() {
        let l = CarrierLock::new();
        // Each acquire occupies the lock for the hold time, in the earliest
        // gap at or after the caller's clock.
        assert_eq!(l.acquire_for(100, 50), 150);
        l.release(150);
        // Overlapping request queues behind the first slot.
        assert_eq!(l.acquire_for(120, 50), 200);
        l.release(200);
        // A request far in the past is NOT dragged to the previous holder's
        // time; it slots in before.
        assert_eq!(l.acquire_for(0, 50), 50);
        l.release(50);
        assert_eq!(l.acquire(900), 901);
        l.release(950);
    }

    #[test]
    #[should_panic(expected = "unheld")]
    fn releasing_unheld_lock_panics() {
        CarrierLock::new().release(0);
    }

    #[test]
    fn lock_excludes_across_threads() {
        let l = Arc::new(CarrierLock::new());
        let counter = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                cashmere_model::thread::spawn(move || {
                    for _ in 0..500 {
                        let vt = l.acquire(0);
                        *counter.lock() += 1;
                        l.release(vt + 1);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(*counter.lock(), 2000);
    }

    #[test]
    fn barrier_departs_at_max_plus_cost() {
        let b = Arc::new(CarrierBarrier::new());
        let b2 = Arc::clone(&b);
        let h = cashmere_model::thread::spawn(move || b2.wait(2, 1_000, 50));
        let me = b.wait(2, 3_000, 50);
        let other = h.join();
        assert_eq!(me.departure_vt, 3_050);
        assert_eq!(other.departure_vt, 3_050);
        assert_ne!(me.was_last, other.was_last, "exactly one last arriver");
    }

    #[test]
    fn barrier_is_reusable_across_episodes() {
        let b = Arc::new(CarrierBarrier::new());
        for round in 0..5u64 {
            let b2 = Arc::clone(&b);
            let h = cashmere_model::thread::spawn(move || b2.wait(2, round * 10, 1));
            let me = b.wait(2, round * 10 + 5, 1);
            let other = h.join();
            assert_eq!(me.departure_vt, round * 10 + 6);
            assert_eq!(other.departure_vt, me.departure_vt);
        }
    }

    #[test]
    fn flag_wait_reconciles_with_set_time() {
        let f = Arc::new(CarrierFlag::new());
        let f2 = Arc::clone(&f);
        let h = cashmere_model::thread::spawn(move || f2.wait(10));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!f.is_set());
        f.set(9_999);
        assert_eq!(h.join(), 9_999);
        // A late waiter keeps its own (later) time.
        assert_eq!(f.wait(20_000), 20_000);
        f.reset();
        assert!(!f.is_set());
    }
}
