//! Protocol event tracing for the correctness auditor.
//!
//! When [`crate::ClusterConfig::audit`] is set, the engine and its
//! subsystems emit a [`ProtocolEvent`] at every protocol transition —
//! acquires, releases, page faults, twin creation, outgoing/incoming diffs,
//! write-notice posts and drains, directory writes, exclusive-mode entry and
//! break, home migration. The `cashmere-check` crate replays the stream to
//! verify the protocol's happens-before and coherence invariants.
//!
//! ## Sequencing discipline
//!
//! Events carry a global sequence number drawn from a single atomic counter.
//! The replay checker treats the sorted stream as a linearization of the
//! run, which is sound because every emission site follows one rule:
//!
//! * **Producers emit before publication.** An event describing a state
//!   change that other threads may observe (a write-notice post, a diff
//!   reaching the master copy, a directory write) is emitted *before* the
//!   change becomes visible. Any observer's event is therefore sequenced
//!   after it.
//! * **Consumers emit after observation.** An event describing an
//!   observation (a bin drain, a page fetch, a lock acquire) is emitted
//!   *after* the observation completes.
//!
//! Under this discipline, if event B observed the effect of event A, then
//! `seq(A) < seq(B)` — exactly the property the vector-clock replay needs.
//!
//! ## Cost when disabled
//!
//! The recorder is an `Option` on every holder; with auditing off (the
//! default) the hot path pays one `Option` discriminant test per potential
//! emission and allocates nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// What a release did for one page on its dirty/NLE list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseAction {
    /// Page is held in local exclusive mode; no coherence action needed.
    ExclusiveSkip,
    /// An overlapping release already flushed it (`ts_flush >=
    /// release_begin`); only the permission downgrade ran.
    OverlapSkip,
    /// Diff (or residue diff) flushed to the home and notices posted.
    Flushed,
    /// Nothing to flush (clean twin, home page, or write-through page);
    /// notices posted if sharers exist.
    Clean,
    /// The one-level release-time exclusive-mode entry succeeded.
    EnteredExclusive,
}

/// One protocol transition. Node indices are protocol-node indices
/// (`pnode`), processor ids are cluster-wide unless named `lproc` (index of
/// a processor within its protocol node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolEvent {
    // --- Synchronization carriers (happens-before edges) -------------
    /// Application lock acquired (emitted after the carrier grant, before
    /// the acquire consistency actions).
    LockAcquire {
        proc: usize,
        pnode: usize,
        lock: usize,
    },
    /// Application lock about to be released (emitted after the release
    /// consistency actions, before the carrier hand-off).
    LockRelease {
        proc: usize,
        pnode: usize,
        lock: usize,
    },
    /// Barrier arrival (after the release half).
    BarrierArrive {
        proc: usize,
        pnode: usize,
        barrier: usize,
    },
    /// Barrier departure; `epoch` is the carrier's completed episode count.
    BarrierDepart {
        proc: usize,
        pnode: usize,
        barrier: usize,
        epoch: u64,
    },
    /// Flag set (release semantics).
    FlagSet {
        proc: usize,
        pnode: usize,
        flag: usize,
    },
    /// Flag wait completed (acquire semantics).
    FlagWait {
        proc: usize,
        pnode: usize,
        flag: usize,
    },
    /// Global home-selection lock acquired.
    McLockAcquire { pnode: usize },
    /// Global home-selection lock about to be released.
    McLockRelease { pnode: usize },

    // --- Protocol clock ----------------------------------------------
    /// A node-logical-clock draw (`fetch_add` result). The auditor checks
    /// per-node uniqueness, the invariant that justifies the relaxed
    /// atomic ordering on the clock.
    ClockTick { pnode: usize, ts: u64 },

    // --- Releases / acquires ------------------------------------------
    /// Release consistency actions began; `ts` is the release timestamp.
    ReleaseBegin { proc: usize, pnode: usize, ts: u64 },
    /// One page of the release's dirty/NLE list was handled.
    ReleasePage {
        proc: usize,
        pnode: usize,
        page: usize,
        action: ReleaseAction,
    },
    /// Release consistency actions finished.
    ReleaseEnd { proc: usize, pnode: usize },

    // --- Faults and data movement --------------------------------------
    /// A page fault completed. `word` is the faulting word offset within
    /// the page; `dirtied` whether the page joined the dirty list;
    /// `excl` whether the page is (now) in local exclusive mode.
    Fault {
        proc: usize,
        pnode: usize,
        page: usize,
        word: usize,
        write: bool,
        fetched: bool,
        dirtied: bool,
        is_home: bool,
        excl: bool,
    },
    /// The master copy of `page` was fetched into the node's frame
    /// (emitted after the master snapshot was taken).
    Fetch { pnode: usize, page: usize },
    /// A page-fetch request (sequence `seq`, transmission `attempt`) was
    /// lost and its virtual-time timeout expired; a retry follows. The
    /// auditor requires every timeout to be followed by a successful
    /// [`ProtocolEvent::Fetch`] for the same `(pnode, page)`.
    FetchTimeout {
        pnode: usize,
        page: usize,
        seq: u64,
        attempt: u32,
    },
    /// A fetch reply was applied (`dup: false`) or suppressed as a replayed
    /// duplicate (`dup: true`). Fresh applies must carry strictly
    /// increasing `seq` per `(pnode, page)` — a duplicate marked fresh is
    /// the double-apply the sequence check exists to prevent.
    FetchReply {
        pnode: usize,
        page: usize,
        seq: u64,
        dup: bool,
    },
    /// A twin was created for `page`.
    TwinCreate { pnode: usize, page: usize },
    /// An outgoing diff is about to reach the master copy; `words` are the
    /// modified word offsets.
    DiffOut {
        pnode: usize,
        page: usize,
        words: Vec<u32>,
    },
    /// A two-way incoming diff was applied; `conflicts` counts words both
    /// the incoming diff and unflushed local writes had modified (must be
    /// zero for data-race-free programs — a nonzero count means the
    /// incoming words overwrote concurrent local writes).
    DiffIn {
        pnode: usize,
        page: usize,
        conflicts: u32,
    },

    // --- Exclusive mode -------------------------------------------------
    /// `proc` (on `pnode`) entered exclusive mode for `page`.
    ExclEnter {
        proc: usize,
        pnode: usize,
        page: usize,
    },
    /// `page` is about to leave exclusive mode on `pnode` (requested by
    /// node `by`).
    ExclBreak {
        pnode: usize,
        page: usize,
        by: usize,
    },
    /// An exclusive-break interrupt from `by` targeting `pnode` was lost
    /// and timed out; a retry follows. The auditor requires a later
    /// [`ProtocolEvent::ExclBreak`] for the same `(pnode, page)` or a
    /// [`ProtocolEvent::BreakAbandoned`] by the same requester.
    BreakTimeout {
        pnode: usize,
        page: usize,
        by: usize,
        attempt: u32,
    },
    /// After at least one timeout, requester `by` found `page` no longer
    /// exclusive on `pnode` (someone else broke it); the retried break is
    /// abandoned as satisfied.
    BreakAbandoned {
        pnode: usize,
        page: usize,
        by: usize,
    },
    /// A no-longer-exclusive notice was queued for `proc`.
    NlePush {
        proc: usize,
        pnode: usize,
        page: usize,
    },

    // --- Directory ------------------------------------------------------
    /// `pnode`'s directory word for `page` is about to change. `perm` is
    /// 0 (none) / 1 (read) / 2 (write).
    DirWrite {
        pnode: usize,
        page: usize,
        perm: u8,
        exclusive: bool,
    },
    /// The home of `page` is about to migrate to node `to` (first-touch).
    HomeWrite {
        pnode: usize,
        page: usize,
        to: usize,
    },

    // --- Write notices --------------------------------------------------
    /// A notice for `page` from node `from` is about to enter node `to`'s
    /// global bins.
    WnPost { to: usize, from: usize, page: u32 },
    /// Node `to`'s global bins were drained; `items` are `(from, page)`.
    WnDrain { to: usize, items: Vec<(u32, u32)> },
    /// A drained notice for `page` is being distributed to the local
    /// processors in the `mapped` bitmap.
    WnDistribute {
        pnode: usize,
        page: usize,
        mapped: u64,
    },
    /// `page` was inserted into `(pnode, lproc)`'s second-level list;
    /// `fresh` is false when the bitmap suppressed a duplicate.
    WnInsert {
        pnode: usize,
        lproc: usize,
        page: u32,
        fresh: bool,
    },
    /// `(pnode, lproc)`'s second-level list was drained.
    WnProcDrain {
        pnode: usize,
        lproc: usize,
        pages: Vec<u32>,
    },
}

/// A sequenced protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (see the module docs for the discipline that
    /// makes the sorted stream a sound linearization).
    pub seq: u64,
    /// The transition.
    pub ev: ProtocolEvent,
}

/// Collects [`TraceEvent`]s from every subsystem of one engine.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    seq: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `ev` with the next global sequence number.
    pub fn emit(&self, ev: ProtocolEvent) {
        // relaxed-ok: sequence numbers only need to be unique and allocated
        // monotonically, which single-location RMW coherence guarantees;
        // the event itself is published under the events mutex below.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events.lock().push(TraceEvent { seq, ev });
    }

    /// Takes the accumulated events, sorted by sequence number. The
    /// recorder is left empty and can keep collecting.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut evs = std::mem::take(&mut *self.events.lock());
        evs.sort_unstable_by_key(|e| e.seq);
        evs
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

/// Convenience: emit into an optional shared recorder.
pub(crate) fn emit(rec: &Option<Arc<TraceRecorder>>, ev: impl FnOnce() -> ProtocolEvent) {
    if let Some(r) = rec {
        r.emit(ev());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sequenced_and_taken_in_order() {
        let r = TraceRecorder::new();
        r.emit(ProtocolEvent::Fetch { pnode: 0, page: 1 });
        r.emit(ProtocolEvent::Fetch { pnode: 1, page: 2 });
        assert_eq!(r.len(), 2);
        let evs = r.take();
        assert!(r.is_empty());
        assert_eq!(evs.len(), 2);
        assert!(evs[0].seq < evs[1].seq);
        assert_eq!(evs[0].ev, ProtocolEvent::Fetch { pnode: 0, page: 1 });
    }

    #[test]
    fn concurrent_emissions_get_unique_seqs() {
        let r = Arc::new(TraceRecorder::new());
        let hs: Vec<_> = (0..4)
            .map(|n| {
                let r = Arc::clone(&r);
                cashmere_model::thread::spawn(move || {
                    for p in 0..500 {
                        r.emit(ProtocolEvent::Fetch { pnode: n, page: p });
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        let evs = r.take();
        assert_eq!(evs.len(), 2000);
        let mut seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 2000, "sequence numbers are unique");
    }

    #[test]
    fn optional_emit_is_inert_when_none() {
        let none: Option<Arc<TraceRecorder>> = None;
        emit(&none, || unreachable!("closure must not run when disabled"));
        let rec = Arc::new(TraceRecorder::new());
        let some = Some(Arc::clone(&rec));
        emit(&some, || ProtocolEvent::Fetch { pnode: 0, page: 0 });
        assert_eq!(rec.take().len(), 1);
    }
}
