//! Write-notice lists (§2.3, Figure 4).
//!
//! Cashmere-2L uses a **multi-bin, two-level** write-notice structure to
//! avoid mutual exclusion:
//!
//! * Each protocol node owns a globally accessible list with **one bin per
//!   remote node** (a circular queue in Memory Channel space on the real
//!   hardware). Because every bin has exactly one writer, no cluster-wide
//!   lock is needed. Here each bin is a lock-free queue standing in for the
//!   MC circular buffer; the Memory Channel latency/bandwidth of posting a
//!   notice is charged by the engine.
//! * Each *processor* has a second-level list consisting of a **bitmap plus
//!   a queue**. The bitmap suppresses redundant notices: inserting a page
//!   already present is a no-op. Host-side, the bitmap is a shared atomic
//!   word array and the queue is striped per posting processor, so
//!   concurrent posters never contend on one lock (DESIGN.md §10); drains
//!   merge the stripes back into deterministic post order.
//!
//! On an acquire, a processor drains the node's global bins, distributing
//! each notice to the per-processor lists of the local processors that have
//! a mapping for the page, then processes its own per-processor list.
//!
//! The §3.3.5 ablation ([`DirectoryMode::GlobalLock`]) replaces the per-bin
//! single-writer discipline with one global-locked list per node, modeled by
//! serializing posts through a per-node virtual-time gate.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use cashmere_model::ModelAtomicU64;
use crossbeam::queue::SegQueue;
use parking_lot::Mutex;

use cashmere_sim::{Nanos, Resource};

use crate::config::DirectoryMode;
use crate::trace::{emit, ProtocolEvent, TraceRecorder};

/// The global (inter-node) write-notice bins of one protocol node.
pub struct NodeBins {
    /// One bin per sender node (the paper's "seven-bin" list on an 8-node
    /// cluster; sized to the actual node count here). `bins[from]` is
    /// written only by node `from`.
    bins: Vec<SegQueue<u32>>,
    /// Serialization gate for the GlobalLock ablation (`None` when
    /// lock-free).
    gate: Option<Resource>,
}

/// All nodes' global write-notice lists.
pub struct NoticeBoard {
    nodes: Vec<NodeBins>,
    /// Extra virtual time a post spends holding the global lock in the
    /// ablation mode.
    gate_hold: Nanos,
    /// Auditor event stream, when enabled.
    rec: Option<Arc<TraceRecorder>>,
}

impl NoticeBoard {
    /// Creates bins for `pnodes` nodes.
    pub fn new(pnodes: usize, mode: DirectoryMode, gate_hold: Nanos) -> Self {
        let nodes = (0..pnodes)
            .map(|_| NodeBins {
                bins: (0..pnodes).map(|_| SegQueue::new()).collect(),
                gate: match mode {
                    // Sparse keeps the paper's lock-free notice bins; only
                    // the directory's layout changes (DESIGN.md §12).
                    DirectoryMode::LockFree | DirectoryMode::Sparse => None,
                    DirectoryMode::GlobalLock => Some(Resource::new()),
                },
            })
            .collect();
        Self {
            nodes,
            gate_hold,
            rec: None,
        }
    }

    /// Attaches the auditor's event recorder.
    pub fn with_recorder(mut self, rec: Arc<TraceRecorder>) -> Self {
        self.rec = Some(rec);
        self
    }

    /// Posts a write notice for `page` from node `from` into node `to`'s
    /// list. Returns the virtual time at which the post completes (equal to
    /// `now` in lock-free mode; later if the ablation's global lock had to
    /// be waited for).
    pub fn post(&self, to: usize, from: usize, page: u32, now: Nanos) -> Nanos {
        let node = &self.nodes[to];
        let done = match &node.gate {
            None => now,
            Some(gate) => gate.acquire(now, self.gate_hold),
        };
        // Producer: emit before the push so any drain that pops this notice
        // is sequenced after the post.
        emit(&self.rec, || ProtocolEvent::WnPost { to, from, page });
        node.bins[from].push(page);
        done
    }

    /// Drains every bin of node `to`, returning `(from, page)` pairs.
    ///
    /// Multiple local processors may drain concurrently (the queues are
    /// lock-free); each notice is delivered to exactly one drainer.
    pub fn drain(&self, to: usize) -> Vec<(usize, u32)> {
        let node = &self.nodes[to];
        let mut out = Vec::new();
        for (from, bin) in node.bins.iter().enumerate() {
            while let Some(page) = bin.pop() {
                out.push((from, page));
            }
        }
        // Consumer: emit after the pops.
        if !out.is_empty() {
            emit(&self.rec, || ProtocolEvent::WnDrain {
                to,
                items: out.iter().map(|&(f, p)| (f as u32, p)).collect(),
            });
        }
        out
    }

    /// Whether node `to` currently has any pending notices.
    ///
    /// Protocol-load-bearing: the exclusive-mode entry gate in
    /// `Engine::try_enter_exclusive` refuses entry while notices are
    /// pending (a queued notice is a remote write this node has not yet
    /// applied). The gate holds the node's distribute lock across this
    /// check, freezing drains; posts that could still race the check are
    /// ruled out by the gate's placement after its directory validation
    /// read (see the comment there).
    pub fn is_empty(&self, to: usize) -> bool {
        self.nodes[to].bins.iter().all(|b| b.is_empty())
    }
}

/// A processor's second-level write-notice list: a shared freshness bitmap
/// plus **one queue stripe per posting processor** (§2.3, Figure 4).
///
/// The pre-striping implementation kept one `Mutex<bitmap + queue>`, so
/// every poster into the same list — the owner's self-notices and every
/// sibling's acquire-time distributions — serialized on one lock. Now each
/// poster claims a page by winning the 0→1 transition on the shared atomic
/// bitmap (`fetch_or`) and appends to *its own* stripe, so concurrent
/// posters touch disjoint locks and an uncontended atomic word.
///
/// **Order-preserving deterministic drain:** every queued entry carries a
/// ticket from a per-list post counter; [`drain`](Self::drain) locks all
/// stripes, merges entries by ticket, and clears the bitmap while still
/// holding every stripe lock. The merged order equals the old single-queue
/// insertion order in any deterministic execution, and the merge itself is
/// a pure function of the stripe contents. Holding every stripe lock across
/// the bitmap clear keeps inserts atomic with respect to drains (an insert
/// holds its stripe lock across its `fetch_or` and push), preserving the
/// exactly-once queuing invariant.
pub struct ProcNoticeList {
    /// Shared freshness bitmap; bit set ⟺ page currently queued. The
    /// [`ModelAtomicU64`] wrapper routes every access through the model
    /// scheduler when the interleaving explorer is active (DESIGN.md §11)
    /// and compiles down to a bare `AtomicU64` otherwise.
    bits: Vec<ModelAtomicU64>,
    /// `stripes[from]` is appended only by posting processor `from`.
    stripes: Vec<Mutex<Vec<(u64, u32)>>>,
    /// Post-order tickets for the drain merge.
    ticket: ModelAtomicU64,
    /// `(pnode, lproc)` identity plus the auditor stream, when enabled.
    ident: Option<(usize, usize, Arc<TraceRecorder>)>,
}

impl ProcNoticeList {
    /// Creates an empty list covering `pages` pages, striped for `posters`
    /// posting processors (the node's local processor count).
    pub fn new(pages: usize, posters: usize) -> Self {
        Self {
            bits: (0..pages.div_ceil(64))
                .map(|_| ModelAtomicU64::new(0))
                .collect(),
            stripes: (0..posters.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            ticket: ModelAtomicU64::new(0),
            ident: None,
        }
    }

    /// Attaches the auditor's event recorder, tagging this list as
    /// belonging to local processor `lproc` of protocol node `pnode`.
    pub fn with_identity(mut self, pnode: usize, lproc: usize, rec: Arc<TraceRecorder>) -> Self {
        self.ident = Some((pnode, lproc, rec));
        self
    }

    /// Inserts a notice for `page`, posted by local processor `from`.
    /// Returns `true` if the page was newly queued, `false` if the bitmap
    /// already recorded it (the redundant-notice suppression of §2.3).
    pub fn insert(&self, page: u32, from: usize) -> bool {
        let mut stripe = self.stripes[from].lock();
        let (w, b) = (page as usize / 64, page as usize % 64);
        // The stripe lock is held across the claim and the push, so a
        // drain (which holds every stripe lock while clearing the bitmap)
        // can never observe a claimed-but-unqueued page.
        let fresh = self.bits[w].fetch_or(1 << b, Ordering::AcqRel) >> b & 1 == 0;
        // Emitted inside the stripe lock so inserts and drains of the same
        // list are sequenced consistently with their real order.
        if let Some((pnode, lproc, rec)) = &self.ident {
            rec.emit(ProtocolEvent::WnInsert {
                pnode: *pnode,
                lproc: *lproc,
                page,
                fresh,
            });
        }
        if !fresh {
            return false;
        }
        // relaxed-ok: ticket values only need to be unique and monotone per
        // claim, which single-location RMW coherence guarantees; the entry
        // they order is published under the stripe lock taken above.
        let t = self.ticket.fetch_add(1, Ordering::Relaxed);
        stripe.push((t, page));
        true
    }

    /// A deliberately wrong `insert` kept for the model checker's mutation
    /// battery (DESIGN.md §11): it claims the bitmap bit *before* taking the
    /// stripe lock. A drain that runs between the claim and the push clears
    /// the bit while the entry is still unqueued, so a second insert of the
    /// same page wins a fresh claim and the page ends up queued twice —
    /// one drain then delivers a duplicate. The model tests assert the
    /// explorer finds such a schedule within the default budget.
    #[doc(hidden)]
    pub fn insert_mutant_claim_outside_stripe_lock(&self, page: u32, from: usize) -> bool {
        let (w, b) = (page as usize / 64, page as usize % 64);
        let fresh = self.bits[w].fetch_or(1 << b, Ordering::AcqRel) >> b & 1 == 0;
        if !fresh {
            return false;
        }
        let mut stripe = self.stripes[from].lock();
        // relaxed-ok: same ticket-uniqueness argument as `insert`; the bug
        // under study is the claim/lock ordering above, not this RMW.
        let t = self.ticket.fetch_add(1, Ordering::Relaxed);
        stripe.push((t, page));
        true
    }

    /// Flushes every stripe and clears the bitmap, returning the queued
    /// pages merged into post order.
    pub fn drain(&self) -> Vec<u32> {
        let mut guards: Vec<_> = self.stripes.iter().map(|s| s.lock()).collect();
        let mut entries: Vec<(u64, u32)> = Vec::new();
        for g in &mut guards {
            entries.append(g);
        }
        for w in &self.bits {
            w.store(0, Ordering::Release);
        }
        // Stripes are individually FIFO, so sorting by ticket is the k-way
        // merge restoring global post order.
        entries.sort_unstable_by_key(|&(t, _)| t);
        let pages: Vec<u32> = entries.into_iter().map(|(_, p)| p).collect();
        if let Some((pnode, lproc, rec)) = &self.ident {
            if !pages.is_empty() {
                rec.emit(ProtocolEvent::WnProcDrain {
                    pnode: *pnode,
                    lproc: *lproc,
                    pages: pages.clone(),
                });
            }
        }
        pages
    }

    /// Whether the list is empty (no page currently queued in any stripe).
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| w.load(Ordering::Acquire) == 0)
    }
}

/// A processor's no-longer-exclusive (NLE) list: pages broken out of
/// exclusive mode by a remote request while this processor held a write
/// mapping (§2.3, §2.4.1). Writable by *any* processor in the cluster (the
/// breaker posts on behalf of the holder), so it is striped per posting
/// processor like [`ProcNoticeList`]. No tickets are needed: the only
/// drain site merges NLE pages into the release's dirty-page list and
/// sorts + dedups the union, so any deterministic stripe order is
/// equivalent — stripes are concatenated in poster-index order.
pub struct NleList {
    /// `stripes[from]` is appended only by cluster processor `from`.
    stripes: Vec<Mutex<Vec<u32>>>,
}

impl NleList {
    /// Creates an empty list striped for `posters` cluster processors.
    pub fn new(posters: usize) -> Self {
        Self {
            stripes: (0..posters.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Adds `page`, posted by cluster processor `from` (duplicates are
    /// tolerated; releases handle them).
    pub fn push(&self, page: u32, from: usize) {
        self.stripes[from].lock().push(page);
    }

    /// Takes all pending entries, stripe by stripe in poster order.
    pub fn drain(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for s in &self.stripes {
            out.append(&mut s.lock());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_drain_by_sender_bin() {
        let b = NoticeBoard::new(3, DirectoryMode::LockFree, 0);
        b.post(0, 1, 10, 0);
        b.post(0, 2, 20, 0);
        b.post(0, 1, 11, 0);
        let mut got = b.drain(0);
        got.sort_unstable();
        assert_eq!(got, vec![(1, 10), (1, 11), (2, 20)]);
        assert!(b.is_empty(0));
        assert!(b.drain(0).is_empty());
    }

    #[test]
    fn bins_are_per_destination() {
        let b = NoticeBoard::new(2, DirectoryMode::LockFree, 0);
        b.post(1, 0, 5, 0);
        assert!(b.is_empty(0));
        assert_eq!(b.drain(1), vec![(0, 5)]);
    }

    #[test]
    fn lock_free_posts_cost_nothing_extra() {
        let b = NoticeBoard::new(2, DirectoryMode::LockFree, 5_000);
        assert_eq!(b.post(0, 1, 1, 123), 123);
    }

    #[test]
    fn global_lock_posts_serialize() {
        let b = NoticeBoard::new(2, DirectoryMode::GlobalLock, 1_000);
        let a = b.post(0, 1, 1, 0);
        let c = b.post(0, 1, 2, 0);
        assert_eq!(a, 1_000);
        assert_eq!(c, 2_000, "second post waits for the global lock");
    }

    #[test]
    fn proc_list_suppresses_redundant_notices() {
        let l = ProcNoticeList::new(128, 2);
        assert!(l.insert(7, 0));
        assert!(!l.insert(7, 0), "bitmap hit → no duplicate queue entry");
        assert!(!l.insert(7, 1), "bitmap is shared across stripes");
        assert!(l.insert(64, 1));
        let mut d = l.drain();
        d.sort_unstable();
        assert_eq!(d, vec![7, 64]);
        // Bitmap cleared by drain: the page can be queued again.
        assert!(l.insert(7, 1));
        assert_eq!(l.drain(), vec![7]);
        assert!(l.is_empty());
    }

    #[test]
    fn drain_merges_stripes_in_post_order() {
        // Posts from different processors land in different stripes; the
        // drain must still return them in global post order, not stripe
        // concatenation order. This is the test that catches a merge that
        // ignores the tickets.
        let l = ProcNoticeList::new(128, 3);
        assert!(l.insert(10, 2));
        assert!(l.insert(11, 0));
        assert!(l.insert(12, 1));
        assert!(l.insert(13, 0));
        assert_eq!(l.drain(), vec![10, 11, 12, 13]);
        // And again after the bitmap reset, with a different interleaving.
        assert!(l.insert(5, 1));
        assert!(l.insert(4, 2));
        assert_eq!(l.drain(), vec![5, 4]);
    }

    #[test]
    fn concurrent_inserts_queue_once() {
        use std::sync::Arc;
        let l = Arc::new(ProcNoticeList::new(64, 4));
        let hs: Vec<_> = (0..4)
            .map(|from| {
                let l = Arc::clone(&l);
                cashmere_model::thread::spawn(move || {
                    for _ in 0..1000 {
                        l.insert(3, from);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(
            l.drain(),
            vec![3],
            "page queued exactly once despite 4000 inserts across 4 stripes"
        );
    }

    #[test]
    fn striped_posts_deliver_exactly_once_under_concurrent_drains() {
        // 4 posting threads (one stripe each, disjoint page ranges) race a
        // continuously draining thread. The scenario body is shared with
        // `tests/model_notice.rs`, which runs the same assertions under the
        // interleaving explorer with small parameters (DESIGN.md §11).
        crate::model_scenarios::striped_notice_exactly_once(4, 500, 200);
    }

    #[test]
    fn contended_inserts_deliver_exactly_once_per_drain() {
        // OS-thread run of the shared contended-page scenario; the model
        // variant explores it exhaustively and catches the claim-outside-
        // lock mutant.
        for _ in 0..50 {
            crate::model_scenarios::contended_insert_exactly_once(false);
        }
    }

    #[test]
    fn nle_list_accumulates() {
        let n = NleList::new(2);
        n.push(1, 0);
        n.push(2, 1);
        n.push(3, 0);
        assert_eq!(n.drain(), vec![1, 3, 2], "stripes concatenated in order");
        assert!(n.drain().is_empty());
    }

    #[test]
    fn nle_stripes_do_not_lose_concurrent_posts() {
        use std::sync::Arc;
        let n = Arc::new(NleList::new(3));
        let hs: Vec<_> = (0..3usize)
            .map(|from| {
                let n = Arc::clone(&n);
                cashmere_model::thread::spawn(move || {
                    for i in 0..400u32 {
                        n.push(from as u32 * 1000 + i, from);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        let mut got = n.drain();
        got.sort_unstable();
        let mut want: Vec<u32> = (0..3u32)
            .flat_map(|f| (0..400).map(move |i| f * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn bins_preserve_per_sender_fifo_order() {
        // Each bin has a single writer; a drain must return that writer's
        // notices in post order (the paper's circular-queue semantics).
        let b = NoticeBoard::new(2, DirectoryMode::LockFree, 0);
        for page in [9u32, 3, 7, 3] {
            b.post(0, 1, page, 0);
        }
        let from_one: Vec<u32> = b
            .drain(0)
            .into_iter()
            .filter(|&(f, _)| f == 1)
            .map(|(_, p)| p)
            .collect();
        assert_eq!(from_one, vec![9, 3, 7, 3], "per-bin FIFO violated");
    }

    #[test]
    fn concurrent_posts_and_drains_lose_nothing() {
        use std::collections::HashMap;
        // Single-writer bins + concurrent drains: every posted notice is
        // delivered exactly once, across 3 sender threads and 2 drainers.
        let b = Arc::new(NoticeBoard::new(4, DirectoryMode::LockFree, 0));
        let posters: Vec<_> = (1..4usize)
            .map(|from| {
                let b = Arc::clone(&b);
                cashmere_model::thread::spawn(move || {
                    for i in 0..500u32 {
                        b.post(0, from, i, 0);
                    }
                })
            })
            .collect();
        let drainers: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                cashmere_model::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..2000 {
                        got.extend(b.drain(0));
                    }
                    got
                })
            })
            .collect();
        for h in posters {
            h.join();
        }
        let mut all: Vec<(usize, u32)> = Vec::new();
        for h in drainers {
            all.extend(h.join());
        }
        all.extend(b.drain(0));
        let mut counts: HashMap<(usize, u32), usize> = HashMap::new();
        for k in all {
            *counts.entry(k).or_default() += 1;
        }
        assert_eq!(counts.len(), 3 * 500, "every notice delivered");
        assert!(
            counts.values().all(|&c| c == 1),
            "each notice delivered exactly once"
        );
    }

    #[test]
    fn recorder_sequences_post_before_drain() {
        use crate::trace::ProtocolEvent as E;
        let rec = Arc::new(TraceRecorder::new());
        let b = NoticeBoard::new(2, DirectoryMode::LockFree, 0).with_recorder(Arc::clone(&rec));
        b.post(0, 1, 42, 0);
        b.drain(0);
        let evs = rec.take();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0].ev,
            E::WnPost {
                to: 0,
                from: 1,
                page: 42
            }
        );
        assert_eq!(
            evs[1].ev,
            E::WnDrain {
                to: 0,
                items: vec![(1, 42)]
            }
        );
    }

    #[test]
    fn proc_list_records_suppression_and_drain() {
        use crate::trace::ProtocolEvent as E;
        let rec = Arc::new(TraceRecorder::new());
        let l = ProcNoticeList::new(128, 2).with_identity(1, 2, Arc::clone(&rec));
        assert!(l.insert(7, 0));
        assert!(!l.insert(7, 1));
        assert_eq!(l.drain(), vec![7]);
        let evs: Vec<_> = rec.take().into_iter().map(|e| e.ev).collect();
        assert_eq!(
            evs,
            vec![
                E::WnInsert {
                    pnode: 1,
                    lproc: 2,
                    page: 7,
                    fresh: true
                },
                E::WnInsert {
                    pnode: 1,
                    lproc: 2,
                    page: 7,
                    fresh: false
                },
                E::WnProcDrain {
                    pnode: 1,
                    lproc: 2,
                    pages: vec![7]
                },
            ]
        );
    }
}
