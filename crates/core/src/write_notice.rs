//! Write-notice lists (§2.3, Figure 4).
//!
//! Cashmere-2L uses a **multi-bin, two-level** write-notice structure to
//! avoid mutual exclusion:
//!
//! * Each protocol node owns a globally accessible list with **one bin per
//!   remote node** (a circular queue in Memory Channel space on the real
//!   hardware). Because every bin has exactly one writer, no cluster-wide
//!   lock is needed. Here each bin is a lock-free queue standing in for the
//!   MC circular buffer; the Memory Channel latency/bandwidth of posting a
//!   notice is charged by the engine.
//! * Each *processor* has a second-level list consisting of a **bitmap plus
//!   a queue**, protected by a cheap node-local lock. The bitmap suppresses
//!   redundant notices: inserting a page already present is a no-op.
//!
//! On an acquire, a processor drains the node's global bins, distributing
//! each notice to the per-processor lists of the local processors that have
//! a mapping for the page, then processes its own per-processor list.
//!
//! The §3.3.5 ablation ([`DirectoryMode::GlobalLock`]) replaces the per-bin
//! single-writer discipline with one global-locked list per node, modeled by
//! serializing posts through a per-node virtual-time gate.

use std::sync::Arc;

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;

use cashmere_sim::{Nanos, Resource};

use crate::config::DirectoryMode;
use crate::trace::{emit, ProtocolEvent, TraceRecorder};

/// The global (inter-node) write-notice bins of one protocol node.
pub struct NodeBins {
    /// One bin per sender node (the paper's "seven-bin" list on an 8-node
    /// cluster; sized to the actual node count here). `bins[from]` is
    /// written only by node `from`.
    bins: Vec<SegQueue<u32>>,
    /// Serialization gate for the GlobalLock ablation (`None` when
    /// lock-free).
    gate: Option<Resource>,
}

/// All nodes' global write-notice lists.
pub struct NoticeBoard {
    nodes: Vec<NodeBins>,
    /// Extra virtual time a post spends holding the global lock in the
    /// ablation mode.
    gate_hold: Nanos,
    /// Auditor event stream, when enabled.
    rec: Option<Arc<TraceRecorder>>,
}

impl NoticeBoard {
    /// Creates bins for `pnodes` nodes.
    pub fn new(pnodes: usize, mode: DirectoryMode, gate_hold: Nanos) -> Self {
        let nodes = (0..pnodes)
            .map(|_| NodeBins {
                bins: (0..pnodes).map(|_| SegQueue::new()).collect(),
                gate: match mode {
                    DirectoryMode::LockFree => None,
                    DirectoryMode::GlobalLock => Some(Resource::new()),
                },
            })
            .collect();
        Self {
            nodes,
            gate_hold,
            rec: None,
        }
    }

    /// Attaches the auditor's event recorder.
    pub fn with_recorder(mut self, rec: Arc<TraceRecorder>) -> Self {
        self.rec = Some(rec);
        self
    }

    /// Posts a write notice for `page` from node `from` into node `to`'s
    /// list. Returns the virtual time at which the post completes (equal to
    /// `now` in lock-free mode; later if the ablation's global lock had to
    /// be waited for).
    pub fn post(&self, to: usize, from: usize, page: u32, now: Nanos) -> Nanos {
        let node = &self.nodes[to];
        let done = match &node.gate {
            None => now,
            Some(gate) => gate.acquire(now, self.gate_hold),
        };
        // Producer: emit before the push so any drain that pops this notice
        // is sequenced after the post.
        emit(&self.rec, || ProtocolEvent::WnPost { to, from, page });
        node.bins[from].push(page);
        done
    }

    /// Drains every bin of node `to`, returning `(from, page)` pairs.
    ///
    /// Multiple local processors may drain concurrently (the queues are
    /// lock-free); each notice is delivered to exactly one drainer.
    pub fn drain(&self, to: usize) -> Vec<(usize, u32)> {
        let node = &self.nodes[to];
        let mut out = Vec::new();
        for (from, bin) in node.bins.iter().enumerate() {
            while let Some(page) = bin.pop() {
                out.push((from, page));
            }
        }
        // Consumer: emit after the pops.
        if !out.is_empty() {
            emit(&self.rec, || ProtocolEvent::WnDrain {
                to,
                items: out.iter().map(|&(f, p)| (f as u32, p)).collect(),
            });
        }
        out
    }

    /// Whether node `to` currently has any pending notices.
    ///
    /// Protocol-load-bearing: the exclusive-mode entry gate in
    /// `Engine::try_enter_exclusive` refuses entry while notices are
    /// pending (a queued notice is a remote write this node has not yet
    /// applied). The gate holds the node's distribute lock across this
    /// check, freezing drains; posts that could still race the check are
    /// ruled out by the gate's placement after its directory validation
    /// read (see the comment there).
    pub fn is_empty(&self, to: usize) -> bool {
        self.nodes[to].bins.iter().all(|b| b.is_empty())
    }
}

/// A processor's second-level write-notice list: bitmap + queue under a
/// node-local lock (§2.3, Figure 4).
pub struct ProcNoticeList {
    inner: Mutex<ProcListInner>,
    /// `(pnode, lproc)` identity plus the auditor stream, when enabled.
    ident: Option<(usize, usize, Arc<TraceRecorder>)>,
}

struct ProcListInner {
    bits: Vec<u64>,
    queue: Vec<u32>,
}

impl ProcNoticeList {
    /// Creates an empty list covering `pages` pages.
    pub fn new(pages: usize) -> Self {
        Self {
            inner: Mutex::new(ProcListInner {
                bits: vec![0; pages.div_ceil(64)],
                queue: Vec::new(),
            }),
            ident: None,
        }
    }

    /// Attaches the auditor's event recorder, tagging this list as
    /// belonging to local processor `lproc` of protocol node `pnode`.
    pub fn with_identity(mut self, pnode: usize, lproc: usize, rec: Arc<TraceRecorder>) -> Self {
        self.ident = Some((pnode, lproc, rec));
        self
    }

    /// Inserts a notice for `page`. Returns `true` if the page was newly
    /// queued, `false` if the bitmap already recorded it (the redundant-
    /// notice suppression of §2.3).
    pub fn insert(&self, page: u32) -> bool {
        let mut g = self.inner.lock();
        let (w, b) = (page as usize / 64, page as usize % 64);
        let fresh = g.bits[w] >> b & 1 == 0;
        // Emitted inside the list mutex so inserts and drains of the same
        // list are sequenced consistently with their real order.
        if let Some((pnode, lproc, rec)) = &self.ident {
            rec.emit(ProtocolEvent::WnInsert {
                pnode: *pnode,
                lproc: *lproc,
                page,
                fresh,
            });
        }
        if !fresh {
            return false;
        }
        g.bits[w] |= 1 << b;
        g.queue.push(page);
        true
    }

    /// Flushes the queue and clears the bitmap, returning the queued pages.
    pub fn drain(&self) -> Vec<u32> {
        let mut g = self.inner.lock();
        for w in &mut g.bits {
            *w = 0;
        }
        let pages = std::mem::take(&mut g.queue);
        if let Some((pnode, lproc, rec)) = &self.ident {
            if !pages.is_empty() {
                rec.emit(ProtocolEvent::WnProcDrain {
                    pnode: *pnode,
                    lproc: *lproc,
                    pages: pages.clone(),
                });
            }
        }
        pages
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }
}

/// A processor's no-longer-exclusive (NLE) list: pages broken out of
/// exclusive mode by a remote request while this processor held a write
/// mapping; writable by all local processors (§2.3, §2.4.1).
pub struct NleList {
    inner: Mutex<Vec<u32>>,
}

impl NleList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Adds `page` (duplicates are tolerated; releases handle them).
    pub fn push(&self, page: u32) {
        self.inner.lock().push(page);
    }

    /// Takes all pending entries.
    pub fn drain(&self) -> Vec<u32> {
        std::mem::take(&mut self.inner.lock())
    }
}

impl Default for NleList {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_drain_by_sender_bin() {
        let b = NoticeBoard::new(3, DirectoryMode::LockFree, 0);
        b.post(0, 1, 10, 0);
        b.post(0, 2, 20, 0);
        b.post(0, 1, 11, 0);
        let mut got = b.drain(0);
        got.sort_unstable();
        assert_eq!(got, vec![(1, 10), (1, 11), (2, 20)]);
        assert!(b.is_empty(0));
        assert!(b.drain(0).is_empty());
    }

    #[test]
    fn bins_are_per_destination() {
        let b = NoticeBoard::new(2, DirectoryMode::LockFree, 0);
        b.post(1, 0, 5, 0);
        assert!(b.is_empty(0));
        assert_eq!(b.drain(1), vec![(0, 5)]);
    }

    #[test]
    fn lock_free_posts_cost_nothing_extra() {
        let b = NoticeBoard::new(2, DirectoryMode::LockFree, 5_000);
        assert_eq!(b.post(0, 1, 1, 123), 123);
    }

    #[test]
    fn global_lock_posts_serialize() {
        let b = NoticeBoard::new(2, DirectoryMode::GlobalLock, 1_000);
        let a = b.post(0, 1, 1, 0);
        let c = b.post(0, 1, 2, 0);
        assert_eq!(a, 1_000);
        assert_eq!(c, 2_000, "second post waits for the global lock");
    }

    #[test]
    fn proc_list_suppresses_redundant_notices() {
        let l = ProcNoticeList::new(128);
        assert!(l.insert(7));
        assert!(!l.insert(7), "bitmap hit → no duplicate queue entry");
        assert!(l.insert(64));
        let mut d = l.drain();
        d.sort_unstable();
        assert_eq!(d, vec![7, 64]);
        // Bitmap cleared by drain: the page can be queued again.
        assert!(l.insert(7));
        assert_eq!(l.drain(), vec![7]);
        assert!(l.is_empty());
    }

    #[test]
    fn concurrent_inserts_queue_once() {
        use std::sync::Arc;
        let l = Arc::new(ProcNoticeList::new(64));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        l.insert(3);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(
            l.drain(),
            vec![3],
            "page queued exactly once despite 4000 inserts"
        );
    }

    #[test]
    fn nle_list_accumulates() {
        let n = NleList::new();
        n.push(1);
        n.push(2);
        assert_eq!(n.drain(), vec![1, 2]);
        assert!(n.drain().is_empty());
    }

    #[test]
    fn bins_preserve_per_sender_fifo_order() {
        // Each bin has a single writer; a drain must return that writer's
        // notices in post order (the paper's circular-queue semantics).
        let b = NoticeBoard::new(2, DirectoryMode::LockFree, 0);
        for page in [9u32, 3, 7, 3] {
            b.post(0, 1, page, 0);
        }
        let from_one: Vec<u32> = b
            .drain(0)
            .into_iter()
            .filter(|&(f, _)| f == 1)
            .map(|(_, p)| p)
            .collect();
        assert_eq!(from_one, vec![9, 3, 7, 3], "per-bin FIFO violated");
    }

    #[test]
    fn concurrent_posts_and_drains_lose_nothing() {
        use std::collections::HashMap;
        // Single-writer bins + concurrent drains: every posted notice is
        // delivered exactly once, across 3 sender threads and 2 drainers.
        let b = Arc::new(NoticeBoard::new(4, DirectoryMode::LockFree, 0));
        let posters: Vec<_> = (1..4usize)
            .map(|from| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        b.post(0, from, i, 0);
                    }
                })
            })
            .collect();
        let drainers: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..2000 {
                        got.extend(b.drain(0));
                    }
                    got
                })
            })
            .collect();
        for h in posters {
            h.join().unwrap();
        }
        let mut all: Vec<(usize, u32)> = Vec::new();
        for h in drainers {
            all.extend(h.join().unwrap());
        }
        all.extend(b.drain(0));
        let mut counts: HashMap<(usize, u32), usize> = HashMap::new();
        for k in all {
            *counts.entry(k).or_default() += 1;
        }
        assert_eq!(counts.len(), 3 * 500, "every notice delivered");
        assert!(
            counts.values().all(|&c| c == 1),
            "each notice delivered exactly once"
        );
    }

    #[test]
    fn recorder_sequences_post_before_drain() {
        use crate::trace::ProtocolEvent as E;
        let rec = Arc::new(TraceRecorder::new());
        let b = NoticeBoard::new(2, DirectoryMode::LockFree, 0).with_recorder(Arc::clone(&rec));
        b.post(0, 1, 42, 0);
        b.drain(0);
        let evs = rec.take();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0].ev,
            E::WnPost {
                to: 0,
                from: 1,
                page: 42
            }
        );
        assert_eq!(
            evs[1].ev,
            E::WnDrain {
                to: 0,
                items: vec![(1, 42)]
            }
        );
    }

    #[test]
    fn proc_list_records_suppression_and_drain() {
        use crate::trace::ProtocolEvent as E;
        let rec = Arc::new(TraceRecorder::new());
        let l = ProcNoticeList::new(128).with_identity(1, 2, Arc::clone(&rec));
        assert!(l.insert(7));
        assert!(!l.insert(7));
        assert_eq!(l.drain(), vec![7]);
        let evs: Vec<_> = rec.take().into_iter().map(|e| e.ev).collect();
        assert_eq!(
            evs,
            vec![
                E::WnInsert {
                    pnode: 1,
                    lproc: 2,
                    page: 7,
                    fresh: true
                },
                E::WnInsert {
                    pnode: 1,
                    lproc: 2,
                    page: 7,
                    fresh: false
                },
                E::WnProcDrain {
                    pnode: 1,
                    lproc: 2,
                    pages: vec![7]
                },
            ]
        );
    }
}
