//! Proves the engine's data-access hot path performs zero heap
//! allocations — with observability off AND on. A counting global
//! allocator wraps the system one; after warming the faults out of a
//! working set, a burst of reads and writes must not allocate at all.
//!
//! The workspace denies `unsafe code`; this test is the one sanctioned
//! exception, because a `GlobalAlloc` impl cannot be written without it.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, Topology};
use cashmere_sim::ProcId;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // relaxed-ok: allocation counter; the single-threaded test reads it
        // on the same thread that increments it.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // relaxed-ok: allocation counter (see alloc above).
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn assert_hot_path_allocation_free(obs: bool) {
    let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
        .with_heap_pages(4)
        .with_obs(obs);
    let cluster = Cluster::new(cfg);
    let engine = cluster.engine();
    let mut ctx = engine.make_ctx(ProcId(0));
    // No bus-batch settling: `Resource` bookkeeping is not under test.
    ctx.bus_bytes = 0;
    // Warm the working set: fault every page in for write.
    for page in 0..4 {
        engine.write_word(&mut ctx, page * 512, 1);
    }
    // relaxed-ok: same-thread counter reads around a single-threaded loop.
    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 0..100u64 {
        for page in 0..4 {
            let addr = page * 512 + (round as usize % 64);
            let v = engine.read_word(&mut ctx, addr);
            engine.write_word(&mut ctx, addr, v + 1);
        }
    }
    // relaxed-ok: same-thread counter read (see above).
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(delta, 0, "hot path allocated {delta} times with obs={obs}");
}

#[test]
fn hot_path_is_allocation_free_with_obs_off() {
    assert_hot_path_allocation_free(false);
}

#[test]
fn hot_path_is_allocation_free_with_obs_on() {
    assert_hot_path_allocation_free(true);
}
