//! Determinism of the parallel virtual-time engine (DESIGN.md §15):
//! identical `Report` bytes across repeated runs and across host worker
//! counts, on a workload exercising every lookahead-barrier kind (faults,
//! releases/acquires, locks, barriers, flags, bus settles).

use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, Report, SyncSpec, Topology};

/// A small mixed workload: per-proc strided writes (faults + twins), a
/// lock-protected accumulator (lock gates), barrier phases (rendezvous
/// gates), and a flag hand-off (flag gates).
fn mixed_workload(cfg: ClusterConfig) -> (Report, Vec<u64>) {
    let mut cluster = Cluster::new(cfg);
    let data = cluster.alloc_page_aligned(4 * 512);
    let accum = cluster.alloc_page_aligned(8);
    let report = cluster.run(|p| {
        let n = p.nprocs();
        p.barrier(0);
        for round in 0..3u64 {
            for i in 0..128 {
                let a = data + (p.id() + i * n) % (4 * 512);
                let v = p.read_u64(a);
                p.write_u64(a, v + round + p.id() as u64 + 1);
            }
            p.compute(20_000);
            p.lock(0);
            let v = p.read_u64(accum);
            p.write_u64(accum, v + p.id() as u64 + round);
            p.unlock(0);
            p.barrier(1);
        }
        if p.id() == 0 {
            p.flag_set(0);
        } else {
            p.flag_wait(0);
        }
        p.barrier(0);
    });
    let mut words = vec![0u64; 64];
    cluster.read_back_run(data, &mut words);
    words.push(cluster.read_u64(accum));
    (report, words)
}

fn cfg_with_workers(protocol: ProtocolKind, workers: usize) -> ClusterConfig {
    ClusterConfig::new(Topology::new(2, 2), protocol)
        .with_sync(SyncSpec {
            locks: 1,
            barriers: 2,
            flags: 1,
        })
        .with_det_parallel(workers)
}

#[test]
fn report_bytes_identical_across_worker_counts() {
    for protocol in [
        ProtocolKind::TwoLevel,
        ProtocolKind::TwoLevelShootdown,
        ProtocolKind::OneLevelDiff,
        ProtocolKind::OneLevelWrite,
    ] {
        let (base_report, base_words) = mixed_workload(cfg_with_workers(protocol, 1));
        let base_json = base_report.to_json();
        for workers in [1, 2, 8] {
            let (report, words) = mixed_workload(cfg_with_workers(protocol, workers));
            assert_eq!(
                report.to_json(),
                base_json,
                "{protocol:?}: report bytes diverge at {workers} workers"
            );
            assert_eq!(
                words, base_words,
                "{protocol:?}: memory contents diverge at {workers} workers"
            );
        }
    }
}

#[test]
fn det_single_worker_matches_repeat_runs() {
    let (a, wa) = mixed_workload(cfg_with_workers(ProtocolKind::TwoLevel, 3));
    let (b, wb) = mixed_workload(cfg_with_workers(ProtocolKind::TwoLevel, 3));
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(wa, wb);
}

/// The quantum is part of the schedule definition — different quanta are
/// different (each internally valid) schedules, so determinism across
/// worker counts must hold at *every* quantum, not just the default.
#[test]
fn every_quantum_is_deterministic_across_worker_counts() {
    for quantum in [1_000u64, 50_000, 1_000_000] {
        let (base, base_words) = mixed_workload(
            cfg_with_workers(ProtocolKind::OneLevelDiff, 1).with_det_quantum(quantum),
        );
        for workers in [2, 8] {
            let (r, w) = mixed_workload(
                cfg_with_workers(ProtocolKind::OneLevelDiff, workers).with_det_quantum(quantum),
            );
            assert_eq!(
                r.to_json(),
                base.to_json(),
                "quantum {quantum}: report bytes diverge at {workers} workers"
            );
            assert_eq!(w, base_words);
        }
    }
}
