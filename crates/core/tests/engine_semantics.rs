//! Deterministic, single-threaded protocol-semantics tests.
//!
//! These drive the [`Engine`] directly through per-processor contexts in
//! precisely controlled interleavings — no OS-thread scheduling involved —
//! to pin down the §2.4 state machine: directory transitions, write-notice
//! flow, timestamp-based fetch elimination, the release flush-skip rule,
//! exclusive mode, and the no-longer-exclusive (NLE) path.

use cashmere_core::directory::PermBits;
use cashmere_core::{ClusterConfig, Engine, ProtocolKind, SyncSpec, Topology, PAGE_WORDS};
use cashmere_sim::ProcId;

/// 2 nodes × 2 processors, two-level protocol, first-touch homing.
fn engine() -> std::sync::Arc<Engine> {
    let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        });
    Engine::new(cfg)
}

#[test]
fn first_touch_assigns_home_and_directory_word() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0));
    // Page untouched: no directory presence.
    assert!(!e.directory().shared_by_others(0, 0, usize::MAX));

    e.write_word(&mut p0, 0, 42);
    // Home relocated to node 0; node 0's word shows a write mapping.
    assert_eq!(e.directory().read_home(0, 0).unwrap().pnode, 0);
    assert!(!e.directory().read_home(0, 0).unwrap().is_default);
    assert_eq!(e.directory().read_word(0, 0, 1).perm, PermBits::Write);
    assert_eq!(e.stats.home_relocations.get(), 1);
    // Home-node writes go straight to the master copy.
    assert_eq!(e.read_back(0), 42);
}

#[test]
fn remote_reader_joins_sharing_set_and_fetches() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0)); // node 0
    let mut p2 = e.make_ctx(ProcId(2)); // node 1

    e.write_word(&mut p0, 5, 7);
    e.release_actions(&mut p0);
    e.acquire_actions(&mut p2);
    assert_eq!(e.read_word(&mut p2, 5), 7);

    // Node 1 now appears in the sharing set with a read mapping.
    assert_eq!(e.directory().read_word(0, 1, 0).perm, PermBits::Read);
    assert_eq!(
        e.stats.page_transfers.get(),
        1,
        "one fetch for the remote copy"
    );
}

#[test]
fn intra_node_sharing_coalesces_fetches() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0)); // node 0 — will be home
    let mut p2 = e.make_ctx(ProcId(2)); // node 1
    let mut p3 = e.make_ctx(ProcId(3)); // node 1, same frame as p2

    e.write_word(&mut p0, 0, 9);
    e.release_actions(&mut p0);
    e.acquire_actions(&mut p2);
    assert_eq!(e.read_word(&mut p2, 0), 9);
    let after_first = e.stats.page_transfers.get();
    // The sibling faults (its own mprotect) but reuses the node's frame:
    // its update timestamp is newer than both the page's write-notice
    // timestamp and its acquire timestamp.
    e.acquire_actions(&mut p3);
    assert_eq!(e.read_word(&mut p3, 0), 9);
    assert_eq!(
        e.stats.page_transfers.get(),
        after_first,
        "no second fetch within the node"
    );
    assert!(
        e.stats.read_faults.get() >= 2,
        "both processors still took their faults"
    );
}

#[test]
fn write_notice_invalidates_only_after_acquire() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0));
    let mut p2 = e.make_ctx(ProcId(2));

    // Node 1 maps the page.
    e.write_word(&mut p0, 0, 1);
    e.release_actions(&mut p0);
    e.acquire_actions(&mut p2);
    assert_eq!(e.read_word(&mut p2, 0), 1);

    // Node 0 writes again and releases — the notice is posted but p2 has
    // not acquired: its (stale) mapping legitimately survives.
    e.write_word(&mut p0, 0, 2);
    e.release_actions(&mut p0);
    assert_eq!(
        e.read_word(&mut p2, 0),
        1,
        "lazy RC: stale read allowed before acquire"
    );

    // After the acquire the invalidation takes effect and the fresh value
    // is fetched.
    e.acquire_actions(&mut p2);
    assert_eq!(e.read_word(&mut p2, 0), 2, "acquire → invalidate → fetch");
    assert!(e.stats.write_notices.get() >= 1);
}

#[test]
fn release_flush_merges_into_master_and_downgrades() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0)); // home node
    let mut p2 = e.make_ctx(ProcId(2)); // remote writer

    // Home the page at node 0 and share it with node 1.
    e.write_word(&mut p0, 0, 1);
    e.release_actions(&mut p0);
    e.acquire_actions(&mut p2);
    e.write_word(&mut p2, 1, 22); // remote write → twin + dirty list
    assert_eq!(e.stats.twin_creations.get(), 1);
    assert_eq!(
        e.read_back(1),
        0,
        "unflushed modification not yet at the master"
    );

    e.release_actions(&mut p2);
    assert_eq!(e.read_back(1), 22, "release flushed the outgoing diff");
    // The write permission was downgraded: node 1's word drops to Read.
    assert_eq!(e.directory().read_word(0, 1, 0).perm, PermBits::Read);
    // Another write faults again and recreates nothing it doesn't need.
    e.write_word(&mut p2, 1, 23);
    e.release_actions(&mut p2);
    assert_eq!(e.read_back(1), 23);
}

#[test]
fn exclusive_mode_entry_and_break_via_nle() {
    // Superpage granularity 2 so a non-home private page exists.
    let mut cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        });
    cfg.pages_per_superpage = 2;
    let e = Engine::new(cfg);
    let mut p0 = e.make_ctx(ProcId(0)); // node 0
    let mut p2 = e.make_ctx(ProcId(2)); // node 1
    let mut p3 = e.make_ctx(ProcId(3)); // node 1

    // p0 first-touches page 0 → superpage {0,1} homed at node 0.
    e.write_word(&mut p0, 0, 1);
    // p2 privately writes page 1 (non-home, unshared) → exclusive mode.
    e.write_word(&mut p2, PAGE_WORDS, 5);
    let (holder, _) = e
        .directory()
        .exclusive_holder(1, 0)
        .expect("page 1 exclusive");
    assert_eq!(holder, 1, "node 1 holds page 1 exclusively");
    assert_eq!(e.stats.exclusive_transitions.get(), 1);

    // A sibling writer joins under hardware coherence without leaving
    // exclusive mode.
    e.write_word(&mut p3, PAGE_WORDS + 1, 6);
    assert!(
        e.directory().exclusive_holder(1, 0).is_some(),
        "sibling join keeps exclusivity"
    );

    // Exclusive pages incur no flushes or notices at the holder's release
    // (read_back deliberately follows the exclusive holder's frame, so the
    // value is still observable for verification).
    e.release_actions(&mut p2);
    assert_eq!(e.stats.write_notices.get(), 0);
    assert_eq!(e.stats.flush_updates.get(), 0, "no flush while exclusive");
    assert_eq!(
        e.read_back(PAGE_WORDS),
        5,
        "read_back follows the exclusive holder"
    );

    // A remote read breaks exclusivity: the page is flushed whole, the
    // sibling writer gets an NLE notice, and the reader sees the data.
    assert_eq!(e.read_word(&mut p0, PAGE_WORDS), 5);
    assert!(e.directory().exclusive_holder(1, 0).is_none());
    assert_eq!(e.stats.exclusive_transitions.get(), 2);
    assert_eq!(
        e.read_back(PAGE_WORDS + 1),
        6,
        "break flushed the sibling's write too"
    );

    // The sibling still holds its write mapping; its next release must
    // flush its subsequent writes via the NLE list + twin.
    e.write_word(&mut p3, PAGE_WORDS + 1, 66); // no fault: mapping survived
    e.release_actions(&mut p3);
    assert_eq!(
        e.read_back(PAGE_WORDS + 1),
        66,
        "NLE page flushed at the sibling's release"
    );
}

#[test]
fn overlapping_releases_skip_redundant_flushes_but_both_downgrade() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0)); // home
    let mut p2 = e.make_ctx(ProcId(2)); // node 1 writer A
    let mut p3 = e.make_ctx(ProcId(3)); // node 1 writer B

    e.write_word(&mut p0, 0, 1);
    e.release_actions(&mut p0);
    e.acquire_actions(&mut p2);
    e.acquire_actions(&mut p3);
    e.write_word(&mut p2, 1, 11);
    e.write_word(&mut p3, 2, 22);

    // A's release flushes the node-level diff — covering B's words too.
    e.release_actions(&mut p2);
    assert_eq!(e.read_back(1), 11);
    assert_eq!(
        e.read_back(2),
        22,
        "node-level diff covers the sibling's words"
    );
    let flushes_after_a = e.stats.flush_updates.get();

    // B's release finds nothing new to flush but still downgrades B.
    e.release_actions(&mut p3);
    assert_eq!(
        e.stats.flush_updates.get(),
        flushes_after_a,
        "no redundant flush"
    );
    assert_eq!(
        e.directory().read_word(0, 1, 0).perm,
        PermBits::Read,
        "both write mappings downgraded"
    );
    // B's next write must fault (the downgrade really happened).
    let wf = e.stats.write_faults.get();
    e.write_word(&mut p3, 2, 23);
    assert_eq!(e.stats.write_faults.get(), wf + 1);
    e.release_actions(&mut p3);
    assert_eq!(e.read_back(2), 23);
}

#[test]
fn two_way_diffing_on_fetch_preserves_unflushed_local_words() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0)); // home
    let mut p2 = e.make_ctx(ProcId(2)); // node 1

    // Share the page, then create a concurrent-writer situation: node 1
    // writes word 1 (unflushed), node 0 writes word 2 and releases.
    e.write_word(&mut p0, 0, 1);
    e.release_actions(&mut p0);
    e.acquire_actions(&mut p2);
    e.write_word(&mut p2, 1, 111); // twin created; stays dirty
    e.write_word(&mut p0, 2, 222);
    e.release_actions(&mut p0);

    // Node 1 acquires: the notice invalidates its mapping; the re-fetch
    // applies an incoming diff that must keep word 1.
    e.acquire_actions(&mut p2);
    assert_eq!(e.read_word(&mut p2, 2), 222, "remote write arrived");
    assert_eq!(
        e.read_word(&mut p2, 1),
        111,
        "local unflushed write survived"
    );
    assert!(
        e.stats.incoming_diffs.get() >= 1,
        "two-way diff path exercised"
    );
    // And the local word still flushes at the next release.
    e.release_actions(&mut p2);
    assert_eq!(e.read_back(1), 111);
}

#[test]
fn shootdown_variant_downgrades_concurrent_writers_on_fetch() {
    let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevelShootdown)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        });
    let e = Engine::new(cfg);
    let mut p0 = e.make_ctx(ProcId(0)); // home
    let mut p2 = e.make_ctx(ProcId(2)); // node 1 writer
    let mut p3 = e.make_ctx(ProcId(3)); // node 1 reader (will fetch)

    e.write_word(&mut p0, 0, 1);
    e.release_actions(&mut p0);
    e.acquire_actions(&mut p2);
    e.write_word(&mut p2, 1, 11); // p2 holds a write mapping + twin
    e.write_word(&mut p0, 2, 22);
    e.release_actions(&mut p0);

    // p3's acquire + read forces a fetch while p2 is a concurrent local
    // writer: under 2LS this shoots p2 down instead of incoming-diffing.
    e.acquire_actions(&mut p3);
    assert_eq!(e.read_word(&mut p3, 2), 22);
    assert!(e.stats.shootdowns.get() >= 1, "2LS used shootdown");
    assert_eq!(
        e.stats.incoming_diffs.get(),
        0,
        "2LS never applies incoming diffs"
    );
    // p2's outstanding write was flushed by the shootdown, not lost.
    assert_eq!(e.read_back(1), 11);
    // p2's next write faults again (its mapping was downgraded).
    let wf = e.stats.write_faults.get();
    e.write_word(&mut p2, 1, 12);
    assert_eq!(e.stats.write_faults.get(), wf + 1);
}

#[test]
fn one_level_release_enters_exclusive_when_unshared() {
    // 1LD: a page whose last foreign sharer dropped out re-enters
    // exclusive mode at the writer's release (§2.6). The page's home
    // (protocol node 0 via p0's superpage first touch) must be a third
    // party: home mappings never invalidate, so the reader is p2.
    let mut cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::OneLevelDiff)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        });
    cfg.pages_per_superpage = 2;
    let e = Engine::new(cfg);
    let mut p0 = e.make_ctx(ProcId(0));
    let mut p1 = e.make_ctx(ProcId(1));
    let mut p2 = e.make_ctx(ProcId(2));

    // p0 first-touches page 0 (homes superpage {0,1} at protocol node 0);
    // p1 then writes page 1 — a non-home page with no other sharers.
    e.write_word(&mut p0, 0, 1);
    e.write_word(&mut p1, PAGE_WORDS, 5);
    // Entered exclusive at the write fault already (no sharers).
    assert!(e.directory().exclusive_holder(1, 1).is_some());

    // p2 reads: breaks exclusivity and joins the sharing set.
    assert_eq!(e.read_word(&mut p2, PAGE_WORDS), 5);
    assert!(e.directory().exclusive_holder(1, 1).is_none());

    // p1 writes + releases (notice to p2); p2's acquire invalidates its
    // mapping, leaving p1 the only sharer again.
    e.acquire_actions(&mut p1);
    e.write_word(&mut p1, PAGE_WORDS, 6);
    e.release_actions(&mut p1);
    e.acquire_actions(&mut p2);

    // p1 writes and releases once more: with no remaining sharers the page
    // moves back to exclusive mode at the release.
    e.write_word(&mut p1, PAGE_WORDS, 7);
    e.release_actions(&mut p1);
    assert!(
        e.directory().exclusive_holder(1, 0).is_some(),
        "1LD re-entered exclusive mode once unshared"
    );
    // And the data is still reachable (break + fetch).
    assert_eq!(e.read_word(&mut p2, PAGE_WORDS), 7);
}

#[test]
fn write_through_protocol_needs_no_twins_and_master_is_always_current() {
    let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::OneLevelWrite)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        });
    let e = Engine::new(cfg);
    let mut p0 = e.make_ctx(ProcId(0));
    let mut p1 = e.make_ctx(ProcId(1));

    e.write_word(&mut p0, 0, 1); // home (first touch)
    e.release_actions(&mut p0);
    e.acquire_actions(&mut p1);
    e.write_word(&mut p1, 1, 11); // remote: doubled write
                                  // Master current BEFORE the release — the write-through property.
    assert_eq!(e.read_back(1), 11);
    assert_eq!(e.stats.twin_creations.get(), 0, "1L never twins");
    e.release_actions(&mut p1);
    assert_eq!(e.read_back(1), 11);
}

#[test]
fn redundant_notices_are_suppressed_per_processor() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0));
    let mut p2 = e.make_ctx(ProcId(2));

    e.write_word(&mut p0, 0, 1);
    e.release_actions(&mut p0);
    e.acquire_actions(&mut p2);
    assert_eq!(e.read_word(&mut p2, 0), 1);

    // Three writer releases before the reader's next acquire: three
    // notices arrive, but the reader invalidates and refetches only once.
    for v in 2..5u64 {
        e.write_word(&mut p0, 0, v);
        e.release_actions(&mut p0);
    }
    let fetches_before = e.stats.page_transfers.get();
    e.acquire_actions(&mut p2);
    assert_eq!(e.read_word(&mut p2, 0), 4);
    assert_eq!(
        e.stats.page_transfers.get(),
        fetches_before + 1,
        "one refetch despite three notices"
    );
}
