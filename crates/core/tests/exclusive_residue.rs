//! Deterministic regressions for three protocol holes found by the
//! correctness auditor (`cashmere-check`), all in the interaction between
//! exclusive mode, twin residue, and undrained write notices:
//!
//! 1. **Residue clobber** — a node whose mapping was invalidated at an
//!    acquire, but whose twin still holds unflushed writes ("residue"),
//!    used to publish an empty directory word. A remote writer could then
//!    enter exclusive mode over a copy missing the residue and pin that
//!    stale frame as authoritative, losing the writes. The node must keep
//!    claiming `Read` until a release retires the twin.
//! 2. **Residue flush without notices** — retiring a residue twin at a
//!    release flushes the residue diff but used to skip write notices, so
//!    sharers never invalidated their now-stale copies.
//! 3. **Exclusive entry with undrained notices** — a node could enter
//!    exclusive mode for a page while a write notice for that page sat
//!    undrained in its global bins, pinning a frame that predates the
//!    noticed write. The entry gate must refuse while notices are pending.

use cashmere_core::directory::PermBits;
use cashmere_core::{ClusterConfig, Engine, ProtocolKind, SyncSpec, Topology, PAGE_WORDS};
use cashmere_sim::ProcId;

/// 3 nodes × 1 processor, two pages per superpage so page 1 shares page 0's
/// first-touch home (node 0) and every remote node is a clean third party.
fn engine() -> std::sync::Arc<Engine> {
    let mut cfg = ClusterConfig::new(Topology::new(3, 1), ProtocolKind::TwoLevel)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: 0,
        });
    cfg.pages_per_superpage = 2;
    Engine::new(cfg)
}

#[test]
fn invalidated_twin_residue_blocks_remote_exclusive_entry() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0)); // node 0 — home via first touch
    let mut w = e.make_ctx(ProcId(1)); // node 1 — writer with residue
    let mut r = e.make_ctx(ProcId(2)); // node 2 — would-be exclusive enterer

    let x = PAGE_WORDS; // page 1, word 0
    let y = PAGE_WORDS + 1;
    let z = PAGE_WORDS + 2;

    // Home superpage {0,1} at node 0; node 2 joins page 1's sharing set.
    e.write_word(&mut p0, 0, 1);
    assert_eq!(e.read_word(&mut r, x), 0);

    // W writes x — node 2's read mapping keeps W out of exclusive mode, so
    // this takes the ordinary twin + dirty-list path.
    e.acquire_actions(&mut w);
    e.write_word(&mut w, x, 111);

    // R writes y and releases: the flush posts a notice to node 1.
    e.write_word(&mut r, y, 222);
    e.release_actions(&mut r);

    // W's acquire drains that notice and invalidates its mapping — but the
    // twin still carries the unflushed x=111 residue. The node must go on
    // claiming Read in the directory until the residue is flushed.
    e.acquire_actions(&mut w);
    assert_eq!(
        e.directory().read_word(1, 1, 2).perm,
        PermBits::Read,
        "twin residue keeps the invalidated node visible as a sharer"
    );

    // R writes z. With node 1 still a sharer, exclusive entry must be
    // refused; the write goes through the normal twin/diff path instead.
    e.write_word(&mut r, z, 333);
    assert!(
        e.directory().exclusive_holder(1, 2).is_none(),
        "exclusive entry over an unflushed residue copy"
    );
    assert_eq!(e.stats.exclusive_transitions.get(), 0);

    // W's release flushes the residue; R's flushes z. Nothing is lost.
    e.release_actions(&mut w);
    e.release_actions(&mut r);
    assert_eq!(e.read_back(x), 111, "residue write survived");
    assert_eq!(e.read_back(y), 222);
    assert_eq!(e.read_back(z), 333);

    // Once the residue is flushed the node stops claiming a copy.
    assert_eq!(
        e.directory().read_word(1, 1, 2).perm,
        PermBits::None,
        "residue retirement republished the directory word"
    );
}

#[test]
fn residue_flush_posts_write_notices_to_sharers() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0)); // node 0 — home
    let mut w = e.make_ctx(ProcId(1)); // node 1 — residue writer
    let mut r = e.make_ctx(ProcId(2)); // node 2 — stale sharer

    let x = PAGE_WORDS;
    let y = PAGE_WORDS + 1;

    e.write_word(&mut p0, 0, 1);
    assert_eq!(e.read_word(&mut r, x), 0); // node 2 maps page 1

    // W writes x, R releases a write of y → notice to W → W's acquire
    // invalidates W's mapping, leaving x=111 as twin residue.
    e.acquire_actions(&mut w);
    e.write_word(&mut w, x, 111);
    e.write_word(&mut r, y, 222);
    e.release_actions(&mut r);
    e.acquire_actions(&mut w);

    // W's release retires the residue twin. The flush must post a write
    // notice to node 2 (still a Read sharer), or node 2 would read a stale
    // x forever.
    let notices_before = e.stats.write_notices.get();
    e.release_actions(&mut w);
    assert!(
        e.stats.write_notices.get() > notices_before,
        "residue flush posted no write notices"
    );
    e.acquire_actions(&mut r);
    assert_eq!(
        e.read_word(&mut r, x),
        111,
        "sharer saw the residue write after its next acquire"
    );
}

#[test]
fn undrained_write_notice_refuses_exclusive_entry() {
    let e = engine();
    let mut p0 = e.make_ctx(ProcId(0)); // node 0 — home
    let mut h = e.make_ctx(ProcId(1)); // node 1 — would-be exclusive enterer
    let mut f = e.make_ctx(ProcId(2)); // node 2 — posts the pending notice

    let x = PAGE_WORDS;
    let y = PAGE_WORDS + 1;
    let z = PAGE_WORDS + 2;
    let w3 = PAGE_WORDS + 3;

    // Home superpage {0,1} at node 0. H's private write enters exclusive
    // mode (the positive case the entry gate must keep working).
    e.write_word(&mut p0, 0, 1);
    e.write_word(&mut h, y, 22);
    assert!(
        e.directory().exclusive_holder(1, 1).is_some(),
        "clean private write still enters exclusive mode"
    );
    assert_eq!(e.stats.exclusive_transitions.get(), 1);

    // F's write breaks exclusivity and makes both nodes sharers.
    e.write_word(&mut f, x, 1);
    assert!(e.directory().exclusive_holder(1, 2).is_none());
    assert_eq!(e.stats.exclusive_transitions.get(), 2);
    e.release_actions(&mut f); // notice → H

    // H consumes that notice, rewrites, releases (notice → F).
    e.acquire_actions(&mut h);
    e.write_word(&mut h, y, 23);
    e.release_actions(&mut h);

    // F writes z and releases: a notice for page 1 now sits UNDRAINED in
    // H's bins (H does not acquire). F then consumes H's earlier notice,
    // dropping F from the sharing set entirely.
    e.write_word(&mut f, z, 3);
    e.release_actions(&mut f);
    e.acquire_actions(&mut f);
    assert_eq!(e.directory().read_word(1, 2, 1).perm, PermBits::None);

    // H write-faults. The directory shows no other sharer, but H's bins
    // hold a notice for this very page — entering exclusive mode would pin
    // H's frame (which predates z=3) as the authoritative copy. The gate
    // must refuse and fall back to the twin/diff path.
    e.write_word(&mut h, w3, 4);
    assert!(
        e.directory().exclusive_holder(1, 1).is_none(),
        "exclusive entry with an undrained write notice"
    );
    assert_eq!(
        e.stats.exclusive_transitions.get(),
        2,
        "no third transition"
    );

    e.release_actions(&mut h);
    assert_eq!(e.read_back(x), 1);
    assert_eq!(e.read_back(y), 23);
    assert_eq!(e.read_back(z), 3, "undrained-notice write survived");
    assert_eq!(e.read_back(w3), 4);
}
