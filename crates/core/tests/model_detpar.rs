//! Model tests for the deterministic parallel engine's lookahead wakeup
//! (DESIGN.md §15): a parked processor sleeping on the horizon must never
//! miss the coordinator's advance. The scenario body lives in
//! `src/model_scenarios.rs`. The mutation battery swaps the advancer's two
//! stores (wakeup broadcast before the horizon bump) and asserts the
//! explorer finds the lost-wakeup schedule within the default budget and
//! replays it deterministically.

use cashmere_core::model_scenarios as sc;
use cashmere_model::{expect_violation, explore, replay, ModelConfig};

#[test]
fn model_lookahead_wakeup_never_lost() {
    let explored = explore("lookahead-wakeup", || sc::lookahead_wakeup(false));
    // The sleep closure is a yielding spin, so adversarial schedules that
    // starve the advancer get truncated at the step bound — expected;
    // violations are not (explore panics on any).
    assert!(explored.schedules > 0);
}

#[test]
fn model_lookahead_mutant_wake_before_horizon_is_caught() {
    let cfg = ModelConfig::default();
    let v = expect_violation("lookahead-mutant-wake-first", &cfg, || {
        sc::lookahead_wakeup(true);
    });
    assert!(
        v.message.contains("lost wakeup"),
        "unexpected failure mode: {}",
        v.message
    );
    let again = replay(&cfg, v.seed, v.bound, || sc::lookahead_wakeup(true))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(again.message, v.message);
    assert_eq!(again.steps, v.steps);
}
