//! Model tests for the lock-free directory read fast path (DESIGN.md §11):
//! a reader's single atomic load races `write_my_word`'s broadcast + manual
//! local double, sharing its scenario body with the OS-thread yield test in
//! `src/directory.rs`. The mutation battery tears the local double into two
//! stores and asserts the explorer observes the phantom word within the
//! default budget and replays the schedule deterministically.

use cashmere_core::model_scenarios as sc;
use cashmere_model::{expect_violation, explore, replay, ModelConfig};

#[test]
fn model_directory_reads_never_observe_torn_or_phantom_words() {
    let explored = explore("directory-single-writer-reads", || {
        sc::directory_single_writer_reads(2, 4, false);
    });
    // Golden budget: the reader is capped at 4 polls, so every schedule
    // terminates well inside the step budget.
    assert_eq!(
        explored.truncated, 0,
        "directory schedules must not truncate"
    );
    assert!(explored.schedules > 0);
}

#[test]
fn model_sparse_reads_never_regress_and_settle_on_final_claim() {
    let explored = explore("sparse-directory-read-vs-update", || {
        sc::sparse_directory_read_vs_update(2, 4, false);
    });
    assert_eq!(
        explored.truncated, 0,
        "sparse directory schedules must not truncate"
    );
    assert!(explored.schedules > 0);
}

#[test]
fn model_sparse_mutant_version_before_data_is_caught() {
    // The stale-cache window needs three context switches (bump → reader
    // refill → data writes → reader cache hit), which sits deeper in the
    // schedule space than the default 256-schedule budget reaches.
    let cfg = ModelConfig {
        schedules: 4096,
        ..ModelConfig::default()
    };
    let v = expect_violation("sparse-mutant-version-before-data", &cfg, || {
        sc::sparse_directory_read_vs_update(2, 4, true);
    });
    assert!(
        v.message.contains("final published claim"),
        "unexpected failure mode: {}",
        v.message
    );
    let again = replay(&cfg, v.seed, v.bound, || {
        sc::sparse_directory_read_vs_update(2, 4, true);
    })
    .expect_err("failing schedule must replay deterministically");
    assert_eq!(again.message, v.message);
    assert_eq!(again.steps, v.steps);
}

#[test]
fn model_directory_mutant_torn_local_double_is_caught() {
    let cfg = ModelConfig::default();
    let v = expect_violation("directory-mutant-torn-double", &cfg, || {
        sc::directory_single_writer_reads(2, 4, true);
    });
    assert!(
        v.message.contains("never published"),
        "unexpected failure mode: {}",
        v.message
    );
    let again = replay(&cfg, v.seed, v.bound, || {
        sc::directory_single_writer_reads(2, 4, true);
    })
    .expect_err("failing schedule must replay deterministically");
    assert_eq!(again.message, v.message);
    assert_eq!(again.steps, v.steps);
}
