//! Model tests for the Memory Channel lock (DESIGN.md §11): the paper's
//! set-then-check array protocol must keep mutual exclusion even when the
//! holder stalls (yields) inside the critical section. The scenario body is
//! shared with the OS-thread stress test in `src/mc_lock.rs`. The mutation
//! battery flips the protocol to check-before-set and asserts the explorer
//! finds a two-holders schedule within the default budget and replays it
//! deterministically.

use cashmere_core::model_scenarios as sc;
use cashmere_model::{expect_violation, explore, replay, ModelConfig};

#[test]
fn model_mc_lock_keeps_exclusion_with_stalled_holder() {
    let explored = explore("mclock-exclusion", || sc::mc_lock_exclusion(2, 1, false));
    // Unlike the loop-free structures, the lock's backoff/retry loop can
    // livelock under an adversarial scheduler, so truncated schedules are
    // expected here — violations are not (explore panics on any).
    assert!(explored.schedules > 0);
}

#[test]
fn model_mc_lock_mutant_check_before_set_is_caught() {
    let cfg = ModelConfig::default();
    let v = expect_violation("mclock-mutant-check-before-set", &cfg, || {
        sc::mc_lock_exclusion(2, 1, true);
    });
    assert!(
        v.message.contains("two holders"),
        "unexpected failure mode: {}",
        v.message
    );
    let again = replay(&cfg, v.seed, v.bound, || sc::mc_lock_exclusion(2, 1, true))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(again.message, v.message);
    assert_eq!(again.steps, v.steps);
}
