//! Model tests for the striped write-notice lists (DESIGN.md §11): the
//! exactly-once insert + ticket-ordered drain invariants run under the
//! bounded interleaving explorer, sharing their scenario bodies with the
//! OS-thread stress tests in `src/write_notice.rs`. The mutation battery
//! reintroduces the claim-outside-stripe-lock ordering and asserts the
//! explorer finds a violating schedule within the default budget and
//! replays it deterministically from the printed seed.

use cashmere_core::model_scenarios as sc;
use cashmere_model::{expect_violation, explore, replay, ModelConfig};

#[test]
fn model_notice_striped_posts_deliver_exactly_once() {
    let explored = explore("notice-striped-exactly-once", || {
        sc::striped_notice_exactly_once(2, 2, 2);
    });
    // Golden budget: every schedule in the default budget runs to
    // completion — posts and drains are loop-free, so truncation would
    // mean a structural regression.
    assert_eq!(explored.truncated, 0, "notice schedules must not truncate");
    assert!(explored.schedules > 0);
}

#[test]
fn model_notice_contended_insert_exactly_once() {
    let explored = explore("notice-contended-exactly-once", || {
        sc::contended_insert_exactly_once(false);
    });
    assert_eq!(
        explored.truncated, 0,
        "contended schedules must not truncate"
    );
}

#[test]
fn model_notice_mutant_claim_outside_stripe_lock_is_caught() {
    let cfg = ModelConfig::default();
    let v = expect_violation("notice-mutant-claim-outside-lock", &cfg, || {
        sc::contended_insert_exactly_once(true);
    });
    assert!(
        v.message.contains("duplicate") || v.message.contains("exactly once"),
        "unexpected failure mode: {}",
        v.message
    );
    // The printed (seed, bound) must reproduce the exact failure.
    let again = replay(&cfg, v.seed, v.bound, || {
        sc::contended_insert_exactly_once(true);
    })
    .expect_err("failing schedule must replay deterministically");
    assert_eq!(again.message, v.message);
    assert_eq!(again.steps, v.steps);
}
