//! End-to-end observability: enabling [`ClusterConfig::obs`] must not
//! change virtual time by a single nanosecond, and the merged
//! [`ObsReport`] must account every charged nanosecond and mirror the
//! protocol counters exactly.

use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, SyncSpec, Topology};
use cashmere_obs::SpanKind;
use cashmere_sim::ProcId;

fn cfg(obs: bool) -> ClusterConfig {
    ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 4,
            barriers: 2,
            flags: 1,
        })
        .with_obs(obs)
}

/// Drives a deterministic single-threaded two-context protocol script
/// against `cluster` and returns the two final clock times.
fn run_script(cluster: &Cluster) -> (u64, u64) {
    let engine = cluster.engine();
    let mut a = engine.make_ctx(ProcId(0));
    let mut b = engine.make_ctx(ProcId(2)); // other physical node
    for i in 0..64 {
        engine.write_word(&mut a, i, i as u64 + 1);
    }
    engine.release_actions(&mut a);
    engine.acquire_actions(&mut b);
    for i in 0..64 {
        assert_eq!(engine.read_word(&mut b, i), i as u64 + 1);
    }
    engine.write_word(&mut b, 600, 9);
    engine.release_actions(&mut b);
    engine.acquire_actions(&mut a);
    assert_eq!(engine.read_word(&mut a, 600), 9);
    engine.settle(&mut a);
    engine.settle(&mut b);
    (a.clock.now(), b.clock.now())
}

#[test]
fn obs_never_charges_virtual_time() {
    let off = run_script(&Cluster::new(cfg(false)));
    let on = run_script(&Cluster::new(cfg(true)));
    assert_eq!(off, on, "observability must be charge-free");
}

#[test]
fn ctx_obs_accounts_every_nanosecond_of_the_script() {
    let cluster = Cluster::new(cfg(true));
    let engine = cluster.engine();
    let mut a = engine.make_ctx(ProcId(0));
    for i in 0..64 {
        engine.write_word(&mut a, i, 7);
    }
    engine.release_actions(&mut a);
    engine.settle(&mut a);
    let mut obs = a.obs.take().expect("obs enabled");
    obs.finish(&a.clock);
    assert_eq!(obs.fig7().total(), a.clock.now(), "exact identity");
    assert!(obs.metrics.write_faults > 0);
    assert!(obs.spans().iter().any(|s| s.kind == SpanKind::Fault));
    assert!(obs.spans().iter().any(|s| s.kind == SpanKind::Release));
    assert_eq!(obs.anomalies(), (0, 0, 0));
}

#[test]
fn merged_report_mirrors_stats_and_sums_to_total_vt() {
    let cluster = Cluster::new(cfg(true));
    let shared = 0usize; // page 0
    let report = cluster.run(|p| {
        p.barrier(0);
        for i in 0..32 {
            p.lock(i % 4);
            let v = p.read_u64(shared + i);
            p.write_u64(shared + i, v + p.id() as u64);
            p.unlock(i % 4);
        }
        p.barrier(1);
    });
    let obs = report.obs.as_ref().expect("obs enabled");
    assert_eq!(obs.procs, 4);
    // Figure-7 identity: the five categories partition total charged VT.
    assert_eq!(obs.fig7.total(), report.breakdown.total());
    // Mirrored counters agree with the engine's own statistics.
    assert_eq!(
        obs.metrics.read_faults + obs.metrics.write_faults,
        report.counters.read_faults + report.counters.write_faults
    );
    assert_eq!(obs.metrics.twin_creations, report.counters.twin_creations);
    assert_eq!(obs.metrics.write_notices, report.counters.write_notices);
    assert_eq!(
        obs.metrics.directory_updates,
        report.counters.directory_updates
    );
    assert_eq!(obs.metrics.diffs_applied, report.counters.incoming_diffs);
    // Spans: sync spans exist and nest cleanly.
    assert!(obs.spans.iter().any(|s| s.kind == SpanKind::Barrier));
    assert!(obs.spans.iter().any(|s| s.kind == SpanKind::Lock));
    assert_eq!(obs.spans_unclosed, 0);
    assert_eq!(obs.spans_mismatched, 0);
    // Heat concentrates on the touched pages; links saw traffic.
    assert!(obs
        .hot_pages(8)
        .iter()
        .any(|&(page, heat)| page == 0 && heat > 0));
    assert!(obs.links.iter().any(|l| l.messages > 0 && l.bytes > 0));
}

#[test]
fn obs_off_report_carries_no_obs() {
    let cluster = Cluster::new(cfg(false));
    let report = cluster.run(|p| {
        p.barrier(0);
    });
    assert!(report.obs.is_none());
}
