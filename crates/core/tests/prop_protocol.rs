//! Property-based protocol tests: randomly generated data-race-free
//! programs must produce identical results under every protocol, and the
//! directory encoding must round-trip.

use proptest::prelude::*;

use cashmere_core::directory::{DirWord, PermBits};
use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, Topology, PAGE_WORDS};
use cashmere_sim::Resource;

proptest! {
    /// Directory words round-trip through their wire encoding.
    #[test]
    fn dir_word_pack_roundtrip(perm in 0..3u8, exclusive: bool, excl_proc in 0..128u16) {
        let perm = match perm {
            0 => PermBits::None,
            1 => PermBits::Read,
            _ => PermBits::Write,
        };
        let w = DirWord { perm, exclusive, excl_proc };
        prop_assert_eq!(DirWord::unpack(w.pack()), w);
    }

    /// Resource grants never overlap and respect request times.
    #[test]
    fn resource_grants_are_disjoint(reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..64)) {
        let r = Resource::new();
        let mut grants = Vec::new();
        for &(now, busy) in &reqs {
            let end = r.acquire(now, busy);
            prop_assert!(end >= now + busy);
            grants.push((end - busy, end));
        }
        grants.sort_unstable();
        for pair in grants.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "grants overlap: {pair:?}");
        }
    }
}

/// One step of a random DRF program: each processor owns a stripe of words;
/// phases alternate "write own stripe as f(round, inputs)" and "read a
/// rotated stripe", with barriers between. The final memory image must be
/// identical under every protocol and topology.
fn drf_program_result(
    protocol: ProtocolKind,
    nodes: usize,
    ppn: usize,
    rounds: usize,
    stride: usize,
    seed: u64,
) -> Vec<u64> {
    let procs = nodes * ppn;
    let words = procs * stride;
    let cfg = ClusterConfig::new(Topology::new(nodes, ppn), protocol)
        .with_heap_pages(words.div_ceil(PAGE_WORDS) + 2)
        .with_sync(1, 2, 0);
    let mut c = Cluster::new(cfg);
    let base = c.alloc_page_aligned(words);
    for i in 0..words {
        c.seed_u64(base + i, seed.wrapping_mul(i as u64 + 1));
    }
    c.run(|p| {
        let me = p.id();
        let np = p.nprocs();
        for r in 0..rounds {
            // Read a rotated stripe (previous round's values).
            let victim = (me + r + 1) % np;
            let mut acc = 0u64;
            for i in 0..stride {
                acc = acc.wrapping_add(p.read_u64(base + victim * stride + i));
            }
            p.barrier(0);
            // Write own stripe from what was read.
            for i in 0..stride {
                p.write_u64(base + me * stride + i, acc.wrapping_add(i as u64));
            }
            p.barrier(1);
        }
    });
    (0..words).map(|i| c.read_u64(base + i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random DRF stripe programs agree across all protocols and shapes.
    #[test]
    fn random_drf_programs_agree_across_protocols(
        rounds in 1usize..5,
        stride in 1usize..24,
        seed in 1u64..u64::MAX,
    ) {
        let reference =
            drf_program_result(ProtocolKind::TwoLevel, 4, 1, rounds, stride, seed);
        for protocol in ProtocolKind::ALL {
            let got = drf_program_result(protocol, 2, 2, rounds, stride, seed);
            prop_assert_eq!(
                &got,
                &reference,
                "{} at 2x2 (rounds={}, stride={})",
                protocol.label(),
                rounds,
                stride
            );
        }
    }
}
