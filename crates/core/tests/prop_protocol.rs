//! Property-based protocol tests: randomly generated data-race-free
//! programs must produce identical results under every protocol, and the
//! directory encoding must round-trip. Randomized deterministically with a
//! local SplitMix64 (the container has no registry access, so proptest is
//! unavailable); every case is reproducible from its seed.

use cashmere_core::directory::{DirWord, PermBits};
use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, SyncSpec, Topology, PAGE_WORDS};
use cashmere_sim::Resource;

/// SplitMix64: tiny, high-quality, stateless-seedable PRNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Directory words round-trip through their wire encoding — exhaustive
/// over the whole (perm, exclusive, excl_proc) space.
#[test]
fn dir_word_pack_roundtrip() {
    for perm in [PermBits::None, PermBits::Read, PermBits::Write] {
        for exclusive in [false, true] {
            for excl_proc in 0..128u16 {
                let w = DirWord {
                    perm,
                    exclusive,
                    excl_proc,
                };
                assert_eq!(DirWord::unpack(w.pack()), w);
            }
        }
    }
}

/// Resource grants never overlap and respect request times.
#[test]
fn resource_grants_are_disjoint() {
    for seed in 0..100u64 {
        let mut rng = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 5;
        let n = 1 + (splitmix64(&mut rng) % 63) as usize;
        let reqs: Vec<(u64, u64)> = (0..n)
            .map(|_| {
                let now = splitmix64(&mut rng) % 10_000;
                let busy = 1 + splitmix64(&mut rng) % 499;
                (now, busy)
            })
            .collect();
        let r = Resource::new();
        let mut grants = Vec::new();
        for &(now, busy) in &reqs {
            let end = r.acquire(now, busy);
            assert!(end >= now + busy, "seed {seed}");
            grants.push((end - busy, end));
        }
        grants.sort_unstable();
        for pair in grants.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "seed {seed}: grants overlap: {pair:?}"
            );
        }
    }
}

/// One step of a random DRF program: each processor owns a stripe of words;
/// phases alternate "write own stripe as f(round, inputs)" and "read a
/// rotated stripe", with barriers between. The final memory image must be
/// identical under every protocol and topology.
fn drf_program_result(
    protocol: ProtocolKind,
    nodes: usize,
    ppn: usize,
    rounds: usize,
    stride: usize,
    seed: u64,
) -> Vec<u64> {
    let procs = nodes * ppn;
    let words = procs * stride;
    let cfg = ClusterConfig::new(Topology::new(nodes, ppn), protocol)
        .with_heap_pages(words.div_ceil(PAGE_WORDS) + 2)
        .with_sync(SyncSpec {
            locks: 1,
            barriers: 2,
            flags: 0,
        });
    let mut c = Cluster::new(cfg);
    let base = c.alloc_page_aligned(words);
    for i in 0..words {
        c.seed_u64(base + i, seed.wrapping_mul(i as u64 + 1));
    }
    c.run(|p| {
        let me = p.id();
        let np = p.nprocs();
        for r in 0..rounds {
            // Read a rotated stripe (previous round's values).
            let victim = (me + r + 1) % np;
            let mut acc = 0u64;
            for i in 0..stride {
                acc = acc.wrapping_add(p.read_u64(base + victim * stride + i));
            }
            p.barrier(0);
            // Write own stripe from what was read.
            for i in 0..stride {
                p.write_u64(base + me * stride + i, acc.wrapping_add(i as u64));
            }
            p.barrier(1);
        }
    });
    (0..words).map(|i| c.read_u64(base + i)).collect()
}

/// Random DRF stripe programs agree across all protocols and shapes.
#[test]
fn random_drf_programs_agree_across_protocols() {
    for case in 0..12u64 {
        let mut rng = case.wrapping_mul(0x9E6C_63D0_876A_4F21) ^ 9;
        let rounds = 1 + (splitmix64(&mut rng) % 4) as usize;
        let stride = 1 + (splitmix64(&mut rng) % 23) as usize;
        let seed = splitmix64(&mut rng) | 1;
        let reference = drf_program_result(ProtocolKind::TwoLevel, 4, 1, rounds, stride, seed);
        for protocol in ProtocolKind::ALL {
            let got = drf_program_result(protocol, 2, 2, rounds, stride, seed);
            assert_eq!(
                got,
                reference,
                "{} at 2x2 (rounds={rounds}, stride={stride}, seed={seed})",
                protocol.label()
            );
        }
    }
}
