//! Protocol-level integration tests: release-consistency visibility,
//! multiple concurrent writers, exclusive mode, two-way diffing, and
//! cross-protocol agreement.

use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, SyncSpec, Topology, PAGE_WORDS};

fn cluster(protocol: ProtocolKind, nodes: usize, ppn: usize) -> Cluster {
    let cfg = ClusterConfig::new(Topology::new(nodes, ppn), protocol)
        .with_heap_pages(32)
        .with_sync(SyncSpec {
            locks: 8,
            barriers: 4,
            flags: 8,
        });
    Cluster::new(cfg)
}

#[test]
fn lock_protected_updates_are_visible_under_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let mut c = cluster(protocol, 2, 2);
        let counter = c.alloc(1);
        let report = c.run(|p| {
            for _ in 0..10 {
                p.lock(0);
                let v = p.read_u64(counter);
                p.write_u64(counter, v + 1);
                p.unlock(0);
            }
        });
        assert_eq!(
            c.read_u64(counter),
            40,
            "{}: 4 procs × 10 locked increments",
            protocol.label()
        );
        assert!(report.counters.lock_acquires >= 40, "{}", protocol.label());
    }
}

#[test]
fn barrier_ordered_producer_consumer_under_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let mut c = cluster(protocol, 2, 2);
        let data = c.alloc_page_aligned(64);
        let sums = c.alloc_page_aligned(8);
        let report = c.run(|p| {
            let id = p.id();
            // Phase 1: each proc writes its own 16-word stripe.
            for i in 0..16 {
                p.write_u64(data + id * 16 + i, (id * 100 + i) as u64);
            }
            p.barrier(0);
            // Phase 2: each proc sums a stripe written by another proc.
            let victim = (id + 1) % 4;
            let mut sum = 0u64;
            for i in 0..16 {
                sum += p.read_u64(data + victim * 16 + i);
            }
            p.write_u64(sums + id, sum);
            p.barrier(1);
        });
        for id in 0..4usize {
            let victim = (id + 1) % 4;
            let expect: u64 = (0..16).map(|i| (victim * 100 + i) as u64).sum();
            assert_eq!(
                c.read_u64(sums + id),
                expect,
                "{}: proc {id} read stale stripe",
                protocol.label()
            );
        }
        assert_eq!(report.counters.barriers, 2, "{}", protocol.label());
    }
}

#[test]
fn false_sharing_multiple_writers_on_one_page() {
    // Every processor writes a disjoint word of the SAME page between
    // barriers; afterwards everyone must see everyone's writes. This is the
    // multiple-writer merge path (outgoing diffs at the home + incoming
    // diffs or shootdowns locally).
    for protocol in ProtocolKind::ALL {
        let mut c = cluster(protocol, 2, 2);
        let page = c.alloc_page_aligned(PAGE_WORDS);
        let ok = c.alloc_page_aligned(8);
        c.run(|p| {
            let id = p.id();
            p.write_u64(page + id, id as u64 + 1);
            p.barrier(0);
            let mut good = true;
            for other in 0..4usize {
                if p.read_u64(page + other) != other as u64 + 1 {
                    good = false;
                }
            }
            p.write_u64(ok + id, good as u64);
            p.barrier(1);
        });
        for id in 0..4usize {
            assert_eq!(
                c.read_u64(ok + id),
                1,
                "{}: proc {id} saw stale words",
                protocol.label()
            );
        }
    }
}

#[test]
fn repeated_false_sharing_rounds_converge() {
    // Multiple rounds of write-barrier-read on a falsely shared page; each
    // round builds on the previous one's values, so any lost update or
    // stale fetch compounds into a wrong final sum.
    for protocol in ProtocolKind::PAPER_FOUR {
        let mut c = cluster(protocol, 2, 2);
        let page = c.alloc_page_aligned(PAGE_WORDS);
        c.run(|p| {
            let id = p.id();
            for _round in 0..8 {
                // Read phase (everyone reads last round's values) …
                let mut sum = 0u64;
                for other in 0..4usize {
                    sum += p.read_u64(page + other);
                }
                let mine = p.read_u64(page + id);
                p.barrier(0);
                // … barrier … write phase (data-race-free: reads and writes
                // of the same round never overlap).
                p.write_u64(page + id, mine + sum + 1);
                p.barrier(1);
            }
        });
        // Compute the expected fixpoint sequentially.
        let mut vals = [0u64; 4];
        for _ in 0..8 {
            let sum: u64 = vals.iter().sum();
            let new: Vec<u64> = vals.iter().map(|v| v + sum + 1).collect();
            vals.copy_from_slice(&new);
        }
        for (id, val) in vals.iter().enumerate() {
            assert_eq!(
                c.read_u64(page + id),
                *val,
                "{}: proc {id}",
                protocol.label()
            );
        }
    }
}

#[test]
fn private_pages_enter_exclusive_mode_and_reads_break_them() {
    // Exclusive mode arises when a NON-home node is a page's only accessor.
    // Proc 0 first-touches page 0 of a superpage (homing the whole
    // superpage on node 0); proc 3 (node 1) then privately writes page 1 of
    // that superpage, entering exclusive mode.
    let mut cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
        .with_heap_pages(32)
        .with_sync(SyncSpec {
            locks: 8,
            barriers: 4,
            flags: 8,
        });
    cfg.pages_per_superpage = 4; // exercise the superpage constraint
    let mut c = Cluster::new(cfg);
    let sp = c.alloc_page_aligned(4 * PAGE_WORDS); // superpage-aligned (heap base)
    assert_eq!(sp % (4 * PAGE_WORDS), 0, "test assumes superpage alignment");
    let out = c.alloc_page_aligned(8);
    let report = c.run(|p| {
        if p.id() == 0 {
            p.write_u64(sp, 42); // first touch: superpage homed on node 0
        }
        p.barrier(0);
        if p.id() == 3 {
            for i in 0..32 {
                p.write_u64(sp + PAGE_WORDS + i, i as u64 * 3); // exclusive entry
            }
        }
        p.barrier(1);
        if p.id() == 0 {
            // A remote read must break exclusivity and observe the data.
            let mut sum = 0;
            for i in 0..32 {
                sum += p.read_u64(sp + PAGE_WORDS + i);
            }
            p.write_u64(out, sum);
        }
        p.barrier(2);
    });
    let expect: u64 = (0..32u64).map(|i| i * 3).sum();
    assert_eq!(c.read_u64(out), expect);
    assert!(
        report.counters.exclusive_transitions >= 2,
        "entered and left exclusive mode at least once, got {}",
        report.counters.exclusive_transitions
    );
}

#[test]
fn exclusive_pages_incur_no_flushes_while_private() {
    // A non-home processor hammering pages nobody else shares should hold
    // them exclusive: no twins, no write notices, despite lock releases.
    let mut cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
        .with_heap_pages(32)
        .with_sync(SyncSpec {
            locks: 8,
            barriers: 4,
            flags: 8,
        });
    cfg.pages_per_superpage = 4;
    let mut c = Cluster::new(cfg);
    let sp = c.alloc_page_aligned(4 * PAGE_WORDS);
    let report = c.run(|p| {
        if p.id() == 0 {
            p.write_u64(sp, 1); // home the superpage on node 0
        }
        p.barrier(0);
        if p.id() == 3 {
            for round in 0..5 {
                p.lock(0);
                for pg in 1..4 {
                    p.write_u64(sp + pg * PAGE_WORDS, round);
                }
                p.unlock(0);
            }
        }
        p.barrier(1);
    });
    assert_eq!(
        report.counters.write_notices, 0,
        "private pages produced notices"
    );
    assert_eq!(
        report.counters.twin_creations, 0,
        "private pages produced twins"
    );
    assert!(
        report.counters.exclusive_transitions >= 3,
        "three pages entered exclusive mode, got {}",
        report.counters.exclusive_transitions
    );
}

#[test]
fn two_way_diffing_preserves_concurrent_local_writes() {
    // Node 0's two processors both write the page (different words); node
    // 1 writes a third word and releases; a node-0 processor then acquires
    // and reads node 1's word — the fetch applies an incoming diff that
    // must not clobber node 0's unflushed local writes.
    let mut c = cluster(ProtocolKind::TwoLevel, 2, 2);
    let page = c.alloc_page_aligned(PAGE_WORDS);
    let result = c.alloc_page_aligned(8);
    let report = c.run(|p| {
        match p.id() {
            0 => {
                p.write_u64(page, 111);
                p.barrier(0); // everyone has written
                p.lock(0);
                // Acquire → invalidation → fetch with incoming diff.
                let remote = p.read_u64(page + 2);
                let mine = p.read_u64(page);
                let sibling = p.read_u64(page + 1);
                p.write_u64(result, remote);
                p.write_u64(result + 1, mine);
                p.write_u64(result + 2, sibling);
                p.unlock(0);
            }
            1 => {
                p.write_u64(page + 1, 222);
                p.barrier(0);
            }
            2 => {
                p.write_u64(page + 2, 333);
                p.barrier(0);
            }
            _ => {
                p.barrier(0);
            }
        }
        p.barrier(1);
    });
    assert_eq!(
        c.read_u64(result),
        333,
        "remote write visible after acquire"
    );
    assert_eq!(
        c.read_u64(result + 1),
        111,
        "own unflushed write survived the incoming diff"
    );
    assert_eq!(
        c.read_u64(result + 2),
        222,
        "sibling's write survived (hardware coherence)"
    );
    assert_eq!(c.read_u64(page), 111);
    assert_eq!(c.read_u64(page + 1), 222);
    assert_eq!(c.read_u64(page + 2), 333);
    assert_eq!(report.counters.shootdowns, 0, "2L never shoots down");
}

#[test]
fn shootdown_protocol_reaches_the_same_values() {
    let mut c = cluster(ProtocolKind::TwoLevelShootdown, 2, 2);
    let page = c.alloc_page_aligned(PAGE_WORDS);
    c.run(|p| {
        let id = p.id();
        p.write_u64(page + id, (id + 1) as u64 * 7);
        p.barrier(0);
        // Everyone re-reads everything under a lock (forcing fetches that
        // collide with concurrent writers on the same node).
        p.lock(0);
        let mut sum = 0;
        for o in 0..4usize {
            sum += p.read_u64(page + o);
        }
        p.write_u64(page + 8 + id, sum);
        p.unlock(0);
        p.barrier(1);
    });
    let expect = 7 + 14 + 21 + 28;
    for id in 0..4usize {
        assert_eq!(c.read_u64(page + 8 + id), expect);
    }
}

#[test]
fn seed_and_read_back_round_trip() {
    let mut c = cluster(ProtocolKind::TwoLevel, 2, 2);
    let arr = c.alloc(16);
    for i in 0..16 {
        c.seed_f64(arr + i, i as f64 * 0.5);
    }
    let out = c.alloc_page_aligned(1);
    c.run(|p| {
        if p.id() == 0 {
            let mut sum = 0.0;
            for i in 0..16 {
                sum += p.read_f64(arr + i);
            }
            p.write_f64(out, sum);
        }
        p.barrier(0);
    });
    let expect: f64 = (0..16).map(|i| i as f64 * 0.5).sum();
    assert_eq!(c.read_f64(out), expect);
}

#[test]
fn first_touch_relocates_homes_once_per_superpage() {
    let mut c = cluster(ProtocolKind::TwoLevel, 2, 2);
    let a = c.alloc_page_aligned(8 * PAGE_WORDS);
    let report = c.run(|p| {
        // Proc 3 (node 1) touches everything first.
        if p.id() == 3 {
            for pg in 0..8 {
                p.write_u64(a + pg * PAGE_WORDS, 1);
            }
        }
        p.barrier(0);
    });
    // 8 pages at 1 page/superpage (the default) = 8 relocations.
    assert_eq!(report.counters.home_relocations, 8);
    // And the toucher's node is now home: its subsequent accesses must not
    // transfer pages.
    let before = report.counters.page_transfers;
    assert_eq!(
        before, 0,
        "first toucher became home; no transfers expected"
    );
}

#[test]
fn two_level_coalesces_fetches_compared_to_one_level() {
    // All four processors of one physical node read a remote node's data.
    // Under 2L they share one frame (one fetch); under 1LD each processor
    // fetches its own copy.
    let run = |protocol: ProtocolKind| {
        let mut c = cluster(protocol, 2, 4);
        let data = c.alloc_page_aligned(PAGE_WORDS);
        for i in 0..PAGE_WORDS {
            c.seed_u64(data + i, i as u64);
        }
        let sink = c.alloc_page_aligned(8);
        let report = c.run(|p| {
            // Proc 0 (node 0) claims the page so its home lands on node 0.
            if p.id() == 0 {
                p.write_u64(data, 0);
            }
            p.barrier(0);
            // All of node 1's processors read it.
            if p.node() == 1 {
                let mut sum = 0;
                for i in 0..64 {
                    sum += p.read_u64(data + i);
                }
                p.write_u64(sink + p.id() % 4, sum);
            }
            p.barrier(1);
        });
        report.counters.page_transfers
    };
    let two = run(ProtocolKind::TwoLevel);
    let one = run(ProtocolKind::OneLevelDiff);
    assert!(
        two < one,
        "2L must coalesce page fetches within the node: 2L={two}, 1LD={one}"
    );
}

#[test]
fn write_doubling_counts_doubling_bytes() {
    let mut c = cluster(ProtocolKind::OneLevelWrite, 2, 2);
    let page = c.alloc_page_aligned(PAGE_WORDS);
    let report = c.run(|p| {
        if p.id() == 3 {
            // Proc 0's node will own nothing; make proc 3 touch first so it
            // is NOT the home for proc 0's writes below... simply: everyone
            // writes; non-home writers double.
        }
        let id = p.id();
        p.write_u64(page + id, id as u64);
        p.barrier(0);
    });
    // At least the non-home writers' stores must be doubled (8 bytes each).
    assert!(report.counters.data_bytes > 0);
    for id in 0..4usize {
        assert_eq!(c.read_u64(page + id), id as u64);
    }
}

#[test]
fn migratory_data_under_locks_matches_across_protocols() {
    // A migratory token bounced between nodes under a lock — the Water
    // sharing pattern in miniature.
    let mut finals = Vec::new();
    for protocol in ProtocolKind::PAPER_FOUR {
        let mut c = cluster(protocol, 2, 2);
        let token = c.alloc_page_aligned(4);
        c.run(|p| {
            for _ in 0..25 {
                p.lock(1);
                let v = p.read_u64(token);
                p.write_u64(token, v + 1);
                p.write_u64(token + 1, p.id() as u64);
                p.unlock(1);
            }
        });
        finals.push(c.read_u64(token));
    }
    assert!(
        finals.iter().all(|&v| v == 100),
        "all protocols reach 100: {finals:?}"
    );
}

#[test]
fn report_time_breakdown_is_populated() {
    let mut c = cluster(ProtocolKind::TwoLevel, 2, 2);
    let a = c.alloc_page_aligned(PAGE_WORDS);
    let r = c.run(|p| {
        p.compute(10_000);
        p.write_u64(a + p.id(), 1);
        p.barrier(0);
        let _ = p.read_u64(a + (p.id() + 1) % 4);
        p.barrier(1);
    });
    use cashmere_core::TimeCategory;
    assert!(r.breakdown.get(TimeCategory::User) > 0);
    assert!(r.breakdown.get(TimeCategory::Protocol) > 0);
    assert!(r.breakdown.get(TimeCategory::CommWait) > 0);
    assert!(r.breakdown.get(TimeCategory::Polling) > 0);
    assert!(r.exec_ns >= 10_000);
    assert_eq!(r.procs, 4);
    assert_eq!(r.nodes, 2);
}

#[test]
fn cluster_can_run_multiple_programs_back_to_back() {
    // A second run creates fresh per-processor contexts while the page
    // tables persist — the frame caches must repopulate lazily (regression:
    // this used to panic with "fault left no frame").
    let mut c = cluster(ProtocolKind::TwoLevel, 2, 2);
    let a = c.alloc_page_aligned(64);
    c.run(|p| {
        p.write_u64(a + p.id(), p.id() as u64 + 1);
        p.barrier(0);
    });
    c.run(|p| {
        // Reads and writes on pages whose permissions survived run 1.
        let v = p.read_u64(a + p.id());
        p.write_u64(a + p.id(), v * 10);
        p.barrier(0);
    });
    for id in 0..4u64 {
        assert_eq!(c.read_u64(a + id as usize), (id + 1) * 10);
    }
}
