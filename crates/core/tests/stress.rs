//! Stress tests for the races found during development: rotating single-
//! writer rounds (flag-ordered) and concurrent invalidation/fetch storms.
//! These loops reproduced two real timestamp-ordering bugs in the acquire
//! path before they were fixed; keep them hot.

use cashmere_core::{Cluster, ClusterConfig, ProtocolKind, SyncSpec, Topology, PAGE_WORDS};

fn rotating_writer_round_trip(protocol: ProtocolKind, rounds: usize) {
    let cfg = ClusterConfig::new(Topology::new(2, 2), protocol)
        .with_heap_pages(8)
        .with_sync(SyncSpec {
            locks: 2,
            barriers: 2,
            flags: rounds,
        });
    let mut c = Cluster::new(cfg);
    let base = c.alloc_page_aligned(PAGE_WORDS);
    let errs = c.alloc_page_aligned(64);
    c.run(|p| {
        let np = p.nprocs();
        let me = p.id();
        for k in 0..rounds {
            let row = base + k * 64;
            if k % np == me {
                for j in 0..16 {
                    p.write_u64(row + j, (k * 100 + j + 1) as u64);
                }
                p.flag_set(k);
            } else {
                p.flag_wait(k);
            }
            for j in 0..16 {
                let v = p.read_u64(row + j);
                if v != (k * 100 + j + 1) as u64 {
                    let e = p.read_u64(errs + me * 8);
                    p.write_u64(errs + me * 8, e + 1);
                }
            }
        }
        p.barrier(0);
    });
    let total: u64 = (0..4).map(|i| c.read_u64(errs + i * 8)).sum();
    assert_eq!(
        total,
        0,
        "{}: stale reads in rotating-writer rounds",
        protocol.label()
    );
}

#[test]
fn rotating_writer_rounds_are_coherent_two_level() {
    for _ in 0..20 {
        rotating_writer_round_trip(ProtocolKind::TwoLevel, 12);
    }
}

#[test]
fn rotating_writer_rounds_are_coherent_shootdown() {
    for _ in 0..10 {
        rotating_writer_round_trip(ProtocolKind::TwoLevelShootdown, 12);
    }
}

#[test]
fn rotating_writer_rounds_are_coherent_one_level() {
    for _ in 0..10 {
        rotating_writer_round_trip(ProtocolKind::OneLevelDiff, 12);
        rotating_writer_round_trip(ProtocolKind::OneLevelWrite, 12);
    }
}

#[test]
fn barrier_storm_with_page_ping_pong() {
    // All procs repeatedly increment their own word AND read a word owned
    // by a proc on the other node, with barriers between — a ping-pong of
    // invalidations and fetches on one page.
    for _ in 0..10 {
        let cfg = ClusterConfig::new(Topology::new(2, 2), ProtocolKind::TwoLevel)
            .with_heap_pages(4)
            .with_sync(SyncSpec {
                locks: 1,
                barriers: 2,
                flags: 0,
            });
        let mut c = Cluster::new(cfg);
        let page = c.alloc_page_aligned(PAGE_WORDS);
        let rounds = 6u64;
        c.run(|p| {
            let me = p.id();
            for r in 0..rounds {
                let mine = p.read_u64(page + me);
                p.barrier(0);
                p.write_u64(page + me, mine + r + 1);
                p.barrier(1);
                // Check a cross-node word advanced exactly in lockstep.
                let other = (me + 2) % 4;
                let theirs = p.read_u64(page + other);
                // After round r the word holds the sum of (k+1) for k=0..=r.
                assert_eq!(
                    theirs,
                    (r + 1) * (r + 2) / 2,
                    "proc {me} read stale round {r}"
                );
            }
        });
    }
}
