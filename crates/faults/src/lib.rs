//! Deterministic fault injection for the Cashmere-2L simulator.
//!
//! The paper's Memory Channel delivers remote writes in order, reliably, and
//! cheaply (§2), so Cashmere-2L itself has no recovery story. This crate
//! supplies the adversary that a modern remote-write fabric would be: a
//! seeded, declarative [`FaultPlan`] that the `memchan` transmit paths and
//! the engine's request/reply paths consult at explicit interposition
//! points.
//!
//! # Determinism
//!
//! Every decision is a *pure function* of the plan seed, the rule, and the
//! interposition site's own deterministic inputs (endpoint, link, virtual
//! time, retry attempt). No decision depends on host-thread interleaving or
//! on how many draws other sites made, so the same seed always yields the
//! same fault schedule in virtual time — a sequential run replays
//! identically, and a parallel run sees the same fault function of virtual
//! time even though its virtual times are scheduling-dependent. The plan is
//! seeded through the reference splitmix64/xoshiro256** generators: the
//! builder expands the seed with [`Xoshiro256StarStar`] into one salt per
//! rule, and each decision finalizes `salt ⊕ site-inputs` with the
//! splitmix64 mixer ([`mix64`]).
//!
//! A plan with no rules (or an absent plan) is inert: every query
//! short-circuits before touching the mixer, so the zero-fault
//! configuration is byte-identical in virtual time to a build without the
//! interposition layer (`results/vt_golden.jsonl` pins this).
//!
// Fault-handling code must degrade gracefully, never panic: an injection or
// recovery path that unwraps turns the fault under study into a crash. Tests
// are exempt (asserting on fixtures is fine). scripts/lint.sh pins the same
// contract with a source scan.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # Fault kinds and who recovers
//!
//! * [`FaultKind::DropWrite`] / [`FaultKind::DuplicateWrite`] /
//!   [`FaultKind::DelayWrite`] — apply to remote writes and `write_runs` on
//!   the ordered region path and to modeled bulk transfers. The protocol
//!   state machine fundamentally assumes ordered reliable delivery for
//!   directory/lock/notice traffic, so for those a *drop* is repaired by the
//!   simulated adapter (link-level retransmission: the bandwidth and latency
//!   of the lost attempt are charged, then the write is resent); duplicates
//!   re-deliver idempotent stores and re-charge the link; delays defer the
//!   delivery completion time.
//! * [`FaultKind::LoseFetch`] / [`FaultKind::LoseBreak`] — page-fetch and
//!   exclusive-break interrupts are *user-level* request messages, and their
//!   loss surfaces to the protocol, which recovers with sequence-numbered
//!   idempotent replies, virtual-time timeouts, and capped exponential
//!   backoff (`cashmere-core`'s recovery layer).
//! * [`FaultKind::LinkOutage`] — a whole link goes dark for the remainder of
//!   a deterministic epoch (virtual time is quantized into `param_ns`-long
//!   epochs; each epoch of each link draws once). Region writes stall to the
//!   epoch boundary; fetch/break requests during the outage are lost.
//!
//! [`FaultStats`] counts every injected fault so harnesses can prove the
//! plan actually fired.

use std::sync::atomic::{AtomicU64, Ordering};

pub use cashmere_sim::Nanos;

// ---------------------------------------------------------------------------
// PRNG primitives
// ---------------------------------------------------------------------------

/// The splitmix64 output mixer as a stateless hash: maps any 64-bit value to
/// a well-distributed 64-bit value. This is the finalizer every fault
/// decision goes through.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The reference splitmix64 sequential generator (Vigna). Used to expand a
/// single user seed into the xoshiro256** state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next value in the sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The reference xoshiro256** generator (Blackman & Vigna), seeded via
/// splitmix64 as its authors prescribe. The [`FaultPlan`] builder draws one
/// salt per rule from it; harnesses may also use it directly for sampling.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// A generator whose 256-bit state is expanded from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next value in the sequence.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// What kind of fault a rule injects. See the crate docs for which layer
/// recovers from each kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A remote write (or bulk transfer) is lost on the wire; the simulated
    /// adapter retransmits (extra latency + bandwidth).
    DropWrite,
    /// A remote write (or page-fetch reply) is delivered twice.
    DuplicateWrite,
    /// Delivery completes `param_ns` later than it should.
    DelayWrite,
    /// A page-fetch request/reply interrupt is lost; the requester's
    /// virtual-time timeout fires and it retries.
    LoseFetch,
    /// An exclusive-mode break interrupt is lost; the requester times out
    /// and retries.
    LoseBreak,
    /// The whole link is dark for the rest of a `param_ns`-long epoch.
    LinkOutage,
}

/// Which endpoints/links a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Every endpoint and link.
    All,
    /// Only operations whose source endpoint (protocol node) matches.
    Endpoint(usize),
    /// Only operations crossing this physical link.
    Link(usize),
}

/// One declarative fault rule: a kind, a firing probability, an optional
/// virtual-time window, a node/link scope, and a kind-specific parameter
/// (delay length for [`FaultKind::DelayWrite`], epoch length for
/// [`FaultKind::LinkOutage`]).
#[derive(Debug, Clone, Copy)]
pub struct FaultRule {
    /// The fault injected when the rule fires.
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that an eligible event fires.
    pub probability: f64,
    /// Half-open virtual-time window `[start, end)`; `None` = always.
    pub window: Option<(Nanos, Nanos)>,
    /// Endpoint/link scope.
    pub scope: FaultScope,
    /// Delay (`DelayWrite`) or outage-epoch length (`LinkOutage`) in
    /// virtual nanoseconds.
    pub param_ns: Nanos,
}

impl FaultRule {
    /// A rule for `kind` firing with `probability`, unscoped and unwindowed,
    /// with a kind-appropriate default parameter.
    #[must_use]
    pub fn new(kind: FaultKind, probability: f64) -> Self {
        let param_ns = match kind {
            FaultKind::DelayWrite => 10_000,
            FaultKind::LinkOutage => 100_000,
            _ => 0,
        };
        Self {
            kind,
            probability,
            window: None,
            scope: FaultScope::All,
            param_ns,
        }
    }

    /// Builder-style scope restriction.
    #[must_use]
    pub fn scoped(mut self, scope: FaultScope) -> Self {
        self.scope = scope;
        self
    }

    /// Builder-style virtual-time window `[start, end)`.
    #[must_use]
    pub fn windowed(mut self, start: Nanos, end: Nanos) -> Self {
        self.window = Some((start, end));
        self
    }

    /// Builder-style parameter override (delay / outage epoch length).
    #[must_use]
    pub fn with_param_ns(mut self, ns: Nanos) -> Self {
        self.param_ns = ns;
        self
    }
}

/// The fate of one remote write / bulk transfer, as decided by
/// [`FaultPlan::write_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// No fault: deliver normally.
    Deliver,
    /// First transmission lost; the adapter retransmits (charge the lost
    /// attempt, then send again).
    Drop,
    /// Delivered twice (idempotent stores re-applied, link charged again).
    Duplicate,
    /// Delivery completion deferred by this many virtual nanoseconds.
    Delay(Nanos),
    /// The link is dark; transmission cannot start before this virtual
    /// time (the outage epoch's end).
    Outage(Nanos),
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Counts of faults actually injected, by kind. Shared through the plan's
/// `Arc`, so the counters are atomic; ordering is `Relaxed` because they are
/// statistics, never synchronization.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Remote writes / transfers whose first transmission was dropped.
    pub writes_dropped: AtomicU64,
    /// Remote writes / transfers delivered twice.
    pub writes_duplicated: AtomicU64,
    /// Remote writes / transfers with injected extra latency.
    pub writes_delayed: AtomicU64,
    /// Transmissions stalled to an outage-epoch boundary.
    pub outage_stalls: AtomicU64,
    /// Page-fetch requests/replies lost.
    pub fetches_lost: AtomicU64,
    /// Exclusive-break interrupts lost.
    pub breaks_lost: AtomicU64,
    /// Page-fetch replies duplicated.
    pub replies_duplicated: AtomicU64,
}

impl FaultStats {
    /// Labelled snapshot of every counter, for reports.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        // relaxed-ok: statistics counters read for reporting; single-location
        // RMW coherence keeps each count exact, and reports are only
        // consulted after the run's threads have joined.
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("writes_dropped", g(&self.writes_dropped)),
            ("writes_duplicated", g(&self.writes_duplicated)),
            ("writes_delayed", g(&self.writes_delayed)),
            ("outage_stalls", g(&self.outage_stalls)),
            ("fetches_lost", g(&self.fetches_lost)),
            ("breaks_lost", g(&self.breaks_lost)),
            ("replies_duplicated", g(&self.replies_duplicated)),
        ]
    }

    /// Total faults injected across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.snapshot().iter().map(|&(_, v)| v).sum()
    }

    fn bump(&self, c: &AtomicU64) {
        // relaxed-ok: statistics counter; increments need atomicity, not
        // ordering (see snapshot above).
        c.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// Site discriminators folded into every draw so distinct interposition
/// points sharing a rule decorrelate.
mod site {
    pub const WRITE: u64 = 0x57;
    pub const FETCH: u64 = 0xF7;
    pub const BREAK: u64 = 0xB7;
    pub const REPLY: u64 = 0xD7;
    pub const OUTAGE: u64 = 0x07;
}

struct Compiled {
    rule: FaultRule,
    /// Per-rule salt drawn from the plan's xoshiro stream at build time.
    salt: u64,
    /// `probability` as an integer threshold: fire when the draw is below
    /// it. Zero-probability rules get threshold 0 and can never fire.
    threshold: u64,
}

impl std::fmt::Debug for Compiled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.rule.fmt(f)
    }
}

/// A seeded, declarative fault schedule. Build with [`FaultPlan::new`] and
/// [`FaultPlan::with_rule`], share via `Arc`, and hand to
/// `ClusterConfig::with_faults`. See the crate docs for the determinism
/// contract.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rng: Xoshiro256StarStar,
    rules: Vec<Compiled>,
    max_attempts: u32,
    stats: FaultStats,
}

impl FaultPlan {
    /// An empty (inert) plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: Xoshiro256StarStar::new(seed),
            rules: Vec::new(),
            max_attempts: 16,
            stats: FaultStats::default(),
        }
    }

    /// Builder-style rule addition. Rule salts are drawn from the plan's
    /// xoshiro stream, so a plan is identified by `(seed, rule insertion
    /// order)`.
    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        let salt = self.rng.next_u64();
        let p = rule.probability.clamp(0.0, 1.0);
        // `u64::MAX as f64` rounds up to 2^64; saturating cast brings
        // p = 1.0 back to "always fire".
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let threshold = (p * (u64::MAX as f64)) as u64;
        self.rules.push(Compiled {
            rule,
            salt,
            threshold,
        });
        self
    }

    /// Builder-style retry-attempt cap: after this many lost attempts the
    /// simulated fabric escalates to a reliable path and the request
    /// succeeds (keeps probability-1.0 rules from livelocking; also the
    /// reason every timeout is eventually satisfied).
    #[must_use]
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// The seed this plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The lost-attempt cap (see [`FaultPlan::with_max_attempts`]).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Whether the plan can ever inject anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Counters of faults injected so far.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    fn applies(rule: &FaultRule, endpoint: Option<usize>, link: usize, now: Nanos) -> bool {
        if let Some((start, end)) = rule.window {
            if now < start || now >= end {
                return false;
            }
        }
        match rule.scope {
            FaultScope::All => true,
            FaultScope::Endpoint(e) => endpoint == Some(e),
            FaultScope::Link(l) => link == l,
        }
    }

    fn fires(c: &Compiled, site: u64, a: u64, b: u64) -> bool {
        if c.threshold == 0 {
            return false;
        }
        let h = mix64(
            c.salt
                ^ mix64(site.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ a)
                ^ b.rotate_left(24).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        h < c.threshold || c.threshold == u64::MAX
    }

    /// If some [`FaultKind::LinkOutage`] rule has `link` dark at `now`,
    /// returns the virtual time the outage epoch ends.
    #[must_use]
    pub fn link_down(&self, link: usize, now: Nanos) -> Option<Nanos> {
        if self.rules.is_empty() {
            return None;
        }
        for c in &self.rules {
            if c.rule.kind != FaultKind::LinkOutage
                || !Self::applies(&c.rule, None, link, now)
                || c.rule.param_ns == 0
            {
                continue;
            }
            let epoch = now / c.rule.param_ns;
            if Self::fires(c, site::OUTAGE, link as u64, epoch) {
                return Some((epoch + 1) * c.rule.param_ns);
            }
        }
        None
    }

    /// Interposition point for remote writes, `write_runs`, and modeled
    /// bulk transfers leaving `endpoint` over `link` at virtual time `now`.
    /// First matching rule wins; outages take precedence.
    #[must_use]
    pub fn write_fault(&self, endpoint: usize, link: usize, now: Nanos) -> WriteFault {
        if self.rules.is_empty() {
            return WriteFault::Deliver;
        }
        if let Some(resume) = self.link_down(link, now) {
            self.stats.bump(&self.stats.outage_stalls);
            return WriteFault::Outage(resume);
        }
        for c in &self.rules {
            if !Self::applies(&c.rule, Some(endpoint), link, now) {
                continue;
            }
            let hit = match c.rule.kind {
                FaultKind::DropWrite | FaultKind::DuplicateWrite | FaultKind::DelayWrite => {
                    Self::fires(
                        c,
                        site::WRITE ^ (c.rule.kind as u64) << 8,
                        endpoint as u64,
                        now,
                    )
                }
                _ => false,
            };
            if !hit {
                continue;
            }
            match c.rule.kind {
                FaultKind::DropWrite => {
                    self.stats.bump(&self.stats.writes_dropped);
                    return WriteFault::Drop;
                }
                FaultKind::DuplicateWrite => {
                    self.stats.bump(&self.stats.writes_duplicated);
                    return WriteFault::Duplicate;
                }
                FaultKind::DelayWrite => {
                    self.stats.bump(&self.stats.writes_delayed);
                    return WriteFault::Delay(c.rule.param_ns);
                }
                _ => unreachable!(),
            }
        }
        WriteFault::Deliver
    }

    /// Whether the `attempt`-th transmission of a page-fetch request (from
    /// `requester`, crossing the home's `link`) is lost at `now`. Attempts
    /// beyond [`FaultPlan::max_attempts`] always get through.
    #[must_use]
    pub fn fetch_lost(&self, requester: usize, link: usize, now: Nanos, attempt: u32) -> bool {
        self.request_lost(
            FaultKind::LoseFetch,
            site::FETCH,
            &self.stats.fetches_lost,
            requester,
            link,
            now,
            attempt,
        )
    }

    /// Whether the `attempt`-th transmission of an exclusive-break
    /// interrupt (from `requester`, crossing the holder's `link`) is lost.
    #[must_use]
    pub fn break_lost(&self, requester: usize, link: usize, now: Nanos, attempt: u32) -> bool {
        self.request_lost(
            FaultKind::LoseBreak,
            site::BREAK,
            &self.stats.breaks_lost,
            requester,
            link,
            now,
            attempt,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn request_lost(
        &self,
        kind: FaultKind,
        site: u64,
        counter: &AtomicU64,
        requester: usize,
        link: usize,
        now: Nanos,
        attempt: u32,
    ) -> bool {
        if self.rules.is_empty() || attempt > self.max_attempts {
            return false;
        }
        if self.link_down(link, now).is_some() {
            self.stats.bump(counter);
            return true;
        }
        for c in &self.rules {
            if c.rule.kind == kind
                && Self::applies(&c.rule, Some(requester), link, now)
                && Self::fires(c, site ^ u64::from(attempt) << 32, requester as u64, now)
            {
                self.stats.bump(counter);
                return true;
            }
        }
        false
    }

    /// Whether the page-fetch reply from `home` (over `link`) at `now` is
    /// delivered twice. The duplicate is suppressed by the requester's
    /// sequence-number check; this exercises that path.
    #[must_use]
    pub fn reply_duplicated(&self, home: usize, link: usize, now: Nanos) -> bool {
        if self.rules.is_empty() {
            return false;
        }
        for c in &self.rules {
            if c.rule.kind == FaultKind::DuplicateWrite
                && Self::applies(&c.rule, Some(home), link, now)
                && Self::fires(c, site::REPLY, home as u64, now)
            {
                self.stats.bump(&self.stats.replies_duplicated);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // First output of the reference implementation for seed 0, as
        // published with the algorithm.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn mix64_is_splitmix_step() {
        let mut sm = SplitMix64::new(42);
        assert_eq!(mix64(42), sm.next_u64());
    }

    #[test]
    fn xoshiro_same_seed_same_stream() {
        let mut a = Xoshiro256StarStar::new(7);
        let mut b = Xoshiro256StarStar::new(7);
        let mut c = Xoshiro256StarStar::new(8);
        let mut diverged = false;
        for _ in 0..64 {
            let va = a.next_u64();
            assert_eq!(va, b.next_u64());
            diverged |= va != c.next_u64();
        }
        assert!(diverged, "different seeds must produce different streams");
    }

    #[test]
    fn xoshiro_outputs_are_not_degenerate() {
        let mut rng = Xoshiro256StarStar::new(123);
        let vals: std::collections::HashSet<u64> = (0..256).map(|_| rng.next_u64()).collect();
        assert_eq!(vals.len(), 256, "no repeats in a short stream");
    }

    fn plan(seed: u64, kind: FaultKind, p: f64) -> FaultPlan {
        FaultPlan::new(seed).with_rule(FaultRule::new(kind, p))
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new(99);
        assert!(plan.is_empty());
        for now in [0, 1, 1 << 20, u64::MAX / 2] {
            assert_eq!(plan.write_fault(0, 0, now), WriteFault::Deliver);
            assert!(!plan.fetch_lost(1, 0, now, 1));
            assert!(!plan.break_lost(1, 0, now, 1));
            assert!(!plan.reply_duplicated(1, 0, now));
            assert!(plan.link_down(0, now).is_none());
        }
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn zero_probability_never_fires_probability_one_always_fires() {
        let never = plan(5, FaultKind::DropWrite, 0.0);
        let always = plan(5, FaultKind::DropWrite, 1.0);
        for now in 0..500 {
            assert_eq!(never.write_fault(2, 1, now), WriteFault::Deliver);
            assert_eq!(always.write_fault(2, 1, now), WriteFault::Drop);
        }
        assert_eq!(never.stats().total(), 0);
        // relaxed-ok: test-side counter read after all injections completed.
        assert_eq!(always.stats().writes_dropped.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_inputs() {
        let mk = |seed| {
            FaultPlan::new(seed)
                .with_rule(FaultRule::new(FaultKind::DropWrite, 0.3))
                .with_rule(FaultRule::new(FaultKind::DelayWrite, 0.3))
                .with_rule(FaultRule::new(FaultKind::LoseFetch, 0.5))
        };
        let (a, b, c) = (mk(11), mk(11), mk(12));
        let mut same = 0;
        let mut diff = 0;
        for ep in 0..4usize {
            for now in (0..20_000u64).step_by(97) {
                let fa = a.write_fault(ep, ep / 2, now);
                assert_eq!(fa, b.write_fault(ep, ep / 2, now), "same seed, same fate");
                if fa == c.write_fault(ep, ep / 2, now) {
                    same += 1;
                } else {
                    diff += 1;
                }
                assert_eq!(a.fetch_lost(ep, 0, now, 1), b.fetch_lost(ep, 0, now, 1));
            }
        }
        assert!(diff > 0, "different seeds must differ somewhere");
        assert!(same > 0, "schedules still overlap on quiet sites");
        // Draw order / interleaving must not matter: query b in a scrambled
        // order and it still agrees with a.
        for now in (0..20_000u64)
            .step_by(97)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            assert_eq!(a.write_fault(1, 0, now), b.write_fault(1, 0, now));
        }
    }

    #[test]
    fn probability_lands_near_expectation() {
        let p = plan(2024, FaultKind::DropWrite, 0.25);
        let n = 4000;
        let hits = (0..n)
            .filter(|&i| p.write_fault(0, 0, i * 131) == WriteFault::Drop)
            .count();
        let frac = hits as f64 / n as f64;
        assert!((0.18..0.32).contains(&frac), "got {frac}");
    }

    #[test]
    fn windows_and_scopes_filter() {
        let p = FaultPlan::new(1).with_rule(
            FaultRule::new(FaultKind::DropWrite, 1.0)
                .windowed(1_000, 2_000)
                .scoped(FaultScope::Endpoint(3)),
        );
        assert_eq!(p.write_fault(3, 0, 999), WriteFault::Deliver);
        assert_eq!(p.write_fault(3, 0, 1_000), WriteFault::Drop);
        assert_eq!(p.write_fault(3, 0, 1_999), WriteFault::Drop);
        assert_eq!(p.write_fault(3, 0, 2_000), WriteFault::Deliver);
        assert_eq!(
            p.write_fault(2, 0, 1_500),
            WriteFault::Deliver,
            "wrong endpoint"
        );

        let l = FaultPlan::new(1)
            .with_rule(FaultRule::new(FaultKind::LoseFetch, 1.0).scoped(FaultScope::Link(2)));
        assert!(l.fetch_lost(0, 2, 0, 1));
        assert!(!l.fetch_lost(0, 1, 0, 1));
    }

    #[test]
    fn delay_carries_param() {
        let p = FaultPlan::new(9)
            .with_rule(FaultRule::new(FaultKind::DelayWrite, 1.0).with_param_ns(777));
        assert_eq!(p.write_fault(0, 0, 42), WriteFault::Delay(777));
    }

    #[test]
    fn outage_epochs_are_consistent_and_deterministic() {
        let p = FaultPlan::new(31)
            .with_rule(FaultRule::new(FaultKind::LinkOutage, 0.5).with_param_ns(1_000));
        let mut down_epochs = 0;
        for epoch in 0..64u64 {
            let verdicts: Vec<_> = (0..5)
                .map(|i| p.link_down(0, epoch * 1_000 + i * 199))
                .collect();
            // Every instant of an epoch agrees, and a dark epoch resumes at
            // its boundary.
            for v in &verdicts {
                assert_eq!(*v, verdicts[0]);
                if let Some(resume) = v {
                    assert_eq!(*resume, (epoch + 1) * 1_000);
                    down_epochs += 1;
                }
            }
        }
        assert!(
            down_epochs > 0,
            "p=0.5 over 64 epochs must go dark sometimes"
        );
        // An outage converts writes to stalls and requests to losses.
        let dark = (0..64u64)
            .find(|e| p.link_down(0, e * 1_000).is_some())
            .unwrap();
        let now = dark * 1_000 + 3;
        assert_eq!(
            p.write_fault(0, 0, now),
            WriteFault::Outage((dark + 1) * 1_000)
        );
        assert!(p.fetch_lost(0, 0, now, 1));
        assert!(p.break_lost(0, 0, now, 1));
    }

    #[test]
    fn attempt_cap_guarantees_progress() {
        let p = plan(4, FaultKind::LoseFetch, 1.0);
        let p = p.with_max_attempts(3);
        assert!(p.fetch_lost(0, 0, 100, 1));
        assert!(p.fetch_lost(0, 0, 100, 2));
        assert!(p.fetch_lost(0, 0, 100, 3));
        assert!(
            !p.fetch_lost(0, 0, 100, 4),
            "capped attempts always succeed"
        );
    }

    #[test]
    fn retries_redraw_with_attempt_number() {
        // With p = 0.5 the chance that attempts 1..=16 all agree for every
        // one of 32 sites is astronomically small.
        let p = plan(77, FaultKind::LoseBreak, 0.5);
        let mut varied = false;
        for ep in 0..32usize {
            let first = p.break_lost(ep, 0, 5_000, 1);
            varied |= (2..=16).any(|a| p.break_lost(ep, 0, 5_000, a) != first);
        }
        assert!(varied);
    }

    #[test]
    fn reply_duplication_draws_are_independent_of_write_draws() {
        let p = plan(8, FaultKind::DuplicateWrite, 0.5);
        let writes: Vec<bool> = (0..2_000u64)
            .map(|i| p.write_fault(1, 0, i * 53) == WriteFault::Duplicate)
            .collect();
        let replies: Vec<bool> = (0..2_000u64)
            .map(|i| p.reply_duplicated(1, 0, i * 53))
            .collect();
        assert_ne!(writes, replies, "sites must decorrelate");
        assert!(replies.iter().any(|&r| r), "replies do get duplicated");
    }

    #[test]
    fn stats_count_each_kind() {
        let p = FaultPlan::new(3)
            .with_rule(FaultRule::new(FaultKind::DropWrite, 1.0).windowed(0, 10))
            .with_rule(FaultRule::new(FaultKind::DelayWrite, 1.0).windowed(10, 20));
        let _ = p.write_fault(0, 0, 5);
        let _ = p.write_fault(0, 0, 15);
        // relaxed-ok: test-side counter reads after all injections completed.
        assert_eq!(p.stats().writes_dropped.load(Ordering::Relaxed), 1);
        assert_eq!(p.stats().writes_delayed.load(Ordering::Relaxed), 1);
        assert_eq!(p.stats().total(), 2);
    }
}
