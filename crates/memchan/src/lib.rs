//! A simulation of DEC's Memory Channel remote-write network (§2.1 of the
//! paper).
//!
//! Memory Channel properties reproduced here:
//!
//! * **Remote writes only** — a region can be mapped for *transmit* or
//!   *receive*; writes through a transmit mapping are delivered into the
//!   receive copies of the same region on every attached node. There is no
//!   remote read: reading remote data requires the explicit-request protocol
//!   built on top (in `cashmere-core`).
//! * **Global write ordering** — two writes to the same region appear in the
//!   same order in every receive copy. The simulator linearizes deliveries
//!   with a per-region order lock (the "hub").
//! * **Loop-back** — normally a node's own receive copy is *not* updated by
//!   its own transmits; the writer must "double" the write by storing into
//!   its local copy manually (the paper does this for directory entries).
//!   With loop-back enabled (used for synchronization objects), the writer's
//!   own receive copy *is* updated, and the completion time returned by a
//!   write is the moment the write has been *globally performed* — which is
//!   how the paper's locks detect that their array-entry write is visible
//!   everywhere.
//! * **Latency and bandwidth** — each write charges the 5.2 µs
//!   process-to-process latency plus `bytes × link-ns-per-byte` serialized
//!   through the sending node's PCI link ([`cashmere_sim::Resource`]), which
//!   reproduces the paper's link contention effects.
//!
//! Endpoints are *protocol* nodes (the one-level protocols give every
//! processor its own endpoint); each endpoint is pinned to a *physical* link
//! for bandwidth accounting.
//!
//! # Construction
//!
//! Channels are built through the [`TransportConfig`] builder
//! (`TransportConfig::new(link_of, links).build_channel()`), which carries
//! the cost model, the interconnect [`Backend`], the fault plan, and the
//! observability counters. The old positional `new`/`with_faults`/
//! `with_observers` constructor family is gone.
//!
//! # Fault interposition
//!
//! When built with a fault plan ([`TransportConfig::with_fault_plan`]),
//! every transmission —
//! [`write`](MemoryChannel::write) / [`write_block`](MemoryChannel::write_block)
//! / [`write_sparse`](MemoryChannel::write_sparse) /
//! [`write_runs`](MemoryChannel::write_runs) and the modeled bulk transfers
//! of [`charge_link`](MemoryChannel::charge_link) and
//! [`reserve`](MemoryChannel::reserve) — consults the
//! [`FaultPlan`] at exactly one interposition point: a *dropped* write is
//! repaired by the simulated adapter's link-level retransmission (the lost
//! attempt's bandwidth and latency are charged, then the payload is resent),
//! a *duplicated* write re-delivers its idempotent stores and re-charges the
//! link, a *delayed* write completes late, and an *outage* stalls the
//! transmission to the outage epoch's boundary. Ordered region traffic
//! (directories, locks) therefore stays reliable — as Cashmere requires —
//! while paying for the faults in virtual time; loss of the *user-level*
//! request messages (page fetch, exclusive break) is surfaced to the
//! protocol layer instead, which recovers with timeouts and retries (see
//! `cashmere-core`). With no plan (or an empty one) every path is
//! byte-identical in virtual time to the pre-fault-layer simulator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use cashmere_model::ModelAtomicU64;
use parking_lot::Mutex;

use cashmere_faults::{FaultPlan, WriteFault};
use cashmere_obs::LinkMetrics;
use cashmere_sim::{Backend, CostModel, Nanos, Resource};

/// Builder for a simulated interconnect channel: endpoint→link topology
/// plus the optional knobs (cost model, [`Backend`], fault plan,
/// observability counters). This is the only way to construct a
/// [`MemoryChannel`]; it replaces the old positional
/// `new(link_of, links, cost)` / `with_faults` / `with_observers` family.
///
/// The cost model defaults to the configured backend's
/// ([`Backend::cost_model`]), which for the default
/// [`Backend::MemoryChannel`] is exactly [`CostModel::default`].
#[derive(Clone)]
pub struct TransportConfig {
    link_of: Vec<usize>,
    links: usize,
    backend: Backend,
    cost: Option<CostModel>,
    faults: Option<Arc<FaultPlan>>,
    metrics: Option<Arc<LinkMetrics>>,
}

impl TransportConfig {
    /// A channel with `link_of.len()` endpoints; endpoint `e` sends through
    /// physical link `link_of[e]` of `links` total.
    pub fn new(link_of: Vec<usize>, links: usize) -> Self {
        Self {
            link_of,
            links,
            backend: Backend::default(),
            cost: None,
            faults: None,
            metrics: None,
        }
    }

    /// Selects the interconnect backend (default: the paper's Memory
    /// Channel). Does not override an explicit [`with_cost`](Self::with_cost).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the cost model (default: the backend's).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Interposes a fault-injection plan on every transmission (see the
    /// crate docs' fault-interposition section).
    pub fn with_fault_plan(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches observability traffic counters: every link reservation
    /// (remote writes, page transfers, doubled stores, notice posts) is
    /// counted. Counting is charge-free — virtual times are identical with
    /// or without it.
    pub fn with_metrics(mut self, metrics: Option<Arc<LinkMetrics>>) -> Self {
        self.metrics = metrics;
        self
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Builds the channel.
    ///
    /// # Panics
    ///
    /// Panics if `link_of` is empty or names a link ≥ `links`.
    pub fn build_channel(self) -> MemoryChannel {
        assert!(!self.link_of.is_empty(), "need at least one endpoint");
        assert!(
            self.link_of.iter().all(|&l| l < self.links),
            "endpoint mapped to nonexistent link"
        );
        MemoryChannel {
            cost: self.cost.unwrap_or_else(|| self.backend.cost_model()),
            links: (0..self.links).map(|_| Resource::new()).collect(),
            link_of: self.link_of,
            regions: RegionTable::new(),
            faults: self.faults,
            metrics: self.metrics,
        }
    }
}

/// Identifies a Memory Channel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub usize);

/// Default branching factor for [`MemoryChannel::write_tree`] /
/// [`MemoryChannel::charge_tree`] hierarchical broadcasts.
pub const TREE_FANOUT: usize = 4;

/// Capacity of the first region-table bucket; bucket `i` holds
/// `BUCKET0 << i` slots, so 28 buckets cover every realistic region count.
const BUCKET0: usize = 64;
const TABLE_BUCKETS: usize = 28;

/// One lazily-allocated run of region slots; each slot is written once.
type Bucket = Box<[OnceLock<Arc<Region>>]>;

/// Append-only, lock-free region table: a fixed spine of doubling buckets,
/// each allocated at most once, so a published `RegionId` resolves to a
/// stable `&Arc<Region>` with two array indexings and one `Acquire` load —
/// no read lock and no `Arc` clone on the page-fetch hot path. Appends
/// (region creation, a cold setup-time path) serialize on a plain mutex;
/// the new slot is written before `len` is published with `Release`, so any
/// id below the observed `len` is fully initialized.
struct RegionTable {
    buckets: [OnceLock<Bucket>; TABLE_BUCKETS],
    len: AtomicUsize,
    append: Mutex<()>,
}

impl RegionTable {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            append: Mutex::new(()),
        }
    }

    /// Maps a region id to (bucket, slot): ids 0..64 live in bucket 0,
    /// the next 128 in bucket 1, the next 256 in bucket 2, and so on.
    #[inline]
    fn locate(id: usize) -> (usize, usize) {
        let chunk = id / BUCKET0 + 1;
        let bucket = (usize::BITS - 1 - chunk.leading_zeros()) as usize;
        (bucket, id - ((1usize << bucket) - 1) * BUCKET0)
    }

    #[inline]
    fn get(&self, id: usize) -> &Arc<Region> {
        assert!(id < self.len.load(Ordering::Acquire), "unknown region {id}");
        let (bucket, slot) = Self::locate(id);
        self.buckets[bucket]
            .get()
            .expect("bucket allocated before len covered it")[slot]
            .get()
            .expect("slot written before len covered it")
    }

    fn push(&self, region: Arc<Region>) -> usize {
        let _append = self.append.lock();
        let id = self.len.load(Ordering::Acquire);
        let (bucket, slot) = Self::locate(id);
        let bucket = self.buckets[bucket]
            .get_or_init(|| (0..BUCKET0 << bucket).map(|_| OnceLock::new()).collect());
        bucket[slot]
            .set(region)
            .ok()
            .expect("a slot below len is only ever written once");
        self.len.store(id + 1, Ordering::Release);
        id
    }
}

/// One mapped region: a per-endpoint set of receive buffers plus the hub's
/// ordering lock.
struct Region {
    words: usize,
    loopback: bool,
    /// The hub: deliveries to receive copies are linearized under this lock,
    /// giving the Memory Channel's total write order per region.
    order: Mutex<()>,
    /// Receive copies, indexed by endpoint; attached lazily (a mapping
    /// created after some writes does not see history, as on real hardware).
    /// The words are model-routed atomics so the interleaving explorer can
    /// schedule around the lock-free directory reads built on them
    /// (DESIGN.md §11); outside model tests they are plain `AtomicU64`s.
    rx: Vec<OnceLock<Box<[ModelAtomicU64]>>>,
}

impl Region {
    fn rx_of(&self, endpoint: usize) -> Option<&[ModelAtomicU64]> {
        self.rx[endpoint].get().map(|b| &b[..])
    }
}

/// The simulated network: a set of regions shared by `endpoints` protocol
/// nodes, with `links` physical PCI links.
pub struct MemoryChannel {
    cost: CostModel,
    /// Physical link index for each endpoint.
    link_of: Vec<usize>,
    links: Vec<Resource>,
    regions: RegionTable,
    /// Fault-injection plan; `None` (or an empty plan) leaves every path
    /// byte-identical in virtual time to a fault-free build.
    faults: Option<Arc<FaultPlan>>,
    /// Observability traffic counters; `None` costs one discriminant test
    /// per transmission and recording never charges virtual time.
    metrics: Option<Arc<LinkMetrics>>,
}

impl MemoryChannel {
    /// Number of endpoints.
    pub fn endpoints(&self) -> usize {
        self.link_of.len()
    }

    /// Creates a region of `words` 64-bit words. `loopback` selects whether a
    /// writer's own receive copy is updated by its own transmits.
    pub fn create_region(&self, words: usize, loopback: bool) -> RegionId {
        let region = Arc::new(Region {
            words,
            loopback,
            order: Mutex::new(()),
            rx: (0..self.endpoints()).map(|_| OnceLock::new()).collect(),
        });
        RegionId(self.regions.push(region))
    }

    fn region(&self, r: RegionId) -> &Arc<Region> {
        self.regions.get(r.0)
    }

    /// Maps region `r` for receive on `endpoint` (idempotent). The buffer
    /// starts zeroed and only observes writes delivered after attachment.
    pub fn attach_rx(&self, r: RegionId, endpoint: usize) {
        let region = self.region(r);
        region.rx[endpoint]
            .get_or_init(|| (0..region.words).map(|_| ModelAtomicU64::new(0)).collect());
    }

    /// Whether `endpoint` has a receive mapping for `r`.
    pub fn has_rx(&self, r: RegionId, endpoint: usize) -> bool {
        self.region(r).rx[endpoint].get().is_some()
    }

    /// The fault-layer interposition point shared by every transmission:
    /// reserves `from`'s physical link for `bytes` of payload starting at
    /// `now`, applying the fault plan's verdict — drop (adapter
    /// retransmission: the lost attempt's bandwidth and latency are charged,
    /// then the payload is resent), duplicate (the link is charged twice),
    /// delay (completion deferred), or outage (transmission stalls to the
    /// epoch boundary). Returns the time the last transmission clears the
    /// link and how many times the payload is delivered. Without a plan this
    /// is exactly one `Resource::acquire`.
    fn reserve_link(&self, from: usize, bytes: Nanos, now: Nanos) -> (Nanos, u32) {
        if let Some(m) = &self.metrics {
            m.record(self.link_of[from], bytes);
        }
        let link = &self.links[self.link_of[from]];
        let wire = self.cost.wire_ns(bytes);
        let Some(plan) = &self.faults else {
            return (link.acquire(now, wire), 1);
        };
        match plan.write_fault(from, self.link_of[from], now) {
            WriteFault::Deliver => (link.acquire(now, wire), 1),
            WriteFault::Drop => {
                // Link-level retransmission: the lost attempt burned its
                // bandwidth and a latency window before the adapter noticed
                // and resent. Ordered region traffic (directories, locks)
                // must stay reliable — the protocol's state machine assumes
                // it — so the drop costs virtual time instead of data.
                let lost = link.acquire(now, wire) + self.cost.mc_write_latency;
                (link.acquire(lost, wire), 1)
            }
            WriteFault::Duplicate => {
                let first = link.acquire(now, wire);
                (link.acquire(first, wire), 2)
            }
            WriteFault::Delay(d) => (link.acquire(now, wire) + d, 1),
            WriteFault::Outage(resume) => (link.acquire(resume.max(now), wire), 1),
        }
    }

    /// The single delivery loop every transmit flavor shares: charges the
    /// sending link for `bytes` of payload starting at `now` (through the
    /// fault-plan interposition of [`Self::reserve_link`]), then — under
    /// the region's order lock, so the transfer is atomic with respect to
    /// the region's global write order — invokes `deliver` once per attached
    /// receive copy (skipping `from`'s own copy unless the region has
    /// loop-back), twice when the fault plan duplicated the write (the
    /// stores are idempotent, so state is unchanged and only time and
    /// bandwidth are lost). Returns the time the write is globally
    /// performed.
    fn transmit(
        &self,
        region: &Region,
        from: usize,
        bytes: Nanos,
        now: Nanos,
        deliver: impl Fn(&[ModelAtomicU64]),
    ) -> Nanos {
        let (link_done, deliveries) = self.reserve_link(from, bytes, now);
        let done = link_done + self.cost.mc_write_latency;
        let _order = region.order.lock();
        for _ in 0..deliveries {
            for (e, slot) in region.rx.iter().enumerate() {
                if e == from && !region.loopback {
                    continue;
                }
                if let Some(buf) = slot.get() {
                    deliver(&buf[..]);
                }
            }
        }
        done
    }

    /// Writes one word through `from`'s transmit mapping.
    ///
    /// Delivers `val` to every attached receive copy (skipping `from`'s own
    /// copy unless the region has loop-back), charges latency plus link
    /// occupancy starting at `now`, and returns the time at which the write
    /// has been globally performed.
    pub fn write(&self, r: RegionId, from: usize, offset: usize, val: u64, now: Nanos) -> Nanos {
        self.write_block(r, from, offset, std::slice::from_ref(&val), now)
    }

    /// Writes a contiguous block through `from`'s transmit mapping.
    ///
    /// Same semantics as [`write`](Self::write); the block occupies the link
    /// for `8 × vals.len()` bytes and is delivered atomically with respect to
    /// the region's write order.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the end of the region.
    pub fn write_block(
        &self,
        r: RegionId,
        from: usize,
        offset: usize,
        vals: &[u64],
        now: Nanos,
    ) -> Nanos {
        let region = self.region(r);
        assert!(
            offset + vals.len() <= region.words,
            "write past end of region (offset {offset} + {} > {})",
            vals.len(),
            region.words
        );
        let bytes = (vals.len() * 8) as Nanos;
        self.transmit(region, from, bytes, now, |buf| {
            for (i, v) in vals.iter().enumerate() {
                buf[offset + i].store(*v, Ordering::Release);
            }
        })
    }

    /// Writes sparse words (index/value pairs) through `from`'s transmit
    /// mapping — the shape of a per-word outgoing diff. Delivered atomically
    /// with respect to the region's write order; the link is occupied for
    /// the diff payload (8 data bytes + 4 index bytes per word).
    pub fn write_sparse(
        &self,
        r: RegionId,
        from: usize,
        entries: &[(u32, u64)],
        now: Nanos,
    ) -> Nanos {
        let region = self.region(r);
        assert!(
            entries.iter().all(|&(i, _)| (i as usize) < region.words),
            "sparse write past end of region"
        );
        let bytes = (entries.len() * 12) as Nanos;
        self.transmit(region, from, bytes, now, |buf| {
            for &(i, v) in entries {
                buf[i as usize].store(v, Ordering::Release);
            }
        })
    }

    /// Writes a run-length-encoded diff through `from`'s transmit mapping:
    /// each `(start, values)` run lands as one blockwise copy per receive
    /// copy, instead of `write_sparse`'s word-at-a-time scatter.
    ///
    /// The link occupancy is identical to [`write_sparse`](Self::write_sparse)
    /// for the same word set — 12 bytes per dirty word — because the paper's
    /// diff wire format carries an index alongside every word; the cost is a
    /// property of *how many words changed*, not of how the simulator
    /// represents them (see DESIGN.md on virtual-time neutrality).
    ///
    /// # Panics
    ///
    /// Panics if any run extends past the end of the region.
    pub fn write_runs<'a, I>(&self, r: RegionId, from: usize, runs: I, now: Nanos) -> Nanos
    where
        I: Iterator<Item = (u32, &'a [u64])> + Clone,
    {
        let region = self.region(r);
        let mut words = 0usize;
        for (start, vals) in runs.clone() {
            assert!(
                start as usize + vals.len() <= region.words,
                "run write past end of region (start {start} + {} > {})",
                vals.len(),
                region.words
            );
            words += vals.len();
        }
        let bytes = (words * 12) as Nanos;
        self.transmit(region, from, bytes, now, |buf| {
            for (start, vals) in runs.clone() {
                for (k, v) in vals.iter().enumerate() {
                    buf[start as usize + k].store(*v, Ordering::Release);
                }
            }
        })
    }

    /// Reads a word from `endpoint`'s receive copy (an ordinary local memory
    /// read on real hardware; free of virtual-time cost).
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` has no receive mapping for `r`.
    pub fn read_local(&self, r: RegionId, endpoint: usize, offset: usize) -> u64 {
        let region = self.region(r);
        let buf = region
            .rx_of(endpoint)
            .expect("read_local from endpoint without a receive mapping");
        buf[offset].load(Ordering::Acquire)
    }

    /// Stores directly into `endpoint`'s own receive copy — the manual
    /// "doubling" of writes the paper uses for non-loop-back regions such as
    /// the global directory.
    ///
    /// # Panics
    ///
    /// Panics if `endpoint` has no receive mapping for `r`.
    pub fn write_local(&self, r: RegionId, endpoint: usize, offset: usize, val: u64) {
        let region = self.region(r);
        let buf = region
            .rx_of(endpoint)
            .expect("write_local to endpoint without a receive mapping");
        buf[offset].store(val, Ordering::Release);
    }

    /// Direct access to `endpoint`'s receive buffer for region `r`, if
    /// mapped. Used by the protocol layer when home-node processors operate
    /// directly on the master copy of a page.
    pub fn rx_buffer(&self, r: RegionId, endpoint: usize) -> Option<RxBuffer> {
        let region = self.region(r);
        region.rx[endpoint].get()?;
        Some(RxBuffer {
            region: Arc::clone(region),
            endpoint,
        })
    }

    /// Reserves the physical link of endpoint `from` for `bytes` starting at
    /// `now` without writing data — used for modeled transfers whose payload
    /// is materialized by other means (e.g. page-fetch replies and diff
    /// flushes to master frames). Subject to the same fault interposition as
    /// the region transmit paths (a duplicated transfer burns the link
    /// twice; the payload side of duplication is handled by the protocol's
    /// sequence-numbered replies).
    pub fn charge_link(&self, from: usize, bytes: u64, now: Nanos) -> Nanos {
        let (link_done, _deliveries) = self.reserve_link(from, bytes, now);
        link_done + self.cost.mc_write_latency
    }

    /// Reserves the physical link of endpoint `from` for `bytes` starting
    /// at `now` and returns the time the transfer clears the link — *wire
    /// time only*, without the one-sided write-latency constant that
    /// [`charge_link`](Self::charge_link) adds. Direct-read backends
    /// (DESIGN.md §14) use this to charge a page pull as wire time plus
    /// their own read-completion latency. Subject to the same fault
    /// interposition and traffic counting as every other transmission.
    pub fn reserve(&self, from: usize, bytes: u64, now: Nanos) -> Nanos {
        self.reserve_link(from, bytes, now).0
    }

    /// Virtual-time schedule of a hierarchical (tree) broadcast: `from`
    /// forwards `bytes` of payload to every endpoint in `targets` through a
    /// `fanout`-ary forwarding tree instead of a flat per-target unicast
    /// loop. `from` transmits to the first `fanout` targets through its own
    /// physical link; each target, once its copy has arrived, forwards to
    /// its own `fanout` children (`targets[i]`'s children are
    /// `targets[fanout·(i+1) .. fanout·(i+2)]`) through *its* link. Every
    /// hop is a real link reservation (the same fault-interposed path as
    /// [`reserve`](Self::reserve)), so per-hop faults
    /// (drop/duplicate/delay/outage) and
    /// link contention are charged exactly like any other transmission,
    /// and the sender-side serialized cost is O(fanout) per level —
    /// O(log N) levels — instead of O(N).
    ///
    /// Returns the time the last target has received the payload (`now`
    /// when `targets` is empty). This is the modeled-transfer flavor (no
    /// data movement), the tree analogue of
    /// [`charge_link`](Self::charge_link); [`write_tree`](Self::write_tree)
    /// combines it with delivery.
    pub fn charge_tree(
        &self,
        from: usize,
        targets: &[usize],
        fanout: usize,
        bytes: u64,
        now: Nanos,
    ) -> Nanos {
        let fanout = fanout.max(1);
        let mut arrival = vec![0 as Nanos; targets.len()];
        let mut done = now;
        for i in 0..targets.len() {
            // Heap layout over [from, targets...]: target i's parent is
            // `from` for the first rank, else targets[i / fanout - 1].
            let (parent, start) = if i / fanout == 0 {
                (from, now)
            } else {
                let p = i / fanout - 1;
                (targets[p], arrival[p])
            };
            // Sibling sends serialize on the parent's link Resource: each
            // reservation queues behind the previous one automatically.
            let (link_done, _deliveries) = self.reserve_link(parent, bytes, start);
            arrival[i] = link_done + self.cost.mc_write_latency;
            done = done.max(arrival[i]);
        }
        done
    }

    /// Writes one word to every attached receive copy (skipping `from`'s
    /// own copy unless the region has loop-back) through a `fanout`-ary
    /// forwarding tree: the data lands exactly as with
    /// [`write`](Self::write) — once, under the region's order lock, so the
    /// global write order is preserved — but virtual time is charged per
    /// hop along the tree via [`charge_tree`](Self::charge_tree) instead of
    /// a single flat broadcast. Returns the time the *last* receiver holds
    /// the word.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is past the end of the region.
    pub fn write_tree(
        &self,
        r: RegionId,
        from: usize,
        offset: usize,
        val: u64,
        fanout: usize,
        now: Nanos,
    ) -> Nanos {
        let region = self.region(r);
        assert!(
            offset < region.words,
            "write past end of region (offset {offset} >= {})",
            region.words
        );
        let targets: Vec<usize> = (0..self.endpoints())
            .filter(|&e| e != from && region.rx[e].get().is_some())
            .collect();
        let done = self.charge_tree(from, &targets, fanout, 8, now);
        let _order = region.order.lock();
        for (e, slot) in region.rx.iter().enumerate() {
            if e == from && !region.loopback {
                continue;
            }
            if let Some(buf) = slot.get() {
                buf[offset].store(val, Ordering::Release);
            }
        }
        done
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }
}

/// A handle to one endpoint's receive buffer of one region.
///
/// Reads and writes through the handle are ordinary local memory accesses on
/// the owning node (used for the home node's master page copies).
pub struct RxBuffer {
    region: std::sync::Arc<Region>,
    endpoint: usize,
}

impl RxBuffer {
    /// Number of words in the buffer.
    pub fn words(&self) -> usize {
        self.region.words
    }

    /// Loads word `offset`.
    #[inline]
    pub fn load(&self, offset: usize) -> u64 {
        // The mapping was verified to exist when the handle was created and
        // attachments are never removed.
        self.region.rx[self.endpoint].get().unwrap()[offset].load(Ordering::Acquire)
    }

    /// Stores `val` at word `offset`.
    #[inline]
    pub fn store(&self, offset: usize, val: u64) {
        self.region.rx[self.endpoint].get().unwrap()[offset].store(val, Ordering::Release);
    }

    /// Loads word `offset` with sequential consistency. Used for the sparse
    /// directory's claim/validate protocol, where the publish-then-check
    /// argument needs a single total order over the entry's change word
    /// (DESIGN.md §12) — plain acquire/release is not enough to forbid both
    /// racers missing each other's claim.
    #[inline]
    pub fn load_sc(&self, offset: usize) -> u64 {
        self.region.rx[self.endpoint].get().unwrap()[offset].load(Ordering::SeqCst)
    }

    /// Atomically adds `val` to word `offset`, returning the previous
    /// value (sequentially consistent — see [`load_sc`](Self::load_sc)).
    /// Host-side RMW on the owning node's copy: the home-shard directory
    /// service operates on its own memory, so this is an ordinary local
    /// atomic, not a Memory Channel transmission.
    #[inline]
    pub fn fetch_add(&self, offset: usize, val: u64) -> u64 {
        self.region.rx[self.endpoint].get().unwrap()[offset].fetch_add(val, Ordering::SeqCst)
    }

    /// Atomically replaces word `offset` with `new` if it currently holds
    /// `current` (sequentially consistent on both paths). Host-side RMW on
    /// the owning node's copy, like [`fetch_add`](Self::fetch_add).
    #[inline]
    pub fn compare_exchange(&self, offset: usize, current: u64, new: u64) -> Result<u64, u64> {
        self.region.rx[self.endpoint].get().unwrap()[offset].compare_exchange(
            current,
            new,
            Ordering::SeqCst,
            Ordering::SeqCst,
        )
    }

    /// Copies the whole buffer into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the region size.
    pub fn copy_to(&self, out: &mut [u64]) {
        assert_eq!(out.len(), self.region.words);
        let buf = self.region.rx[self.endpoint].get().unwrap();
        for (o, w) in out.iter_mut().zip(buf.iter()) {
            *o = w.load(Ordering::Acquire);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc2() -> MemoryChannel {
        // Two endpoints on two physical links.
        TransportConfig::new(vec![0, 1], 2).build_channel()
    }

    #[test]
    fn write_is_delivered_to_attached_receivers_only() {
        let mc = mc2();
        let r = mc.create_region(16, false);
        mc.attach_rx(r, 1);
        mc.write(r, 0, 3, 42, 0);
        assert_eq!(mc.read_local(r, 1, 3), 42);
        assert!(!mc.has_rx(r, 0));
    }

    #[test]
    fn no_loopback_means_writer_copy_is_stale_until_doubled() {
        let mc = mc2();
        let r = mc.create_region(8, false);
        mc.attach_rx(r, 0);
        mc.attach_rx(r, 1);
        mc.write(r, 0, 0, 7, 0);
        assert_eq!(mc.read_local(r, 1, 0), 7, "remote copy updated");
        assert_eq!(
            mc.read_local(r, 0, 0),
            0,
            "own copy NOT updated without loop-back"
        );
        mc.write_local(r, 0, 0, 7);
        assert_eq!(mc.read_local(r, 0, 0), 7, "manual doubling fixes it");
    }

    #[test]
    fn loopback_updates_writer_copy() {
        let mc = mc2();
        let r = mc.create_region(8, true);
        mc.attach_rx(r, 0);
        mc.attach_rx(r, 1);
        mc.write(r, 0, 2, 9, 0);
        assert_eq!(mc.read_local(r, 0, 2), 9);
        assert_eq!(mc.read_local(r, 1, 2), 9);
    }

    #[test]
    fn write_charges_latency_plus_bandwidth() {
        let mc = mc2();
        let c = CostModel::default();
        let r = mc.create_region(2048, false);
        mc.attach_rx(r, 1);
        let vals = vec![1u64; 1024]; // a full 8 KB page
        let done = mc.write_block(r, 0, 0, &vals, 0);
        assert_eq!(done, 8192 * c.mc_link_ns_per_byte + c.mc_write_latency);
        // A second transfer on the same link queues behind the first.
        let done2 = mc.write_block(r, 0, 1024, &vals, 0);
        assert_eq!(done2, 2 * 8192 * c.mc_link_ns_per_byte + c.mc_write_latency);
    }

    #[test]
    fn different_links_do_not_contend() {
        let mc = mc2();
        let r = mc.create_region(2048, false);
        mc.attach_rx(r, 0);
        mc.attach_rx(r, 1);
        let vals = vec![1u64; 1024];
        let a = mc.write_block(r, 0, 0, &vals, 0);
        let b = mc.write_block(r, 1, 0, &vals, 0);
        assert_eq!(a, b, "independent links run in parallel in virtual time");
    }

    #[test]
    fn sparse_write_applies_diff_entries() {
        let mc = mc2();
        let r = mc.create_region(1024, false);
        mc.attach_rx(r, 1);
        mc.write_sparse(r, 0, &[(5, 55), (900, 99)], 0);
        assert_eq!(mc.read_local(r, 1, 5), 55);
        assert_eq!(mc.read_local(r, 1, 900), 99);
        assert_eq!(mc.read_local(r, 1, 6), 0);
    }

    #[test]
    fn late_attachment_does_not_see_history() {
        let mc = mc2();
        let r = mc.create_region(4, false);
        mc.attach_rx(r, 1);
        mc.write(r, 0, 0, 1, 0);
        mc.attach_rx(r, 0);
        assert_eq!(
            mc.read_local(r, 0, 0),
            0,
            "mapping created after the write sees zeroes"
        );
        mc.write(r, 1, 0, 2, 0);
        assert_eq!(mc.read_local(r, 0, 0), 2);
    }

    #[test]
    fn rx_buffer_round_trips() {
        let mc = mc2();
        let r = mc.create_region(4, false);
        mc.attach_rx(r, 0);
        let buf = mc.rx_buffer(r, 0).unwrap();
        buf.store(1, 123);
        assert_eq!(buf.load(1), 123);
        let mut out = [0u64; 4];
        buf.copy_to(&mut out);
        assert_eq!(out, [0, 123, 0, 0]);
        assert!(mc.rx_buffer(r, 1).is_none());
    }

    #[test]
    fn run_write_applies_each_run_as_a_block() {
        let mc = mc2();
        let r = mc.create_region(1024, false);
        mc.attach_rx(r, 1);
        let a = [1u64, 2, 3];
        let b = [9u64, 8];
        let runs = [(4u32, &a[..]), (700u32, &b[..])];
        mc.write_runs(r, 0, runs.iter().copied(), 0);
        assert_eq!(mc.read_local(r, 1, 4), 1);
        assert_eq!(mc.read_local(r, 1, 5), 2);
        assert_eq!(mc.read_local(r, 1, 6), 3);
        assert_eq!(mc.read_local(r, 1, 700), 9);
        assert_eq!(mc.read_local(r, 1, 701), 8);
        assert_eq!(mc.read_local(r, 1, 7), 0, "gap untouched");
        assert_eq!(mc.read_local(r, 1, 699), 0, "gap untouched");
    }

    #[test]
    fn run_write_costs_match_sparse_for_same_word_set() {
        let mc = mc2();
        let r = mc.create_region(1024, false);
        mc.attach_rx(r, 1);
        let sparse_done = mc.write_sparse(r, 0, &[(10, 1), (11, 2), (12, 3)], 0);
        let vals = [1u64, 2, 3];
        let runs = [(10u32, &vals[..])];
        // Fresh start time far past the first transfer so the link is idle.
        let t0 = 10 * sparse_done;
        let runs_done = mc.write_runs(r, 1, runs.iter().copied(), t0);
        assert_eq!(
            runs_done - t0,
            sparse_done,
            "RLE wire cost is representation-independent (12 B/word)"
        );
    }

    #[test]
    fn run_write_respects_loopback_rules() {
        let mc = mc2();
        let r = mc.create_region(16, false);
        mc.attach_rx(r, 0);
        mc.attach_rx(r, 1);
        let vals = [7u64];
        mc.write_runs(r, 0, [(3u32, &vals[..])].iter().copied(), 0);
        assert_eq!(mc.read_local(r, 1, 3), 7, "remote copy updated");
        assert_eq!(
            mc.read_local(r, 0, 3),
            0,
            "own copy stale without loop-back"
        );
    }

    #[test]
    #[should_panic(expected = "past end of region")]
    fn out_of_bounds_run_write_panics() {
        let mc = mc2();
        let r = mc.create_region(8, false);
        mc.attach_rx(r, 1);
        let vals = [1u64, 2, 3];
        mc.write_runs(r, 0, [(6u32, &vals[..])].iter().copied(), 0);
    }

    #[test]
    #[should_panic(expected = "past end of region")]
    fn out_of_bounds_write_panics() {
        let mc = mc2();
        let r = mc.create_region(4, false);
        mc.attach_rx(r, 1);
        mc.write(r, 0, 4, 1, 0);
    }

    // --- fault interposition --------------------------------------------

    use cashmere_faults::{FaultKind, FaultRule};

    fn mc2_with(plan: FaultPlan) -> MemoryChannel {
        TransportConfig::new(vec![0, 1], 2)
            .with_fault_plan(Some(Arc::new(plan)))
            .build_channel()
    }

    #[test]
    fn empty_plan_is_virtual_time_neutral() {
        let plain = mc2();
        let faulty = mc2_with(FaultPlan::new(1));
        for mc in [&plain, &faulty] {
            let r = mc.create_region(16, false);
            mc.attach_rx(r, 1);
        }
        let r = RegionId(0);
        for i in 0..8 {
            let now = i * 137;
            assert_eq!(
                plain.write(r, 0, 0, i, now),
                faulty.write(r, 0, 0, i, now),
                "zero-fault plan must not perturb completion times"
            );
        }
        assert_eq!(
            plain.charge_link(0, 8192, 0),
            faulty.charge_link(0, 8192, 0)
        );
    }

    #[test]
    fn dropped_write_is_retransmitted_and_costs_double() {
        let c = CostModel::default();
        let mc = mc2_with(FaultPlan::new(2).with_rule(FaultRule::new(FaultKind::DropWrite, 1.0)));
        let r = mc.create_region(8, false);
        mc.attach_rx(r, 1);
        let done = mc.write(r, 0, 3, 42, 0);
        // Lost attempt: wire + latency; retransmission: wire + latency.
        assert_eq!(done, 2 * (8 * c.mc_link_ns_per_byte + c.mc_write_latency));
        assert_eq!(mc.read_local(r, 1, 3), 42, "the retransmission delivers");
    }

    #[test]
    fn duplicated_write_charges_twice_but_state_is_idempotent() {
        let c = CostModel::default();
        let mc =
            mc2_with(FaultPlan::new(3).with_rule(FaultRule::new(FaultKind::DuplicateWrite, 1.0)));
        let r = mc.create_region(8, false);
        mc.attach_rx(r, 1);
        let done = mc.write(r, 0, 0, 7, 0);
        assert_eq!(done, 2 * 8 * c.mc_link_ns_per_byte + c.mc_write_latency);
        assert_eq!(mc.read_local(r, 1, 0), 7);
    }

    #[test]
    fn delayed_write_defers_completion_only() {
        let c = CostModel::default();
        let mc = mc2_with(
            FaultPlan::new(4)
                .with_rule(FaultRule::new(FaultKind::DelayWrite, 1.0).with_param_ns(5_000)),
        );
        let r = mc.create_region(8, false);
        mc.attach_rx(r, 1);
        let done = mc.write(r, 0, 0, 9, 0);
        assert_eq!(done, 8 * c.mc_link_ns_per_byte + c.mc_write_latency + 5_000);
        assert_eq!(mc.read_local(r, 1, 0), 9, "delivered, just late");
    }

    #[test]
    fn outage_stalls_transmission_to_epoch_end() {
        let c = CostModel::default();
        let plan = FaultPlan::new(5)
            .with_rule(FaultRule::new(FaultKind::LinkOutage, 1.0).with_param_ns(10_000));
        let mc = mc2_with(plan);
        let r = mc.create_region(8, false);
        mc.attach_rx(r, 1);
        let done = mc.write(r, 0, 0, 1, 2_500);
        assert_eq!(
            done,
            10_000 + 8 * c.mc_link_ns_per_byte + c.mc_write_latency,
            "write waits out the dark epoch"
        );
        assert_eq!(mc.read_local(r, 1, 0), 1);
    }

    #[test]
    fn reserve_is_wire_time_without_the_write_latency() {
        let c = CostModel::default();
        let mc = mc2();
        assert_eq!(mc.reserve(0, 8192, 0), 8192 * c.mc_link_ns_per_byte);
        // charge_link = the same reservation + the one-sided write latency
        // (endpoint 1 so the link is idle).
        assert_eq!(
            mc.charge_link(1, 8192, 0),
            8192 * c.mc_link_ns_per_byte + c.mc_write_latency
        );
    }

    #[test]
    fn reserve_sees_the_same_faults() {
        let c = CostModel::default();
        let mc = mc2_with(FaultPlan::new(7).with_rule(FaultRule::new(FaultKind::DropWrite, 1.0)));
        // Lost attempt: wire + latency window; retransmission: wire.
        assert_eq!(
            mc.reserve(0, 8192, 0),
            2 * 8192 * c.mc_link_ns_per_byte + c.mc_write_latency
        );
        assert!(mc.faults.as_ref().unwrap().stats().total() > 0);
    }

    #[test]
    fn charge_link_sees_the_same_faults() {
        let c = CostModel::default();
        let mc = mc2_with(FaultPlan::new(6).with_rule(FaultRule::new(FaultKind::DropWrite, 1.0)));
        let done = mc.charge_link(0, 8192, 0);
        assert_eq!(
            done,
            2 * (8192 * c.mc_link_ns_per_byte + c.mc_write_latency)
        );
        assert!(mc.faults.as_ref().unwrap().stats().total() > 0);
    }

    // --- observability --------------------------------------------------

    #[test]
    fn link_metrics_count_every_reservation_charge_free() {
        let metrics = Arc::new(LinkMetrics::new(2));
        let mc = TransportConfig::new(vec![0, 1], 2)
            .with_metrics(Some(Arc::clone(&metrics)))
            .build_channel();
        let plain = mc2();
        let r = mc.create_region(8, false);
        mc.attach_rx(r, 1);
        let rp = plain.create_region(8, false);
        plain.attach_rx(rp, 1);
        // One remote word write + one bulk charge, from different endpoints.
        let t1 = mc.write(r, 0, 0, 9, 0);
        let t2 = mc.charge_link(1, 4096, 0);
        assert_eq!(t1, plain.write(rp, 0, 0, 9, 0), "counting is charge-free");
        assert_eq!(t2, plain.charge_link(1, 4096, 0));
        let snap = metrics.snapshot();
        assert_eq!(snap[0].messages, 1);
        assert_eq!(snap[0].bytes, 8, "one 8-byte word");
        assert_eq!(snap[1].messages, 1);
        assert_eq!(snap[1].bytes, 4096);
    }

    // --- lock-free region table -----------------------------------------

    #[test]
    fn region_table_locate_is_a_bijection_over_buckets() {
        // Bucket i holds BUCKET0 << i slots; ids map in order with no gaps.
        let mut expected = 0usize..;
        for bucket in 0..6 {
            for slot in 0..(BUCKET0 << bucket) {
                let id = expected.next().unwrap();
                assert_eq!(RegionTable::locate(id), (bucket, slot), "id {id}");
            }
        }
    }

    #[test]
    fn region_table_survives_growth_across_buckets() {
        // Enough regions to fill several buckets (64 + 128 + 256 + …).
        let mc = mc2();
        let n = 600;
        let ids: Vec<RegionId> = (0..n).map(|_| mc.create_region(4, false)).collect();
        for (i, r) in ids.iter().enumerate() {
            assert_eq!(r.0, i, "ids are dense and in creation order");
            mc.attach_rx(*r, 1);
            mc.write(*r, 0, 0, i as u64 + 1, 0);
        }
        for (i, r) in ids.iter().enumerate() {
            assert_eq!(mc.read_local(*r, 1, 0), i as u64 + 1);
        }
    }

    #[test]
    fn region_table_lookup_races_creation() {
        // Readers resolve every id below a published high-water mark while a
        // creator keeps appending past bucket boundaries; any id at or below
        // the mark must resolve to its fully initialized region.
        let mc = Arc::new(mc2());
        let published = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let creator = {
                let mc = Arc::clone(&mc);
                let published = Arc::clone(&published);
                s.spawn(move || {
                    for _ in 0..300 {
                        let r = mc.create_region(1, false);
                        mc.attach_rx(r, 0);
                        mc.write_local(r, 0, 0, r.0 as u64 + 1);
                        published.store(r.0 + 1, Ordering::Release);
                    }
                })
            };
            for _ in 0..2 {
                let mc = Arc::clone(&mc);
                let published = Arc::clone(&published);
                s.spawn(move || {
                    for i in 0..3000usize {
                        let hw = published.load(Ordering::Acquire);
                        if hw == 0 {
                            continue;
                        }
                        let id = i % hw;
                        assert_eq!(
                            mc.read_local(RegionId(id), 0, 0),
                            id as u64 + 1,
                            "published region must be fully initialized"
                        );
                    }
                });
            }
            creator.join().unwrap();
        });
    }

    // --- tree broadcast --------------------------------------------------

    fn mc_n(n: usize) -> MemoryChannel {
        // n endpoints, each on its own physical link.
        TransportConfig::new((0..n).collect(), n).build_channel()
    }

    #[test]
    fn write_tree_delivers_to_every_attached_copy_once() {
        let mc = mc_n(9);
        let r = mc.create_region(4, false);
        for e in 0..9 {
            mc.attach_rx(r, e);
        }
        mc.write_tree(r, 0, 2, 77, TREE_FANOUT, 0);
        for e in 1..9 {
            assert_eq!(mc.read_local(r, e, 2), 77, "endpoint {e}");
        }
        assert_eq!(mc.read_local(r, 0, 2), 0, "no loop-back: own copy stale");
    }

    #[test]
    fn single_target_tree_costs_exactly_one_hop() {
        let c = CostModel::default();
        let mc = mc_n(2);
        let done = mc.charge_tree(0, &[1], TREE_FANOUT, 12, 0);
        assert_eq!(
            done,
            12 * c.mc_link_ns_per_byte + c.mc_write_latency,
            "degenerate tree = one link reservation + latency (== charge_link)"
        );
        assert_eq!(
            mc.charge_tree(0, &[], TREE_FANOUT, 12, 5),
            5,
            "no targets, no charge"
        );
    }

    #[test]
    fn tree_fanout_caps_sender_side_serialization() {
        // 8 targets, fanout 4, page-sized payload: the root serializes only
        // 4 sends on its own link; targets 4..7 are forwarded by target 0 in
        // parallel with the root's later sends. Exact schedule: the root's
        // children arrive at i*hop + latency (i = 1..=4); target 0 (arrived
        // at hop + latency) forwards its 4 children serially, so the last
        // one lands at hop + latency + 4*hop + latency.
        let c = CostModel::default();
        let bytes = 8192u64; // one page
        let hop = bytes * c.mc_link_ns_per_byte;
        let mc = mc_n(9);
        let targets: Vec<usize> = (1..9).collect();
        let tree = mc.charge_tree(0, &targets, 4, bytes, 0);
        assert_eq!(tree, 5 * hop + 2 * c.mc_write_latency);
        // Flat unicast serializes all 8 sends on the root's link.
        let mc2 = mc_n(9);
        let mut flat = 0;
        for _ in 0..8 {
            flat = flat.max(mc2.charge_link(0, bytes, 0));
        }
        assert_eq!(flat, 8 * hop + c.mc_write_latency);
        assert!(
            tree < flat,
            "tree beats flat unicast once sender occupancy dominates latency"
        );
    }

    #[test]
    fn tree_hops_are_individually_fault_interposed() {
        // Every hop goes through reserve_link: with a 100% drop rule, each
        // of the hops on a root→child path is retransmitted, and the fault
        // counter sees one verdict per hop.
        let c = CostModel::default();
        let plan = FaultPlan::new(9).with_rule(FaultRule::new(FaultKind::DropWrite, 1.0));
        let mc = TransportConfig::new((0..6).collect(), 6)
            .with_fault_plan(Some(Arc::new(plan)))
            .build_channel();
        let r = mc.create_region(2, false);
        for e in 0..6 {
            mc.attach_rx(r, e);
        }
        let done = mc.write_tree(r, 0, 0, 5, 4, 0);
        for e in 1..6 {
            assert_eq!(mc.read_local(r, e, 0), 5, "retransmissions deliver");
        }
        assert_eq!(
            mc.faults.as_ref().unwrap().stats().total(),
            5,
            "one fault verdict per tree hop (5 targets = 5 hops)"
        );
        // Every hop pays its own drop-retransmit penalty, so the all-drops
        // schedule is strictly later than the fault-free one.
        let clean = mc_n(6);
        let rc = clean.create_region(2, false);
        for e in 0..6 {
            clean.attach_rx(rc, e);
        }
        let clean_done = clean.write_tree(rc, 0, 0, 5, 4, 0);
        assert!(
            done >= clean_done + 8 * c.mc_link_ns_per_byte + c.mc_write_latency,
            "dropped hops cost retransmission time (done={done}, clean={clean_done})"
        );
    }
}
