//! Chrome `trace_event` export and schema lint.
//!
//! Spans export as complete (`"ph":"X"`) events in the [Trace Event
//! Format], one track per (node, proc): `pid` is the protocol node, `tid`
//! the global processor id, timestamps are virtual microseconds. The
//! resulting file loads directly in `chrome://tracing` or Perfetto.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! The lint re-parses an exported document and checks the subset of the
//! schema those viewers rely on; the `CHECK_OBS` gate runs it on a real
//! export so a formatting regression fails CI instead of silently producing
//! a file the viewer rejects.

use std::fmt::Write as _;

use crate::json::{self, push_str_escaped, Value};
use crate::span::Span;

/// Renders spans as a Chrome trace_event JSON document.
///
/// `labels` supplies optional `process_name` metadata per node (pass `&[]`
/// to skip). Events are emitted in the given order; viewers sort by
/// timestamp themselves.
#[must_use]
pub fn export(spans: &[Span], labels: &[String]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (node, label) in labels.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\"args\":{{\"name\":"
        );
        push_str_escaped(&mut out, label);
        out.push_str("}}");
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
            s.kind.label(),
            micros(s.begin),
            micros(s.dur()),
            s.node,
            s.proc,
        );
        if s.page >= 0 {
            let _ = write!(out, ",\"args\":{{\"page\":{}}}", s.page);
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Virtual nanoseconds to the format's microsecond timestamps, exactly
/// (three decimal places, no float formatting involved).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Validates an exported trace document against the viewer-relevant schema
/// subset. Returns the number of duration events on success.
///
/// Checked: top level is an object with a `traceEvents` array; every event
/// is an object with a string `name` and a string `ph`; `"X"` events carry
/// finite, non-negative numeric `ts`/`dur` and integer `pid`/`tid`.
pub fn lint(doc: &str) -> Result<usize, String> {
    let v = json::parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut durations = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string name"))?;
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing string ph"))?;
        if ph != "X" {
            continue;
        }
        for key in ["ts", "dur"] {
            let n = ev
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {i} ({name}): missing numeric {key}"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("event {i} ({name}): {key}={n} out of range"));
            }
        }
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event {i} ({name}): missing integer {key}"))?;
        }
        durations += 1;
    }
    Ok(durations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn span(kind: SpanKind, begin: u64, end: u64, page: i64) -> Span {
        Span {
            kind,
            node: 1,
            proc: 3,
            begin,
            end,
            page,
        }
    }

    #[test]
    fn export_passes_its_own_lint() {
        let spans = [
            span(SpanKind::Lock, 1_000, 12_345, 4),
            span(SpanKind::Fault, 2_000, 2_000, -1),
        ];
        let doc = export(&spans, &[String::from("node 0"), String::from("node 1")]);
        assert_eq!(lint(&doc).unwrap(), 2);
        // Timestamps are exact decimal microseconds.
        assert!(doc.contains("\"ts\":1.000"), "{doc}");
        assert!(doc.contains("\"dur\":11.345"), "{doc}");
        assert!(doc.contains("\"args\":{\"page\":4}"), "{doc}");
    }

    #[test]
    fn empty_trace_is_valid() {
        let doc = export(&[], &[]);
        assert_eq!(lint(&doc).unwrap(), 0);
    }

    #[test]
    fn lint_rejects_schema_violations() {
        assert!(lint("not json").is_err());
        assert!(lint("{}").is_err());
        assert!(lint("{\"traceEvents\":{}}").is_err());
        assert!(lint("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(
            lint("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":-1,\"dur\":0,\"pid\":0,\"tid\":0}]}")
                .is_err()
        );
        assert!(
            lint("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"dur\":0,\"pid\":0.5,\"tid\":0}]}")
                .is_err()
        );
    }
}
