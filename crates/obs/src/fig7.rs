//! Figure-7 time-breakdown accounting (task / sync / protocol / wait /
//! message), derived from the simulator's Figure-6 bins.
//!
//! The paper's Figure 7 splits each application's execution into five
//! categories. The simulator already charges every nanosecond into the
//! Figure-6 bins (`User`, `Protocol`, `Polling`, `Comm & Wait`, `Write
//! Doubling`); the only information missing is whether a `Comm & Wait`
//! nanosecond was spent inside a synchronization operation (Figure 7's
//! "sync") or stalled on the memory system (Figure 7's "wait"). The span
//! stack supplies that bit: [`crate::ProcObs`] snapshots the Figure-6 bins
//! at every span boundary and attributes each delta here, so the five
//! Figure-7 categories sum to *exactly* the processor's total virtual time
//! — an integer identity the bench gate asserts per cell.

use cashmere_sim::{Nanos, TimeCategory};

/// Figure 7's five execution-time categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig7Cat {
    /// Application work (Figure 6 `User`).
    Task,
    /// Stalls inside lock/barrier/flag operations (`Comm & Wait` charged
    /// while a sync span is open).
    Sync,
    /// Protocol handler execution (Figure 6 `Protocol`).
    Protocol,
    /// Memory-system stalls outside synchronization (`Comm & Wait` charged
    /// with no sync span open).
    Wait,
    /// Message-passing overhead: polling plus write doubling.
    Message,
}

impl Fig7Cat {
    /// All categories, in export order.
    pub const ALL: [Fig7Cat; 5] = [
        Fig7Cat::Task,
        Fig7Cat::Sync,
        Fig7Cat::Protocol,
        Fig7Cat::Wait,
        Fig7Cat::Message,
    ];

    /// Stable array index.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Fig7Cat::Task => 0,
            Fig7Cat::Sync => 1,
            Fig7Cat::Protocol => 2,
            Fig7Cat::Wait => 3,
            Fig7Cat::Message => 4,
        }
    }

    /// Lower-case label used in JSON exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Fig7Cat::Task => "task",
            Fig7Cat::Sync => "sync",
            Fig7Cat::Protocol => "protocol",
            Fig7Cat::Wait => "wait",
            Fig7Cat::Message => "message",
        }
    }

    /// Parses a [`Self::label`] back to the category.
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        Fig7Cat::ALL.into_iter().find(|c| c.label() == s)
    }

    /// Maps a Figure-6 bin to its Figure-7 category; `in_sync` resolves the
    /// `Comm & Wait` ambiguity.
    #[must_use]
    pub fn from_fig6(cat: TimeCategory, in_sync: bool) -> Self {
        match cat {
            TimeCategory::User => Fig7Cat::Task,
            TimeCategory::Protocol => Fig7Cat::Protocol,
            TimeCategory::Polling | TimeCategory::WriteDoubling => Fig7Cat::Message,
            TimeCategory::CommWait => {
                if in_sync {
                    Fig7Cat::Sync
                } else {
                    Fig7Cat::Wait
                }
            }
        }
    }
}

/// Virtual nanoseconds per Figure-7 category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fig7Breakdown {
    by_cat: [Nanos; 5],
}

impl Fig7Breakdown {
    /// Adds `ns` to `cat`.
    #[inline]
    pub fn add(&mut self, cat: Fig7Cat, ns: Nanos) {
        self.by_cat[cat.index()] += ns;
    }

    /// Nanoseconds attributed to `cat`.
    #[must_use]
    pub fn get(&self, cat: Fig7Cat) -> Nanos {
        self.by_cat[cat.index()]
    }

    /// Total across all categories; equals the merged processors' total
    /// virtual time when produced by [`crate::ProcObs`].
    #[must_use]
    pub fn total(&self) -> Nanos {
        self.by_cat.iter().sum()
    }

    /// Folds another breakdown into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.by_cat.iter_mut().zip(other.by_cat.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_mapping_matches_the_paper() {
        assert_eq!(Fig7Cat::from_fig6(TimeCategory::User, false), Fig7Cat::Task);
        assert_eq!(
            Fig7Cat::from_fig6(TimeCategory::Protocol, true),
            Fig7Cat::Protocol
        );
        assert_eq!(
            Fig7Cat::from_fig6(TimeCategory::Polling, false),
            Fig7Cat::Message
        );
        assert_eq!(
            Fig7Cat::from_fig6(TimeCategory::WriteDoubling, true),
            Fig7Cat::Message
        );
        assert_eq!(
            Fig7Cat::from_fig6(TimeCategory::CommWait, true),
            Fig7Cat::Sync
        );
        assert_eq!(
            Fig7Cat::from_fig6(TimeCategory::CommWait, false),
            Fig7Cat::Wait
        );
    }

    #[test]
    fn labels_round_trip_and_totals_add() {
        let mut b = Fig7Breakdown::default();
        for (i, c) in Fig7Cat::ALL.into_iter().enumerate() {
            assert_eq!(Fig7Cat::from_label(c.label()), Some(c));
            assert_eq!(c.index(), i);
            b.add(c, (i as u64 + 1) * 10);
        }
        assert_eq!(b.total(), 150);
        let mut m = b;
        m.merge(&b);
        assert_eq!(m.total(), 300);
        assert_eq!(m.get(Fig7Cat::Message), 100);
    }
}
