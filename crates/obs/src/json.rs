//! A minimal JSON reader/writer.
//!
//! The workspace is offline (no serde); exports elsewhere in the tree are
//! hand-formatted strings. Importing them back — for `Report` round-trips
//! and the Chrome-trace schema lint — needs an actual parser, so this module
//! carries a small recursive-descent one plus the escaping helpers the
//! writers share. It supports the full JSON grammar except `\u` surrogate
//! pairs (escapes decode to the BMP scalar, unpaired surrogates are
//! replaced).

use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep both integer and float views: JSON has
/// one number type but the exporters rely on exact `u64`/`i64` counters.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; lossless for integers up to 2^63.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (must be exactly representable).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(63) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer (must be exactly representable).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(62) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_i64(), Some(-3));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}f λ";
        let mut doc = String::from("{\"k\":");
        push_str_escaped(&mut doc, original);
        doc.push('}');
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn numbers_keep_integer_precision() {
        let v = parse("[9007199254740992, 1e3, 0.5]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(9007199254740992));
        assert_eq!(a[1].as_u64(), Some(1000));
        assert_eq!(a[2].as_f64(), Some(0.5));
        assert_eq!(a[2].as_u64(), None);
    }
}
