//! Protocol observability for the Cashmere-2L reproduction.
//!
//! This crate is the measurement layer the evaluation sections of the paper
//! stand on: a per-processor virtual-time **span stack** ([`ProcObs`],
//! [`Span`]), a typed **metrics registry** ([`MetricsRegistry`],
//! [`VtHistogram`], [`LinkMetrics`]), **Figure-7 accounting**
//! ([`Fig7Breakdown`]: task / sync / protocol / wait / message derived from
//! the simulator's Figure-6 bins), and a **Chrome `trace_event` exporter**
//! ([`chrome`]) with a schema lint.
//!
//! Two properties are load-bearing and tested end to end by the bench gates:
//!
//! * **Charge-free**: nothing here ever charges a [`ProcClock`] — hooks only
//!   read clocks, so enabling observability cannot move a single virtual
//!   nanosecond and the deterministic goldens stay byte-identical.
//! * **Free when off**: the engine stores `Option<Box<ProcObs>>` per
//!   processor (`None` unless `ClusterConfig::with_obs`), so the disabled
//!   cost is one discriminant test per hook site and zero allocations.
//!
//! Layering: this crate depends only on `cashmere-sim`, so both `memchan`
//! (link traffic) and `core` (engine hooks) can feed it without a cycle.

pub mod chrome;
pub mod fig7;
pub mod json;
pub mod metrics;
pub mod span;

pub use fig7::{Fig7Breakdown, Fig7Cat};
pub use metrics::{LinkCounts, LinkMetrics, MetricsRegistry, VtHistogram, HIST_BINS};
pub use span::{ProcObs, Span, SpanKind, MAX_SPANS};

use std::fmt::Write as _;

use cashmere_sim::Nanos;

use json::{push_str_escaped, Value};

/// Cluster-wide observability results: every processor's [`ProcObs`] merged,
/// plus the Memory Channel's per-link traffic.
///
/// Carried on `Report::obs` when observability was enabled; serializes to
/// JSON (and back) with the rest of the report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Number of processors merged in.
    pub procs: u32,
    /// Figure-7 time breakdown summed over processors; its
    /// [`Fig7Breakdown::total`] equals the run's total virtual time.
    pub fig7: Fig7Breakdown,
    /// Protocol-event counters and latency histograms, cluster-wide.
    pub metrics: MetricsRegistry,
    /// Fault count per heap page, summed over processors.
    pub page_heat: Vec<u64>,
    /// Memory Channel traffic per link.
    pub links: Vec<LinkCounts>,
    /// Every finished span (bounded per processor by [`MAX_SPANS`]).
    pub spans: Vec<Span>,
    /// Spans discarded because a processor hit [`MAX_SPANS`].
    pub spans_dropped: u64,
    /// Spans force-closed at processor exit.
    pub spans_unclosed: u64,
    /// Begin/end kind mismatches observed.
    pub spans_mismatched: u64,
}

impl ObsReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished processor's state in. Call after
    /// [`ProcObs::finish`].
    pub fn merge_proc(&mut self, p: &ProcObs) {
        self.procs += 1;
        self.fig7.merge(p.fig7());
        self.metrics.merge(&p.metrics);
        if self.page_heat.len() < p.page_heat().len() {
            self.page_heat.resize(p.page_heat().len(), 0);
        }
        for (acc, h) in self.page_heat.iter_mut().zip(p.page_heat().iter()) {
            *acc += u64::from(*h);
        }
        self.spans.extend_from_slice(p.spans());
        let (dropped, unclosed, mismatched) = p.anomalies();
        self.spans_dropped += dropped;
        self.spans_unclosed += unclosed;
        self.spans_mismatched += mismatched;
    }

    /// Pages sorted by heat (descending), hottest first, zero-heat pages
    /// omitted; at most `top` entries.
    #[must_use]
    pub fn hot_pages(&self, top: usize) -> Vec<(usize, u64)> {
        let mut pages: Vec<(usize, u64)> = self
            .page_heat
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h > 0)
            .map(|(i, &h)| (i, h))
            .collect();
        pages.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pages.truncate(top);
        pages
    }

    /// Serializes to a single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.spans.len() * 48);
        let _ = write!(out, "{{\"procs\":{}", self.procs);
        out.push_str(",\"fig7\":{");
        for (i, c) in Fig7Cat::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.label(), self.fig7.get(c));
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.metrics.counters().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"hist\":{");
        let hists = [
            ("fetch_rtt", &self.metrics.fetch_rtt),
            ("break_rtt", &self.metrics.break_rtt),
            ("fault_ns", &self.metrics.fault_ns),
            ("sojourn_ns", &self.metrics.sojourn_ns),
        ];
        for (i, (name, h)) in hists.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"bins\":[",
                h.count, h.sum, h.max
            );
            let mut first = true;
            for (bin, &n) in h.bins.iter().enumerate() {
                if n > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "[{bin},{n}]");
                }
            }
            out.push_str("]}");
        }
        out.push_str("},\"page_heat\":[");
        for (i, h) in self.page_heat.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{h}");
        }
        out.push_str("],\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", l.messages, l.bytes);
        }
        out.push_str("],\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            push_str_escaped(&mut out, s.kind.label());
            let _ = write!(
                out,
                ",{},{},{},{},{}]",
                s.node, s.proc, s.begin, s.end, s.page
            );
        }
        let _ = write!(
            out,
            "],\"spans_dropped\":{},\"spans_unclosed\":{},\"spans_mismatched\":{}}}",
            self.spans_dropped, self.spans_unclosed, self.spans_mismatched
        );
        out
    }

    /// Deserializes a value produced by [`Self::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let mut r = ObsReport::new();
        r.procs = u64_field(v, "procs")? as u32;
        let fig7 = v.get("fig7").ok_or("missing fig7")?;
        for c in Fig7Cat::ALL {
            r.fig7.add(c, u64_field(fig7, c.label())?);
        }
        if let Some(Value::Obj(fields)) = v.get("counters") {
            for (name, val) in fields {
                r.metrics
                    .set_counter(name, val.as_u64().ok_or("bad counter")?);
            }
        }
        if let Some(h) = v.get("hist") {
            for (name, slot) in [
                ("fetch_rtt", &mut r.metrics.fetch_rtt),
                ("break_rtt", &mut r.metrics.break_rtt),
                ("fault_ns", &mut r.metrics.fault_ns),
                ("sojourn_ns", &mut r.metrics.sojourn_ns),
            ] {
                // Absent histograms (reports written by older builds) stay
                // empty rather than failing the parse.
                let Some(hv) = h.get(name) else { continue };
                slot.count = u64_field(hv, "count")?;
                slot.sum = u64_field(hv, "sum")?;
                slot.max = u64_field(hv, "max")?;
                for pair in hv.get("bins").and_then(Value::as_arr).unwrap_or(&[]) {
                    let p = pair.as_arr().ok_or("bad hist bin")?;
                    let bin = p[0].as_u64().ok_or("bad hist bin")? as usize;
                    if bin < HIST_BINS {
                        slot.bins[bin] = p[1].as_u64().ok_or("bad hist bin")?;
                    }
                }
            }
        }
        for h in v.get("page_heat").and_then(Value::as_arr).unwrap_or(&[]) {
            r.page_heat.push(h.as_u64().ok_or("bad page_heat")?);
        }
        for l in v.get("links").and_then(Value::as_arr).unwrap_or(&[]) {
            let p = l.as_arr().ok_or("bad link entry")?;
            r.links.push(LinkCounts {
                messages: p[0].as_u64().ok_or("bad link entry")?,
                bytes: p[1].as_u64().ok_or("bad link entry")?,
            });
        }
        for s in v.get("spans").and_then(Value::as_arr).unwrap_or(&[]) {
            let p = s.as_arr().ok_or("bad span entry")?;
            if p.len() != 6 {
                return Err("bad span entry".into());
            }
            let kind = p[0]
                .as_str()
                .and_then(SpanKind::from_label)
                .ok_or("bad span kind")?;
            r.spans.push(Span {
                kind,
                node: p[1].as_u64().ok_or("bad span")? as u32,
                proc: p[2].as_u64().ok_or("bad span")? as u32,
                begin: p[3].as_u64().ok_or("bad span")? as Nanos,
                end: p[4].as_u64().ok_or("bad span")? as Nanos,
                page: p[5].as_i64().ok_or("bad span")?,
            });
        }
        r.spans_dropped = u64_field(v, "spans_dropped")?;
        r.spans_unclosed = u64_field(v, "spans_unclosed")?;
        r.spans_mismatched = u64_field(v, "spans_mismatched")?;
        Ok(r)
    }
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_sim::{ProcClock, TimeCategory};

    fn sample_report() -> ObsReport {
        let mut clock = ProcClock::new();
        let mut p = ProcObs::new(0, 0, 3);
        clock.charge(TimeCategory::User, 50);
        p.begin(SpanKind::Barrier, 1, &clock);
        clock.charge(TimeCategory::CommWait, 20);
        p.end(SpanKind::Barrier, &clock);
        p.heat(1);
        p.metrics.fetches = 2;
        p.metrics.fetch_rtt.record(1234);
        p.finish(&clock);
        let mut r = ObsReport::new();
        r.merge_proc(&p);
        r.links = vec![
            LinkCounts {
                messages: 5,
                bytes: 4096,
            },
            LinkCounts::default(),
        ];
        r
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample_report();
        let doc = r.to_json();
        let v = json::parse(&doc).expect("self-produced JSON parses");
        let back = ObsReport::from_json(&v).expect("self-produced JSON deserializes");
        assert_eq!(back, r);
    }

    #[test]
    fn merge_accumulates_across_procs() {
        let clock = ProcClock::new();
        let mut a = ProcObs::new(0, 0, 2);
        a.heat(0);
        a.finish(&clock);
        let mut b = ProcObs::new(1, 3, 4);
        b.heat(0);
        b.heat(3);
        b.metrics.interrupts = 2;
        b.finish(&clock);
        let mut r = ObsReport::new();
        r.merge_proc(&a);
        r.merge_proc(&b);
        assert_eq!(r.procs, 2);
        assert_eq!(r.page_heat, vec![2, 0, 0, 1]);
        assert_eq!(r.metrics.interrupts, 2);
        assert_eq!(r.hot_pages(10), vec![(0, 2), (3, 1)]);
        assert_eq!(r.hot_pages(1), vec![(0, 2)]);
    }
}
