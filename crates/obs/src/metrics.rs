//! The typed metrics registry: protocol-event counters, virtual-time
//! latency histograms, per-page heat, and per-link traffic.
//!
//! Everything here is plain data owned by one processor (no atomics, no
//! locking) except [`LinkMetrics`], which the Memory Channel adapter shares
//! across processors and therefore counts with relaxed atomics. Recording
//! into a registry never allocates: histograms have fixed log2 bins and
//! counters are plain integers, so hooks on the engine hot path stay
//! allocation-free.

use std::sync::atomic::{AtomicU64, Ordering};

use cashmere_sim::Nanos;

/// Number of log2-spaced bins in a [`VtHistogram`]. Bin `i` holds samples in
/// `[2^(i-1), 2^i)` nanoseconds (bin 0 holds zero-duration samples), so 40
/// bins cover everything up to ~9 virtual minutes.
pub const HIST_BINS: usize = 40;

/// A fixed-size log2 histogram of virtual-time durations.
///
/// Recording is allocation-free and O(1); the exporters turn the bins into
/// human-readable latency tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VtHistogram {
    /// Sample counts per log2 bin.
    pub bins: [u64; HIST_BINS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples, for exact means.
    pub sum: Nanos,
    /// Largest sample seen.
    pub max: Nanos,
}

impl Default for VtHistogram {
    fn default() -> Self {
        Self {
            bins: [0; HIST_BINS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl VtHistogram {
    /// Records one duration sample.
    #[inline]
    pub fn record(&mut self, ns: Nanos) {
        self.bins[Self::bin_of(ns)] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// The bin index a sample of `ns` lands in.
    #[must_use]
    pub fn bin_of(ns: Nanos) -> usize {
        let bits = Nanos::BITS as usize - ns.leading_zeros() as usize;
        bits.min(HIST_BINS - 1)
    }

    /// Inclusive lower edge of bin `i` in nanoseconds.
    #[must_use]
    pub fn bin_floor(i: usize) -> Nanos {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Mean sample in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` (in `0.0..=1.0`) from the log2 bins: the
    /// inclusive lower edge of the bin holding the sample of that rank,
    /// clamped to the exact [`max`](Self::max). Returns 0 when empty. With
    /// log2 bins the estimate is within 2× of the true value, which is the
    /// resolution the latency tables report anyway.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bin_floor(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Per-processor protocol-event counters plus round-trip latency histograms.
///
/// The counter set mirrors the operations §3.3 of the paper attributes costs
/// to; each is bumped at the same site as the corresponding `sim::Stats`
/// counter, so `Report::counters` and `Report::obs` agree by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    /// Page faults taken on reads.
    pub read_faults: u64,
    /// Page faults taken on writes.
    pub write_faults: u64,
    /// Twins created (fault-time and break-time).
    pub twin_creations: u64,
    /// Diffs flushed to a master copy.
    pub diffs_sent: u64,
    /// Incoming diffs applied to a local frame.
    pub diffs_applied: u64,
    /// Write notices posted at release.
    pub write_notices: u64,
    /// Directory-word updates written to the Memory Channel.
    pub directory_updates: u64,
    /// Remote requests that interrupt another host (page fetches from a
    /// remote home plus exclusive breaks).
    pub interrupts: u64,
    /// Page fetches (local and remote).
    pub fetches: u64,
    /// Exclusive-mode breaks initiated.
    pub breaks: u64,
    /// Memory Channel lock acquisitions (home-node relocation).
    pub mc_lock_acquires: u64,
    /// Fetch round-trip virtual latency.
    pub fetch_rtt: VtHistogram,
    /// Exclusive-break round-trip virtual latency.
    pub break_rtt: VtHistogram,
    /// End-to-end page-fault service latency.
    pub fault_ns: VtHistogram,
    /// Per-request sojourn (arrival-to-completion) latency, recorded by the
    /// trace-driven service applications (DESIGN.md §13) via
    /// `Proc::record_sojourn`. Empty for the scientific suite.
    pub sojourn_ns: VtHistogram,
}

impl MetricsRegistry {
    /// Folds another registry into this one.
    pub fn merge(&mut self, other: &Self) {
        self.read_faults += other.read_faults;
        self.write_faults += other.write_faults;
        self.twin_creations += other.twin_creations;
        self.diffs_sent += other.diffs_sent;
        self.diffs_applied += other.diffs_applied;
        self.write_notices += other.write_notices;
        self.directory_updates += other.directory_updates;
        self.interrupts += other.interrupts;
        self.fetches += other.fetches;
        self.breaks += other.breaks;
        self.mc_lock_acquires += other.mc_lock_acquires;
        self.fetch_rtt.merge(&other.fetch_rtt);
        self.break_rtt.merge(&other.break_rtt);
        self.fault_ns.merge(&other.fault_ns);
        self.sojourn_ns.merge(&other.sojourn_ns);
    }

    /// Labelled snapshot of every scalar counter, for reports and JSON.
    #[must_use]
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("read_faults", self.read_faults),
            ("write_faults", self.write_faults),
            ("twin_creations", self.twin_creations),
            ("diffs_sent", self.diffs_sent),
            ("diffs_applied", self.diffs_applied),
            ("write_notices", self.write_notices),
            ("directory_updates", self.directory_updates),
            ("interrupts", self.interrupts),
            ("fetches", self.fetches),
            ("breaks", self.breaks),
            ("mc_lock_acquires", self.mc_lock_acquires),
        ]
    }

    /// Sets a counter by its [`Self::counters`] label; ignores unknown names
    /// (forward compatibility for reports written by newer builds).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        match name {
            "read_faults" => self.read_faults = v,
            "write_faults" => self.write_faults = v,
            "twin_creations" => self.twin_creations = v,
            "diffs_sent" => self.diffs_sent = v,
            "diffs_applied" => self.diffs_applied = v,
            "write_notices" => self.write_notices = v,
            "directory_updates" => self.directory_updates = v,
            "interrupts" => self.interrupts = v,
            "fetches" => self.fetches = v,
            "breaks" => self.breaks = v,
            "mc_lock_acquires" => self.mc_lock_acquires = v,
            _ => {}
        }
    }
}

/// Shared per-link traffic counters for the Memory Channel adapter.
///
/// One slot per link; `record` is two relaxed atomic adds, cheap enough to
/// sit on the `reserve_link` path (which every remote write, page transfer,
/// and doubled store already goes through).
#[derive(Debug, Default)]
pub struct LinkMetrics {
    slots: Vec<(AtomicU64, AtomicU64)>,
}

/// Snapshot of one link's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounts {
    /// Transmissions reserved on the link.
    pub messages: u64,
    /// Bytes carried by those transmissions.
    pub bytes: u64,
}

impl LinkMetrics {
    /// A registry for `links` Memory Channel links.
    #[must_use]
    pub fn new(links: usize) -> Self {
        Self {
            slots: (0..links)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Counts one transmission of `bytes` on `link`.
    #[inline]
    pub fn record(&self, link: usize, bytes: u64) {
        if let Some((m, b)) = self.slots.get(link) {
            // relaxed-ok: statistics counters on the transmit hot path;
            // single-location RMW coherence keeps the totals exact and no
            // other data is published through them.
            m.fetch_add(1, Ordering::Relaxed);
            b.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Per-link totals.
    #[must_use]
    pub fn snapshot(&self) -> Vec<LinkCounts> {
        self.slots
            .iter()
            .map(|(m, b)| LinkCounts {
                // relaxed-ok: statistics counters read for reporting after
                // the run's threads have joined (see record above).
                messages: m.load(Ordering::Relaxed),
                bytes: b.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_are_log2() {
        assert_eq!(VtHistogram::bin_of(0), 0);
        assert_eq!(VtHistogram::bin_of(1), 1);
        assert_eq!(VtHistogram::bin_of(2), 2);
        assert_eq!(VtHistogram::bin_of(3), 2);
        assert_eq!(VtHistogram::bin_of(4), 3);
        assert_eq!(VtHistogram::bin_of(u64::MAX), HIST_BINS - 1);
        for i in 1..HIST_BINS - 1 {
            let lo = VtHistogram::bin_floor(i);
            assert_eq!(VtHistogram::bin_of(lo), i, "floor of bin {i} is in it");
            assert_eq!(VtHistogram::bin_of(2 * lo - 1), i, "top of bin {i}");
        }
    }

    #[test]
    fn histogram_record_and_merge() {
        let mut a = VtHistogram::default();
        a.record(10);
        a.record(1000);
        let mut b = VtHistogram::default();
        b.record(0);
        b.merge(&a);
        assert_eq!(b.count, 3);
        assert_eq!(b.sum, 1010);
        assert_eq!(b.max, 1000);
        assert!((b.mean() - 1010.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_track_log2_bins() {
        let empty = VtHistogram::default();
        assert_eq!(empty.quantile(0.5), 0);
        let mut h = VtHistogram::default();
        for _ in 0..90 {
            h.record(100); // bin floor 64
        }
        for _ in 0..10 {
            h.record(10_000); // bin floor 8192
        }
        assert_eq!(h.quantile(0.50), 64);
        assert_eq!(h.quantile(0.90), 64);
        assert_eq!(h.quantile(0.95), 8192);
        assert_eq!(h.quantile(1.0), 8192);
        // A lone sample reports its bin's lower edge.
        let mut one = VtHistogram::default();
        one.record(5);
        assert_eq!(one.quantile(0.99), 4);
    }

    #[test]
    fn registry_counter_labels_round_trip() {
        let m = MetricsRegistry {
            twin_creations: 7,
            interrupts: 3,
            ..MetricsRegistry::default()
        };
        let mut back = MetricsRegistry::default();
        for (name, v) in m.counters() {
            back.set_counter(name, v);
        }
        assert_eq!(back, m);
    }

    #[test]
    fn link_metrics_count_messages_and_bytes() {
        let lm = LinkMetrics::new(2);
        lm.record(0, 4096);
        lm.record(0, 8);
        lm.record(1, 12);
        lm.record(9, 999); // out of range: ignored, no panic
        let snap = lm.snapshot();
        assert_eq!(
            snap[0],
            LinkCounts {
                messages: 2,
                bytes: 4104
            }
        );
        assert_eq!(
            snap[1],
            LinkCounts {
                messages: 1,
                bytes: 12
            }
        );
    }
}
