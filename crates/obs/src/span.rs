//! The per-processor span stack.
//!
//! A span is a named interval of one processor's virtual time: a lock
//! acquire, a barrier episode, a page fault, a fetch or exclusive break
//! inside it. Spans are strictly nested per processor (begun and ended in
//! LIFO order by the engine hooks), which is what makes them exportable as
//! Chrome `trace_event` complete events and lets the Figure-7 accountant
//! resolve "was this stall synchronization or memory wait?" by whether a
//! sync span is open.
//!
//! Recording is bounded: each processor keeps at most [`MAX_SPANS`] finished
//! spans and counts the overflow in `spans_dropped` (never silently), while
//! metrics, heat, and Figure-7 accounting continue uncapped.

use cashmere_sim::{Nanos, ProcClock, TimeCategory};

use crate::fig7::{Fig7Breakdown, Fig7Cat};
use crate::metrics::MetricsRegistry;

/// Cap on finished spans kept per processor; overflow is counted, not
/// silently discarded.
pub const MAX_SPANS: usize = 1 << 16;

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// An application lock acquire (entry to exit of `Proc::lock`).
    Lock,
    /// A barrier episode (arrive to depart).
    Barrier,
    /// A flag wait or set.
    Flag,
    /// Release-side protocol actions (diff flush, write notices).
    Release,
    /// Acquire-side protocol actions (write-notice distribution and
    /// invalidation).
    Acquire,
    /// One page-fault service, end to end.
    Fault,
    /// A page fetch inside a fault.
    Fetch,
    /// An exclusive-mode break inside a fault.
    Break,
    /// A Memory Channel lock hold (home-node relocation).
    McLock,
}

impl SpanKind {
    /// All kinds, in a stable order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::Lock,
        SpanKind::Barrier,
        SpanKind::Flag,
        SpanKind::Release,
        SpanKind::Acquire,
        SpanKind::Fault,
        SpanKind::Fetch,
        SpanKind::Break,
        SpanKind::McLock,
    ];

    /// Display / JSON label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Lock => "lock",
            SpanKind::Barrier => "barrier",
            SpanKind::Flag => "flag",
            SpanKind::Release => "release",
            SpanKind::Acquire => "acquire",
            SpanKind::Fault => "fault",
            SpanKind::Fetch => "fetch",
            SpanKind::Break => "break",
            SpanKind::McLock => "mc_lock",
        }
    }

    /// Parses a [`Self::label`] back to the kind.
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        SpanKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Whether time inside this span counts as Figure-7 "sync".
    #[must_use]
    pub fn is_sync(self) -> bool {
        matches!(self, SpanKind::Lock | SpanKind::Barrier | SpanKind::Flag)
    }
}

/// One finished span on one processor's virtual-time track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What was measured.
    pub kind: SpanKind,
    /// Protocol node of the processor.
    pub node: u32,
    /// Global processor id.
    pub proc: u32,
    /// Virtual begin time.
    pub begin: Nanos,
    /// Virtual end time (`>= begin`).
    pub end: Nanos,
    /// Page or sync-object the span concerns, `-1` when not applicable.
    pub page: i64,
}

impl Span {
    /// Span duration in virtual nanoseconds.
    #[must_use]
    pub fn dur(&self) -> Nanos {
        self.end - self.begin
    }
}

/// Snapshot of the Figure-6 bins, in `TimeCategory::ALL` order.
fn snap(clock: &ProcClock) -> [Nanos; 5] {
    let bd = clock.breakdown();
    TimeCategory::ALL.map(|c| bd.get(c))
}

/// One processor's observability state: span stack, finished spans, metrics
/// registry, per-page heat, and the Figure-7 accountant.
///
/// Owned by the processor's `ProcCtx` (boxed, `None` when observability is
/// off), so recording needs no locking. All methods only *read* the clock —
/// observability never charges virtual time, which is why goldens stay
/// byte-identical even with it enabled.
#[derive(Debug)]
pub struct ProcObs {
    /// Protocol node of this processor.
    pub node: u32,
    /// Global processor id.
    pub proc: u32,
    /// Protocol-event counters and latency histograms.
    pub metrics: MetricsRegistry,
    /// Page-fault count per page ("heat").
    heat: Vec<u32>,
    fig7: Fig7Breakdown,
    stack: Vec<(SpanKind, Nanos, i64)>,
    spans: Vec<Span>,
    dropped: u64,
    unclosed: u64,
    mismatched: u64,
    last_snap: [Nanos; 5],
    sync_depth: u32,
}

impl ProcObs {
    /// Fresh state for processor `proc` on protocol node `node`, tracking
    /// `pages` heap pages of heat.
    #[must_use]
    pub fn new(node: u32, proc_id: u32, pages: usize) -> Self {
        Self {
            node,
            proc: proc_id,
            metrics: MetricsRegistry::default(),
            heat: vec![0; pages],
            fig7: Fig7Breakdown::default(),
            stack: Vec::with_capacity(8),
            spans: Vec::new(),
            dropped: 0,
            unclosed: 0,
            mismatched: 0,
            last_snap: [0; 5],
            sync_depth: 0,
        }
    }

    /// Attributes all virtual time charged since the last boundary to the
    /// Figure-7 categories, using the current sync depth for `Comm & Wait`.
    fn attribute(&mut self, clock: &ProcClock) {
        let s = snap(clock);
        for (i, cat) in TimeCategory::ALL.into_iter().enumerate() {
            let d = s[i] - self.last_snap[i];
            if d > 0 {
                self.fig7
                    .add(Fig7Cat::from_fig6(cat, self.sync_depth > 0), d);
            }
        }
        self.last_snap = s;
    }

    /// Opens a span of `kind` at the clock's current virtual time.
    pub fn begin(&mut self, kind: SpanKind, page: i64, clock: &ProcClock) {
        self.attribute(clock);
        self.stack.push((kind, clock.now(), page));
        if kind.is_sync() {
            self.sync_depth += 1;
        }
    }

    /// Closes the innermost span, which should be of `kind` (a mismatch is
    /// counted, and the span records under the kind that was actually
    /// open). Returns the span's virtual duration.
    pub fn end(&mut self, kind: SpanKind, clock: &ProcClock) -> Nanos {
        self.attribute(clock);
        let Some((open, begin, page)) = self.stack.pop() else {
            self.mismatched += 1;
            return 0;
        };
        if open != kind {
            self.mismatched += 1;
        }
        if open.is_sync() {
            self.sync_depth -= 1;
        }
        let end = clock.now().max(begin);
        self.push_span(Span {
            kind: open,
            node: self.node,
            proc: self.proc,
            begin,
            end,
            page,
        });
        end - begin
    }

    /// Counts one fault on `page`.
    #[inline]
    pub fn heat(&mut self, page: usize) {
        if let Some(h) = self.heat.get_mut(page) {
            *h += 1;
        }
    }

    /// Final flush at processor exit: attributes the tail of the run and
    /// force-closes (and counts) any span still open.
    pub fn finish(&mut self, clock: &ProcClock) {
        self.attribute(clock);
        while let Some((open, begin, page)) = self.stack.pop() {
            self.unclosed += 1;
            if open.is_sync() {
                self.sync_depth = self.sync_depth.saturating_sub(1);
            }
            let end = clock.now().max(begin);
            self.push_span(Span {
                kind: open,
                node: self.node,
                proc: self.proc,
                begin,
                end,
                page,
            });
        }
    }

    fn push_span(&mut self, s: Span) {
        if self.spans.len() < MAX_SPANS {
            self.spans.push(s);
        } else {
            self.dropped += 1;
        }
    }

    /// Finished spans recorded so far.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The Figure-7 accounting so far; after [`Self::finish`] its total is
    /// exactly the clock's total charged time.
    #[must_use]
    pub fn fig7(&self) -> &Fig7Breakdown {
        &self.fig7
    }

    /// Per-page fault counts.
    #[must_use]
    pub fn page_heat(&self) -> &[u32] {
        &self.heat
    }

    /// (dropped, unclosed, mismatched) span bookkeeping counters.
    #[must_use]
    pub fn anomalies(&self) -> (u64, u64, u64) {
        (self.dropped, self.unclosed, self.mismatched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_sim::ProcClock;

    #[test]
    fn spans_nest_and_fig7_accounts_every_nanosecond() {
        let mut clock = ProcClock::default();
        let mut o = ProcObs::new(0, 0, 4);
        clock.charge(TimeCategory::User, 100);
        o.begin(SpanKind::Lock, 3, &clock);
        clock.charge(TimeCategory::CommWait, 40); // inside sync -> Sync
        o.begin(SpanKind::Acquire, -1, &clock);
        clock.charge(TimeCategory::Protocol, 25);
        let d = o.end(SpanKind::Acquire, &clock);
        assert_eq!(d, 25);
        let d = o.end(SpanKind::Lock, &clock);
        assert_eq!(d, 65);
        clock.charge(TimeCategory::CommWait, 7); // outside sync -> Wait
        clock.charge(TimeCategory::Polling, 3);
        o.finish(&clock);

        assert_eq!(o.fig7().get(Fig7Cat::Task), 100);
        assert_eq!(o.fig7().get(Fig7Cat::Sync), 40);
        assert_eq!(o.fig7().get(Fig7Cat::Protocol), 25);
        assert_eq!(o.fig7().get(Fig7Cat::Wait), 7);
        assert_eq!(o.fig7().get(Fig7Cat::Message), 3);
        assert_eq!(o.fig7().total(), clock.now(), "exact identity");

        let spans = o.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Acquire);
        assert_eq!(spans[1].kind, SpanKind::Lock);
        assert!(spans[0].begin >= spans[1].begin && spans[0].end <= spans[1].end);
        assert_eq!(o.anomalies(), (0, 0, 0));
    }

    #[test]
    fn unbalanced_ends_are_counted_not_panicked() {
        let clock = ProcClock::default();
        let mut o = ProcObs::new(0, 1, 0);
        assert_eq!(o.end(SpanKind::Fault, &clock), 0);
        o.begin(SpanKind::Fetch, 2, &clock);
        o.end(SpanKind::Break, &clock); // wrong kind
        o.begin(SpanKind::Barrier, 0, &clock);
        o.finish(&clock); // force-closes the barrier
        let (dropped, unclosed, mismatched) = o.anomalies();
        assert_eq!(dropped, 0);
        assert_eq!(unclosed, 1);
        assert_eq!(mismatched, 2);
    }

    #[test]
    fn heat_is_bounded_by_pages() {
        let mut o = ProcObs::new(0, 0, 2);
        o.heat(0);
        o.heat(0);
        o.heat(1);
        o.heat(99); // ignored
        assert_eq!(o.page_heat(), &[2, 1]);
    }
}
